#include "apps/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"

namespace drw::apps {
namespace {

using congest::Network;

TEST(ClosenessStats, ExactMatchGivesNearZeroL2) {
  // Samples drawn exactly proportional to pi: X == Y, so the unbiased
  // l2 estimate should be ~0. Star graph: pi(center) = 1/2.
  // n = 5: center deg 4, leaves deg 1; 2m = 8; sum deg^2 = 20.
  // Perfect sample of 8: 4 at center, 1 per leaf.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> counts{
      {4, 4}, {1, 1}, {1, 1}, {1, 1}, {1, 1}};
  const auto stats = closeness_statistics(counts, 8, 20, 5, 8, 2.0);
  // ||X||_2^2 estimate: (4*3 + 0*4)/(8*7) = 12/56; <X,Y> = (4*4/8 + 4*1/8)/8
  // = 20/64; ||Y||_2^2 = 20/64.
  EXPECT_NEAR(stats.l2_squared, 12.0 / 56.0 - 2.0 * 20.0 / 64.0 + 20.0 / 64.0,
              1e-12);
  EXPECT_LT(stats.l1_upper, 0.35);
}

TEST(ClosenessStats, ConcentratedSampleFails) {
  // All K samples on one leaf of the star: far from stationary.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> counts{{16, 1}};
  const auto stats = closeness_statistics(counts, 8, 20, 5, 16, 2.0);
  // ||X||_2^2 ~ 1, <X,Y> = 1/8, ||Y||_2^2 = 20/64: l2^2 ~ 1 - .25 + .3 > .5.
  EXPECT_GT(stats.l2_squared, 0.5);
  EXPECT_GT(stats.l1_upper, 1.0);
}

TEST(ClosenessStats, RejectsTinySamples) {
  EXPECT_THROW(closeness_statistics({}, 8, 20, 5, 1, 2.0),
               std::invalid_argument);
}

TEST(Mixing, CompleteGraphMixesImmediately) {
  const Graph g = gen::complete(16);
  Network net(g, 3);
  MixingOptions options;
  options.samples = 600;
  const MixingEstimate est = estimate_mixing_time(
      net, 0, core::Params::paper(), 1, options);
  EXPECT_TRUE(est.converged);
  EXPECT_LE(est.tau, 4u);
  EXPECT_GT(est.stats.rounds, 0u);
}

TEST(Mixing, OddCycleEstimateBracketsExactTau) {
  const std::size_t n = 15;
  const Graph g = gen::cycle(n);
  const MarkovOracle oracle(g);
  const auto exact = oracle.mixing_time_standard(0, 100000);
  ASSERT_TRUE(exact.has_value());

  Network net(g, 7);
  MixingOptions options;
  options.samples = 800;  // generous sampling for a tight estimate
  const MixingEstimate est = estimate_mixing_time(
      net, 0, core::Params::paper(), static_cast<std::uint32_t>(n / 2),
      options);
  ASSERT_TRUE(est.converged);
  // The estimator tests a sqrt(n)-scaled l2 bound plus a bucket test against
  // threshold 1/(2e); calibration differs from the exact L1 crossing by a
  // modest constant. Accept a [exact/6, 6*exact] bracket.
  EXPECT_GE(est.tau, *exact / 6) << "exact=" << *exact;
  EXPECT_LE(est.tau, *exact * 6) << "exact=" << *exact;
}

TEST(Mixing, SlowGraphYieldsLargerEstimateThanFastGraph) {
  // A barbell mixes far more slowly than an expander of similar size; the
  // decentralized estimates must reflect the ordering.
  Rng rng(5);
  const Graph fast = gen::random_regular(24, 4, rng);
  const Graph slow = gen::barbell(8, 2);  // 18 nodes, tight bottleneck

  MixingOptions options;
  options.samples = 400;
  Network net_fast(fast, 11);
  const MixingEstimate est_fast = estimate_mixing_time(
      net_fast, 0, core::Params::paper(), exact_diameter(fast), options);
  Network net_slow(slow, 11);
  const MixingEstimate est_slow = estimate_mixing_time(
      net_slow, 0, core::Params::paper(), exact_diameter(slow), options);
  ASSERT_TRUE(est_fast.converged);
  ASSERT_TRUE(est_slow.converged);
  EXPECT_GT(est_slow.tau, 2 * est_fast.tau)
      << "slow=" << est_slow.tau << " fast=" << est_fast.tau;
}

TEST(Mixing, SpectralAndConductanceBoundsAreConsistent) {
  const Graph g = gen::cycle(11);
  Network net(g, 13);
  MixingOptions options;
  options.samples = 400;
  const MixingEstimate est = estimate_mixing_time(
      net, 0, core::Params::paper(), 5, options);
  ASSERT_TRUE(est.converged);
  EXPECT_GT(est.gap_lower, 0.0);
  EXPECT_LE(est.gap_lower, est.gap_upper);
  EXPECT_GT(est.conductance_lower, 0.0);
  EXPECT_LE(est.conductance_lower, est.conductance_upper);
  EXPECT_LE(est.gap_upper, 1.0);
  EXPECT_LE(est.conductance_upper, 1.0);
}

TEST(Mixing, MonotoneTestAllowsBinarySearchOff) {
  const Graph g = gen::complete(8);
  Network net(g, 17);
  MixingOptions options;
  options.samples = 300;
  options.binary_search = false;
  const MixingEstimate est = estimate_mixing_time(
      net, 0, core::Params::paper(), 1, options);
  EXPECT_TRUE(est.converged);
  // Without refinement the estimate is the first passing power of two.
  EXPECT_TRUE((est.tau & (est.tau - 1)) == 0) << est.tau;
}

TEST(ExpanderCheck, AcceptsExpanderRejectsCycleAndBarbell) {
  Rng rng(23);
  const Graph expander = gen::random_regular(48, 4, rng);
  const Graph slow_cycle = gen::cycle(49);
  const Graph bottleneck = gen::barbell(16, 2);
  apps::MixingOptions options;
  options.samples = 400;

  Network net1(expander, 29);
  const auto good = check_expander(net1, 0, core::Params::paper(),
                                   exact_diameter(expander), 2.0, options);
  EXPECT_TRUE(good.is_expander) << "tau=" << good.tau;
  EXPECT_GT(good.gap_lower, 0.01);

  Network net2(slow_cycle, 29);
  const auto slow = check_expander(net2, 0, core::Params::paper(),
                                   exact_diameter(slow_cycle), 2.0, options);
  EXPECT_FALSE(slow.is_expander) << "tau=" << slow.tau;

  Network net3(bottleneck, 29);
  const auto cut = check_expander(net3, 0, core::Params::paper(),
                                  exact_diameter(bottleneck), 2.0, options);
  EXPECT_FALSE(cut.is_expander) << "tau=" << cut.tau;
}

TEST(Mixing, RejectsBadOptions) {
  const Graph g = gen::complete(4);
  Network net(g, 1);
  MixingOptions options;
  options.bucket_ratio = 1.0;
  EXPECT_THROW(
      estimate_mixing_time(net, 0, core::Params::paper(), 1, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace drw::apps
