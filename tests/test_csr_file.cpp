// Binary CSR graph cache tier-1 (drw::csr): round-trip equality, degree
// relabeling invariants, text-vs-CSR serving bit-identity across thread
// count x partition x mux width, corruption/torn-file rejection with text
// fallback, mmap view lifetime, and resil fingerprint agreement between
// mmap'd and parsed loads.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "resil/failpoint.hpp"
#include "resil/snapshot.hpp"
#include "service/walk_service.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

using service::BatchReport;
using service::ServiceConfig;
using service::WalkRequest;
using service::WalkService;

std::string tmp_path(const char* name) { return ::testing::TempDir() + name; }

/// A deterministic, irregular test graph (mixed degrees so relabeling is
/// not the identity), written as a text edge list.
Graph make_graph() {
  Rng rng(808);
  return gen::power_law(64, 3, rng);
}

std::string write_text_graph(const char* name) {
  const std::string path = tmp_path(name);
  write_edge_list_file(path, make_graph());
  return path;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expect_graphs_equal(const Graph& a, const Graph& b, const char* label) {
  ASSERT_EQ(a.node_count(), b.node_count()) << label;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << label;
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  ASSERT_EQ(ao.size(), bo.size()) << label;
  for (std::size_t i = 0; i < ao.size(); ++i) {
    ASSERT_EQ(ao[i], bo[i]) << label << " offset " << i;
  }
  const auto aa = a.adjacency();
  const auto ba = b.adjacency();
  ASSERT_EQ(aa.size(), ba.size()) << label;
  for (std::size_t i = 0; i < aa.size(); ++i) {
    ASSERT_EQ(aa[i], ba[i]) << label << " adjacency " << i;
  }
}

// --------------------------------------------------------------- relabeling

TEST(CsrFile, DegreeRelabelIsAPermutationSortedByDegree) {
  const Graph g = make_graph();
  const csr::Relabeling rel = csr::degree_relabel(g);
  const std::size_t n = g.node_count();
  ASSERT_EQ(rel.graph.node_count(), n);
  ASSERT_EQ(rel.graph.edge_count(), g.edge_count());
  ASSERT_EQ(rel.new_to_old.size(), n);
  ASSERT_EQ(rel.old_to_new.size(), n);

  // Inverse permutations of [0, n).
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId old = rel.new_to_old[i];
    ASSERT_LT(old, n);
    EXPECT_FALSE(seen[old]) << "duplicate old id " << old;
    seen[old] = true;
    EXPECT_EQ(rel.old_to_new[old], static_cast<NodeId>(i));
  }

  // New ids are ordered by descending degree (ties by ascending old id) and
  // each node keeps its degree through the rename.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rel.graph.degree(static_cast<NodeId>(i)),
              g.degree(rel.new_to_old[i]));
    if (i + 1 < n) {
      const std::uint32_t di = g.degree(rel.new_to_old[i]);
      const std::uint32_t dj = g.degree(rel.new_to_old[i + 1]);
      EXPECT_TRUE(di > dj ||
                  (di == dj && rel.new_to_old[i] < rel.new_to_old[i + 1]));
    }
  }

  // Topology is preserved: (u, v) is an edge iff its renamed pair is.
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(rel.graph.has_edge(rel.old_to_new[v], rel.old_to_new[u]));
    }
  }
}

// --------------------------------------------------------------- round trip

TEST(CsrFile, WriteReadRoundTripPreservesArraysAndMaps) {
  const std::string text = write_text_graph("drw_csr_rt.txt");
  const std::string bin = text + ".csr";
  const csr::LoadedGraph converted = csr::convert_edge_list(text, bin);
  ASSERT_FALSE(converted.from_csr);

  const csr::ReadOutcome out = csr::read_csr_file(bin);
  ASSERT_TRUE(out.loaded.has_value()) << out.error;
  const csr::LoadedGraph& loaded = *out.loaded;
  EXPECT_TRUE(loaded.from_csr);
  EXPECT_TRUE(loaded.graph.is_view());
  expect_graphs_equal(loaded.graph, converted.graph, "round trip");
  EXPECT_EQ(loaded.new_to_old, converted.new_to_old);
  EXPECT_EQ(loaded.old_to_new, converted.old_to_new);

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(CsrFile, UnrelabeledFileHasIdentityTranslation) {
  const Graph g = make_graph();
  const std::string bin = tmp_path("drw_csr_norelabel.csr");
  csr::write_csr_file(bin, g, {});
  const csr::ReadOutcome out = csr::read_csr_file(bin);
  ASSERT_TRUE(out.loaded.has_value()) << out.error;
  EXPECT_TRUE(out.loaded->new_to_old.empty());
  expect_graphs_equal(out.loaded->graph, g, "no-relabel");
  EXPECT_EQ(out.loaded->to_internal(5), 5u);
  EXPECT_EQ(out.loaded->to_user(5), 5u);
  EXPECT_EQ(out.loaded->to_internal(static_cast<NodeId>(g.node_count())),
            kInvalidNode);
  std::remove(bin.c_str());
}

TEST(CsrFile, FingerprintAgreesBetweenMmapAndParsedLoads) {
  const std::string text = write_text_graph("drw_csr_fp.txt");
  const std::string bin = text + ".csr";
  csr::convert_edge_list(text, bin);

  const csr::LoadedGraph from_text = csr::load_graph(text);
  const csr::LoadedGraph from_csr = csr::load_graph(bin);
  ASSERT_FALSE(from_text.from_csr);
  ASSERT_TRUE(from_csr.from_csr);
  // The resil fingerprint guards warm restarts: a snapshot taken while
  // serving the text parse must warm-start a server that mmap'd the CSR.
  EXPECT_EQ(resil::graph_fingerprint(from_text.graph, 4242),
            resil::graph_fingerprint(from_csr.graph, 4242));

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(CsrFile, ViewOutlivesLoadedGraphViaCopy) {
  const std::string text = write_text_graph("drw_csr_life.txt");
  const std::string bin = text + ".csr";
  const csr::LoadedGraph converted = csr::convert_edge_list(text, bin);

  Graph copy;
  {
    const csr::ReadOutcome out = csr::read_csr_file(bin);
    ASSERT_TRUE(out.loaded.has_value()) << out.error;
    copy = out.loaded->graph;  // shares the refcounted mmap backing
  }  // LoadedGraph destroyed; `copy` must keep the mapping alive
  EXPECT_TRUE(copy.is_view());
  expect_graphs_equal(copy, converted.graph, "copied view");

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

// ------------------------------------------------- corruption and fallback

TEST(CsrFile, RejectsCorruptTornAndForeignFiles) {
  const std::string text = write_text_graph("drw_csr_bad.txt");
  const std::string bin = text + ".csr";
  csr::convert_edge_list(text, bin);
  const std::vector<std::uint8_t> good = slurp(bin);
  ASSERT_GT(good.size(), 64u);
  const std::string bad = tmp_path("drw_csr_bad_case.csr");

  struct Case {
    const char* what;
    std::vector<std::uint8_t> (*mutate)(std::vector<std::uint8_t>);
    const char* expect;
  };
  const Case cases[] = {
      {"garbage magic",
       [](std::vector<std::uint8_t> b) {
         b[0] ^= 0xFF;
         return b;
       },
       "bad magic"},
      {"wrong version",
       [](std::vector<std::uint8_t> b) {
         b[8] = 99;
         return b;
       },
       "unsupported CSR version"},
      {"wrong endianness",
       [](std::vector<std::uint8_t> b) {
         std::swap(b[12], b[15]);
         std::swap(b[13], b[14]);
         return b;
       },
       "wrong endianness"},
      {"truncated payload",
       [](std::vector<std::uint8_t> b) {
         b.resize(b.size() - 7);
         return b;
       },
       "payload size mismatch"},
      {"flipped payload byte",
       [](std::vector<std::uint8_t> b) {
         b[b.size() / 2] ^= 0x01;
         return b;
       },
       "checksum mismatch"},
      {"header-only stub",
       [](std::vector<std::uint8_t> b) {
         b.resize(16);
         return b;
       },
       "truncated header"},
  };
  for (const Case& c : cases) {
    dump(bad, c.mutate(good));
    const csr::ReadOutcome out = csr::read_csr_file(bad);
    EXPECT_FALSE(out.loaded.has_value()) << c.what;
    EXPECT_NE(out.error.find(c.expect), std::string::npos)
        << c.what << ": got '" << out.error << "'";
  }

  // A forged node count with a matching recomputed CRC must still be caught
  // by the structural size check (never UB).
  {
    std::vector<std::uint8_t> b = good;
    std::uint64_t n = 0;
    std::memcpy(&n, b.data() + 32, 8);
    n += 1;
    std::memcpy(b.data() + 32, &n, 8);
    const std::uint32_t crc = resil::crc32(b.data() + 32, b.size() - 32);
    std::memcpy(b.data() + 24, &crc, 4);
    dump(bad, b);
    const csr::ReadOutcome out = csr::read_csr_file(bad);
    EXPECT_FALSE(out.loaded.has_value());
    EXPECT_NE(out.error.find("size inconsistent"), std::string::npos)
        << out.error;
  }

  std::remove(text.c_str());
  std::remove(bin.c_str());
  std::remove(bad.c_str());
}

TEST(CsrFile, CorruptCsrFallsBackToTextSiblingBitIdentically) {
  const std::string text = write_text_graph("drw_csr_fb.txt");
  const std::string bin = text + ".csr";
  csr::convert_edge_list(text, bin);
  const csr::LoadedGraph direct = csr::load_graph(text);

  // Tear the cache; load_graph must degrade to re-parsing the sibling.
  std::vector<std::uint8_t> bytes = slurp(bin);
  bytes[40] ^= 0xFF;
  dump(bin, bytes);
  const csr::LoadedGraph fallback = csr::load_graph(bin);
  EXPECT_FALSE(fallback.from_csr);
  EXPECT_NE(fallback.note.find("csr rejected"), std::string::npos)
      << fallback.note;
  expect_graphs_equal(fallback.graph, direct.graph, "fallback");
  EXPECT_EQ(fallback.new_to_old, direct.new_to_old);

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(CsrFile, RejectedCsrWithoutSiblingThrows) {
  const std::string bin = tmp_path("drw_csr_orphan.csr");
  dump(bin, std::vector<std::uint8_t>(64, 0xAB));
  EXPECT_THROW(csr::load_graph(bin), std::runtime_error);
  std::remove(bin.c_str());
}

TEST(CsrFile, ShortWriteFailpointProducesARejectedTornFile) {
  const std::string text = write_text_graph("drw_csr_torn.txt");
  const std::string bin = text + ".csr";
  resil::arm_failpoints("csr.write:short_write");
  csr::convert_edge_list(text, bin);
  EXPECT_GE(resil::failpoint_hits("csr.write"), 1u);
  resil::disarm_failpoints();

  const csr::ReadOutcome out = csr::read_csr_file(bin);
  EXPECT_FALSE(out.loaded.has_value());
  // Half the payload is missing, so the size check fires first.
  EXPECT_NE(out.error.find("payload size mismatch"), std::string::npos)
      << out.error;
  // ...and load_graph still serves the graph via the text sibling.
  const csr::LoadedGraph fallback = csr::load_graph(bin);
  EXPECT_FALSE(fallback.from_csr);

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

// --------------------------------------------------- serving bit-identity

ServiceConfig serve_config(unsigned threads, unsigned mux,
                           congest::Partition partition) {
  ServiceConfig config;
  config.params = core::Params::paper();
  config.params.lambda_override = 4;  // stitching-heavy
  config.enable_paths = true;
  config.threads = threads;
  config.mux_width = mux;
  config.partition = partition;
  return config;
}

BatchReport serve_once(const csr::LoadedGraph& lg, const ServiceConfig& config,
                       std::uint32_t diameter) {
  congest::Network net(lg.graph, 4242);
  WalkService service(net, diameter, config);
  // Sources in the USER id space, translated exactly like the CLI does.
  std::vector<WalkRequest> batch = {
      {lg.to_internal(1), 33, 3, true},
      {lg.to_internal(9), 25, 2, false},
      {lg.to_internal(4), 18, 2, true},
  };
  return service.serve(batch);
}

// The acceptance gate: a converted + mmap'd CSR serves bit-identically to
// the text parse at every thread count x partition x mux width.
TEST(CsrFile, TextAndCsrServeBitIdenticallyAcrossThreadsPartitionAndMux) {
  const std::string text = write_text_graph("drw_csr_serve.txt");
  const std::string bin = text + ".csr";
  csr::convert_edge_list(text, bin);
  const csr::LoadedGraph from_text = csr::load_graph(text);
  const csr::LoadedGraph from_csr = csr::load_graph(bin);
  ASSERT_TRUE(from_csr.from_csr);
  const std::uint32_t diameter = exact_diameter(from_text.graph);
  const congest::Partition partitions[] = {congest::Partition::kEdgeWeighted,
                                           congest::Partition::kNodeCount};

  for (const unsigned mux : {1u, 4u}) {
    for (const congest::Partition partition : partitions) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        const std::string label =
            "mux=" + std::to_string(mux) +
            " partition=" + std::to_string(static_cast<int>(partition)) +
            " threads=" + std::to_string(threads);
        const ServiceConfig config = serve_config(threads, mux, partition);
        const BatchReport a = serve_once(from_text, config, diameter);
        const BatchReport b = serve_once(from_csr, config, diameter);

        ASSERT_EQ(a.results.size(), b.results.size()) << label;
        for (std::size_t i = 0; i < a.results.size(); ++i) {
          EXPECT_EQ(a.results[i].status, b.results[i].status)
              << label << " request " << i;
          EXPECT_EQ(a.results[i].destinations, b.results[i].destinations)
              << label << " request " << i;
          EXPECT_EQ(a.results[i].paths, b.results[i].paths)
              << label << " request " << i;
        }
        EXPECT_EQ(a.stats.rounds, b.stats.rounds) << label;
        EXPECT_EQ(a.stats.messages, b.stats.messages) << label;
        EXPECT_EQ(a.stitches, b.stitches) << label;
        EXPECT_EQ(a.inventory_hits, b.inventory_hits) << label;
        EXPECT_EQ(a.mux_groups, b.mux_groups) << label;
        EXPECT_EQ(a.mux_conflicts, b.mux_conflicts) << label;
      }
    }
  }

  std::remove(text.c_str());
  std::remove(bin.c_str());
}

}  // namespace
}  // namespace drw
