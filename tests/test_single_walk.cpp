#include "core/random_walks.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"
#include "walk_test_utils.hpp"

namespace drw::core {
namespace {

using congest::Network;

/// The central Las Vegas property (Theorem 2.5): the destination returned by
/// SINGLE-RANDOM-WALK is an exact sample from the l-step walk distribution.
/// Parameterized over (graph family, l, lambda override) so the stitched
/// path, the GET-MORE-WALKS path and the naive tail are all exercised.
struct DistCase {
  const char* name;
  Graph graph;
  NodeId source;
  std::uint64_t l;
  std::uint32_t lambda_override;  // 0 = formula
  int runs;
};

class EndpointDistribution : public ::testing::TestWithParam<int> {};

std::vector<DistCase> distribution_cases() {
  Rng rng(77);
  std::vector<DistCase> cases;
  cases.push_back({"path5_l7_lam2", gen::path(5), 0, 7, 2, 3000});
  cases.push_back({"cycle5_l8_lam3", gen::cycle(5), 1, 8, 3, 3000});
  cases.push_back({"complete5_l6_lam2", gen::complete(5), 0, 6, 2, 3000});
  cases.push_back({"lollipop_l9_lam3", gen::lollipop(4, 3), 6, 9, 3, 3000});
  cases.push_back({"grid33_l8_default", gen::grid(3, 3), 4, 8, 0, 3000});
  cases.push_back(
      {"er12_l10_lam3", gen::erdos_renyi_connected(12, 0.3, rng), 2, 10, 3,
       3000});
  return cases;
}

TEST_P(EndpointDistribution, MatchesMarkovOracleExactly) {
  const auto cases = distribution_cases();
  const DistCase& c = cases[static_cast<std::size_t>(GetParam())];
  const MarkovOracle oracle(c.graph);
  const auto expected = oracle.distribution_after(c.source, c.l);
  const std::uint32_t diameter = exact_diameter(c.graph);

  Params params = Params::paper();
  params.lambda_override = c.lambda_override;

  std::vector<std::uint64_t> counts(c.graph.node_count(), 0);
  for (int run = 0; run < c.runs; ++run) {
    Network net(c.graph, 9000 + run);
    const SingleWalkOutput out =
        single_random_walk(net, c.source, c.l, params, diameter);
    ASSERT_LT(out.result.destination, c.graph.node_count());
    ++counts[out.result.destination];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4)
      << c.name << ": chi2=" << result.statistic << " dof=" << result.dof;
}

INSTANTIATE_TEST_SUITE_P(Cases, EndpointDistribution, ::testing::Range(0, 6));

TEST(SingleWalk, RegeneratedPositionsFormTheWalk) {
  // Section 2.2: after regeneration every node knows its position(s); the
  // reconstructed sequence must be a valid l-step walk.
  Rng rng(5);
  const Graph g = gen::random_geometric(30, 0.3, rng);
  const std::uint32_t diameter = exact_diameter(g);
  Params params = Params::paper();
  params.record_trajectories = true;
  params.lambda_override = 4;  // force several stitches
  for (int run = 0; run < 25; ++run) {
    Network net(g, 400 + run);
    const std::uint64_t l = 30 + run;
    const SingleWalkOutput out = single_random_walk(net, 3, l, params,
                                                    diameter);
    test::expect_valid_walk(g, out.positions, 0, l, 3,
                            out.result.destination);
  }
}

TEST(SingleWalk, GetMoreWalksPathIsExercisedAndValid) {
  // Repeated walks from one engine deplete the store and force
  // GET-MORE-WALKS; positions must stay valid (reverse replay).
  const Graph g = gen::grid(4, 4);
  const std::uint32_t diameter = exact_diameter(g);
  Params params = Params::paper();
  params.record_trajectories = true;
  params.lambda_override = 3;
  params.eta = 1.0;

  Network net(g, 4242);
  StitchEngine engine(net, params, diameter);
  const std::uint64_t l = 40;
  engine.prepare(1, l);
  std::uint64_t gmw_total = 0;
  for (std::uint32_t w = 0; w < 12; ++w) {
    const WalkResult result = engine.walk(0, l, w);
    gmw_total += result.counters.get_more_walks_calls;
    test::expect_valid_walk(g, engine.positions(), w, l, 0,
                            result.destination);
  }
  EXPECT_GT(gmw_total, 0u) << "test never exercised GET-MORE-WALKS";
}

TEST(SingleWalk, Podc09PresetDistributionAlsoExact) {
  const Graph g = gen::cycle(6);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 9;
  const auto expected = oracle.distribution_after(0, l);
  Params params = Params::podc09();
  params.lambda_override = 3;
  params.eta = 2.0;

  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 7000 + run);
    const SingleWalkOutput out = single_random_walk(net, 0, l, params, 3);
    ++counts[out.result.destination];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(SingleWalk, NaiveBaselineDistributionExact) {
  const Graph g = gen::lollipop(3, 2);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 7;
  const auto expected = oracle.distribution_after(4, l);
  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 11000 + run);
    ++counts[naive_random_walk(net, 4, l).destination];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(SingleWalk, NaiveWalkCostsExactlyLRounds) {
  const Graph g = gen::torus(5, 5);
  Network net(g, 1);
  const WalkResult result = naive_random_walk(net, 0, 200);
  EXPECT_EQ(result.stats.rounds, 200u);
}

TEST(SingleWalk, StitchedBeatsNaiveOnLongWalks) {
  // The headline claim, qualitatively: for l >> D the stitched walk takes
  // far fewer rounds than l.
  Rng rng(31);
  const Graph g = gen::random_regular(64, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::uint64_t l = 4096;
  Network net(g, 2);
  const SingleWalkOutput out =
      single_random_walk(net, 0, l, Params::paper(), diameter);
  EXPECT_LT(out.result.stats.rounds, l / 2)
      << "lambda=" << out.result.counters.lambda
      << " stitches=" << out.result.counters.stitches;
  EXPECT_GT(out.result.counters.stitches, 0u);
}

TEST(SingleWalk, ZeroLengthWalkStaysAtSource) {
  const Graph g = gen::cycle(5);
  Network net(g, 3);
  StitchEngine engine(net, Params::paper(), 2);
  engine.prepare(1, 0);
  const WalkResult result = engine.walk(2, 0, 0);
  EXPECT_EQ(result.destination, 2u);
}

TEST(SingleWalk, WalkLongerThanPreparedThrows) {
  const Graph g = gen::cycle(5);
  Network net(g, 3);
  StitchEngine engine(net, Params::paper(), 2);
  engine.prepare(1, 10);
  EXPECT_THROW(engine.walk(0, 11, 0), std::logic_error);
}

TEST(SingleWalk, UnpreparedEngineThrows) {
  const Graph g = gen::cycle(5);
  Network net(g, 3);
  StitchEngine engine(net, Params::paper(), 2);
  EXPECT_THROW(engine.walk(0, 5, 0), std::logic_error);
}

TEST(SingleWalk, CountersAreCoherent) {
  const Graph g = gen::grid(5, 5);
  Params params = Params::paper();
  params.lambda_override = 5;
  Network net(g, 8);
  const SingleWalkOutput out = single_random_walk(net, 0, 100, params, 8);
  const WalkCounters& c = out.result.counters;
  EXPECT_EQ(c.lambda, 5u);
  EXPECT_GT(c.stitches, 0u);
  EXPECT_GE(c.sample_calls, c.stitches);
  EXPECT_GT(c.walks_prepared, 0u);
  EXPECT_LE(c.naive_tail_steps, 2u * c.lambda);
  EXPECT_EQ(out.result.stats.rounds,
            c.phase1.rounds + c.phase2.rounds + c.naive_tail_steps +
                c.regen.rounds);
}

}  // namespace
}  // namespace drw::core
