// drw::obs (tier-1): ring-buffer overflow policy (drop-oldest with an
// exposed drop counter), trace-event JSON well-formedness, histogram
// bucket math, and registry snapshot round-trip. The multi-threaded traced
// run at the bottom exists for the TSan CI leg: it drives the full
// executor with tracing enabled so the per-thread rings and atomic
// histograms are exercised under the race checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drw {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Structural JSON check: balanced {} / [] outside strings, valid string
/// escapes, non-empty. (Full semantic validation -- Perfetto loadability,
/// monotonic stamps, span balance -- lives in tools/validate_trace.py,
/// which CI runs against a real serve trace.)
bool json_structure_ok(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !text.empty() && !in_string && stack.empty();
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Tests share the process-wide tracer/registry; leave both quiet.
    obs::Tracer::instance().disable();
    obs::Tracer::instance().flush();
    obs::Registry::global().set_enabled(false);
    obs::Registry::global().reset();
  }
  std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "obs_" + name;
  }
};

TEST_F(ObsTest, RingOverflowDropsOldestAndCountsDrops) {
  const std::string path = temp_path("overflow.json");
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(path, /*capacity=*/16);
  ASSERT_TRUE(obs::trace_enabled());

  const std::uint64_t total = 40;
  for (std::uint64_t i = 0; i < total; ++i) {
    tracer.record(obs::Name::kRound, 'i', obs::kPidExecutor, 0, i);
  }
  // Drop-oldest: the ring holds the LAST 16 events; head - capacity of
  // them were discarded, and the counter says exactly how many.
  EXPECT_EQ(tracer.dropped(), total - 16);

  tracer.disable();
  tracer.flush();
  const std::string json = read_file(path);
  ASSERT_TRUE(json_structure_ok(json)) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 16u);
  // Newest survive...
  EXPECT_NE(json.find("\"value\":39}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":24}"), std::string::npos);
  // ...oldest do not.
  EXPECT_EQ(json.find("\"value\":23}"), std::string::npos);
  EXPECT_EQ(json.find("\"value\":0}"), std::string::npos);
  // The drop count is exported for validate_trace.py.
  EXPECT_NE(json.find("\"dropped\":24"), std::string::npos);
  // Drops survive the flush accounting.
  EXPECT_EQ(tracer.dropped(), total - 16);
}

TEST_F(ObsTest, TracedRunExportsWellFormedBalancedJson) {
  const std::string path = temp_path("netrun.json");
  obs::Tracer::instance().enable(path);

  const Graph g = gen::torus(8, 8);
  congest::Network net(g, 7);
  net.set_threads(1);
  // A tiny broadcast-ish protocol: every node pings slot 0 for a few
  // rounds, enough to light up compute/transmit/merge spans; the default
  // done() runs it to quiescence.
  class Ping final : public congest::Protocol {
   public:
    void on_round(congest::Context& ctx) override {
      if (ctx.round() < 4) ctx.send(0, congest::Message{1, {ctx.round()}});
    }
  } ping;
  const congest::RunStats stats = net.run(ping);
  EXPECT_GT(stats.rounds, 0u);

  obs::Tracer::instance().disable();
  obs::Tracer::instance().flush();
  const std::string json = read_file(path);
  ASSERT_TRUE(json_structure_ok(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  // Track metadata names the executor process.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("executor"), std::string::npos);
  // Every span opened was closed (nothing dropped in a run this small).
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_NE(json.find("net.run"), std::string::npos);
  EXPECT_NE(json.find("compute.worker"), std::string::npos);
  // The fused stage-merge-deliver transmit pass traces under its own name.
  EXPECT_NE(json.find("transmit.fused.shard"), std::string::npos);
}

TEST_F(ObsTest, HistogramBucketMath) {
  // Log2 buckets: bucket b collects samples of bit width b.
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(255), 8u);
  EXPECT_EQ(obs::Histogram::bucket_of(256), 9u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::bucket_max(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_max(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_max(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_max(8), 255u);
  EXPECT_EQ(obs::Histogram::bucket_max(64), ~std::uint64_t{0});

  obs::Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_DOUBLE_EQ(h.mean(), 1106.0 / 6.0);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket(7), 1u);  // {100}
  EXPECT_EQ(h.bucket(10), 1u);  // {1000}
  // Coarse quantiles: p50 of 6 samples lands in the third bucket
  // (cumulative 4/6 >= 3); p100 is the max sample's bucket bound.
  EXPECT_EQ(h.quantile_bound(0.5), 3u);
  EXPECT_EQ(h.quantile_bound(1.0), 1023u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile_bound(0.5), 0u);
}

TEST_F(ObsTest, RegistrySnapshotRoundTrip) {
  obs::Registry& reg = obs::Registry::global();
  reg.set_enabled(true);
  reg.counter("test.counter").add(41);
  reg.counter("test.counter").add(1);
  reg.gauge("test.gauge").set(2.5);
  obs::Histogram& h = reg.histogram("test.hist");
  h.record(5);
  h.record(900);

  const std::string json = reg.snapshot_json();
  ASSERT_TRUE(json_structure_ok(json)) << json;
  EXPECT_NE(json.find("\"test.counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\":{\"count\":2,\"sum\":905"),
            std::string::npos);
  // Non-empty buckets keyed by their inclusive upper bound: 5 -> 7,
  // 900 -> 1023 (which is also the reported max bound).
  EXPECT_NE(json.find("\"7\":1"), std::string::npos);
  EXPECT_NE(json.find("\"1023\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max\":1023"), std::string::npos);

  // reset() zeroes values but keeps names registered.
  reg.reset();
  const std::string zeroed = reg.snapshot_json();
  EXPECT_NE(zeroed.find("\"test.counter\":0"), std::string::npos);
  EXPECT_NE(zeroed.find("\"count\":0"), std::string::npos);
  // Lookup returns the same object (stable addresses).
  EXPECT_EQ(&reg.histogram("test.hist"), &h);
}

TEST_F(ObsTest, MultiThreadedTracedRunIsRaceFreeAndBalanced) {
  // The TSan CI leg re-runs this binary with tracing + stats enabled at
  // DRW_THREADS=4 / DRW_PARALLEL_GRAIN=1: concurrent workers write their
  // own rings, the merge/steal paths hit the atomic histograms, and the
  // post-run flush reads everything back across the pool barrier.
  const std::string path = temp_path("parallel.json");
  obs::Tracer::instance().enable(path);
  obs::Registry::global().set_enabled(true);

  Rng gen_rng(11);
  const Graph g = gen::random_regular(512, 4, gen_rng);
  congest::Network net(g, 13);
  net.set_threads(4);
  class Storm final : public congest::Protocol {
   public:
    void on_round(congest::Context& ctx) override {
      if (ctx.round() < 6) {
        for (std::uint32_t s = 0; s < ctx.degree(); ++s) {
          ctx.send(s, congest::Message{1, {ctx.round()}});
        }
      }
    }
  } storm;
  const congest::RunStats stats = net.run(storm);
  EXPECT_GT(stats.messages, 0u);

  obs::Tracer::instance().disable();
  obs::Tracer::instance().flush();
  const std::string json = read_file(path);
  ASSERT_TRUE(json_structure_ok(json));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  // The registry saw the run too.
  const std::string snap = obs::Registry::global().snapshot_json();
  EXPECT_NE(snap.find("\"executor.rounds\""), std::string::npos);
  EXPECT_NE(snap.find("\"executor.round_wall_us\""), std::string::npos);
}

}  // namespace
}  // namespace drw
