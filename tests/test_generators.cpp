#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(Generators, PathShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(exact_diameter(g), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CycleShape) {
  const Graph g = gen::cycle(8);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(exact_diameter(g), 4u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
}

TEST(Generators, GridShape) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // 17
  EXPECT_EQ(exact_diameter(g), 5u);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = gen::torus(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.edge_count(), 40u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);
  EXPECT_EQ(exact_diameter(g), 4u);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, CompleteShape) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(exact_diameter(g), 1u);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(exact_diameter(g), 2u);
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = gen::binary_tree(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 1u);  // leaf
}

TEST(Generators, CaterpillarShape) {
  const Graph g = gen::caterpillar(4, 2);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u + 8u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, LollipopShape) {
  const Graph g = gen::lollipop(5, 6);
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(g.edge_count(), 10u + 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(10), 1u);  // end of the stick
}

TEST(Generators, BarbellShape) {
  const Graph g = gen::barbell(4, 3);
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(g.edge_count(), 6u + 6u + 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarbellZeroPathStillConnected) {
  const Graph g = gen::barbell(3, 0);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_TRUE(is_connected(g));
}

class RandomGeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGeneratorTest, ErdosRenyiConnected) {
  Rng rng(GetParam());
  const Graph g = gen::erdos_renyi_connected(60, 0.05, rng);
  EXPECT_EQ(g.node_count(), 60u);
  EXPECT_TRUE(is_connected(g));
}

TEST_P(RandomGeneratorTest, RandomRegularDegrees) {
  Rng rng(GetParam());
  const Graph g = gen::random_regular(50, 4, rng);
  EXPECT_TRUE(is_connected(g));
  // Connectivity patching may perturb a few degrees; most must be exact.
  std::size_t exact = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) exact += (g.degree(v) == 4u);
  EXPECT_GE(exact, 45u);
}

TEST_P(RandomGeneratorTest, RandomGeometricConnected) {
  Rng rng(GetParam());
  const Graph g = gen::random_geometric(80, 0.18, rng);
  EXPECT_EQ(g.node_count(), 80u);
  EXPECT_TRUE(is_connected(g));
}

TEST_P(RandomGeneratorTest, ExpanderChainDiameterGrowsWithSegments) {
  Rng rng(GetParam());
  const Graph two = gen::expander_chain(2, 24, 4, rng);
  const Graph six = gen::expander_chain(6, 24, 4, rng);
  EXPECT_TRUE(is_connected(two));
  EXPECT_TRUE(is_connected(six));
  EXPECT_GT(exact_diameter(six), exact_diameter(two));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeneratorTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(1);
  EXPECT_THROW(gen::random_regular(5, 3, rng), std::invalid_argument);
}

TEST(Generators, InvalidArguments) {
  Rng rng(1);
  EXPECT_THROW(gen::path(0), std::invalid_argument);
  EXPECT_THROW(gen::grid(0, 3), std::invalid_argument);
  EXPECT_THROW(gen::torus(2, 5), std::invalid_argument);
  EXPECT_THROW(gen::complete(1), std::invalid_argument);
  EXPECT_THROW(gen::erdos_renyi_connected(10, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW(gen::random_regular(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(gen::random_geometric(10, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace drw
