#include "apps/rst.hpp"

#include <gtest/gtest.h>

#include <map>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace drw::apps {
namespace {

using congest::Network;

/// Chi-square test that `sample` is uniform over all spanning trees of g
/// (the matrix-tree theorem supplies the denominator).
void expect_uniform_over_trees(const Graph& g,
                               const std::vector<SpanningTree>& samples,
                               double p_floor = 1e-4) {
  const double tree_count = count_spanning_trees(g);
  std::map<std::string, std::uint64_t> histogram;
  for (const SpanningTree& t : samples) {
    ASSERT_TRUE(is_spanning_tree(g, t));
    ++histogram[t.canonical_key()];
  }
  // Every observed key is a valid tree; uniformity over `tree_count` cells
  // (unobserved trees enter as zero-count cells).
  std::vector<std::uint64_t> counts;
  for (const auto& [key, count] : histogram) counts.push_back(count);
  const auto missing =
      static_cast<std::size_t>(tree_count) - histogram.size();
  for (std::size_t i = 0; i < missing; ++i) counts.push_back(0);
  const std::vector<double> expected(counts.size(), 1.0 / tree_count);
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, p_floor)
      << "chi2=" << result.statistic << " over " << tree_count << " trees";
}

TEST(CentralizedReferences, AldousBroderUniformOnK4) {
  const Graph g = gen::complete(4);
  Rng rng(11);
  std::vector<SpanningTree> samples;
  for (int i = 0; i < 3200; ++i) {
    samples.push_back(aldous_broder_reference(g, 0, rng));
  }
  expect_uniform_over_trees(g, samples);
}

TEST(CentralizedReferences, WilsonUniformOnK4) {
  const Graph g = gen::complete(4);
  Rng rng(13);
  std::vector<SpanningTree> samples;
  for (int i = 0; i < 3200; ++i) {
    samples.push_back(wilson_reference(g, 0, rng));
  }
  expect_uniform_over_trees(g, samples);
}

TEST(CentralizedReferences, WilsonUniformOnCycleWithChord) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 0);
  b.add_edge(0, 2);  // chord
  const Graph g = b.build();
  Rng rng(17);
  std::vector<SpanningTree> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(wilson_reference(g, 1, rng));
  }
  expect_uniform_over_trees(g, samples);
}

TEST(CentralizedReferences, RootDoesNotBiasDistribution) {
  // The uniform distribution over spanning trees is root-independent.
  const Graph g = gen::cycle(4);
  Rng rng(19);
  std::map<std::string, std::uint64_t> from_zero;
  std::map<std::string, std::uint64_t> from_two;
  for (int i = 0; i < 4000; ++i) {
    ++from_zero[aldous_broder_reference(g, 0, rng).canonical_key()];
    ++from_two[aldous_broder_reference(g, 2, rng).canonical_key()];
  }
  ASSERT_EQ(from_zero.size(), 4u);
  ASSERT_EQ(from_two.size(), 4u);
  for (const auto& [key, count] : from_zero) {
    EXPECT_NEAR(static_cast<double>(count),
                static_cast<double>(from_two[key]), 250.0);
  }
}

TEST(DistributedRst, ProducesValidSpanningTrees) {
  Rng rng(23);
  const Graph g = gen::random_geometric(24, 0.35, rng);
  const std::uint32_t diameter = exact_diameter(g);
  for (int run = 0; run < 5; ++run) {
    Network net(g, 4000 + run);
    const RstResult result =
        random_spanning_tree(net, 0, core::Params::paper(), diameter);
    EXPECT_TRUE(is_spanning_tree(g, result.tree));
    EXPECT_GE(result.phases, 1u);
    EXPECT_GE(result.walks_run, 1u);
    EXPECT_GE(result.cover_length, g.node_count() - 1);
    EXPECT_GT(result.stats.rounds, 0u);
  }
}

TEST(DistributedRst, UniformOnSmallCycle) {
  // Cycle on 4 nodes has exactly 4 spanning trees; the distributed
  // Aldous-Broder simulation must hit them uniformly.
  const Graph g = gen::cycle(4);
  std::vector<SpanningTree> samples;
  for (int run = 0; run < 1200; ++run) {
    Network net(g, 50000 + run);
    samples.push_back(
        random_spanning_tree(net, 0, core::Params::paper(), 2).tree);
  }
  expect_uniform_over_trees(g, samples);
}

TEST(DistributedRst, UniformOnK4) {
  const Graph g = gen::complete(4);
  std::vector<SpanningTree> samples;
  for (int run = 0; run < 1600; ++run) {
    Network net(g, 60000 + run);
    samples.push_back(
        random_spanning_tree(net, 1, core::Params::paper(), 1).tree);
  }
  expect_uniform_over_trees(g, samples);
}

TEST(DistributedRst, WorksFromEveryRoot) {
  const Graph g = gen::grid(3, 3);
  for (NodeId root = 0; root < g.node_count(); ++root) {
    Network net(g, 7000 + root);
    const RstResult result =
        random_spanning_tree(net, root, core::Params::paper(), 4);
    EXPECT_TRUE(is_spanning_tree(g, result.tree)) << "root " << root;
  }
}

TEST(DistributedRst, RejectsTrivialGraphs) {
  GraphBuilder b(1);
  const Graph g = b.build();
  // Network construction itself requires nodes; use a 1-node graph.
  Network net(g, 1);
  EXPECT_THROW(
      random_spanning_tree(net, 0, core::Params::paper(), 0),
      std::invalid_argument);
}

TEST(DistributedRst, MaxLengthGuardThrows) {
  // On a long path, covering from one end within n steps is hopeless; with
  // max_length = n the doubling loop must hit the guard and throw rather
  // than loop forever.
  const Graph g = gen::path(32);
  Network net(g, 99);
  RstOptions options;
  options.max_length = 32;
  EXPECT_THROW(random_spanning_tree(net, 0, core::Params::paper(), 31,
                                    options),
               std::runtime_error);
}

TEST(DistributedRst, InitialLengthOptionIsHonoured) {
  // A generous initial length covers K8 in one phase.
  const Graph g = gen::complete(8);
  Network net(g, 101);
  RstOptions options;
  options.initial_length = 512;
  const RstResult result = random_spanning_tree(
      net, 0, core::Params::paper(), 1, options);
  EXPECT_EQ(result.phases, 1u);
  EXPECT_EQ(result.cover_length, 512u);
  EXPECT_TRUE(is_spanning_tree(g, result.tree));
}

TEST(DistributedRst, RoundsBeatCoverTimeOnLowDiameterGraphs) {
  // Theorem 4.1 shape: O~(sqrt(m D)) rounds vs the Theta(m D) cover time a
  // naive token-forwarding simulation would pay (one round per walk step).
  // The win materializes when the diameter is small relative to the cover
  // time -- exactly the paper's motivation -- so test on an expander.
  Rng rng(17);
  const Graph g = gen::random_regular(256, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  for (int run = 0; run < 3; ++run) {
    Network net(g, 77 + run);
    const RstResult result =
        random_spanning_tree(net, 0, core::Params::paper(), diameter);
    EXPECT_TRUE(is_spanning_tree(g, result.tree));
    EXPECT_LT(result.stats.rounds, result.cover_length)
        << "rounds=" << result.stats.rounds
        << " cover_length=" << result.cover_length;
  }
}

}  // namespace
}  // namespace drw::apps
