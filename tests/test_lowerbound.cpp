#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lowerbound/gadget.hpp"
#include "lowerbound/interval_set.hpp"
#include "lowerbound/path_verification.hpp"

namespace drw::lowerbound {
namespace {

using congest::Network;

// ------------------------------------------------------------- IntervalSet

TEST(IntervalSet, Figure1Example) {
  // Figure 1: verifying [1,2] and [3,5] then combining via overlap fails,
  // but [1,3] and [3,5] combine into [1,5].
  IntervalSet s;
  s.insert(1, 2);
  s.insert(3, 5);
  EXPECT_EQ(s.size(), 2u);  // [1,2] and [3,5] do not share an index
  EXPECT_FALSE(s.covers(1, 5));
  s.insert(2, 3);  // now 2 bridges [1,2] and [3,5]
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.covers(1, 5));
}

TEST(IntervalSet, OverlapMergesTouchDoesNot) {
  IntervalSet s;
  s.insert(1, 4);
  EXPECT_EQ(s.insert(4, 7), (Interval{1, 7}));  // shares index 4
  IntervalSet t;
  t.insert(1, 4);
  t.insert(5, 7);  // adjacent but disjoint
  EXPECT_EQ(t.size(), 2u);
}

TEST(IntervalSet, InsertAbsorbsContained) {
  IntervalSet s;
  s.insert(5, 6);
  s.insert(2, 9);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.covers(2, 9));
  s.insert(3, 4);  // fully contained
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, MergeChainAcrossManyIntervals) {
  IntervalSet s;
  for (std::uint64_t i = 1; i <= 20; i += 2) s.insert(i, i + 1);
  EXPECT_EQ(s.size(), 10u);
  for (std::uint64_t i = 2; i <= 20; i += 2) s.insert(i, i + 1);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.covers(1, 21));
}

TEST(IntervalSet, FindLocatesContainingInterval) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.find(15).found);
  EXPECT_EQ(s.find(15).interval, (Interval{10, 20}));
  EXPECT_FALSE(s.find(9).found);
  EXPECT_FALSE(s.find(21).found);
  EXPECT_THROW(s.insert(5, 4), std::invalid_argument);
}

// ------------------------------------------------------------------ gadget

class GadgetShape : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GadgetShape, MatchesDefinition33) {
  const std::uint64_t l = GetParam();
  const Gadget gadget = build_gadget(l);
  const Graph& g = gadget.graph;

  // k = sqrt(l / log l); k' a power of two with k'/2 <= 4k < k'.
  const double expect_k = std::floor(
      std::sqrt(static_cast<double>(l) / std::log2(static_cast<double>(l))));
  EXPECT_EQ(gadget.k, static_cast<std::uint64_t>(expect_k));
  EXPECT_TRUE((gadget.k_prime & (gadget.k_prime - 1)) == 0);
  EXPECT_GT(gadget.k_prime, 4 * gadget.k);
  EXPECT_LE(gadget.k_prime / 2, 4 * gadget.k);

  // n' is a multiple of k' and holds the l+1 path vertices.
  EXPECT_EQ(gadget.path_len % gadget.k_prime, 0u);
  EXPECT_GE(gadget.path_len, l + 1);

  // Node count: n' + 2k' - 1 (path + binary tree).
  EXPECT_EQ(g.node_count(), gadget.path_len + 2 * gadget.k_prime - 1);
  EXPECT_TRUE(is_connected(g));

  // Every path vertex connects to exactly one leaf: v_{jk'+i} -- u_i.
  for (std::uint64_t i = 1; i <= gadget.path_len; ++i) {
    const std::uint64_t leaf_index = ((i - 1) % gadget.k_prime) + 1;
    EXPECT_TRUE(g.has_edge(gadget.path_node(i), gadget.leaf(leaf_index)))
        << "path vertex " << i;
  }
}

TEST_P(GadgetShape, DiameterIsLogarithmic) {
  const std::uint64_t l = GetParam();
  const Gadget gadget = build_gadget(l);
  const std::uint32_t diameter =
      double_sweep_diameter_estimate(gadget.graph, gadget.root());
  const double logn =
      std::log2(static_cast<double>(gadget.graph.node_count()));
  // D = O(log n): through the tree any two nodes are <= 2 log2(k') + 2 apart.
  EXPECT_LE(diameter, static_cast<std::uint32_t>(4.0 * logn + 4.0));
}

TEST_P(GadgetShape, BreakpointCountsSatisfyLemma34) {
  const std::uint64_t l = GetParam();
  const Gadget gadget = build_gadget(l);
  const auto left = gadget.left_breakpoints();
  const auto right = gadget.right_breakpoints();
  const double bound = static_cast<double>(gadget.path_len) /
                       (4.0 * static_cast<double>(gadget.k)) / 2.0;
  EXPECT_GE(static_cast<double>(left.size()), bound / 2.0);
  EXPECT_GE(static_cast<double>(right.size()), bound / 2.0);
  // Breakpoints are distinct valid path vertices.
  for (NodeId v : left) EXPECT_LT(v, gadget.path_len);
  for (NodeId v : right) EXPECT_LT(v, gadget.path_len);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GadgetShape,
                         ::testing::Values(64, 256, 1024, 4096));

TEST(WeightedGadget, FollowsPathWithHighProbability) {
  // Theorem 3.7: with edge (v_i, v_{i+1}) weighted (2n)^{2i}, the walk takes
  // the forward edge with probability >= 1 - 1/n^2 at every step.
  const WeightedGadget weighted = build_weighted_gadget(256);
  const double n = static_cast<double>(weighted.base.graph.node_count());
  double log_follow_all = 0.0;
  for (std::uint64_t i = 1; i <= 256; ++i) {
    const double p = weighted.forward_probability(i);
    EXPECT_GE(p, 1.0 - 1.0 / (n * n)) << "step " << i;
    log_follow_all += std::log(p);
  }
  // Whole path followed with probability >= 1 - 1/n.
  EXPECT_GE(std::exp(log_follow_all), 1.0 - 1.0 / n);
}

// ------------------------------------------------------- path verification

TEST(PathVerification, VerifiesAnHonestPathOnAPathGraph) {
  const Graph g = gen::path(30);
  Network net(g, 3);
  std::vector<NodeId> sequence;
  for (NodeId v = 0; v < 30; ++v) sequence.push_back(v);
  const auto result = verify_path(net, sequence, 0);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.stats.rounds, 0u);
}

TEST(PathVerification, VerifierCanBeAnywhere) {
  const Graph g = gen::grid(5, 5);
  Network net(g, 5);
  // Snake path through the grid.
  std::vector<NodeId> sequence;
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      sequence.push_back(
          static_cast<NodeId>(r * 5 + (r % 2 == 0 ? c : 4 - c)));
    }
  }
  const auto result = verify_path(net, sequence, 12);
  EXPECT_TRUE(result.verified);
}

TEST(PathVerification, RejectsABrokenSequence) {
  const Graph g = gen::path(10);
  Network net(g, 7);
  // 0,1,2,4,... -- (2,4) is not an edge.
  const std::vector<NodeId> sequence{0, 1, 2, 4, 5};
  const auto result = verify_path(net, sequence, 0);
  EXPECT_FALSE(result.verified);
}

TEST(PathVerification, RejectsDuplicatesAndEmpty) {
  const Graph g = gen::path(5);
  Network net(g, 9);
  const std::vector<NodeId> dup{0, 1, 0};
  EXPECT_THROW(verify_path(net, dup, 0), std::invalid_argument);
  EXPECT_THROW(verify_path(net, {}, 0), std::invalid_argument);
}

TEST(PathVerification, GadgetNeedsFarMoreRoundsThanDiameter) {
  // Theorem 3.2's phenomenon: on G_n the verification takes Omega(k) =
  // Omega(sqrt(l / log l)) rounds even though the diameter is O(log n).
  const std::uint64_t l = 16384;
  const Gadget gadget = build_gadget(l);
  Network net(gadget.graph, 11);
  std::vector<NodeId> sequence;
  for (std::uint64_t i = 1; i <= l + 1; ++i) {
    sequence.push_back(gadget.path_node(i));
  }
  const auto result = verify_path(net, sequence, gadget.root());
  ASSERT_TRUE(result.verified);

  const std::uint32_t diameter =
      double_sweep_diameter_estimate(gadget.graph, gadget.root());
  EXPECT_GE(result.stats.rounds, gadget.k)
      << "lower bound k=" << gadget.k;
  EXPECT_GE(result.stats.rounds, 2u * diameter)
      << "rounds should dwarf the diameter " << diameter;
}

TEST(PathVerification, SingletonSequenceIsTrivial) {
  const Graph g = gen::cycle(6);
  Network net(g, 13);
  const std::vector<NodeId> sequence{4};
  const auto result = verify_path(net, sequence, 0);
  EXPECT_TRUE(result.verified);
}

}  // namespace
}  // namespace drw::lowerbound
