// WalkService + BatchScheduler: persistent-inventory serving semantics.
//
//   * exhaustion is absorbed by replenishment (targeted or in-walk
//     GET-MORE-WALKS), never by a second Phase 1;
//   * mixed-length, mixed-source batches return distribution-correct
//     destinations (chi-square against the markov.cpp power iteration),
//     including batches served entirely from a reused inventory;
//   * deferred-tail batching does not change the sampled law (and a
//     singleton batch reproduces the hand-driven engine bit-for-bit);
//   * recorded paths are valid walks; request validation throws.
#include "service/walk_service.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/mixing.hpp"
#include "apps/pagerank.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"
#include "walk_test_utils.hpp"

namespace drw::service {
namespace {

using congest::Network;
using core::Params;

ServiceConfig tiny_lambda_config(std::uint32_t lambda = 3) {
  ServiceConfig config;
  config.params = Params::paper();
  config.params.lambda_override = lambda;
  return config;
}

TEST(WalkService, ExhaustionTriggersReplenishmentNotReprepare) {
  // Keep serving heavy same-source traffic from a deliberately tiny pool:
  // the pool must be topped up (targeted runs and/or in-walk
  // GET-MORE-WALKS), and Phase 1 must run exactly once, on the first batch.
  const Graph g = gen::grid(4, 4);
  Network net(g, 77);
  WalkService service(net, exact_diameter(g), tiny_lambda_config());

  std::uint64_t engine_gmw = 0;
  for (int batch = 0; batch < 6; ++batch) {
    const BatchReport report = service.serve({
        WalkRequest{0, 48, 4}, WalkRequest{5, 48, 4},
    });
    EXPECT_EQ(report.full_prepare, batch == 0);
    engine_gmw += report.engine_gmw_calls;
    for (const RequestResult& r : report.results) {
      for (NodeId dest : r.destinations) ASSERT_LT(dest, g.node_count());
    }
  }
  const ServiceStats& life = service.lifetime();
  EXPECT_EQ(life.full_prepares, 1u);
  EXPECT_GT(life.replenishments + engine_gmw, 0u)
      << "exhaustion was never absorbed by replenishment";
  EXPECT_GT(life.replenishments, 0u)
      << "targeted (pre-batch) replenishment never fired";
  EXPECT_EQ(life.batches, 6u);
  EXPECT_EQ(life.walks, 48u);
}

TEST(WalkService, MixedLengthBatchesAreDistributionCorrect) {
  // One heterogeneous batch, three (source, length) groups; the law of each
  // group's destinations must match the exact Markov oracle. The SECOND
  // batch of every run is the one tested: it is served from the reused,
  // partially depleted, incrementally replenished inventory -- the serving
  // path the tentpole adds.
  Rng rng(123);
  const Graph g = gen::erdos_renyi_connected(12, 0.3, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const MarkovOracle oracle(g);
  struct Group {
    NodeId source;
    std::uint64_t length;
  };
  const std::vector<Group> groups = {{2, 10}, {0, 7}, {5, 16}};

  std::vector<std::vector<std::uint64_t>> counts(
      groups.size(), std::vector<std::uint64_t>(g.node_count(), 0));
  const int runs = 1200;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 61000 + run);
    WalkService service(net, diameter, tiny_lambda_config());
    std::vector<WalkRequest> batch;
    for (const Group& group : groups) {
      batch.push_back(WalkRequest{group.source, group.length, 2});
    }
    service.serve(batch);                       // batch 1: pays Phase 1
    const BatchReport second = service.serve(batch);  // batch 2: reuse path
    EXPECT_FALSE(second.full_prepare);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      for (NodeId dest : second.results[i].destinations) {
        ++counts[i][dest];
      }
    }
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto expected =
        oracle.distribution_after(groups[i].source, groups[i].length);
    const auto result = chi_square_test(counts[i], expected);
    EXPECT_GT(result.p_value, 1e-4)
        << "group " << i << ": chi2=" << result.statistic;
  }
}

TEST(WalkService, SingletonBatchMatchesHandDrivenEngine) {
  // One request, count 1: the service's deferred-tail path consumes node
  // coins in the same order as a hand-driven engine walk, so the same
  // network seed must reproduce the same destination exactly.
  const Graph g = gen::grid(5, 5);
  const std::uint32_t diameter = exact_diameter(g);
  for (int seed = 0; seed < 10; ++seed) {
    Network service_net(g, 900 + seed);
    WalkService service(service_net, diameter, tiny_lambda_config(5));
    const BatchReport report =
        service.serve({WalkRequest{3, 70, 1}});

    Network engine_net(g, 900 + seed);
    Params params = Params::paper();
    params.lambda_override = 5;
    core::StitchEngine engine(engine_net, params, diameter);
    engine.prepare(1, 70);
    const core::WalkResult reference = engine.walk(3, 70, 0);

    EXPECT_EQ(report.results[0].destinations[0], reference.destination)
        << "seed " << seed;
  }
}

TEST(WalkService, ConcurrentNaiveTailBatchIsDistributionCorrect) {
  // Forty walks too short to stitch (the planned lambda exceeds their
  // length) all run as ONE concurrent deferred-tail protocol; concurrency
  // must not bias the sampled law.
  const Graph g = gen::cycle(6);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 9;
  const auto expected = oracle.distribution_after(0, l);

  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 150;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 71000 + run);
    ServiceConfig config;  // formula lambda on k=40 walks: naive mode
    WalkService service(net, 3, config);
    const BatchReport report = service.serve({WalkRequest{0, l, 40}});
    EXPECT_TRUE(report.naive_mode);
    // Concurrent tails: far fewer rounds than 40 sequential l-step walks.
    EXPECT_LT(report.stats.rounds, 40u * l / 2);
    for (NodeId dest : report.results[0].destinations) ++counts[dest];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(WalkService, RecordedPathsAreValidWalks) {
  const Graph g = gen::torus(4, 4);
  Network net(g, 17);
  ServiceConfig config = tiny_lambda_config(4);
  config.enable_paths = true;
  WalkService service(net, exact_diameter(g), config);

  const BatchReport report = service.serve({
      WalkRequest{1, 33, 3, /*record_positions=*/true},
      WalkRequest{9, 50, 2, /*record_positions=*/false},
      WalkRequest{4, 0, 1, /*record_positions=*/true},  // zero-length walk
  });

  const RequestResult& recorded = report.results[0];
  ASSERT_EQ(recorded.paths.size(), 3u);
  for (std::uint32_t w = 0; w < 3; ++w) {
    const std::vector<NodeId>& path = recorded.paths[w];
    ASSERT_EQ(path.size(), 34u);
    EXPECT_EQ(path.front(), 1u);
    EXPECT_EQ(path.back(), recorded.destinations[w]);
    for (std::size_t i = 1; i < path.size(); ++i) {
      ASSERT_LT(path[i], g.node_count()) << "step " << i << " missing";
      EXPECT_TRUE(g.has_edge(path[i - 1], path[i]))
          << "walk " << w << " step " << i << " not an edge";
    }
  }
  EXPECT_TRUE(report.results[1].paths.empty());
  const RequestResult& zero = report.results[2];
  ASSERT_EQ(zero.paths.size(), 1u);
  EXPECT_EQ(zero.paths[0], std::vector<NodeId>{4});
  EXPECT_EQ(zero.destinations[0], 4u);
}

TEST(WalkService, SubmitValidationAndEmptyFlush) {
  const Graph g = gen::cycle(8);
  Network net(g, 2);
  WalkService service(net, 4, ServiceConfig{});

  // Invalid requests come back as structured per-request errors in their
  // submission slot (never throws, never engine involvement); the valid
  // request in the same batch is served normally.
  const BatchReport mixed = service.serve({
      WalkRequest{99, 5, 1},        // source out of range
      WalkRequest{0, 5, 1, true},   // paths not enabled
      WalkRequest{0, 5, 1},         // fine
  });
  EXPECT_EQ(mixed.requests, 3u);
  EXPECT_EQ(mixed.rejected, 2u);
  EXPECT_EQ(mixed.results[0].status, RequestStatus::kSourceOutOfRange);
  EXPECT_TRUE(mixed.results[0].destinations.empty());
  EXPECT_EQ(mixed.results[1].status, RequestStatus::kPathsDisabled);
  EXPECT_TRUE(mixed.results[2].ok());
  EXPECT_EQ(mixed.results[2].destinations.size(), 1u);

  const BatchReport empty = service.flush();
  EXPECT_EQ(empty.requests, 0u);
  EXPECT_EQ(empty.stats.rounds, 0u);

  // A zero-count request costs nothing but is acknowledged.
  const BatchReport zero = service.serve({WalkRequest{0, 5, 0}});
  EXPECT_EQ(zero.requests, 1u);
  EXPECT_EQ(zero.walks, 0u);
  EXPECT_TRUE(zero.results[0].ok());
  EXPECT_TRUE(zero.results[0].destinations.empty());

  // A zero-length request is `count` copies of the source, served without
  // touching the engine (no rounds, no messages).
  const BatchReport zlen = service.serve({WalkRequest{3, 0, 4}});
  EXPECT_EQ(zlen.walks, 4u);
  EXPECT_EQ(zlen.stats.rounds, 0u);
  EXPECT_EQ(zlen.results[0].destinations,
            std::vector<NodeId>({3, 3, 3, 3}));
}

TEST(WalkService, ThroughputCountersAreCoherent) {
  const Graph g = gen::grid(4, 4);
  Network net(g, 41);
  WalkService service(net, exact_diameter(g), tiny_lambda_config());
  const BatchReport report = service.serve({
      WalkRequest{0, 40, 3}, WalkRequest{7, 12, 2},
  });
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.walks, 5u);
  EXPECT_EQ(report.naive_rounds_estimate, 3u * 40 + 2u * 12);
  EXPECT_GT(report.stats.rounds, 0u);
  EXPECT_GE(report.inventory_hit_rate(), 0.0);
  EXPECT_LE(report.inventory_hit_rate(), 1.0);
  EXPECT_EQ(report.inventory_hits + report.engine_gmw_calls,
            report.stitches);
  EXPECT_DOUBLE_EQ(report.rounds_per_request(),
                   static_cast<double>(report.stats.rounds) / 2.0);
  // Per-request stats sum to at most the batch total (the shared tail run
  // is batch-level only).
  std::uint64_t direct = 0;
  for (const RequestResult& r : report.results) direct += r.stats.rounds;
  EXPECT_LE(direct, report.stats.rounds);
}

TEST(WalkService, MixingEstimatorRunsThroughService) {
  Rng rng(9);
  const Graph g = gen::random_regular(48, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const MarkovOracle oracle(g);
  const auto exact = oracle.mixing_time_standard(0, 4096);
  ASSERT_TRUE(exact.has_value());

  Network net(g, 4);
  WalkService service(net, diameter, ServiceConfig{});
  apps::MixingOptions options;
  options.samples = 160;
  const apps::MixingEstimate est =
      apps::estimate_mixing_time_via_service(service, 0, options);
  EXPECT_TRUE(est.converged);
  // Same tolerance shape as the direct estimator's tests: the estimate
  // brackets the exact tau within a constant factor.
  EXPECT_GE(est.tau, *exact / 8);
  EXPECT_LE(est.tau, *exact * 8);
  // The whole point of serving: the probes shared the inventory instead of
  // each paying Phase 1.
  EXPECT_GE(est.lengths_tested, 2u);
  EXPECT_LT(service.lifetime().full_prepares,
            static_cast<std::uint64_t>(est.lengths_tested));
}

TEST(WalkService, PersonalizedPagerankViaServiceMatchesReference) {
  Rng rng(15);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const NodeId source = 7;
  const double alpha = 0.2;

  Network net(g, 8);
  WalkService service(net, diameter, ServiceConfig{});
  apps::PageRankOptions options;
  options.alpha = alpha;
  const apps::PageRankResult result =
      apps::estimate_personalized_pagerank_via_service(service, source,
                                                       4000, options);
  const std::vector<double> reference =
      apps::personalized_pagerank_reference(g, source, alpha);
  EXPECT_LT(l1_distance(result.scores, reference), 0.15);
  EXPECT_EQ(result.total_tokens, 4000u);
}

}  // namespace
}  // namespace drw::service
