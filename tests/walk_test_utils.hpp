// Shared helpers for walk correctness tests: reconstructing a walk from a
// PositionTable and asserting it is a valid l-step walk on the graph.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/walk_state.hpp"
#include "graph/graph.hpp"

namespace drw::test {

/// Rebuilds walk `walk_id` from recorded positions and asserts: every step
/// 0..l present exactly once, consecutive steps adjacent, endpoints match.
inline void expect_valid_walk(const Graph& g,
                              const core::PositionTable& positions,
                              std::uint32_t walk_id, std::uint64_t l,
                              NodeId source, NodeId destination) {
  std::vector<NodeId> at(l + 1, kInvalidNode);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const core::WalkPosition& p : positions[v]) {
      if (p.walk != walk_id) continue;
      ASSERT_LE(p.step, l) << "step beyond walk length";
      EXPECT_EQ(at[p.step], kInvalidNode)
          << "step " << p.step << " recorded twice";
      at[p.step] = v;
    }
  }
  ASSERT_EQ(at[0], source);
  ASSERT_EQ(at[l], destination);
  for (std::uint64_t i = 1; i <= l; ++i) {
    ASSERT_NE(at[i], kInvalidNode) << "step " << i << " missing";
    EXPECT_TRUE(g.has_edge(at[i - 1], at[i]))
        << "steps " << i - 1 << "->" << i << " not an edge";
  }
}

}  // namespace drw::test
