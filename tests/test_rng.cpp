#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/stats.hpp"

namespace drw {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_in(3, 3), 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(Rng, UniformityChiSquare) {
  Rng rng(23);
  const std::uint64_t cells = 16;
  std::vector<std::uint64_t> counts(cells, 0);
  for (int i = 0; i < 160000; ++i) ++counts[rng.next_below(cells)];
  const std::vector<double> expected(cells, 1.0 / cells);
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (child1() == child2());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitKeyIsStableAndKeyed) {
  const Rng parent(37);
  Rng a1 = parent.split_key(5);
  Rng a2 = parent.split_key(5);
  Rng b = parent.split_key(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1(), a2());
  Rng a3 = parent.split_key(5);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a3() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<std::uint64_t> counts(4, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[2], 0u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / trials, 0.3, 0.015);
  EXPECT_NEAR(static_cast<double>(counts[3]) / trials, 0.6, 0.015);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ShuffleUniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should appear ~uniformly.
  Rng rng(47);
  std::map<std::array<int, 3>, std::uint64_t> hist;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.shuffle(v);
    ++hist[{v[0], v[1], v[2]}];
  }
  ASSERT_EQ(hist.size(), 6u);
  std::vector<std::uint64_t> counts;
  for (const auto& [perm, count] : hist) counts.push_back(count);
  const std::vector<double> expected(6, 1.0 / 6.0);
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4);
}

}  // namespace
}  // namespace drw
