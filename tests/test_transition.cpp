// Transition models beyond the simple walk (Section 1.3's generalization):
// lazy chain and Metropolis-Hastings toward the uniform distribution, both
// in the oracle and distributed (naive + stitched) -- including the key
// property that the stitched algorithm stays an exact sampler under every
// supported chain.
#include <gtest/gtest.h>

#include "apps/mixing.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "graph/transition.hpp"
#include "util/stats.hpp"

namespace drw {
namespace {

using congest::Network;

TEST(SampleStep, SimpleIsUniformOverNeighbors) {
  const Graph g = gen::star(5);
  Rng rng(3);
  std::vector<std::uint64_t> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    const auto slot = sample_step(rng, g, 0, TransitionModel::kSimple);
    ASSERT_LT(slot, 4u);
    ++counts[slot];
  }
  const std::vector<double> expected(4, 0.25);
  EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4);
}

TEST(SampleStep, LazyStaysHalfTheTime) {
  const Graph g = gen::cycle(6);
  Rng rng(5);
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    stays += (sample_step(rng, g, 0, TransitionModel::kLazy) ==
              kStaySlot);
  }
  EXPECT_NEAR(static_cast<double>(stays) / trials, 0.5, 0.02);
}

TEST(SampleStep, MetropolisAcceptsDowhillAlways) {
  // From a leaf of the star (degree 1) toward the hub (degree 4): accept
  // probability d(v)/d(u) = 1/4; the rest stays.
  const Graph g = gen::star(5);
  Rng rng(7);
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    stays += (sample_step(rng, g, 1, TransitionModel::kMetropolisUniform) ==
              kStaySlot);
  }
  EXPECT_NEAR(static_cast<double>(stays) / trials, 0.75, 0.02);
}

TEST(Oracle, MetropolisStationaryIsUniform) {
  const Graph g = gen::star(6);  // heavily degree-skewed
  const MarkovOracle oracle(g, TransitionModel::kMetropolisUniform);
  const auto pi = oracle.stationary();
  for (double p : pi) EXPECT_NEAR(p, 1.0 / 6.0, 1e-12);
  // And uniform really is a fixed point of the MH kernel.
  EXPECT_LT(l1_distance(pi, oracle.step(pi)), 1e-12);
}

TEST(Oracle, MetropolisRowsAreStochastic) {
  Rng rng(9);
  const Graph g = gen::random_geometric(20, 0.4, rng);
  const MarkovOracle oracle(g, TransitionModel::kMetropolisUniform);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<double> e(g.node_count(), 0.0);
    e[v] = 1.0;
    const auto row = oracle.step(e);
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, -1e-15);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Oracle, LazyChainMixesOnBipartiteGraphs) {
  const Graph g = gen::cycle(8);  // bipartite
  const MarkovOracle lazy(g, TransitionModel::kLazy);
  EXPECT_TRUE(lazy.mixing_time_standard(0, 10000).has_value());
  const MarkovOracle mh(g, TransitionModel::kMetropolisUniform);
  // MH on a regular graph keeps period... no: regular MH accepts always and
  // has no self-loops, so the even cycle stays periodic under MH.
  EXPECT_FALSE(mh.mixing_time_standard(0, 10000).has_value());
}

TEST(NaiveWalk, LazyEndpointDistributionExact) {
  const Graph g = gen::cycle(6);
  const MarkovOracle oracle(g, TransitionModel::kLazy);
  const std::uint64_t l = 6;
  const auto expected = oracle.distribution_after(0, l);
  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 40000 + run);
    ++counts[core::naive_random_walk(net, 0, l, TransitionModel::kLazy)
                 .destination];
  }
  EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4);
}

TEST(NaiveWalk, MetropolisEndpointDistributionExact) {
  const Graph g = gen::lollipop(4, 2);  // strong degree skew
  const MarkovOracle oracle(g, TransitionModel::kMetropolisUniform);
  const std::uint64_t l = 8;
  const auto expected = oracle.distribution_after(5, l);
  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 50000 + run);
    ++counts[core::naive_random_walk(
                 net, 5, l, TransitionModel::kMetropolisUniform)
                 .destination];
  }
  EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4);
}

TEST(NaiveWalk, LazyCostsOneRoundPerStep) {
  // Self-loop steps consume rounds (synchronous model) but no messages.
  const Graph g = gen::cycle(8);
  Network net(g, 11);
  const auto result =
      core::naive_random_walk(net, 0, 100, TransitionModel::kLazy);
  EXPECT_EQ(result.stats.rounds, 100u);
  EXPECT_LT(result.stats.messages, 100u);  // ~half the steps are stays
  EXPECT_GT(result.stats.messages, 20u);
}

struct StitchedModelCase {
  const char* name;
  TransitionModel model;
};

class StitchedModel : public ::testing::TestWithParam<int> {};

TEST_P(StitchedModel, StitchedWalkStaysAnExactSampler) {
  const TransitionModel model =
      GetParam() == 0 ? TransitionModel::kLazy
                      : TransitionModel::kMetropolisUniform;
  const Graph g = gen::lollipop(4, 2);
  const MarkovOracle oracle(g, model);
  const std::uint64_t l = 9;
  const auto expected = oracle.distribution_after(0, l);

  core::Params params = core::Params::paper();
  params.transition = model;
  params.lambda_override = 3;  // force stitching + GET-MORE-WALKS
  const std::uint32_t diameter = exact_diameter(g);

  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 60000 + run);
    ++counts[core::single_random_walk(net, 0, l, params, diameter)
                 .result.destination];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

INSTANTIATE_TEST_SUITE_P(Models, StitchedModel, ::testing::Range(0, 2));

TEST(StitchedModel, RegenerationRequiresSimpleWalk) {
  const Graph g = gen::cycle(5);
  Network net(g, 1);
  core::Params params = core::Params::paper();
  params.transition = TransitionModel::kLazy;
  params.record_trajectories = true;
  EXPECT_THROW(core::StitchEngine(net, params, 2), std::invalid_argument);
}

TEST(Mixing, LazyEstimatorWorksOnBipartiteGraphs) {
  // The headline payoff: with the lazy chain the decentralized estimator
  // converges on an even (bipartite) cycle, where the simple walk never
  // mixes at all.
  const Graph g = gen::cycle(12);
  const MarkovOracle oracle(g, TransitionModel::kLazy);
  const auto exact = oracle.mixing_time_standard(0, 100000);
  ASSERT_TRUE(exact.has_value());

  core::Params params = core::Params::paper();
  params.transition = TransitionModel::kLazy;
  Network net(g, 13);
  apps::MixingOptions options;
  options.samples = 600;
  const auto est = apps::estimate_mixing_time(net, 0, params, 6, options);
  ASSERT_TRUE(est.converged);
  EXPECT_GE(est.tau, *exact / 6) << "exact=" << *exact;
  EXPECT_LE(est.tau, *exact * 6) << "exact=" << *exact;
}

TEST(Mixing, MetropolisEstimatorUsesUniformTarget) {
  // On a degree-skewed graph the MH chain targets uniform; the estimator
  // must converge against that target (all nodes share one bucket, so the
  // collision statistic carries the test).
  const Graph g = gen::lollipop(5, 3);
  const MarkovOracle oracle(g, TransitionModel::kMetropolisUniform);
  const auto exact = oracle.mixing_time_standard(0, 100000);
  ASSERT_TRUE(exact.has_value());

  core::Params params = core::Params::paper();
  params.transition = TransitionModel::kMetropolisUniform;
  Network net(g, 17);
  apps::MixingOptions options;
  options.samples = 500;
  const auto est = apps::estimate_mixing_time(
      net, 0, params, exact_diameter(g), options);
  ASSERT_TRUE(est.converged);
  EXPECT_GE(est.tau, *exact / 8) << "exact=" << *exact;
  EXPECT_LE(est.tau, *exact * 8) << "exact=" << *exact;
}

}  // namespace
}  // namespace drw
