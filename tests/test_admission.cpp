// AdmissionQueue: DRR fairness, queue-cap and deadline rejection, and the
// determinism contract -- the admitted order is a pure function of the
// queue contents, and replaying it through a fresh WalkService reproduces
// the served results bit for bit.
#include "service/admission.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/walk_service.hpp"

namespace drw::service {
namespace {

PendingRequest make(std::uint64_t flow, NodeId source, std::uint64_t length,
                    std::uint32_t count = 1, std::uint32_t class_id = 0,
                    double arrival_ms = 0.0, std::uint32_t deadline_ms = 0) {
  PendingRequest p;
  p.request = WalkRequest{source, length, count, false};
  p.user_source = source;
  p.flow = flow;
  p.class_id = class_id;
  p.arrival_ms = arrival_ms;
  p.deadline_ms = deadline_ms;
  return p;
}

TEST(AdmissionQueue, QueueCapRejectsOverflowInArrivalOrder) {
  AdmissionConfig config;
  config.queue_cap = 3;
  AdmissionQueue queue(config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.enqueue(make(0, 0, 4)), RequestStatus::kOk);
  }
  EXPECT_EQ(queue.enqueue(make(0, 0, 4)), RequestStatus::kQueueFull);
  EXPECT_EQ(queue.enqueue(make(1, 1, 4)), RequestStatus::kQueueFull);
  EXPECT_EQ(queue.depth(), 3u);
  // Rejected arrivals left no residue: the next drain admits exactly the
  // three queued requests with consecutive indices.
  const auto batch = queue.drain(0.0, nullptr);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].admission_index, i);
  }
}

TEST(AdmissionQueue, DrrKeepsLightFlowLiveUnderFlood) {
  // A flood flow (20 big requests, enqueued FIRST) must not starve a light
  // flow's 5 tiny requests: under DRR every drain cycle credits the light
  // flow its quantum, so all light work admits in the very first batch.
  AdmissionConfig config;
  config.quantum = 8;
  config.max_batch_cost = 64;
  AdmissionQueue queue(config);
  const std::uint32_t flood = queue.intern_class("flood");
  const std::uint32_t light = queue.intern_class("light");
  queue.set_class_quantum(flood, 32);
  queue.set_class_quantum(light, 8);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(queue.enqueue(make(1, 0, 32, 1, flood)), RequestStatus::kOk);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.enqueue(make(2, 1, 1, 1, light)), RequestStatus::kOk);
  }
  const auto batch = queue.drain(0.0, nullptr);
  std::size_t light_admitted = 0;
  for (const PendingRequest& p : batch) {
    if (p.class_id == light) ++light_admitted;
  }
  EXPECT_EQ(light_admitted, 5u)
      << "light flow starved behind the flood backlog";
  // The flood still progresses -- DRR is fair, not priority preemption.
  EXPECT_GT(batch.size(), light_admitted);
}

TEST(AdmissionQueue, FifoBaselineStarvesTheLightFlow) {
  // The control experiment for the test above: strict arrival order makes
  // the light request wait behind the whole flood backlog.
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kFifo;
  config.max_batch_cost = 64;
  AdmissionQueue queue(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(queue.enqueue(make(1, 0, 32)), RequestStatus::kOk);
  }
  ASSERT_EQ(queue.enqueue(make(2, 1, 1)), RequestStatus::kOk);
  const auto batch = queue.drain(0.0, nullptr);
  for (const PendingRequest& p : batch) {
    EXPECT_EQ(p.flow, 1u) << "FIFO admitted the late light request early";
  }
  // And FIFO order is the global arrival order.
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_LT(batch[i - 1].seq, batch[i].seq);
  }
}

TEST(AdmissionQueue, DeadlineExpiresAtDrainWithoutConsumingIndices) {
  AdmissionQueue queue;
  ASSERT_EQ(queue.enqueue(make(0, 0, 4, 1, 0, /*arrival_ms=*/0.0,
                               /*deadline_ms=*/10)),
            RequestStatus::kOk);
  ASSERT_EQ(queue.enqueue(make(0, 1, 4)), RequestStatus::kOk);
  std::vector<AdmissionReject> rejects;
  const auto batch = queue.drain(/*now_ms=*/50.0, &rejects);
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].status, RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(rejects[0].request.user_source, 0u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].user_source, 1u);
  // The expired request never held an admission index.
  EXPECT_EQ(batch[0].admission_index, 0u);
}

TEST(AdmissionQueue, MinBatchRequestsActsAsLaneFloor) {
  AdmissionConfig config;
  config.max_batch_cost = 1;  // cost-full after the first request...
  config.min_batch_requests = 4;  // ...but the lane floor keeps draining
  AdmissionQueue queue(config);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.enqueue(make(0, 0, 8)), RequestStatus::kOk);
  }
  EXPECT_EQ(queue.drain(0.0, nullptr).size(), 4u);
  // The remainder (below the floor) still drains -- shutdown must not hang.
  EXPECT_EQ(queue.drain(0.0, nullptr).size(), 2u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueue, AdmittedOrderIsAPureFunctionOfQueueContents) {
  auto fill = [](AdmissionQueue& queue) {
    const std::uint32_t heavy = queue.intern_class("heavy");
    queue.set_class_quantum(heavy, 4);
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(queue.enqueue(make(3, static_cast<NodeId>(i), 16, 1, heavy)),
                RequestStatus::kOk);
      ASSERT_EQ(queue.enqueue(make(1, static_cast<NodeId>(10 + i), 2)),
                RequestStatus::kOk);
    }
  };
  AdmissionConfig config;
  config.max_batch_cost = 24;
  AdmissionQueue a(config);
  AdmissionQueue b(config);
  fill(a);
  fill(b);
  for (;;) {
    const auto batch_a = a.drain(0.0, nullptr);
    const auto batch_b = b.drain(0.0, nullptr);
    ASSERT_EQ(batch_a.size(), batch_b.size());
    if (batch_a.empty()) break;
    for (std::size_t i = 0; i < batch_a.size(); ++i) {
      EXPECT_EQ(batch_a[i].seq, batch_b[i].seq);
      EXPECT_EQ(batch_a[i].admission_index, batch_b[i].admission_index);
    }
  }
}

TEST(AdmissionQueue, ReplayingTheAdmittedOrderReproducesServedResults) {
  // The server's determinism contract end to end (minus the sockets):
  // drain an admitted order + batch boundaries out of one queue, serve it
  // through two independent WalkServices on identical networks, and the
  // destinations must match walk for walk.
  AdmissionConfig config;
  config.max_batch_cost = 48;
  AdmissionQueue queue(config);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.enqueue(make(1, static_cast<NodeId>(i), 24, 2)),
              RequestStatus::kOk);
    ASSERT_EQ(queue.enqueue(make(2, static_cast<NodeId>(8 + i), 8, 1)),
              RequestStatus::kOk);
  }
  std::vector<std::vector<WalkRequest>> batches;
  for (;;) {
    const auto batch = queue.drain(0.0, nullptr);
    if (batch.empty()) break;
    std::vector<WalkRequest> requests;
    for (const PendingRequest& p : batch) requests.push_back(p.request);
    batches.push_back(std::move(requests));
  }
  ASSERT_GT(batches.size(), 1u);

  const Graph g = gen::torus(6, 6);
  auto serve_all = [&](std::vector<std::vector<NodeId>>& out) {
    congest::Network net(g, 1234);
    WalkService service(net, exact_diameter(g));
    for (const auto& requests : batches) {
      const BatchReport report = service.serve(requests);
      for (const RequestResult& r : report.results) {
        ASSERT_TRUE(r.ok());
        out.push_back(r.destinations);
      }
    }
  };
  std::vector<std::vector<NodeId>> first;
  std::vector<std::vector<NodeId>> second;
  serve_all(first);
  serve_all(second);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "request " << i;
  }
}

TEST(AdmissionQueue, RequestCostSaturatesInsteadOfWrapping) {
  // count * length must never wrap to a tiny cost: a flood client could
  // otherwise slip arbitrarily large requests past the DRR accounting.
  WalkRequest overflow;
  overflow.count = 0xffffffffu;
  overflow.length = std::uint64_t{1} << 33;  // product = 2^65-ish, wraps
  EXPECT_EQ(request_cost(overflow),
            std::numeric_limits<std::uint64_t>::max());

  // enqueue clamps the stored cost to the batch budget, so the request
  // still admits after a bounded number of deficit cycles and fills one
  // batch by itself.
  AdmissionConfig config;
  config.quantum = 8;
  config.max_batch_cost = 64;
  AdmissionQueue queue(config);
  PendingRequest p = make(0, 0, 0);
  p.request = overflow;
  ASSERT_EQ(queue.enqueue(std::move(p)), RequestStatus::kOk);
  ASSERT_EQ(queue.enqueue(make(1, 1, 4)), RequestStatus::kOk);
  // The light flow admits on the first deficit cycle; the giant has not
  // accrued enough deficit yet, so the first batch closes without it.
  const auto first = queue.drain(0.0, nullptr);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].flow, 1u);
  EXPECT_EQ(first[0].cost, 4u);
  // The clamped giant then admits after max_batch_cost/quantum deficit
  // cycles -- bounded, not ~2^64/quantum -- and fills a batch by itself.
  const auto second = queue.drain(0.0, nullptr);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].flow, 0u);
  EXPECT_EQ(second[0].cost, config.max_batch_cost);
}

TEST(AdmissionQueue, ReleaseFlowDropsStateOnceDrained) {
  AdmissionQueue queue;
  ASSERT_EQ(queue.enqueue(make(3, 0, 4)), RequestStatus::kOk);
  ASSERT_EQ(queue.enqueue(make(5, 1, 4)), RequestStatus::kOk);
  EXPECT_EQ(queue.flow_count(), 2u);

  // Releasing a backlogged flow keeps its queued requests admissible (the
  // admitted-order log must replay), but the flow leaves the table once
  // its backlog drains.
  queue.release_flow(3);
  EXPECT_EQ(queue.flow_count(), 2u);
  const auto batch = queue.drain(0.0, nullptr);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].flow, 3u);
  EXPECT_EQ(queue.flow_count(), 1u);

  // Releasing an idle flow erases it immediately; unknown flows are a
  // no-op.
  queue.release_flow(5);
  queue.release_flow(999);
  EXPECT_EQ(queue.flow_count(), 0u);
}

TEST(AdmissionQueue, CloseStopsEnqueuesButDrainsRemainder) {
  AdmissionQueue queue;
  ASSERT_EQ(queue.enqueue(make(0, 0, 4)), RequestStatus::kOk);
  queue.close();
  EXPECT_EQ(queue.enqueue(make(0, 1, 4)), RequestStatus::kQueueFull);
  EXPECT_TRUE(queue.wait_for_work());  // still drainable
  EXPECT_EQ(queue.drain(0.0, nullptr).size(), 1u);
  EXPECT_FALSE(queue.wait_for_work());  // closed and empty: serving exits
}

}  // namespace
}  // namespace drw::service
