// Lane isolation of the multi-protocol round multiplexer (tier-1):
//
//   * Protocol level: a mux of N independent storm lanes must produce, for
//     every lane, bit-identical protocol state (delivery-trace digests) and
//     per-lane round/message counts as running that lane ALONE in its own
//     Network::run (as a mux of one, with the same lane streams) -- on
//     expander, star and power-law topologies, at threads {1, 2, 8} under
//     both shard partitions (the TSan CI leg re-runs this binary under the
//     node-count partition as well).
//   * Stitch level: BatchScheduler's kMux execution (groups of
//     non-conflicting walk traversals in one multiplexed run) must be
//     bit-identical to kSerial (the SAME conflict-aware schedule, one lane
//     at a time): same destinations, same recorded paths, same per-request
//     round/message stats -- across thread counts and partitions.
//   * Conflict rule: units forced onto the same connector must serialize
//     (mux_conflicts > 0) and still agree with the serial execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "congest/mux.hpp"
#include "congest/network.hpp"
#include "core/params.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "service/batch_scheduler.hpp"

namespace drw {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};
const congest::Partition kPartitions[] = {congest::Partition::kNodeCount,
                                          congest::Partition::kEdgeWeighted};

std::string describe(unsigned threads, congest::Partition partition) {
  return "threads=" + std::to_string(threads) + " partition=" +
         (partition == congest::Partition::kEdgeWeighted ? "edges" : "nodes");
}

/// Rng-consuming token storm whose per-node digest is sensitive to
/// delivery ORDER, rng consumption and round numbers -- any lane bleed
/// (messages, wakes, rng draws) shows up as a digest mismatch.
class DigestStorm final : public congest::Protocol {
 public:
  DigestStorm(std::size_t n, std::uint32_t seeds, std::uint32_t ttl)
      : sum_(n), seeds_(seeds), ttl_(ttl) {}

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      for (std::uint32_t t = 0; t < seeds_; ++t) {
        hop(ctx, ttl_ + ctx.rng().next_below(4));
      }
      return;
    }
    for (const congest::Delivery& d : ctx.inbox()) {
      sum_[v] = sum_[v] * 1099511628211ull ^
                ((ctx.round() << 32) ^
                 (static_cast<std::uint64_t>(d.from) << 8) ^ d.msg.f[0]);
      if (d.msg.f[0] > 0) hop(ctx, d.msg.f[0] - 1);
    }
  }

  std::uint64_t digest() const {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint64_t s : sum_) h = (h ^ s) * 1099511628211ull;
    return h;
  }

 private:
  void hop(congest::Context& ctx, std::uint64_t ttl) {
    // Occasionally duplicate so per-(edge, lane) backlogs actually queue.
    const int copies = ctx.rng().next_below(6) == 0 ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ctx.send(
          static_cast<std::uint32_t>(ctx.rng().next_below(ctx.degree())),
          congest::Message{1, {ttl, 0, 0, 0}});
    }
  }

  std::vector<std::uint64_t> sum_;
  std::uint32_t seeds_;
  std::uint32_t ttl_;
};

struct LaneOutcome {
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

TEST(Mux, LanesBitIdenticalToSoloRuns) {
  constexpr std::uint64_t kSeed = 2024;
  constexpr unsigned kLanes = 5;
  Rng pl_rng(42);
  struct Family {
    const char* name;
    Graph graph;
  };
  const Family families[] = {
      {"expander", gen::random_regular(128, 4, pl_rng)},
      {"star", gen::star(96)},
      {"power_law", gen::power_law(96, 3, pl_rng)},
  };

  for (const Family& family : families) {
    const std::size_t n = family.graph.node_count();
    // Per-lane streams are a function of (seed, lane key) only, so solo
    // and muxed executions draw identically by construction.
    std::vector<std::vector<Rng>> lane_rngs;
    for (unsigned l = 0; l < kLanes; ++l) {
      lane_rngs.push_back(
          congest::ProtocolMux::derive_lane_rngs(kSeed, l, n));
    }

    // Baseline: every lane alone, in its own network + run (mux of one).
    std::vector<LaneOutcome> solo(kLanes);
    for (unsigned l = 0; l < kLanes; ++l) {
      congest::Network net(family.graph, kSeed);
      DigestStorm storm(n, 1 + l % 3, 12 + 4 * l);
      congest::ProtocolMux mux(n);
      std::vector<Rng> rngs = lane_rngs[l];  // fresh copy: streams advance
      mux.add_lane(storm, &rngs);
      const congest::RunStats stats = net.run_multiplexed(mux, 1);
      solo[l].digest = storm.digest();
      solo[l].rounds = stats.rounds;
      solo[l].messages = stats.messages;
      EXPECT_EQ(mux.lane_stats(0).rounds, stats.rounds) << family.name;
      EXPECT_EQ(mux.lane_stats(0).messages, stats.messages) << family.name;
    }

    for (const unsigned threads : kThreadCounts) {
      for (const congest::Partition partition : kPartitions) {
        congest::Network net(family.graph, kSeed);
        net.set_threads(threads);
        net.set_partition(partition);
        std::vector<std::unique_ptr<DigestStorm>> storms;
        std::vector<std::vector<Rng>> rngs;
        congest::ProtocolMux mux(n);
        for (unsigned l = 0; l < kLanes; ++l) {
          storms.push_back(
              std::make_unique<DigestStorm>(n, 1 + l % 3, 12 + 4 * l));
          rngs.push_back(lane_rngs[l]);
        }
        for (unsigned l = 0; l < kLanes; ++l) {
          mux.add_lane(*storms[l], &rngs[l]);
        }
        const congest::RunStats stats = net.run_multiplexed(mux, kLanes);
        std::uint64_t max_lane_rounds = 0;
        std::uint64_t lane_messages = 0;
        for (unsigned l = 0; l < kLanes; ++l) {
          EXPECT_EQ(storms[l]->digest(), solo[l].digest)
              << family.name << " lane " << l << " "
              << describe(threads, partition);
          EXPECT_EQ(mux.lane_stats(l).rounds, solo[l].rounds)
              << family.name << " lane " << l << " "
              << describe(threads, partition);
          EXPECT_EQ(mux.lane_stats(l).messages, solo[l].messages)
              << family.name << " lane " << l << " "
              << describe(threads, partition);
          max_lane_rounds = std::max(max_lane_rounds, solo[l].rounds);
          lane_messages += solo[l].messages;
        }
        // The whole point: the mux run's network rounds track the WIDEST
        // lane, not the sum, while total deliveries are conserved.
        EXPECT_GE(stats.rounds, max_lane_rounds)
            << family.name << " " << describe(threads, partition);
        std::uint64_t solo_round_sum = 0;
        for (const LaneOutcome& o : solo) solo_round_sum += o.rounds;
        EXPECT_LT(stats.rounds, solo_round_sum)
            << family.name << " " << describe(threads, partition);
        EXPECT_EQ(stats.messages, lane_messages)
            << family.name << " " << describe(threads, partition);
      }
    }
  }
}

// The zero-copy lane-inbox table is memory-gated: a run over budget falls
// back to the mixed-inbox copying demux. The two delivery paths must be
// bit-identical. The graph is sized so the O(n x lanes) span table
// (45000 slots) exceeds a 1 MiB budget -- the smallest non-auto setting --
// while the default budget (64 MiB) keeps the zero-copy path on.
TEST(Mux, LaneInboxBudgetFallbackIsBitIdentical) {
  constexpr std::uint64_t kSeed = 6060;
  constexpr unsigned kLanes = 5;
  Rng graph_rng(77);
  const Graph g = gen::random_regular(9000, 4, graph_rng);
  const std::size_t n = g.node_count();
  ASSERT_GT(n * kLanes * sizeof(std::vector<congest::Delivery>),
            std::size_t{1} << 20)
      << "graph too small to push the span table over a 1 MiB budget";

  std::vector<std::vector<Rng>> lane_rngs;
  for (unsigned l = 0; l < kLanes; ++l) {
    lane_rngs.push_back(congest::ProtocolMux::derive_lane_rngs(kSeed, l, n));
  }

  const auto run_with_budget = [&](std::uint32_t budget_mb, unsigned threads,
                                   std::vector<LaneOutcome>* out) {
    congest::Network net(g, kSeed);
    net.set_threads(threads);
    net.set_lane_inbox_budget_mb(budget_mb);
    std::vector<std::unique_ptr<DigestStorm>> storms;
    std::vector<std::vector<Rng>> rngs;
    congest::ProtocolMux mux(n);
    for (unsigned l = 0; l < kLanes; ++l) {
      storms.push_back(std::make_unique<DigestStorm>(n, 1 + l % 2, 10));
      rngs.push_back(lane_rngs[l]);
    }
    for (unsigned l = 0; l < kLanes; ++l) mux.add_lane(*storms[l], &rngs[l]);
    net.run_multiplexed(mux, kLanes);
    out->clear();
    for (unsigned l = 0; l < kLanes; ++l) {
      out->push_back({storms[l]->digest(), mux.lane_stats(l).rounds,
                      mux.lane_stats(l).messages});
    }
  };

  std::vector<LaneOutcome> zero_copy;
  run_with_budget(/*budget_mb=*/0, /*threads=*/1, &zero_copy);  // 0 = default
  for (const unsigned threads : kThreadCounts) {
    std::vector<LaneOutcome> fallback;
    run_with_budget(/*budget_mb=*/1, threads, &fallback);
    for (unsigned l = 0; l < kLanes; ++l) {
      EXPECT_EQ(fallback[l].digest, zero_copy[l].digest)
          << "lane " << l << " threads=" << threads;
      EXPECT_EQ(fallback[l].rounds, zero_copy[l].rounds)
          << "lane " << l << " threads=" << threads;
      EXPECT_EQ(fallback[l].messages, zero_copy[l].messages)
          << "lane " << l << " threads=" << threads;
    }
  }
}

TEST(Mux, TracingOnDoesNotPerturbLanes) {
  // The obs invariant at the mux layer: per-lane digests and run totals
  // must be bit-identical with tracing on or off, at every mux width x
  // thread count x partition. Baseline is the UNTRACED 1-thread run.
  constexpr std::uint64_t kSeed = 7331;
  Rng graph_rng(77);
  const Graph g = gen::random_regular(128, 4, graph_rng);
  const std::size_t n = g.node_count();
  const unsigned kWidths[] = {1, 4};
  const std::string trace_path = ::testing::TempDir() + "obs_mux_trace.json";

  for (const unsigned width : kWidths) {
    std::vector<std::vector<Rng>> lane_rngs;
    for (unsigned l = 0; l < width; ++l) {
      lane_rngs.push_back(
          congest::ProtocolMux::derive_lane_rngs(kSeed, l, n));
    }

    auto run_once = [&](unsigned threads, congest::Partition partition,
                        bool traced) {
      if (traced) obs::Tracer::instance().enable(trace_path);
      congest::Network net(g, kSeed);
      net.set_threads(threads);
      net.set_partition(partition);
      std::vector<std::unique_ptr<DigestStorm>> storms;
      std::vector<std::vector<Rng>> rngs;
      congest::ProtocolMux mux(n);
      for (unsigned l = 0; l < width; ++l) {
        storms.push_back(
            std::make_unique<DigestStorm>(n, 1 + l % 3, 10 + 3 * l));
        rngs.push_back(lane_rngs[l]);
      }
      for (unsigned l = 0; l < width; ++l) mux.add_lane(*storms[l], &rngs[l]);
      const congest::RunStats stats = net.run_multiplexed(mux, width);
      if (traced) {
        obs::Tracer::instance().disable();
        obs::Tracer::instance().flush();
      }
      std::vector<std::uint64_t> digests;
      for (const auto& s : storms) digests.push_back(s->digest());
      return std::make_tuple(std::move(digests), stats.rounds,
                             stats.messages);
    };

    const auto baseline =
        run_once(1, congest::Partition::kEdgeWeighted, /*traced=*/false);
    for (const unsigned threads : kThreadCounts) {
      for (const congest::Partition partition : kPartitions) {
        const auto traced = run_once(threads, partition, /*traced=*/true);
        EXPECT_EQ(traced, baseline)
            << "width=" << width << " traced "
            << describe(threads, partition);
      }
    }
  }
}

// ---------------------------------------------------------------- stitching

struct BatchOutcome {
  std::vector<std::vector<NodeId>> destinations;           // per request
  std::vector<std::vector<std::vector<NodeId>>> paths;     // per request
  std::vector<std::pair<std::uint64_t, std::uint64_t>> request_stats;
  std::uint64_t stitches = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t groups = 0;
  std::uint64_t batch_rounds = 0;
};

BatchOutcome run_batch(const Graph& g, std::uint32_t diameter,
                       const std::vector<service::WalkRequest>& requests,
                       service::MuxMode mode, unsigned threads,
                       congest::Partition partition, bool record) {
  congest::Network net(g, 9099);
  net.set_threads(threads);
  net.set_partition(partition);
  core::Params params = core::Params::paper();
  params.record_trajectories = record;
  core::StitchEngine engine(net, params, diameter);
  std::uint64_t units = 0;
  std::uint64_t l_max = 0;
  for (const service::WalkRequest& r : requests) {
    units += r.count;
    l_max = std::max(l_max, r.length);
  }
  engine.prepare(units, l_max);
  EXPECT_FALSE(engine.naive_mode());

  service::MuxOptions options;
  options.mode = mode;
  options.width = 6;
  service::BatchScheduler scheduler(engine);
  const service::BatchScheduler::Outcome out =
      scheduler.run(requests, 100, options);

  BatchOutcome result;
  for (const service::RequestResult& r : out.results) {
    result.destinations.push_back(r.destinations);
    result.paths.push_back(r.paths);
    result.request_stats.emplace_back(r.stats.rounds, r.stats.messages);
  }
  result.stitches = out.counters.stitches;
  result.conflicts = out.mux_conflicts;
  result.groups = out.mux_groups;
  result.batch_rounds = out.stats.rounds;
  return result;
}

TEST(Mux, StitchBatchBitIdenticalToSerialSchedule) {
  Rng graph_rng(31337);
  const Graph g = gen::random_regular(192, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  std::vector<service::WalkRequest> requests;
  Rng workload_rng(88);
  for (int i = 0; i < 6; ++i) {
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>(workload_rng.next_below(g.node_count())),
        1024u << (i % 2), 1, true});
  }

  const BatchOutcome serial =
      run_batch(g, diameter, requests, service::MuxMode::kSerial, 1,
                congest::Partition::kEdgeWeighted, true);
  EXPECT_GT(serial.stitches, 0u) << "workload must actually stitch";

  for (const unsigned threads : kThreadCounts) {
    for (const congest::Partition partition : kPartitions) {
      const BatchOutcome muxed =
          run_batch(g, diameter, requests, service::MuxMode::kMux, threads,
                    partition, true);
      EXPECT_EQ(muxed.destinations, serial.destinations)
          << describe(threads, partition);
      EXPECT_EQ(muxed.paths, serial.paths) << describe(threads, partition);
      EXPECT_EQ(muxed.request_stats, serial.request_stats)
          << describe(threads, partition);
      EXPECT_EQ(muxed.stitches, serial.stitches)
          << describe(threads, partition);
      // Groups and conflicts are schedule properties, identical by
      // construction; batch rounds must shrink (shared waves).
      EXPECT_EQ(muxed.groups, serial.groups) << describe(threads, partition);
      EXPECT_EQ(muxed.conflicts, serial.conflicts)
          << describe(threads, partition);
      EXPECT_LT(muxed.batch_rounds, serial.batch_rounds)
          << describe(threads, partition);
    }
  }
}

TEST(Mux, ForcedConflictSerializes) {
  Rng graph_rng(4242);
  const Graph g = gen::random_regular(128, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  // Every walk starts at the SAME source: the first wave's traversals all
  // contend for node 7's token pool, so the conflict rule must admit one
  // lane and defer the rest.
  std::vector<service::WalkRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(service::WalkRequest{7, 1024, 1, false});
  }

  const BatchOutcome serial =
      run_batch(g, diameter, requests, service::MuxMode::kSerial, 1,
                congest::Partition::kEdgeWeighted, false);
  const BatchOutcome muxed =
      run_batch(g, diameter, requests, service::MuxMode::kMux, 2,
                congest::Partition::kEdgeWeighted, false);
  EXPECT_GT(serial.stitches, 0u);
  EXPECT_GT(muxed.conflicts, 0u) << "same-connector units must serialize";
  EXPECT_EQ(muxed.destinations, serial.destinations);
  EXPECT_EQ(muxed.request_stats, serial.request_stats);
}

}  // namespace
}  // namespace drw
