#include "congest/primitives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"

namespace drw::congest {
namespace {

TEST(BfsTreeProtocol, DepthsMatchBfsDistances) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(50, 0.08, rng);
  Network net(g, 7);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 5, stats);
  const auto dist = bfs_distances(g, 5);
  EXPECT_EQ(tree.root, 5u);
  EXPECT_EQ(tree.parent[5], 5u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[v], dist[v]) << "node " << v;
    if (v != 5) {
      EXPECT_TRUE(g.has_edge(v, tree.parent[v]));
      EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
    }
  }
  EXPECT_EQ(tree.height, eccentricity(g, 5));
  // BFS flooding takes ~height rounds (+1 for the join notifications).
  EXPECT_GE(stats.rounds, tree.height);
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(tree.height) + 2);
}

TEST(BfsTreeProtocol, ChildrenAreConsistent) {
  const Graph g = gen::grid(5, 5);
  Network net(g, 9);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  std::size_t child_links = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId c : tree.children[v]) {
      EXPECT_EQ(tree.parent[c], v);
      ++child_links;
    }
  }
  EXPECT_EQ(child_links, g.node_count() - 1);
}

TEST(BroadcastProtocol, ReachesEveryNodeInHeightRounds) {
  const Graph g = gen::binary_tree(31);
  Network net(g, 11);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  std::vector<int> received(g.node_count(), 0);
  BroadcastProtocol broadcast(
      tree, Message{0, {42, 0, 0, 0}},
      [&](NodeId v, const Message& m) {
        EXPECT_EQ(m.f[0], 42u);
        ++received[v];
      });
  const RunStats bstats = net.run(broadcast);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(received[v], 1);
  EXPECT_EQ(bstats.rounds, tree.height);  // one round per tree level
  EXPECT_EQ(bstats.messages, g.node_count() - 1);
}

TEST(ConvergecastSum, ComputesTotal) {
  Rng rng(5);
  const Graph g = gen::random_geometric(60, 0.25, rng);
  Network net(g, 13);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 3, stats);
  std::vector<std::uint64_t> values(g.node_count());
  std::iota(values.begin(), values.end(), 1);  // 1..n
  const std::uint64_t expected =
      g.node_count() * (g.node_count() + 1) / 2;
  ConvergecastSum sum(tree, values);
  const RunStats cstats = net.run(sum);
  EXPECT_EQ(sum.root_sum(), expected);
  EXPECT_LE(cstats.rounds, static_cast<std::uint64_t>(tree.height) + 1);
  EXPECT_EQ(cstats.messages, g.node_count() - 1);
}

TEST(ConvergecastSum, SingletonTreeNeedsNoRounds) {
  const Graph g = gen::path(2);
  Network net(g, 1);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  ConvergecastSum sum(tree, {7, 5});
  net.run(sum);
  EXPECT_EQ(sum.root_sum(), 12u);
}

TEST(PipelinedVectorUpcast, SumsVectorsInHeightPlusKRounds) {
  const Graph g = gen::path(20);
  Network net(g, 17);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  const std::size_t k = 12;
  std::vector<std::vector<std::uint64_t>> values(
      g.node_count(), std::vector<std::uint64_t>(k));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::size_t i = 0; i < k; ++i) values[v][i] = v + i;
  }
  PipelinedVectorUpcast upcast(tree, values);
  const RunStats ustats = net.run(upcast);
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t expected = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) expected += v + i;
    EXPECT_EQ(upcast.root_vector()[i], expected) << "entry " << i;
  }
  // Pipelining: O(height + k), not O(height * k).
  EXPECT_LE(ustats.rounds, tree.height + k + 2);
  EXPECT_GE(ustats.rounds, std::max<std::uint64_t>(tree.height, k));
}

TEST(PipelinedVectorUpcast, RejectsRaggedInput) {
  const Graph g = gen::path(3);
  Network net(g, 1);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  std::vector<std::vector<std::uint64_t>> ragged{{1, 2}, {1}, {1, 2}};
  EXPECT_THROW(PipelinedVectorUpcast(tree, ragged), std::invalid_argument);
}

TEST(PipelinedListUpcast, CollectsEveryRecordAtRoot) {
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(30, 0.15, rng);
  Network net(g, 19);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 4, stats);
  std::vector<std::vector<PipelinedListUpcast::Record>> records(
      g.node_count());
  std::size_t total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint64_t i = 0; i <= v % 3; ++i) {
      records[v].push_back({v, i, v + i});
      ++total;
    }
  }
  PipelinedListUpcast collect(tree, records);
  const RunStats cstats = net.run(collect);
  EXPECT_EQ(collect.root_records().size(), total);
  // Every record arrives intact (multiset equality via sorting).
  auto received = collect.root_records();
  std::vector<PipelinedListUpcast::Record> expected;
  for (const auto& list : records) {
    expected.insert(expected.end(), list.begin(), list.end());
  }
  std::sort(received.begin(), received.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(received, expected);
  // Pipelined: O(height + total records), not O(height * records).
  EXPECT_LE(cstats.rounds, tree.height + total + 2);
}

TEST(PipelinedListUpcast, EmptyRecordsQuiesceImmediately) {
  const Graph g = gen::path(6);
  Network net(g, 23);
  RunStats stats;
  const BfsTree tree = build_bfs_tree(net, 0, stats);
  PipelinedListUpcast collect(
      tree, std::vector<std::vector<PipelinedListUpcast::Record>>(
                g.node_count()));
  const RunStats cstats = net.run(collect);
  EXPECT_TRUE(collect.root_records().empty());
  EXPECT_EQ(cstats.rounds, 0u);
}

TEST(TokenWalk, EndpointsCountMatchesTokens) {
  Rng rng(19);
  const Graph g = gen::erdos_renyi_connected(30, 0.15, rng);
  Network net(g, 23);
  std::vector<std::vector<WalkToken>> initial(g.node_count());
  std::size_t total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint32_t i = 0; i <= v % 3; ++i) {
      initial[v].push_back(WalkToken{v, 5, 5});
      ++total;
    }
  }
  TokenWalkProtocol protocol(g, initial);
  net.run(protocol);
  std::size_t stored = 0;
  for (const auto& tokens : protocol.stored()) {
    for (const StoredToken& t : tokens) {
      EXPECT_EQ(t.length, 5u);
      stored += 1;
    }
  }
  EXPECT_EQ(stored, total);
}

TEST(TokenWalk, ZeroLengthTokenStaysAtSource) {
  const Graph g = gen::cycle(4);
  Network net(g, 29);
  std::vector<std::vector<WalkToken>> initial(g.node_count());
  initial[2].push_back(WalkToken{2, 0, 0});
  TokenWalkProtocol protocol(g, initial);
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(protocol.stored()[2].size(), 1u);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(TokenWalk, SingleTokenEndpointMatchesOracleDistribution) {
  // A single token of length l is a plain random walk; its endpoint must be
  // distributed as P^l e_s.
  const Graph g = gen::lollipop(4, 3);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 6;
  const auto expected = oracle.distribution_after(0, l);

  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const int runs = 4000;
  for (int r = 0; r < runs; ++r) {
    Network net(g, 1000 + r);
    std::vector<std::vector<WalkToken>> initial(g.node_count());
    initial[0].push_back(
        WalkToken{0, static_cast<std::uint32_t>(l),
                  static_cast<std::uint32_t>(l)});
    TokenWalkProtocol protocol(g, initial);
    net.run(protocol);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!protocol.stored()[v].empty()) ++counts[v];
    }
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(TokenWalk, ManyTokensCongestCost) {
  // q tokens crossing one bridge edge must serialize: rounds >= q.
  const Graph g = gen::path(2);
  Network net(g, 31);
  std::vector<std::vector<WalkToken>> initial(g.node_count());
  const std::uint32_t q = 25;
  for (std::uint32_t i = 0; i < q; ++i) {
    initial[0].push_back(WalkToken{0, 1, 1});
  }
  TokenWalkProtocol protocol(g, initial);
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(protocol.stored()[1].size(), q);
  EXPECT_GE(stats.rounds, q);
}

}  // namespace
}  // namespace drw::congest
