#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace drw::apps {
namespace {

using congest::Network;

TEST(PageRankReference, IsAFixedPoint) {
  Rng rng(3);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  const auto pr = pagerank_reference(g, 0.15);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
  // One more damped iteration must not move it.
  std::vector<double> next(g.node_count(),
                           0.15 / static_cast<double>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double share = 0.85 * pr[v] / g.degree(v);
    for (NodeId u : g.neighbors(v)) next[u] += share;
  }
  EXPECT_LT(l1_distance(pr, next), 1e-9);
}

TEST(PageRankReference, HubOutranksLeavesOnStar) {
  const Graph g = gen::star(9);
  const auto pr = pagerank_reference(g, 0.15);
  for (NodeId leaf = 1; leaf < 9; ++leaf) EXPECT_GT(pr[0], pr[leaf]);
}

TEST(PersonalizedReference, SumsToOneAndFavoursTheSource) {
  const Graph g = gen::grid(4, 4);
  const auto ppr = personalized_pagerank_reference(g, 5, 0.2);
  EXPECT_NEAR(std::accumulate(ppr.begin(), ppr.end(), 0.0), 1.0, 1e-6);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v != 5) {
      EXPECT_GT(ppr[5], ppr[v]);
    }
  }
}

TEST(DistributedPageRank, MatchesReferenceOnIrregularGraph) {
  Rng rng(7);
  const Graph g = gen::random_geometric(48, 0.3, rng);
  const auto reference = pagerank_reference(g, 0.15);

  Network net(g, 11);
  PageRankOptions options;
  options.tokens_per_node = 400;
  const PageRankResult result = estimate_pagerank(net, options);
  EXPECT_NEAR(std::accumulate(result.scores.begin(), result.scores.end(),
                              0.0),
              1.0, 1e-9);
  EXPECT_LT(tv_distance(result.scores, reference), 0.05);
}

TEST(DistributedPageRank, AggregationKeepsRoundsIndependentOfTokens) {
  // The anonymous-count trick: 10x the tokens must not change the round
  // count (one message per edge per round; length capped by the geometric
  // tail bound, which only grows logarithmically).
  const Graph g = gen::torus(6, 6);
  PageRankOptions small;
  small.tokens_per_node = 50;
  PageRankOptions large;
  large.tokens_per_node = 5000;
  Network net1(g, 13);
  Network net2(g, 13);
  const auto a = estimate_pagerank(net1, small);
  const auto b = estimate_pagerank(net2, large);
  EXPECT_LE(a.stats.max_backlog, 1u);
  EXPECT_LE(b.stats.max_backlog, 1u);
  EXPECT_LE(b.stats.rounds, a.stats.rounds + 40u);
}

TEST(DistributedPageRank, TokenConservation) {
  const Graph g = gen::cycle(9);
  Network net(g, 17);
  PageRankOptions options;
  options.tokens_per_node = 77;
  const auto result = estimate_pagerank(net, options);
  std::uint64_t tallied = 0;
  for (auto t : result.tallies) tallied += t;
  EXPECT_EQ(tallied, result.total_tokens);
  EXPECT_EQ(result.total_tokens, 77u * 9u);
}

TEST(DistributedPersonalized, MatchesClosedFormMixture) {
  const Graph g = gen::lollipop(5, 4);
  const auto reference = personalized_pagerank_reference(g, 0, 0.2);
  Network net(g, 19);
  PageRankOptions options;
  options.alpha = 0.2;
  const auto result =
      estimate_personalized_pagerank(net, 0, 60000, options);
  EXPECT_LT(tv_distance(result.scores, reference), 0.03);
}

TEST(DistributedPageRank, RejectsBadAlpha) {
  const Graph g = gen::cycle(4);
  Network net(g, 1);
  PageRankOptions options;
  options.alpha = 1.5;
  EXPECT_THROW(estimate_pagerank(net, options), std::invalid_argument);
  options.alpha = 0.0;
  EXPECT_THROW(estimate_pagerank(net, options), std::invalid_argument);
}

TEST(DistributedPageRank, DeterministicPerSeed) {
  const Graph g = gen::grid(3, 3);
  PageRankOptions options;
  options.tokens_per_node = 100;
  Network net1(g, 21);
  Network net2(g, 21);
  const auto a = estimate_pagerank(net1, options);
  const auto b = estimate_pagerank(net2, options);
  EXPECT_EQ(a.tallies, b.tallies);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace drw::apps
