#include "core/random_walks.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"
#include "walk_test_utils.hpp"

namespace drw::core {
namespace {

using congest::Network;

TEST(ManyWalks, EachSourceGetsItsOwnExactDistribution) {
  const Graph g = gen::cycle(6);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 7;
  Params params = Params::paper();
  params.lambda_override = 2;

  const std::vector<NodeId> sources{0, 3, 3};
  std::vector<std::vector<std::uint64_t>> counts(
      sources.size(), std::vector<std::uint64_t>(g.node_count(), 0));
  const int runs = 2000;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 20000 + run);
    const ManyWalksOutput out =
        many_random_walks(net, sources, l, params, 3);
    ASSERT_EQ(out.destinations.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      ++counts[i][out.destinations[i]];
    }
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto expected = oracle.distribution_after(sources[i], l);
    const auto result = chi_square_test(counts[i], expected);
    EXPECT_GT(result.p_value, 1e-4)
        << "source " << sources[i] << " chi2=" << result.statistic;
  }
}

TEST(ManyWalks, NaiveFallbackTriggersWhenLambdaExceedsL) {
  // With l tiny, lambda(k, l) > l and MANY-RANDOM-WALKS must fall back.
  Rng rng(3);
  const Graph g = gen::random_regular(32, 4, rng);
  Network net(g, 5);
  const std::vector<NodeId> sources(16, 0);
  const ManyWalksOutput out =
      many_random_walks(net, sources, 3, Params::paper(),
                        exact_diameter(g));
  EXPECT_TRUE(out.used_naive_fallback);
  EXPECT_EQ(out.destinations.size(), 16u);
}

TEST(ManyWalks, FallbackDistributionStillExact) {
  const Graph g = gen::complete(5);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 2;
  const auto expected = oracle.distribution_after(0, l);
  std::vector<std::uint64_t> counts(g.node_count(), 0);
  const std::vector<NodeId> sources(8, 0);
  const int runs = 800;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 31000 + run);
    const ManyWalksOutput out =
        many_random_walks(net, sources, l, Params::paper(), 1);
    ASSERT_TRUE(out.used_naive_fallback);
    for (NodeId dest : out.destinations) ++counts[dest];
  }
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(ManyWalks, FallbackRoundsAreKPlusLNotKTimesL) {
  // Theorem 2.8's k + l regime: k tokens from one source serialize on the
  // source's edges for ~k rounds, then drift apart: rounds << k * l.
  const Graph g = gen::torus(6, 6);
  Network net(g, 7);
  const std::uint64_t k = 40;
  const std::uint64_t l = 50;
  const std::vector<NodeId> sources(k, 0);
  Params params = Params::paper();
  params.lambda_override = l + 1;  // force fallback
  const ManyWalksOutput out = many_random_walks(net, sources, l, params, 6);
  ASSERT_TRUE(out.used_naive_fallback);
  EXPECT_GE(out.stats.rounds, l);
  EXPECT_LE(out.stats.rounds, 3 * (k + l));
  EXPECT_LT(out.stats.rounds, k * l / 4);
}

TEST(ManyWalks, StitchedModeSharesOnePhaseOne) {
  const Graph g = gen::grid(5, 5);
  Network net(g, 9);
  const std::vector<NodeId> sources{0, 12, 24, 12};
  Params params = Params::paper();
  params.lambda_override = 6;
  const ManyWalksOutput out =
      many_random_walks(net, sources, 80, params, 8);
  EXPECT_FALSE(out.used_naive_fallback);
  EXPECT_EQ(out.destinations.size(), 4u);
  // Phase 1 ran exactly once: walks_prepared counts one preparation.
  std::uint64_t expected_prepared = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    expected_prepared += g.degree(v);
  }
  EXPECT_EQ(out.counters.walks_prepared, expected_prepared);
  EXPECT_GT(out.counters.stitches, 0u);
}

TEST(ManyWalks, PositionsValidForEveryWalk) {
  const Graph g = gen::grid(4, 4);
  Params params = Params::paper();
  params.record_trajectories = true;
  params.lambda_override = 4;
  Network net(g, 11);
  const std::vector<NodeId> sources{0, 5, 15};
  const std::uint64_t l = 25;
  const ManyWalksOutput out = many_random_walks(net, sources, l, params, 6);
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    test::expect_valid_walk(g, out.positions, i, l, sources[i],
                            out.destinations[i]);
  }
}

TEST(ManyWalks, EmptySourcesIsANoOp) {
  const Graph g = gen::cycle(4);
  Network net(g, 1);
  const ManyWalksOutput out =
      many_random_walks(net, {}, 10, Params::paper(), 2);
  EXPECT_TRUE(out.destinations.empty());
  EXPECT_EQ(out.stats.rounds, 0u);
}

TEST(ManyWalks, RoundsGrowSublinearlyInK) {
  // Theorem 2.8 shape: rounds ~ sqrt(k l D) + k, so quadrupling k should
  // far less than quadruple the rounds in the stitched regime.
  Rng rng(13);
  const Graph g = gen::random_regular(48, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::uint64_t l = 1024;
  auto run_k = [&](std::uint64_t k) {
    Network net(g, 1234);
    const std::vector<NodeId> sources(k, 0);
    return many_random_walks(net, sources, l, Params::paper(), diameter)
        .stats.rounds;
  };
  const auto r2 = run_k(2);
  const auto r8 = run_k(8);
  EXPECT_LT(r8, 3 * r2) << "r2=" << r2 << " r8=" << r8;
}

}  // namespace
}  // namespace drw::core
