#include "core/protocols.hpp"

#include <gtest/gtest.h>

#include "congest/primitives.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace drw::core {
namespace {

using congest::Network;
using congest::RunStats;

TEST(ShortWalkPhase, StoresEveryWalkWithItsLength) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(25, 0.2, rng);
  Network net(g, 11);
  WalkStore store(g.node_count());
  std::vector<ShortWalkPhaseProtocol::Job> jobs;
  std::size_t expected = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) {
      jobs.push_back(ShortWalkPhaseProtocol::Job{v, i, 4 + (i % 4)});
      ++expected;
    }
  }
  ShortWalkPhaseProtocol protocol(g, jobs, store, nullptr);
  net.run(protocol);
  std::size_t stored = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const HeldToken& t : store.held[v]) {
      EXPECT_FALSE(t.used);
      EXPECT_EQ(t.kind, WalkKind::kPhase1);
      EXPECT_GE(t.length, 4u);
      EXPECT_LE(t.length, 7u);
      ++stored;
    }
  }
  EXPECT_EQ(stored, expected);
}

TEST(ShortWalkPhase, TrajectoriesReplayToTheStoredEndpoint) {
  // With trajectories recorded, following the per-hop pointers from the
  // source must land exactly on the node holding the stored token.
  const Graph g = gen::grid(4, 4);
  Network net(g, 13);
  WalkStore store(g.node_count());
  TrajectoryStore traj(g.node_count());
  const std::uint32_t length = 9;
  std::vector<ShortWalkPhaseProtocol::Job> jobs{{0, 0, length}};
  ShortWalkPhaseProtocol protocol(g, jobs, store, &traj);
  net.run(protocol);

  NodeId holder = kInvalidNode;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!store.held[v].empty()) holder = v;
  }
  ASSERT_NE(holder, kInvalidNode);

  NodeId at = 0;
  for (std::uint32_t hop = 0; hop < length; ++hop) {
    const auto& records = traj.forward[at].at(TrajectoryStore::key(0, 0));
    bool advanced = false;
    for (const ForwardHop& r : records) {
      if (r.hop == hop) {
        at = g.neighbor(at, r.next_slot);
        advanced = true;
        break;
      }
    }
    ASSERT_TRUE(advanced) << "missing hop " << hop;
  }
  EXPECT_EQ(at, holder);
}

TEST(GetMoreWalks, StoresExactlyCountWalks) {
  Rng rng(7);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  Network net(g, 17);
  WalkStore store(g.node_count());
  GetMoreWalksProtocol protocol(g, 4, 30, 6, true, store, nullptr);
  net.run(protocol);
  std::size_t stored = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const HeldToken& t : store.held[v]) {
      EXPECT_EQ(t.source, 4u);
      EXPECT_EQ(t.kind, WalkKind::kGetMore);
      EXPECT_GE(t.length, 6u);
      EXPECT_LE(t.length, 11u);
      ++stored;
    }
  }
  EXPECT_EQ(stored, 30u);
}

TEST(GetMoreWalks, AggregationAvoidsCongestion) {
  // Counts are aggregated per edge, so even many walks never queue: the
  // whole subroutine finishes in ~2*lambda rounds with backlog <= 1
  // ("no congestion occurs ... only the count of the number of walks along
  // an edge are passed").
  const Graph g = gen::complete(10);
  Network net(g, 19);
  WalkStore store(g.node_count());
  const std::uint32_t lambda = 20;
  GetMoreWalksProtocol protocol(g, 0, 500, lambda, true, store, nullptr);
  const RunStats stats = net.run(protocol);
  EXPECT_LE(stats.max_backlog, 1u);
  EXPECT_LE(stats.rounds, 2u * lambda + 2);
}

TEST(GetMoreWalks, LengthsUniformInRange) {
  // Lemma 2.4 (reservoir part): walk lengths are uniform in
  // [lambda, 2*lambda - 1].
  const Graph g = gen::complete(8);
  const std::uint32_t lambda = 8;
  std::vector<std::uint64_t> counts(lambda, 0);
  for (int run = 0; run < 60; ++run) {
    Network net(g, 100 + run);
    WalkStore store(g.node_count());
    GetMoreWalksProtocol protocol(g, 0, 100, lambda, true, store, nullptr);
    net.run(protocol);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const HeldToken& t : store.held[v]) {
        ASSERT_GE(t.length, lambda);
        ASSERT_LT(t.length, 2 * lambda);
        ++counts[t.length - lambda];
      }
    }
  }
  const std::vector<double> expected(lambda, 1.0 / lambda);
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(GetMoreWalks, FixedLengthModeStopsAtLambda) {
  const Graph g = gen::cycle(12);
  Network net(g, 23);
  WalkStore store(g.node_count());
  GetMoreWalksProtocol protocol(g, 1, 40, 5, false, store, nullptr);
  const RunStats stats = net.run(protocol);
  std::size_t stored = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const HeldToken& t : store.held[v]) {
      EXPECT_EQ(t.length, 5u);
      ++stored;
    }
  }
  EXPECT_EQ(stored, 40u);
  EXPECT_LE(stats.rounds, 6u);
}

TEST(SampleConvergecast, FindsTheOnlyToken) {
  const Graph g = gen::grid(3, 3);
  Network net(g, 29);
  WalkStore store(g.node_count());
  store.held[7].push_back(HeldToken{2, 9, 6, WalkKind::kPhase1, 0, false});
  RunStats stats;
  const congest::BfsTree tree = congest::build_bfs_tree(net, 2, stats);
  SampleConvergecast sample(tree, store, 2);
  net.run(sample);
  EXPECT_EQ(sample.result().count, 1u);
  EXPECT_EQ(sample.result().holder, 7u);
  EXPECT_EQ(sample.result().length, 6u);
  EXPECT_EQ(sample.result().seq, 9u);
  EXPECT_EQ(sample.result().kind, WalkKind::kPhase1);
}

TEST(SampleConvergecast, IgnoresUsedAndForeignTokens) {
  const Graph g = gen::grid(3, 3);
  Network net(g, 31);
  WalkStore store(g.node_count());
  store.held[4].push_back(HeldToken{2, 0, 6, WalkKind::kPhase1, 0, true});
  store.held[5].push_back(HeldToken{3, 0, 6, WalkKind::kPhase1, 0, false});
  RunStats stats;
  const congest::BfsTree tree = congest::build_bfs_tree(net, 2, stats);
  SampleConvergecast sample(tree, store, 2);
  net.run(sample);
  EXPECT_EQ(sample.result().count, 0u);  // NULL: GET-MORE-WALKS needed
}

TEST(SampleConvergecast, UniformOverAllUnusedTokens) {
  // Lemma A.2: every unused token is returned with probability 1/t.
  const Graph g = gen::path(5);
  WalkStore store(g.node_count());
  // 6 tokens from source 0 spread over nodes 1, 3, 4.
  store.held[1].push_back(HeldToken{0, 0, 4, WalkKind::kPhase1, 0, false});
  store.held[1].push_back(HeldToken{0, 1, 4, WalkKind::kPhase1, 0, false});
  store.held[3].push_back(HeldToken{0, 2, 4, WalkKind::kPhase1, 0, false});
  store.held[3].push_back(HeldToken{0, 3, 4, WalkKind::kPhase1, 0, false});
  store.held[3].push_back(HeldToken{0, 4, 4, WalkKind::kPhase1, 0, false});
  store.held[4].push_back(HeldToken{0, 5, 4, WalkKind::kPhase1, 0, false});

  std::vector<std::uint64_t> counts(6, 0);
  const int runs = 6000;
  for (int r = 0; r < runs; ++r) {
    Network net(g, 500 + r);
    RunStats stats;
    const congest::BfsTree tree = congest::build_bfs_tree(net, 0, stats);
    SampleConvergecast sample(tree, store, 0);
    net.run(sample);
    ASSERT_EQ(sample.result().count, 6u);
    ++counts[sample.result().seq];
  }
  const std::vector<double> expected(6, 1.0 / 6.0);
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(NaiveSegment, DestinationMatchesPositions) {
  const Graph g = gen::torus(4, 4);
  Network net(g, 37);
  PositionTable positions(g.node_count());
  NaiveSegmentProtocol protocol(
      g, {NaiveSegmentProtocol::Job{3, 10, 7, 100, true}}, &positions);
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(stats.rounds, 10u);

  // Positions 100..110 must each occur exactly once, forming a walk.
  std::vector<NodeId> at(11, kInvalidNode);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const WalkPosition& p : positions[v]) {
      EXPECT_EQ(p.walk, 7u);
      ASSERT_GE(p.step, 100u);
      ASSERT_LE(p.step, 110u);
      EXPECT_EQ(at[p.step - 100], kInvalidNode) << "duplicate step";
      at[p.step - 100] = v;
    }
  }
  EXPECT_EQ(at[0], 3u);
  EXPECT_EQ(at[10], protocol.destinations()[0]);
  for (std::size_t i = 1; i < at.size(); ++i) {
    ASSERT_NE(at[i], kInvalidNode);
    EXPECT_TRUE(g.has_edge(at[i - 1], at[i]));
  }
}

TEST(NaiveSegment, ParallelJobsFromSameStart) {
  const Graph g = gen::complete(6);
  Network net(g, 41);
  std::vector<NaiveSegmentProtocol::Job> jobs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    jobs.push_back(NaiveSegmentProtocol::Job{0, 5, i, 0, true});
  }
  NaiveSegmentProtocol protocol(g, jobs, nullptr);
  net.run(protocol);
  for (NodeId dest : protocol.destinations()) {
    EXPECT_NE(dest, kInvalidNode);
  }
}

}  // namespace
}  // namespace drw::core
