#include "graph/spanning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(MatrixTree, KnownCounts) {
  // Cayley: K_n has n^{n-2} spanning trees.
  EXPECT_NEAR(count_spanning_trees(gen::complete(4)), 16.0, 1e-6);
  EXPECT_NEAR(count_spanning_trees(gen::complete(5)), 125.0, 1e-6);
  // A cycle has n spanning trees, a tree exactly one.
  EXPECT_NEAR(count_spanning_trees(gen::cycle(7)), 7.0, 1e-9);
  EXPECT_NEAR(count_spanning_trees(gen::path(6)), 1.0, 1e-9);
  EXPECT_NEAR(count_spanning_trees(gen::star(8)), 1.0, 1e-9);
}

TEST(MatrixTree, CompleteBipartiteK23) {
  // K_{m,n} has m^{n-1} n^{m-1} spanning trees; K_{2,3} -> 2^2 * 3^1 = 12.
  GraphBuilder b(5);
  for (NodeId left : {0, 1}) {
    for (NodeId right : {2, 3, 4}) b.add_edge(left, right);
  }
  EXPECT_NEAR(count_spanning_trees(b.build()), 12.0, 1e-6);
}

TEST(SpanningTree, FromBfsParentsIsValid) {
  Rng rng(21);
  const Graph g = gen::erdos_renyi_connected(30, 0.12, rng);
  const auto parent = bfs_parents(g, 0);
  const SpanningTree tree = tree_from_parents(g, parent);
  EXPECT_EQ(tree.edges.size(), g.node_count() - 1);
  EXPECT_TRUE(is_spanning_tree(g, tree));
}

TEST(SpanningTree, CanonicalKeyDistinguishesTrees) {
  const Graph g = gen::cycle(4);
  SpanningTree a;
  a.edges = {{0, 1}, {1, 2}, {2, 3}};
  SpanningTree b;
  b.edges = {{0, 1}, {0, 3}, {1, 2}};
  EXPECT_NE(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.canonical_key(), SpanningTree{a}.canonical_key());
}

TEST(SpanningTree, DetectsNonTrees) {
  const Graph g = gen::complete(4);
  SpanningTree cycle3;
  cycle3.edges = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_FALSE(is_spanning_tree(g, cycle3));  // cycle, misses node 3
  SpanningTree too_few;
  too_few.edges = {{0, 1}, {2, 3}};
  EXPECT_FALSE(is_spanning_tree(g, too_few));
  SpanningTree not_in_graph;
  not_in_graph.edges = {{0, 1}, {1, 2}, {2, 3}};
  const Graph p = gen::path(4);
  SpanningTree uses_missing_edge;
  uses_missing_edge.edges = {{0, 1}, {1, 2}, {0, 3}};
  EXPECT_FALSE(is_spanning_tree(p, uses_missing_edge));
}

TEST(SpanningTree, TreeFromParentsRejectsBadInput) {
  const Graph g = gen::path(4);
  std::vector<NodeId> two_roots{0, 1, 1, 2};
  two_roots[1] = 1;  // second root
  EXPECT_THROW(tree_from_parents(g, two_roots), std::invalid_argument);
  std::vector<NodeId> wrong_size{0, 0};
  EXPECT_THROW(tree_from_parents(g, wrong_size), std::invalid_argument);
  std::vector<NodeId> non_edge_parent{0, 0, 0, 0};  // (3,0) not an edge
  EXPECT_THROW(tree_from_parents(g, non_edge_parent), std::invalid_argument);
}

TEST(MatrixTree, ThrowsOnTinyGraphs) {
  GraphBuilder b(1);
  EXPECT_THROW(count_spanning_trees(b.build()), std::invalid_argument);
}

TEST(MatrixTree, DisconnectedGraphHasZeroTrees) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_NEAR(count_spanning_trees(b.build()), 0.0, 1e-9);
}

}  // namespace
}  // namespace drw
