// WalkInventory bookkeeping and the StitchEngine serving-layer hooks:
// store exposure, targeted replenishment, plan adoption, and state
// release/adopt round-trips.
#include "service/walk_inventory.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"

namespace drw::service {
namespace {

using congest::Network;
using core::Params;
using core::StitchEngine;

Params small_lambda_params() {
  Params params = Params::paper();
  params.lambda_override = 3;
  return params;
}

TEST(EngineHooks, UnusedCountsMatchStoreScan) {
  const Graph g = gen::grid(4, 4);
  Network net(g, 11);
  StitchEngine engine(net, small_lambda_params(), exact_diameter(g));
  engine.prepare(1, 40);
  for (std::uint32_t w = 0; w < 5; ++w) engine.walk(0, 40, w);

  const std::vector<std::uint64_t> counts = engine.unused_counts_by_source();
  ASSERT_EQ(counts.size(), g.node_count());
  std::uint64_t manual_total = 0;
  std::vector<std::uint64_t> manual(g.node_count(), 0);
  for (const auto& held : engine.store().held) {
    for (const core::HeldToken& t : held) {
      if (!t.used) {
        ++manual[t.source];
        ++manual_total;
      }
    }
  }
  EXPECT_EQ(counts, manual);
  EXPECT_GT(manual_total, 0u);
}

TEST(EngineHooks, ReplenishAddsExactlyCountUnusedTokens) {
  const Graph g = gen::torus(5, 5);
  Network net(g, 3);
  StitchEngine engine(net, small_lambda_params(), exact_diameter(g));
  engine.prepare(1, 30);
  const std::vector<std::uint64_t> before = engine.unused_counts_by_source();

  const congest::RunStats stats = engine.replenish(7, 10);
  const std::vector<std::uint64_t> after = engine.unused_counts_by_source();
  EXPECT_EQ(after[7], before[7] + 10);
  // GET-MORE-WALKS is O(lambda) rounds regardless of count (aggregation).
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_LE(stats.rounds, 8u * engine.lambda());
  // Fresh tokens are tagged as GET-MORE-WALKS walks with lengths in
  // [lambda, 2*lambda).
  std::uint64_t fresh = 0;
  for (const auto& held : engine.store().held) {
    for (const core::HeldToken& t : held) {
      if (t.source == 7 && t.kind == core::WalkKind::kGetMore) {
        EXPECT_GE(t.length, engine.lambda());
        EXPECT_LT(t.length, 2 * engine.lambda());
        ++fresh;
      }
    }
  }
  EXPECT_EQ(fresh, 10u);
}

TEST(EngineHooks, ReplenishedTokensYieldExactWalkDistribution) {
  // A walk stitched from externally replenished (GET-MORE-WALKS) tokens
  // must still be an exact l-step sample. Phase 1 leaves each node only
  // eta*deg = 2 walks; replenishing 40 more from node 0 means the sampled
  // stitches overwhelmingly consume topped-up stock.
  const Graph g = gen::cycle(5);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 8;
  const auto expected = oracle.distribution_after(0, l);
  Params params = small_lambda_params();
  params.lambda_override = 3;

  std::vector<std::uint64_t> counts(g.node_count(), 0);
  std::uint64_t getmore_consumed = 0;
  const int runs = 2500;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 52000 + run);
    StitchEngine engine(net, params, 2);
    engine.prepare(1, l);
    engine.replenish(0, 40);
    ++counts[engine.walk(0, l, 0).destination];
    for (const auto& held : engine.store().held) {
      for (const core::HeldToken& t : held) {
        if (t.used && t.kind == core::WalkKind::kGetMore) ++getmore_consumed;
      }
    }
  }
  EXPECT_GT(getmore_consumed, 0u)
      << "test never consumed a replenished token";
  const auto result = chi_square_test(counts, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(EngineHooks, AdoptPlanKeepsInventoryAndLambda) {
  const Graph g = gen::grid(4, 4);
  Network net(g, 9);
  StitchEngine engine(net, small_lambda_params(), exact_diameter(g));
  engine.prepare(2, 30);
  const std::uint32_t lambda = engine.lambda();
  const auto stock_before = engine.unused_counts_by_source();

  engine.adopt_plan(8, 60);
  EXPECT_EQ(engine.lambda(), lambda);
  EXPECT_EQ(engine.prepared_k(), 8u);
  EXPECT_EQ(engine.prepared_l(), 60u);
  EXPECT_EQ(engine.unused_counts_by_source(), stock_before);
  // Walks longer than the original envelope are now allowed.
  EXPECT_NO_THROW(engine.walk(0, 60, 0));
}

TEST(EngineHooks, ReleaseAdoptStateRoundTrip) {
  const Graph g = gen::torus(4, 4);
  const std::uint32_t diameter = exact_diameter(g);
  Network net(g, 5);
  StitchEngine first(net, small_lambda_params(), diameter);
  first.prepare(1, 30);
  const auto stock = first.unused_counts_by_source();

  StitchEngine::EngineState state = first.release_state();
  EXPECT_FALSE(first.prepared());
  EXPECT_THROW(first.walk(0, 10, 0), std::logic_error);

  StitchEngine second(net, small_lambda_params(), diameter);
  second.adopt_state(std::move(state));
  EXPECT_TRUE(second.prepared());
  EXPECT_EQ(second.unused_counts_by_source(), stock);
  const core::WalkResult walk = second.walk(0, 30, 0);
  EXPECT_LT(walk.destination, g.node_count());
  // No Phase 1 ran in `second`: the walk's counters carry no prepared cost.
  EXPECT_EQ(walk.counters.walks_prepared, 0u);
}

TEST(EngineHooks, HookPreconditionsThrow) {
  const Graph g = gen::cycle(6);
  Network net(g, 1);
  StitchEngine engine(net, Params::paper(), 3);
  EXPECT_THROW(engine.replenish(0, 4), std::logic_error);
  EXPECT_THROW(engine.adopt_plan(1, 10), std::logic_error);
  EXPECT_THROW(engine.release_state(), std::logic_error);

  StitchEngine other(net, Params::paper(), 3);
  StitchEngine::EngineState bogus;
  bogus.lambda = 0;
  EXPECT_THROW(other.adopt_state(std::move(bogus)), std::invalid_argument);
}

TEST(RunStatsDelta, SaturatingDifference) {
  congest::RunStats later{100, 2000, 7};
  const congest::RunStats earlier{40, 500, 3};
  const congest::RunStats delta = later - earlier;
  EXPECT_EQ(delta.rounds, 60u);
  EXPECT_EQ(delta.messages, 1500u);
  const congest::RunStats clamped = earlier - later;
  EXPECT_EQ(clamped.rounds, 0u);
  EXPECT_EQ(clamped.messages, 0u);
}

TEST(Inventory, RefreshTracksSupplyAndDemand) {
  const Graph g = gen::grid(4, 4);
  Network net(g, 21);
  StitchEngine engine(net, small_lambda_params(), exact_diameter(g));
  engine.prepare(1, 40);

  WalkInventory inventory(g.node_count());
  inventory.refresh(engine);
  const std::uint64_t stock0 = inventory.total_unused();
  EXPECT_GT(stock0, 0u);
  EXPECT_EQ(inventory.total_demand(), 0u);

  core::WalkResult walk = engine.walk(0, 40, 0);
  inventory.refresh(engine);
  // Every stitch consumed one token and counted one connector visit.
  EXPECT_EQ(inventory.total_demand(), walk.counters.stitches);
  if (walk.counters.get_more_walks_calls == 0) {
    // No in-walk top-up: stock shrank by exactly the stitch count.
    EXPECT_EQ(stock0 - inventory.total_unused(), walk.counters.stitches);
  }
  // Second refresh without walks: demand delta drops to zero.
  inventory.refresh(engine);
  EXPECT_EQ(inventory.total_demand(), 0u);
}

TEST(Inventory, PlanTargetsStarvedConnectorsOnly) {
  const Graph g = gen::grid(3, 3);
  Network net(g, 33);
  Params params = small_lambda_params();
  params.lambda_override = 2;
  StitchEngine engine(net, params, exact_diameter(g));
  engine.prepare(1, 60);

  WalkInventory inventory(g.node_count());
  inventory.refresh(engine);
  for (std::uint32_t w = 0; w < 6; ++w) engine.walk(4, 60, w);
  inventory.refresh(engine);

  InventoryPolicy policy;
  policy.min_batch = 2;
  policy.headroom = 2.0;
  const std::vector<Replenishment> plan =
      inventory.plan_replenishment(policy);
  for (const Replenishment& r : plan) {
    // Only nodes whose demand outran their remaining stock are topped up.
    EXPECT_GT(inventory.demand(r.source), inventory.unused(r.source));
    EXPECT_GE(r.count, policy.min_batch);
    EXPECT_LE(r.count, policy.max_batch);
  }
  // Plan is most-starved first.
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_GE(plan[i - 1].count, plan[i].count);
  }
}

}  // namespace
}  // namespace drw::service
