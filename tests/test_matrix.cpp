#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace drw {
namespace {

TEST(Matrix, IdentityMultiplication) {
  Matrix a(2, 3, 0.0);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const Matrix i3 = Matrix::identity(3);
  const Matrix product = a * i3;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(product(r, c), a(r, c));
    }
  }
}

TEST(Matrix, KnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  Matrix b(2, 2);
  b(0, 0) = 5.0;
  b(0, 1) = 6.0;
  b(1, 0) = 7.0;
  b(1, 1) = 8.0;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a.left_multiply(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Matrix, LeftMultiplyMatchesRowVectorProduct) {
  Matrix p(2, 2);
  p(0, 0) = 0.5;
  p(0, 1) = 0.5;
  p(1, 0) = 0.25;
  p(1, 1) = 0.75;
  const std::vector<double> v{0.4, 0.6};
  const auto out = p.left_multiply(v);
  EXPECT_NEAR(out[0], 0.4 * 0.5 + 0.6 * 0.25, 1e-12);
  EXPECT_NEAR(out[1], 0.4 * 0.5 + 0.6 * 0.75, 1e-12);
}

TEST(Matrix, LogDetOfIdentity) {
  const auto det = Matrix::identity(5).log_det();
  EXPECT_EQ(det.sign, 1);
  EXPECT_NEAR(det.log_abs, 0.0, 1e-12);
}

TEST(Matrix, LogDetKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // det = 10
  auto det = a.log_det();
  EXPECT_EQ(det.sign, 1);
  EXPECT_NEAR(det.log_abs, std::log(10.0), 1e-12);

  // Swap rows: determinant flips sign.
  Matrix b(2, 2);
  b(0, 0) = 2.0;
  b(0, 1) = 4.0;
  b(1, 0) = 3.0;
  b(1, 1) = 1.0;  // det = -10
  det = b.log_det();
  EXPECT_EQ(det.sign, -1);
  EXPECT_NEAR(det.log_abs, std::log(10.0), 1e-12);
}

TEST(Matrix, LogDetSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_EQ(a.log_det().sign, 0);
}

TEST(Matrix, LogDetRequiresSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(a.log_det(), std::invalid_argument);
}

TEST(Matrix, LogDetLargeDiagonal) {
  // Diagonal matrix with huge entries: log-domain avoids overflow.
  const std::size_t n = 50;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = 1e12;
  const auto det = a.log_det();
  EXPECT_EQ(det.sign, 1);
  EXPECT_NEAR(det.log_abs, n * std::log(1e12), 1e-6);
}

}  // namespace
}  // namespace drw
