#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace drw {
namespace {

Graph triangle_plus_leaf() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(GraphBuilder, BasicCounts) {
  const Graph g = triangle_plus_leaf();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.directed_edge_count(), 8u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, NeighborsSortedAscending) {
  GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 0);
  b.add_edge(3, 4);
  b.add_edge(3, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle_plus_leaf();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Graph, SlotOfRoundTrips) {
  const Graph g = triangle_plus_leaf();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint32_t slot = 0; slot < g.degree(v); ++slot) {
      EXPECT_EQ(g.slot_of(v, g.neighbor(v, slot)), slot);
    }
    EXPECT_EQ(g.slot_of(v, v), g.degree(v));  // not a neighbor
  }
}

TEST(Graph, DirectedEdgeIndexDense) {
  const Graph g = triangle_plus_leaf();
  std::vector<bool> seen(g.directed_edge_count(), false);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint32_t slot = 0; slot < g.degree(v); ++slot) {
      const std::size_t eid = g.directed_edge_index(v, slot);
      ASSERT_LT(eid, seen.size());
      EXPECT_FALSE(seen[eid]);
      seen[eid] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool x) { return x; }));
}

TEST(Graph, DegreeExtremes) {
  const Graph g = triangle_plus_leaf();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = triangle_plus_leaf();
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("m=4"), std::string::npos);
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

// slot_of/has_edge boundary behavior: binary-search over a sorted adjacency
// slice must hit the first and last neighbors, miss absent ids BETWEEN
// neighbors (the classic off-by-one spot), and handle degree-0 nodes.
TEST(Graph, SlotOfAndHasEdgeBoundaries) {
  // Node 0's sorted neighbors: {2, 5, 9} -- gaps on both sides and between.
  GraphBuilder b(11);
  b.add_edge(0, 5);
  b.add_edge(0, 2);
  b.add_edge(0, 9);
  b.add_edge(5, 9);
  const Graph g = b.build();  // node 10 has degree 0

  // First and last neighbor.
  EXPECT_EQ(g.slot_of(0, 2), 0u);
  EXPECT_EQ(g.slot_of(0, 5), 1u);
  EXPECT_EQ(g.slot_of(0, 9), 2u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 9));

  // Absent ids below the first, between neighbors, and above the last all
  // report "not adjacent" (slot_of returns degree(v)).
  for (const NodeId absent : {1u, 3u, 4u, 6u, 8u, 10u}) {
    EXPECT_EQ(g.slot_of(0, absent), g.degree(0)) << "absent=" << absent;
    EXPECT_FALSE(g.has_edge(0, absent)) << "absent=" << absent;
  }
  EXPECT_FALSE(g.has_edge(0, 0));  // self is never a neighbor

  // Degree-1 node: its single slot, and misses on both sides.
  EXPECT_EQ(g.slot_of(2, 0), 0u);
  EXPECT_EQ(g.slot_of(2, 1), g.degree(2));
  EXPECT_EQ(g.slot_of(2, 9), g.degree(2));

  // Degree-0 node: every query misses, nothing dereferenced.
  EXPECT_EQ(g.degree(10), 0u);
  EXPECT_EQ(g.slot_of(10, 0), 0u);  // degree(10) == 0
  EXPECT_FALSE(g.has_edge(10, 0));
  EXPECT_FALSE(g.has_edge(0, 10));

  // slot_of round-trips through neighbor() for every present edge.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::uint32_t s = 0; s < g.degree(v); ++s) {
      EXPECT_EQ(g.slot_of(v, g.neighbor(v, s)), s);
    }
  }
}

}  // namespace
}  // namespace drw
