#include "congest/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace drw::congest {
namespace {

/// Sends one token back and forth `hops` times between the ends of an edge.
class PingPong final : public Protocol {
 public:
  explicit PingPong(std::uint64_t hops) : remaining_(hops) {}
  void on_round(Context& ctx) override {
    if (ctx.round() == 0) {
      if (ctx.self() == 0 && remaining_ > 0) {
        ctx.send(0, Message{1, {remaining_ - 1, 0, 0, 0}});
      }
      return;
    }
    for (const Delivery& d : ctx.inbox()) {
      if (d.msg.f[0] > 0) {
        ctx.send(ctx.slot_of(d.from), Message{1, {d.msg.f[0] - 1, 0, 0, 0}});
      } else {
        finished_ = true;
      }
    }
  }
  bool finished_ = false;
  std::uint64_t remaining_;
};

TEST(Network, PingPongRoundCount) {
  const Graph g = gen::path(2);
  Network net(g, 1);
  PingPong protocol(5);
  const RunStats stats = net.run(protocol);
  EXPECT_TRUE(protocol.finished_);
  // Each hop is one CONGEST round (compute + send + delivery).
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_EQ(stats.messages, 5u);
  EXPECT_EQ(stats.max_backlog, 1u);
}

TEST(Network, DoNothingProtocolCostsZeroRounds) {
  const Graph g = gen::cycle(5);
  Network net(g, 1);
  class Idle final : public Protocol {
    void on_round(Context&) override {}
  } idle;
  const RunStats stats = net.run(idle);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.messages, 0u);
}

/// Node 0 sends `count` messages to the same neighbor in round 0; the edge
/// can deliver only one per round, so the backlog drains over `count` rounds.
class Burst final : public Protocol {
 public:
  explicit Burst(std::uint64_t count) : count_(count) {}
  void on_round(Context& ctx) override {
    if (ctx.round() == 0 && ctx.self() == 0) {
      for (std::uint64_t i = 0; i < count_; ++i) {
        ctx.send(0, Message{1, {i, 0, 0, 0}});
      }
    }
    // Only node 1 writes the counter (shard-safety: no cross-node writes).
    if (ctx.self() != 0) received_ += ctx.inbox().size();
  }
  std::uint64_t count_;
  std::uint64_t received_ = 0;
};

TEST(Network, CongestionCostsRounds) {
  const Graph g = gen::path(2);
  Network net(g, 1);
  Burst protocol(10);
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(protocol.received_, 10u);
  // One message per edge per round: 10 transmission rounds.
  EXPECT_EQ(stats.rounds, 10u);
  EXPECT_EQ(stats.max_backlog, 10u);
}

TEST(Network, ParallelEdgesDoNotCongest) {
  // A star center sending one message per spoke uses one round of delivery.
  const Graph g = gen::star(9);
  Network net(g, 1);
  class Scatter final : public Protocol {
   public:
    Scatter() : received_(9, 0) {}
    void on_round(Context& ctx) override {
      if (ctx.round() == 0 && ctx.self() == 0) {
        for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
          ctx.send(slot, Message{1, {slot, 0, 0, 0}});
        }
      }
      // Node-indexed tally (shard-safety: spokes run on other workers).
      received_[ctx.self()] += ctx.inbox().size();
    }
    std::uint64_t total() const {
      std::uint64_t sum = 0;
      for (std::size_t v = 1; v < received_.size(); ++v) {
        sum += received_[v];
      }
      return sum;
    }
    std::vector<std::uint64_t> received_;
  } protocol;
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(protocol.total(), 8u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.max_backlog, 1u);
}

TEST(Network, WakeOnlyRoundsCount) {
  const Graph g = gen::path(3);
  Network net(g, 1);
  class Sleeper final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.self() != 1) return;
      if (wakes_ < 4) {
        ++wakes_;
        ctx.wake_me();
      }
    }
    int wakes_ = 0;
  } protocol;
  const RunStats stats = net.run(protocol);
  EXPECT_EQ(protocol.wakes_, 4);
  // Wakes scheduled in rounds 0..3, firing in rounds 1..4.
  EXPECT_EQ(stats.rounds, 4u);
}

TEST(Network, DeterministicAcrossIdenticalRuns) {
  const Graph g = gen::cycle(8);
  class RandomHops final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.round() == 0 && ctx.self() == 0) {
        ctx.send(static_cast<std::uint32_t>(ctx.rng().next_below(2)),
                 Message{1, {20, 0, 0, 0}});
        return;
      }
      for (const Delivery& d : ctx.inbox()) {
        if (d.msg.f[0] == 0) {
          last_ = ctx.self();
          continue;
        }
        ctx.send(static_cast<std::uint32_t>(ctx.rng().next_below(2)),
                 Message{1, {d.msg.f[0] - 1, 0, 0, 0}});
      }
    }
    NodeId last_ = kInvalidNode;
  };
  Network net1(g, 99);
  Network net2(g, 99);
  RandomHops p1;
  RandomHops p2;
  const RunStats s1 = net1.run(p1);
  const RunStats s2 = net2.run(p2);
  EXPECT_EQ(p1.last_, p2.last_);
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.messages, s2.messages);
}

TEST(Network, MaxRoundsGuardThrowsAndNetworkStaysReusable) {
  const Graph g = gen::path(2);
  Network net(g, 1);
  class Forever final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.round() == 0 && ctx.self() == 0) {
        ctx.send(0, Message{});
        return;
      }
      for (const Delivery& d : ctx.inbox()) {
        ctx.send(ctx.slot_of(d.from), Message{});
      }
    }
  } protocol;
  EXPECT_THROW(net.run(protocol, 100), std::runtime_error);

  // The aborted run's in-flight message and backlogs must not leak into
  // the next protocol hosted on the same network.
  PingPong fresh(4);
  const RunStats stats = net.run(fresh);
  EXPECT_TRUE(fresh.finished_);
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_EQ(stats.messages, 4u);
}

TEST(Network, ThrowMidComputeLeavesNoStaleDeliveries) {
  // Center 0 scatters to both spokes; in round 1 the lower spoke throws
  // BEFORE the higher spoke's inbox is processed, stranding a delivery
  // that the abort cleanup must sweep.
  const Graph g = gen::star(3);
  Network net(g, 1);
  class ThrowOnFirstSpoke final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.round() == 0) {
        if (ctx.self() == 0) {
          for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
            ctx.send(slot, Message{1, {slot, 0, 0, 0}});
          }
        }
        return;
      }
      throw std::logic_error("boom");
    }
  } bad;
  EXPECT_THROW(net.run(bad), std::logic_error);

  class ExpectCleanSlate final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      EXPECT_TRUE(ctx.inbox().empty());
    }
  } probe;
  const RunStats stats = net.run(probe);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.rounds, 0u);
}

TEST(Network, SendToNonNeighborThrows) {
  const Graph g = gen::path(3);
  Network net(g, 1);
  class Bad final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.round() == 0 && ctx.self() == 0) {
        ctx.send_to(2, Message{});  // 0 and 2 are not adjacent on a path
      }
    }
  } protocol;
  EXPECT_THROW(net.run(protocol), std::logic_error);
}

TEST(Network, DoneStopsEarlyAndStateResets) {
  const Graph g = gen::path(2);
  Network net(g, 1);
  class StopEarly final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.round() == 0 && ctx.self() == 0) {
        // Queue junk that would take many rounds to drain.
        for (int i = 0; i < 50; ++i) ctx.send(0, Message{});
        done_ = true;
      }
    }
    bool done() const override { return done_; }
    bool done_ = false;
  } protocol;
  const RunStats stats = net.run(protocol);
  EXPECT_LE(stats.rounds, 1u);

  // The network must be reusable with a clean slate afterwards.
  PingPong fresh(3);
  const RunStats stats2 = net.run(fresh);
  EXPECT_TRUE(fresh.finished_);
  EXPECT_EQ(stats2.messages, 3u);
}

TEST(Network, DeliveryIdentifiesSender) {
  const Graph g = gen::cycle(4);
  Network net(g, 1);
  class Check final : public Protocol {
   public:
    Check() : checked_(4, 0) {}
    void on_round(Context& ctx) override {
      if (ctx.round() == 0) {
        for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
          ctx.send(slot, Message{1, {ctx.self(), 0, 0, 0}});
        }
        return;
      }
      for (const Delivery& d : ctx.inbox()) {
        EXPECT_EQ(d.from, static_cast<NodeId>(d.msg.f[0]));
        ++checked_[ctx.self()];  // node-indexed (shard-safety)
      }
    }
    std::vector<int> checked_;
  } protocol;
  net.run(protocol);
  int total = 0;
  for (const int c : protocol.checked_) total += c;
  EXPECT_EQ(total, 8);
}

}  // namespace
}  // namespace drw::congest
