#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 2);
  const std::vector<std::uint32_t> expected{2, 1, 0, 1, 2, 3};
  EXPECT_EQ(dist, expected);
}

TEST(Bfs, ParentsFormTree) {
  Rng rng(5);
  const Graph g = gen::erdos_renyi_connected(40, 0.1, rng);
  const auto parent = bfs_parents(g, 0);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(parent[0], 0u);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_NE(parent[v], kInvalidNode);
    EXPECT_TRUE(g.has_edge(v, parent[v]));
    EXPECT_EQ(dist[v], dist[parent[v]] + 1);
  }
}

TEST(Components, DisconnectedGraphLabels) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Diameter, ExactOnKnownGraphs) {
  EXPECT_EQ(exact_diameter(gen::path(10)), 9u);
  EXPECT_EQ(exact_diameter(gen::cycle(10)), 5u);
  EXPECT_EQ(exact_diameter(gen::complete(5)), 1u);
  EXPECT_EQ(exact_diameter(gen::star(9)), 2u);
  EXPECT_EQ(exact_diameter(gen::hypercube(5)), 5u);
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  // Double sweep is exact on trees.
  const Graph t = gen::binary_tree(31);
  EXPECT_EQ(double_sweep_diameter_estimate(t), exact_diameter(t));
  const Graph p = gen::path(17);
  EXPECT_EQ(double_sweep_diameter_estimate(p, 8), 16u);
}

TEST(Diameter, DoubleSweepIsLowerBound) {
  Rng rng(9);
  for (std::uint64_t seed : {1, 2, 3}) {
    Rng r(seed);
    const Graph g = gen::erdos_renyi_connected(50, 0.08, r);
    EXPECT_LE(double_sweep_diameter_estimate(g), exact_diameter(g));
    EXPECT_GE(2 * double_sweep_diameter_estimate(g), exact_diameter(g));
  }
  (void)rng;
}

TEST(Eccentricity, CenterVsLeafOfPath) {
  const Graph g = gen::path(9);
  EXPECT_EQ(eccentricity(g, 4), 4u);
  EXPECT_EQ(eccentricity(g, 0), 8u);
}

TEST(Eccentricity, ThrowsOnDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_THROW(eccentricity(g, 0), std::runtime_error);
}

}  // namespace
}  // namespace drw
