#include "apps/search.hpp"

#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace drw::apps {
namespace {

using congest::Network;

std::vector<std::vector<std::uint64_t>> empty_stores(std::size_t n) {
  return std::vector<std::vector<std::uint64_t>>(n);
}

TEST(Search, FindsAWellReplicatedItem) {
  Rng rng(3);
  const Graph g = gen::random_regular(64, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  auto replicas = empty_stores(g.node_count());
  // Replicate key 777 on ~1/8 of the nodes.
  for (NodeId v = 0; v < g.node_count(); v += 8) replicas[v].push_back(777);

  Network net(g, 5);
  const SearchResult result = random_walk_search(
      net, 1, 777, replicas, core::Params::paper(), diameter);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.holder % 8, 0u);
  EXPECT_FALSE(replicas[result.holder].empty());
  EXPECT_GT(result.stats.rounds, 0u);
}

TEST(Search, MissingItemReportsNotFound) {
  const Graph g = gen::torus(5, 5);
  auto replicas = empty_stores(g.node_count());
  replicas[7].push_back(42);  // a different key exists
  Network net(g, 7);
  const SearchResult result = random_walk_search(
      net, 0, 999, replicas, core::Params::paper(), 5);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.holder, kInvalidNode);
}

TEST(Search, FirstHitStepIsMinimalOverHolders) {
  // Key on the source itself: hit at step 0 of some walk.
  const Graph g = gen::grid(4, 4);
  auto replicas = empty_stores(g.node_count());
  replicas[5].push_back(11);
  Network net(g, 9);
  const SearchResult result = random_walk_search(
      net, 5, 11, replicas, core::Params::paper(), 6);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.holder, 5u);
  EXPECT_EQ(result.first_hit_step, 0u);
}

TEST(Search, MoreWalksImproveHitProbabilityForRareItems) {
  Rng rng(11);
  const Graph g = gen::random_regular(96, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  auto replicas = empty_stores(g.node_count());
  replicas[50].push_back(1234);  // single replica

  int hits_few = 0;
  int hits_many = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    SearchOptions few;
    few.walks = 1;
    few.walk_length = 96;
    Network net1(g, 100 + t);
    hits_few += random_walk_search(net1, 0, 1234, replicas,
                                   core::Params::paper(), diameter, few)
                    .found;
    SearchOptions many;
    many.walks = 16;
    many.walk_length = 96;
    Network net2(g, 100 + t);
    hits_many += random_walk_search(net2, 0, 1234, replicas,
                                    core::Params::paper(), diameter, many)
                     .found;
  }
  EXPECT_GE(hits_many, hits_few);
  EXPECT_GT(hits_many, trials / 2);
}

TEST(Search, WalkRoundsBeatNaiveForLongSearches) {
  Rng rng(13);
  const Graph g = gen::random_regular(128, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  auto replicas = empty_stores(g.node_count());
  replicas[99].push_back(5);
  Network net(g, 15);
  SearchOptions options;
  options.walks = 4;
  options.walk_length = 8192;
  const SearchResult result = random_walk_search(
      net, 0, 5, replicas, core::Params::paper(), diameter, options);
  EXPECT_TRUE(result.found);
  // k naive walks of length l would serialize to >= l rounds.
  EXPECT_LT(result.walk_rounds, 8192u);
}

}  // namespace
}  // namespace drw::apps
