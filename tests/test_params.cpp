#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drw::core {
namespace {

TEST(Params, PaperLambdaIsSqrtLD) {
  const Params p = Params::paper();
  EXPECT_EQ(p.lambda_single(400, 4, 100), 40u);   // sqrt(400*4) = 40
  EXPECT_EQ(p.lambda_single(100, 1, 100), 10u);
  EXPECT_EQ(p.lambda_single(0, 4, 100), 1u);      // clamped to >= 1
}

TEST(Params, LambdaScaleMultiplies) {
  Params p = Params::paper();
  p.lambda_scale = 2.0;
  EXPECT_EQ(p.lambda_single(400, 4, 100), 80u);
}

TEST(Params, TheoryConstantsBlowUp) {
  Params p = Params::paper();
  p.theory_constants = true;
  // 24 * (log2 100)^3 * sqrt(400*4) with log2(100) ~ 6.64.
  const double expected = 24.0 * std::pow(std::log2(100.0), 3.0) * 40.0;
  EXPECT_NEAR(static_cast<double>(p.lambda_single(400, 4, 100)), expected,
              expected * 0.01);
}

TEST(Params, Podc09LambdaIsCubeRootForm) {
  const Params p = Params::podc09();
  // l^{1/3} D^{2/3} = 8^{1/3} * 8^{2/3} / ... use l=1000, D=8: 10 * 4 = 40.
  EXPECT_EQ(p.lambda_single(1000, 8, 100), 40u);
}

TEST(Params, LambdaOverrideWins) {
  Params p = Params::paper();
  p.lambda_override = 7;
  EXPECT_EQ(p.lambda_single(1u << 20, 64, 100), 7u);
  EXPECT_EQ(p.lambda_many(16, 1u << 20, 64, 100), 7u);
}

TEST(Params, ManyLambdaGrowsWithK) {
  const Params p = Params::paper();
  const auto k1 = p.lambda_many(1, 1024, 4, 100);
  const auto k16 = p.lambda_many(16, 1024, 4, 100);
  EXPECT_GT(k16, k1);
  // Practical preset: sqrt(k*l*D + 1) + k.
  EXPECT_EQ(k16, static_cast<std::uint32_t>(
                     std::llround(std::sqrt(16.0 * 1024 * 4 + 1) + 16)));
}

TEST(Params, WalksPerNodeDegreeProportionalForPaper) {
  const Params paper = Params::paper();
  EXPECT_EQ(paper.walks_per_node(5, 1000, 8), 5u);
  EXPECT_EQ(paper.walks_per_node(1, 1000, 8), 1u);
  // PODC'09: flat eta_09 = (l / D)^{1/3} per node; (1000/8)^{1/3} = 5.
  const Params old = Params::podc09();
  EXPECT_EQ(old.walks_per_node(5, 1000, 8), 5u);
  EXPECT_EQ(old.walks_per_node(1, 1000, 8), 5u);  // degree-independent
}

TEST(Params, EtaScalesWalksPerNode) {
  Params p = Params::paper();
  p.eta = 2.0;
  EXPECT_EQ(p.walks_per_node(3, 100, 4), 6u);
  Params q = Params::podc09();
  q.eta = 4.0;
  // 4 * (1000/8)^{1/3} = 20.
  EXPECT_EQ(q.walks_per_node(3, 1000, 8), 20u);
}

TEST(Params, GetMoreWalksCount) {
  const Params paper = Params::paper();
  EXPECT_EQ(paper.get_more_walks_count(100, 10, 4), 10u);  // floor(l/lambda)
  EXPECT_EQ(paper.get_more_walks_count(5, 10, 4), 1u);     // clamped >= 1
  Params old = Params::podc09();
  EXPECT_EQ(old.get_more_walks_count(1000, 10, 8), 5u);    // eta_09 walks
}

TEST(Params, PresetsDifferInRandomLengths) {
  EXPECT_TRUE(Params::paper().random_lengths);
  EXPECT_FALSE(Params::podc09().random_lengths);
}

}  // namespace
}  // namespace drw::core
