// EdgeArena edge cases, exercised directly (the engine suites only reach
// the arena through full protocol runs): FIFO order across chunk
// boundaries, the depth returned by push (1 == edge was idle), interleaved
// push/pop with head and tail in different chunks, per-lane virtual-edge
// isolation, chunk recycling through the free list, clear_queue/all_empty,
// and the PackedToken round-trip at the packability boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "congest/edge_arena.hpp"
#include "congest/message.hpp"

namespace drw::congest {
namespace {

/// Distinct, recognizable message per sequence number.
Message msg(std::uint64_t i) {
  return Message{static_cast<std::uint16_t>(i % 7 + 1),
                 {i, i * 3 + 1, i ^ 0x5a5a, ~i & 0xffffffffull},
                 static_cast<std::uint16_t>(i % 3)};
}

void expect_msg_eq(const Message& got, const Message& want,
                   std::uint64_t seq) {
  EXPECT_EQ(got.type, want.type) << "seq " << seq;
  EXPECT_EQ(got.f, want.f) << "seq " << seq;
  EXPECT_EQ(got.lane, want.lane) << "seq " << seq;
}

// A backlog much deeper than kChunkCap must link chunks and still pop in
// exact FIFO order; push reports the depth after each append.
TEST(EdgeArena, FifoOrderAcrossChunkBoundaries) {
  EdgeArena arena;
  arena.reset(/*edge_count=*/4, /*shard_count=*/1);
  const std::uint32_t eid = 2;
  const std::uint32_t total = EdgeArena::kChunkCap * 3 + 5;  // 4 chunks

  for (std::uint32_t i = 0; i < total; ++i) {
    EXPECT_EQ(arena.push(0, eid, msg(i)), i + 1);
  }
  EXPECT_EQ(arena.size(eid), total);
  EXPECT_FALSE(arena.all_empty());

  for (std::uint32_t i = 0; i < total; ++i) {
    expect_msg_eq(arena.pop(0, eid), msg(i), i);
    EXPECT_EQ(arena.size(eid), total - i - 1);
  }
  EXPECT_TRUE(arena.all_empty());
}

// Depth 1 means "the edge was idle" -- the signal the transmit fast path
// uses to deliver directly instead of queuing. It must come back after
// every full drain, including one that ends mid-chunk.
TEST(EdgeArena, PushDepthSignalsIdleEdgeAfterEveryDrain) {
  EdgeArena arena;
  arena.reset(3, 1);

  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_EQ(arena.push(0, 1, msg(cycle)), 1u) << "cycle " << cycle;
    EXPECT_EQ(arena.push(0, 1, msg(cycle + 10)), 2u);
    expect_msg_eq(arena.pop(0, 1), msg(cycle), cycle);
    expect_msg_eq(arena.pop(0, 1), msg(cycle + 10), cycle + 10);
    EXPECT_EQ(arena.size(1), 0u);
  }
  EXPECT_TRUE(arena.all_empty());
}

// Interleaved push/pop that keeps the queue deeper than one chunk: the head
// and tail advance through different chunks while FIFO order holds.
TEST(EdgeArena, InterleavedPushPopStraddlesChunks) {
  EdgeArena arena;
  arena.reset(2, 1);
  const std::uint32_t eid = 0;

  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Ramp up past two chunk boundaries, then slide a deep window along.
  for (; next_push < EdgeArena::kChunkCap * 2 + 3; ++next_push) {
    arena.push(0, eid, msg(next_push));
  }
  for (int step = 0; step < 100; ++step) {
    expect_msg_eq(arena.pop(0, eid), msg(next_pop), next_pop);
    ++next_pop;
    arena.push(0, eid, msg(next_push++));
    arena.push(0, eid, msg(next_push++));
    expect_msg_eq(arena.pop(0, eid), msg(next_pop), next_pop);
    ++next_pop;
  }
  while (next_pop < next_push) {
    expect_msg_eq(arena.pop(0, eid), msg(next_pop), next_pop);
    ++next_pop;
  }
  EXPECT_TRUE(arena.all_empty());
}

// The mux layer addresses lane backlogs as virtual edges veid = lane * E +
// eid. Each virtual edge is an independent FIFO: interleaving pushes across
// lanes of the same physical edge must not mix their orders or sizes.
TEST(EdgeArena, VirtualLaneEdgesAreIndependentFifos) {
  constexpr std::uint32_t kEdges = 6;
  constexpr std::uint32_t kLanes = 3;
  EdgeArena arena;
  arena.reset(static_cast<std::size_t>(kEdges) * kLanes, 1);
  const std::uint32_t base_eid = 4;

  // Round-robin the lanes so every chunk allocation interleaves with the
  // other lanes' allocations from the shared shard pool.
  const std::uint32_t per_lane = EdgeArena::kChunkCap + 7;
  for (std::uint32_t i = 0; i < per_lane; ++i) {
    for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
      const std::uint32_t veid = lane * kEdges + base_eid;
      EXPECT_EQ(arena.push(0, veid, msg(lane * 1000 + i)), i + 1);
    }
  }
  // Drain in a different lane order than the pushes used.
  for (std::uint32_t lane = kLanes; lane-- > 0;) {
    const std::uint32_t veid = lane * kEdges + base_eid;
    EXPECT_EQ(arena.size(veid), per_lane);
    for (std::uint32_t i = 0; i < per_lane; ++i) {
      expect_msg_eq(arena.pop(0, veid), msg(lane * 1000 + i), i);
    }
  }
  EXPECT_TRUE(arena.all_empty());
}

// clear_queue drops exactly one edge's backlog (multi-chunk included) and
// leaves the others intact; its recycled chunks are reused by later pushes.
TEST(EdgeArena, ClearQueueDropsOneBacklogAndRecyclesChunks) {
  EdgeArena arena;
  arena.reset(4, 1);
  for (std::uint32_t i = 0; i < EdgeArena::kChunkCap * 2 + 1; ++i) {
    arena.push(0, 0, msg(i));
  }
  arena.push(0, 3, msg(77));

  arena.clear_queue(0, 0);
  EXPECT_EQ(arena.size(0), 0u);
  EXPECT_EQ(arena.size(3), 1u);
  EXPECT_FALSE(arena.all_empty());

  // The cleared edge restarts as idle, on chunks recycled via the free
  // list, with no leftovers from the dropped backlog.
  EXPECT_EQ(arena.push(0, 0, msg(500)), 1u);
  expect_msg_eq(arena.pop(0, 0), msg(500), 500);
  expect_msg_eq(arena.pop(0, 3), msg(77), 77);
  EXPECT_TRUE(arena.all_empty());

  // clear_queue on an already-empty edge is a no-op.
  arena.clear_queue(0, 1);
  EXPECT_TRUE(arena.all_empty());
}

// reset() drops everything: queued messages, chunk pools, old geometry.
TEST(EdgeArena, ResetDropsAllStateForNewGeometry) {
  EdgeArena arena;
  arena.reset(8, 2);
  arena.push(1, 7, msg(1));
  arena.push(0, 0, msg(2));
  EXPECT_FALSE(arena.all_empty());

  arena.reset(2, 1);
  EXPECT_TRUE(arena.all_empty());
  EXPECT_EQ(arena.size(0), 0u);
  EXPECT_EQ(arena.push(0, 1, msg(9)), 1u);
  expect_msg_eq(arena.pop(0, 1), msg(9), 9);
}

// PackedToken round-trip at the packability boundary: 2^32 - 1 in every
// payload word packs losslessly (type, lane, f and the routing eid all
// survive); a single bit at 2^32 in any word must fail the classifier --
// such messages take the generic path, so packing them is out of contract.
TEST(EdgeArena, PackedTokenRoundTripsAtThePackabilityBoundary) {
  const std::uint32_t eid = 0xfeedbeefu;
  Message m;
  m.type = 0x7a5b;
  m.f = {0xffffffffull, 0, 0x12345678ull, 0xffffffffull};
  const std::uint16_t lane = 0x9c3d;
  ASSERT_TRUE(token_packable(m));

  const PackedToken t = pack_token(eid, m, lane);
  EXPECT_EQ(token_eid(t), eid);
  const Message back = unpack_token(t);
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.f, m.f);
  EXPECT_EQ(back.lane, lane);  // the network stamps the lane at pack time

  for (int word = 0; word < 4; ++word) {
    Message wide = m;
    wide.f[static_cast<std::size_t>(word)] = 1ull << 32;
    EXPECT_FALSE(token_packable(wide)) << "word " << word;
  }
}

}  // namespace
}  // namespace drw::congest
