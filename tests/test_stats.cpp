#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace drw {
namespace {

TEST(RunningStats, ExactMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Distances, L1AndTv) {
  const std::vector<double> a{0.5, 0.5, 0.0};
  const std::vector<double> b{0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(tv_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
}

TEST(Gamma, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_THROW(regularized_gamma_p(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquare, UniformSamplePasses) {
  // Perfectly balanced counts give statistic 0 and p-value 1.
  const std::vector<std::uint64_t> obs{100, 100, 100, 100};
  const std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  const auto result = chi_square_test(obs, probs);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_EQ(result.dof, 3u);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
}

TEST(ChiSquare, GrossMismatchFails) {
  const std::vector<std::uint64_t> obs{400, 0, 0, 0};
  const std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  const auto result = chi_square_test(obs, probs);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquare, PoolsSparseCells) {
  // Cells with tiny expectation get pooled; dof shrinks accordingly.
  const std::vector<std::uint64_t> obs{50, 50, 1, 0, 0};
  const std::vector<double> probs{0.5, 0.49, 0.005, 0.0025, 0.0025};
  const auto result = chi_square_test(obs, probs, 5.0);
  EXPECT_LE(result.dof, 2u);
  EXPECT_GT(result.p_value, 0.0);
}

TEST(ChiSquare, KnownStatisticValue) {
  // obs {60, 40} vs fair coin with 100 samples: chi2 = (10^2/50)*2 = 4.
  const std::vector<std::uint64_t> obs{60, 40};
  const std::vector<double> probs{0.5, 0.5};
  const auto result = chi_square_test(obs, probs);
  EXPECT_NEAR(result.statistic, 4.0, 1e-12);
  EXPECT_EQ(result.dof, 1u);
  // p-value for chi2(1) at 4.0 is ~0.0455.
  EXPECT_NEAR(result.p_value, 0.0455, 0.001);
}

TEST(LogLogSlope, RecoversExactExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 0.5));
  }
  EXPECT_NEAR(log_log_slope(x, y), 0.5, 1e-12);
}

TEST(LogLogSlope, IgnoresNonPositivePoints) {
  const std::vector<double> x{0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{5.0, 1.0, 2.0, 4.0};
  EXPECT_NEAR(log_log_slope(x, y), 1.0, 1e-12);
}

TEST(LogLogSlope, ThrowsOnDegenerateInput) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(log_log_slope(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace drw
