// Empirical checks of the paper's two key probabilistic lemmas:
//   * Lemma 2.6: in an l-step walk, no node x is visited more than
//     24 d(x) sqrt(l+1) log n + k times (w.h.p.).
//   * Lemma 2.7: if a node appears t times in the walk, it appears as a
//     connector at most t (log n)^2 / lambda times (w.h.p.) -- thanks to the
//     random short-walk lengths; fixed lengths break this on periodic graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw::core {
namespace {

using congest::Network;

/// Counts visits per node of a centrally simulated l-step walk.
std::vector<std::uint64_t> central_walk_visits(const Graph& g, NodeId source,
                                               std::uint64_t l, Rng& rng) {
  std::vector<std::uint64_t> visits(g.node_count(), 0);
  NodeId at = source;
  ++visits[at];
  for (std::uint64_t i = 0; i < l; ++i) {
    at = g.neighbor(at, static_cast<std::uint32_t>(
                            rng.next_below(g.degree(at))));
    ++visits[at];
  }
  return visits;
}

struct VisitCase {
  const char* name;
  Graph graph;
  std::uint64_t l;
};

class VisitBound : public ::testing::TestWithParam<int> {};

std::vector<VisitCase> visit_cases() {
  Rng rng(123);
  std::vector<VisitCase> cases;
  cases.push_back({"line", gen::path(64), 4096});
  cases.push_back({"star", gen::star(64), 4096});
  cases.push_back({"lollipop", gen::lollipop(16, 32), 4096});
  cases.push_back({"expander", gen::random_regular(64, 4, rng), 4096});
  cases.push_back({"cycle", gen::cycle(48), 2048});
  return cases;
}

TEST_P(VisitBound, Lemma26HoldsOnEveryFamily) {
  const auto cases = visit_cases();
  const VisitCase& c = cases[static_cast<std::size_t>(GetParam())];
  const double logn =
      std::log2(static_cast<double>(c.graph.node_count()));
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const auto visits = central_walk_visits(c.graph, 0, c.l, rng);
    for (NodeId x = 0; x < c.graph.node_count(); ++x) {
      const double bound =
          24.0 * c.graph.degree(x) *
              std::sqrt(static_cast<double>(c.l + 1)) * logn + 1.0;
      EXPECT_LE(static_cast<double>(visits[x]), bound)
          << c.name << " node " << x << " visited " << visits[x];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, VisitBound, ::testing::Range(0, 5));

TEST(VisitBound, LineIsNearTight) {
  // The paper notes the bound is tight on a line: visits to the origin of an
  // l-step walk on a line scale like sqrt(l), not polylog.
  const Graph g = gen::path(96);
  Rng rng(7);
  double total_sqrt_scaled_small = 0;
  double total_sqrt_scaled_large = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    total_sqrt_scaled_small +=
        static_cast<double>(central_walk_visits(g, 48, 256, rng)[48]);
    total_sqrt_scaled_large +=
        static_cast<double>(central_walk_visits(g, 48, 4096, rng)[48]);
  }
  // sqrt(4096/256) = 4: expect the mean visit count to grow ~4x (wide slack).
  const double ratio = total_sqrt_scaled_large / total_sqrt_scaled_small;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(ConnectorBound, RandomLengthsSpreadConnectorsOnCycle) {
  // Lemma 2.7 ablation: on a cycle, fixed lambda-length short walks can
  // resonate with the graph's period so the same nodes recur as connectors;
  // random lengths in [lambda, 2 lambda) break the periodicity. We compare
  // the maximum connector concentration over many runs.
  const std::size_t n = 24;
  const Graph g = gen::cycle(n);
  const std::uint64_t l = 300;
  const std::uint32_t lambda = 8;

  auto max_connector_visits = [&](bool random_lengths,
                                  std::uint64_t seed) -> std::uint64_t {
    Params params = random_lengths ? Params::paper() : Params::podc09();
    params.lambda_override = lambda;
    params.eta = 4.0;
    Network net(g, seed);
    StitchEngine engine(net, params, static_cast<std::uint32_t>(n / 2));
    engine.prepare(1, l);
    const WalkResult result = engine.walk(0, l, 0);
    (void)result;
    return engine.max_connector_visits();
  };

  std::uint64_t fixed_total = 0;
  std::uint64_t random_total = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    fixed_total += max_connector_visits(false, 500 + t);
    random_total += max_connector_visits(true, 500 + t);
  }
  // Random lengths must not concentrate more than fixed ones do; typically
  // they concentrate strictly less on the periodic cycle.
  EXPECT_LE(random_total, fixed_total + trials);
}

TEST(ConnectorBound, ConnectorVisitsObeyLemma27Form) {
  // On an expander, the number of times any node recurs as a connector in
  // one walk stays small: bounded by t (log n)^2 / lambda with t the visit
  // bound -- we check a generous absolute version.
  Rng rng(99);
  const Graph g = gen::random_regular(40, 4, rng);
  Params params = Params::paper();
  params.lambda_override = 10;
  const std::uint64_t l = 600;
  for (int t = 0; t < 10; ++t) {
    Network net(g, 900 + t);
    StitchEngine engine(net, params, exact_diameter(g));
    engine.prepare(1, l);
    engine.walk(5, l, 0);
    // l / lambda = 60 stitches spread over 40 nodes; no node should be hit
    // as a connector an outsized number of times.
    EXPECT_LE(engine.max_connector_visits(), 12u);
  }
}

}  // namespace
}  // namespace drw::core
