// drw::net framing and the loopback WalkServer end to end: frames survive
// encode/decode round trips, malformed bytes never decode, and responses
// served over a real TCP socket are identical to an in-process replay of
// the same admitted order (the contract the server-smoke CI step checks
// against the shipped binary).
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "net/socket.hpp"
#include "service/server.hpp"
#include "service/walk_service.hpp"

namespace drw::service {
namespace {

TEST(NetFrame, HelloRoundTrips) {
  net::HelloFrame f;
  f.version = net::kProtocolVersion;
  f.klass = "light";
  f.node_count = 12345;
  const auto bytes = net::encode_hello(f);
  const auto back = net::decode_hello(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, f.version);
  EXPECT_EQ(back->klass, f.klass);
  EXPECT_EQ(back->node_count, f.node_count);
}

TEST(NetFrame, RequestRoundTrips) {
  net::RequestFrame f;
  f.tag = 0xdeadbeefcafeull;
  f.source = 42;
  f.length = 1u << 20;
  f.count = 7;
  f.deadline_ms = 1500;
  f.record = true;
  const auto bytes = net::encode_request(f);
  const auto back = net::decode_request(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tag, f.tag);
  EXPECT_EQ(back->source, f.source);
  EXPECT_EQ(back->length, f.length);
  EXPECT_EQ(back->count, f.count);
  EXPECT_EQ(back->deadline_ms, f.deadline_ms);
  EXPECT_EQ(back->record, f.record);
}

TEST(NetFrame, ResponseRoundTripsWithPaths) {
  net::ResponseFrame f;
  f.tag = 9;
  f.admission_index = 3;
  f.status = static_cast<std::uint8_t>(RequestStatus::kOk);
  f.record = true;
  f.destinations = {5, 6, 7};
  f.paths = {{1, 2, 5}, {1, 4, 6}, {1, 2, 7}};
  const auto bytes = net::encode_response(f);
  const auto back = net::decode_response(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tag, f.tag);
  EXPECT_EQ(back->admission_index, f.admission_index);
  EXPECT_EQ(back->status, f.status);
  EXPECT_EQ(back->record, f.record);
  EXPECT_EQ(back->destinations, f.destinations);
  EXPECT_EQ(back->paths, f.paths);
}

TEST(NetFrame, RejectedResponseRoundTrips) {
  net::ResponseFrame f;
  f.tag = 77;
  f.admission_index = net::kNotAdmitted;
  f.status = static_cast<std::uint8_t>(RequestStatus::kQueueFull);
  const auto bytes = net::encode_response(f);
  const auto back = net::decode_response(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->admission_index, net::kNotAdmitted);
  EXPECT_EQ(back->status, f.status);
  EXPECT_TRUE(back->destinations.empty());
  EXPECT_TRUE(back->paths.empty());
}

TEST(NetFrame, DecodersRejectTruncationAndTrailingBytes) {
  net::HelloFrame hello;
  hello.klass = "flood";
  hello.node_count = 99;
  net::RequestFrame request;
  request.record = true;
  net::ResponseFrame response;
  response.destinations = {1, 2};
  response.record = true;
  response.paths = {{0, 1}, {0, 2}};
  const auto check = [](std::vector<std::uint8_t> bytes, auto decode) {
    // Every strict prefix is rejected...
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_FALSE(decode(bytes.data(), n).has_value()) << "prefix " << n;
    }
    // ...and so is one trailing junk byte.
    bytes.push_back(0xab);
    EXPECT_FALSE(decode(bytes.data(), bytes.size()).has_value());
  };
  check(net::encode_hello(hello),
        [](const std::uint8_t* p, std::size_t n) { return net::decode_hello(p, n); });
  check(net::encode_request(request),
        [](const std::uint8_t* p, std::size_t n) { return net::decode_request(p, n); });
  check(net::encode_response(response),
        [](const std::uint8_t* p, std::size_t n) { return net::decode_response(p, n); });
}

TEST(NetFrame, DecodeResponseRejectsLyingCounts) {
  // A destination count that promises more elements than the payload holds
  // must not drive a huge allocation or an out-of-bounds read.
  net::ResponseFrame f;
  f.destinations = {1};
  auto bytes = net::encode_response(f);
  // n_destinations lives after tag(8) + admission_index(8) + status(1) +
  // record(1); patch it to a huge value.
  const std::size_t off = 8 + 8 + 1 + 1;
  bytes[off + 0] = 0xff;
  bytes[off + 1] = 0xff;
  bytes[off + 2] = 0xff;
  bytes[off + 3] = 0xff;
  EXPECT_FALSE(net::decode_response(bytes.data(), bytes.size()).has_value());
}

TEST(NetFrame, DecodeResponseRejectsLyingPathCount) {
  // Same for the path count: a tiny frame claiming millions of paths must
  // be rejected before f.paths is resized (each path needs at least its
  // 4-byte length word).
  net::ResponseFrame f;
  f.record = true;
  f.paths = {{1}};
  auto bytes = net::encode_response(f);
  // n_paths lives after tag(8) + admission_index(8) + status(1) +
  // record(1) + n_destinations(4) + 0 destinations.
  const std::size_t off = 8 + 8 + 1 + 1 + 4;
  bytes[off + 0] = 0xff;
  bytes[off + 1] = 0xff;
  bytes[off + 2] = 0x3f;  // ~4M paths "promised" by an 8-byte tail
  bytes[off + 3] = 0x00;
  EXPECT_FALSE(net::decode_response(bytes.data(), bytes.size()).has_value());
}

TEST(NetFrame, ReadFrameRejectsOversizedAndUnknownFrames) {
  net::Socket listener = net::tcp_listen("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(listener);
  net::Socket client = net::tcp_connect("127.0.0.1", port, 2000);
  net::Socket server_side = net::accept_one(listener, -1, 2000);
  ASSERT_TRUE(server_side.valid());

  // Oversized length prefix: rejected before any allocation.
  std::uint8_t oversized[5] = {0, 0, 0, 0xff, 1};  // len = 0xff000000 > 16MiB
  ASSERT_TRUE(net::send_all(client, oversized, sizeof(oversized), 2000));
  net::FrameType type;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(net::read_frame(server_side, &type, &payload, 2000));

  // Unknown type byte on a fresh connection.
  net::Socket client2 = net::tcp_connect("127.0.0.1", port, 2000);
  net::Socket server_side2 = net::accept_one(listener, -1, 2000);
  ASSERT_TRUE(server_side2.valid());
  std::uint8_t unknown[5] = {0, 0, 0, 0, 42};  // len 0, type 42
  ASSERT_TRUE(net::send_all(client2, unknown, sizeof(unknown), 2000));
  EXPECT_FALSE(net::read_frame(server_side2, &type, &payload, 2000));
}

TEST(NetSocket, SendAllTimesOutInsteadOfBlockingOnStuckPeer) {
  // A peer that stops reading must surface as a send_all timeout, not an
  // indefinitely parked ::send (the "one slow client wedges the serving
  // thread" failure mode). Data sockets are non-blocking, so once the
  // kernel buffers fill, send returns EAGAIN and the poll carries the
  // timeout.
  net::Socket listener = net::tcp_listen("127.0.0.1", 0);
  net::Socket client = net::tcp_connect("127.0.0.1",
                                        net::local_port(listener), 2000);
  net::Socket server_side = net::accept_one(listener, -1, 2000);
  ASSERT_TRUE(server_side.valid());

  // Nobody reads from `client`, so this can never fully transmit: the
  // send must give up after the timeout instead of blocking forever.
  const std::vector<std::uint8_t> big(64u << 20, 0xab);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(net::send_all(server_side, big.data(), big.size(),
                             /*timeout_ms=*/250));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 10000) << "send_all did not honor its timeout";
}

// One HELLO handshake + N awaited request/response exchanges on a fresh
// connection to `server`. Awaiting each response before sending the next
// pins the batch boundaries (one request per batch), which makes the
// in-process replay below exact.
struct Exchange {
  net::RequestFrame request;
  net::ResponseFrame response;
};

std::vector<Exchange> drive(WalkServer& server, const std::string& klass,
                            const std::vector<net::RequestFrame>& requests,
                            std::uint64_t* node_count = nullptr) {
  net::Socket sock = net::tcp_connect("127.0.0.1", server.port(), 5000);
  net::HelloFrame hello;
  hello.klass = klass;
  EXPECT_TRUE(net::write_frame(sock, net::FrameType::kHello,
                               net::encode_hello(hello), 5000));
  net::FrameType type;
  std::vector<std::uint8_t> payload;
  EXPECT_TRUE(net::read_frame(sock, &type, &payload, 5000));
  EXPECT_EQ(type, net::FrameType::kHello);
  const auto reply = net::decode_hello(payload.data(), payload.size());
  EXPECT_TRUE(reply.has_value());
  if (node_count != nullptr && reply.has_value()) {
    *node_count = reply->node_count;
  }

  std::vector<Exchange> out;
  for (const net::RequestFrame& r : requests) {
    EXPECT_TRUE(net::write_frame(sock, net::FrameType::kRequest,
                                 net::encode_request(r), 5000));
    EXPECT_TRUE(net::read_frame(sock, &type, &payload, 5000));
    EXPECT_EQ(type, net::FrameType::kResponse);
    const auto resp = net::decode_response(payload.data(), payload.size());
    EXPECT_TRUE(resp.has_value());
    if (resp.has_value()) {
      EXPECT_EQ(resp->tag, r.tag);
      out.push_back(Exchange{r, *resp});
    }
  }
  return out;
}

TEST(WalkServerLoopback, ServedResponsesMatchInProcessReplay) {
  const std::uint64_t kSeed = 4242;
  csr::LoadedGraph lg;
  lg.graph = gen::torus(6, 6);
  const std::uint32_t diameter = exact_diameter(lg.graph);

  ServiceConfig sc;
  sc.enable_paths = true;
  congest::Network net_live(lg.graph, kSeed);
  WalkService service(net_live, diameter, sc);

  ServerConfig server_config;  // ephemeral port, default admission
  WalkServer server(service, lg, server_config);
  server.start();
  ASSERT_NE(server.port(), 0);

  std::vector<net::RequestFrame> requests;
  for (std::uint64_t i = 0; i < 5; ++i) {
    net::RequestFrame r;
    r.tag = 100 + i;
    r.source = (i * 7) % lg.graph.node_count();
    r.length = 16 + 8 * i;
    r.count = 1 + static_cast<std::uint32_t>(i % 2);
    r.record = (i == 2);
    requests.push_back(r);
  }
  std::uint64_t node_count = 0;
  const auto exchanges = drive(server, "light", requests, &node_count);
  EXPECT_EQ(node_count, lg.graph.node_count());
  ASSERT_EQ(exchanges.size(), requests.size());

  server.request_stop();
  server.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.admitted, requests.size());
  EXPECT_EQ(stats.batches, requests.size());  // awaited: one batch each

  // Replay: a fresh network with the same seed, served in the same order
  // with the same batch boundaries, must reproduce every destination and
  // path exactly.
  congest::Network net_replay(lg.graph, kSeed);
  WalkService replay(net_replay, diameter, sc);
  for (std::size_t i = 0; i < exchanges.size(); ++i) {
    const Exchange& e = exchanges[i];
    EXPECT_EQ(e.response.admission_index, i);
    EXPECT_EQ(static_cast<RequestStatus>(e.response.status),
              RequestStatus::kOk);
    const BatchReport report = replay.serve({WalkRequest{
        static_cast<NodeId>(e.request.source), e.request.length,
        e.request.count, e.request.record}});
    ASSERT_EQ(report.results.size(), 1u);
    const RequestResult& r = report.results[0];
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.destinations.size(), e.response.destinations.size());
    for (std::size_t d = 0; d < r.destinations.size(); ++d) {
      EXPECT_EQ(r.destinations[d], e.response.destinations[d])
          << "request " << i << " destination " << d;
    }
    if (e.request.record) {
      ASSERT_EQ(r.paths.size(), e.response.paths.size());
      for (std::size_t p = 0; p < r.paths.size(); ++p) {
        ASSERT_EQ(r.paths[p].size(), e.response.paths[p].size());
        for (std::size_t s = 0; s < r.paths[p].size(); ++s) {
          EXPECT_EQ(r.paths[p][s], e.response.paths[p][s]);
        }
      }
    } else {
      EXPECT_TRUE(e.response.paths.empty());
    }
  }
}

TEST(WalkServerLoopback, InvalidRequestsRejectBeforeAdmission) {
  csr::LoadedGraph lg;
  lg.graph = gen::grid(4, 4);
  congest::Network net_live(lg.graph, 9);
  WalkService service(net_live, exact_diameter(lg.graph));  // paths OFF

  WalkServer server(service, lg, ServerConfig{});
  server.start();

  std::vector<net::RequestFrame> requests(2);
  requests[0].tag = 1;
  requests[0].source = 1u << 20;  // out of the 16-node user id space
  requests[0].length = 8;
  requests[1].tag = 2;
  requests[1].source = 3;
  requests[1].length = 8;
  requests[1].record = true;  // paths disabled on this service
  const auto exchanges = drive(server, "default", requests);
  ASSERT_EQ(exchanges.size(), 2u);
  EXPECT_EQ(exchanges[0].response.admission_index, net::kNotAdmitted);
  EXPECT_EQ(static_cast<RequestStatus>(exchanges[0].response.status),
            RequestStatus::kSourceOutOfRange);
  EXPECT_EQ(exchanges[1].response.admission_index, net::kNotAdmitted);
  EXPECT_EQ(static_cast<RequestStatus>(exchanges[1].response.status),
            RequestStatus::kPathsDisabled);

  server.request_stop();
  server.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_invalid, 2u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(WalkServerLoopback, ReapsDeadConnectionsAndTheirFlows) {
  // An always-on server must not accumulate Conn entries (fd + joined
  // reader thread) or AdmissionQueue flow state for connections that have
  // come and gone: the accept loop sweeps them every poll tick.
  csr::LoadedGraph lg;
  lg.graph = gen::grid(4, 4);
  congest::Network net_live(lg.graph, 7);
  WalkService service(net_live, exact_diameter(lg.graph));

  WalkServer server(service, lg, ServerConfig{});
  server.start();

  for (int round = 0; round < 3; ++round) {
    net::RequestFrame r;
    r.tag = 10 + round;
    r.source = static_cast<std::uint64_t>(round);
    r.length = 4;
    const auto exchanges = drive(server, "churn", {r});
    ASSERT_EQ(exchanges.size(), 1u);
  }  // drive's socket closes here; the reader sees EOF and marks it dead

  // The sweep runs on the accept loop's 250ms poll tick; give it a few.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((server.open_connections() > 0 || server.queue().flow_count() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server.open_connections(), 0u)
      << "dead connections were never reaped";
  EXPECT_EQ(server.queue().flow_count(), 0u)
      << "released flows were never erased";

  server.request_stop();
  server.join();
  EXPECT_EQ(server.stats().connections, 3u);
  EXPECT_EQ(server.stats().admitted, 3u);
}

}  // namespace
}  // namespace drw::service
