// Resilience tier-1 (drw::resil): warm-restart bit-equivalence across
// thread count x partition x mux width, torn/corrupt-snapshot detection
// degrading to cold start, deterministic failpoints (zero-overhead while
// disarmed), exception-safe Network reuse after a throwing protocol, and
// service-boundary validation caps with structured per-request errors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "core/random_walks.hpp"
#include "core/walk_state.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "resil/failpoint.hpp"
#include "resil/snapshot.hpp"
#include "service/walk_service.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

using service::BatchReport;
using service::RequestStatus;
using service::ServiceConfig;
using service::WalkRequest;
using service::WalkService;

const unsigned kThreadCounts[] = {1, 2, 8};

std::string tmp_path(const char* name) { return ::testing::TempDir() + name; }

ServiceConfig resil_config(unsigned threads, unsigned mux,
                           std::optional<congest::Partition> partition = {}) {
  ServiceConfig config;
  config.params = core::Params::paper();
  config.params.lambda_override = 4;  // tiny lambda: stitching-heavy batches
  config.enable_paths = true;
  config.threads = threads;
  config.mux_width = mux;
  config.partition = partition;
  return config;
}

// Heterogeneous batches: mixed sources, lengths, counts and recorded paths,
// so a snapshot must carry trajectories, inventory and RNG streams to
// reproduce them.
std::vector<WalkRequest> batch_one() {
  return {{1, 33, 3, true}, {9, 25, 2, false}, {4, 18, 2, true}};
}
std::vector<WalkRequest> batch_two() {
  return {{2, 28, 2, true}, {0, 33, 3, false}, {7, 12, 2, true}};
}

/// Bit-equivalence of two batch reports: destinations, paths, per-request
/// stats/counters and every deterministic batch aggregate (wall_ms is the
/// one legitimately nondeterministic field and is excluded).
void expect_reports_identical(const BatchReport& got, const BatchReport& ref,
                              const std::string& label) {
  ASSERT_EQ(got.results.size(), ref.results.size()) << label;
  for (std::size_t i = 0; i < ref.results.size(); ++i) {
    const auto& a = got.results[i];
    const auto& b = ref.results[i];
    EXPECT_EQ(a.status, b.status) << label << " request " << i;
    EXPECT_EQ(a.destinations, b.destinations) << label << " request " << i;
    EXPECT_EQ(a.paths, b.paths) << label << " request " << i;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << label << " request " << i;
    EXPECT_EQ(a.stats.messages, b.stats.messages)
        << label << " request " << i;
    EXPECT_EQ(a.counters.lambda, b.counters.lambda)
        << label << " request " << i;
    EXPECT_EQ(a.counters.stitches, b.counters.stitches)
        << label << " request " << i;
    EXPECT_EQ(a.counters.sample_calls, b.counters.sample_calls)
        << label << " request " << i;
    EXPECT_EQ(a.counters.get_more_walks_calls, b.counters.get_more_walks_calls)
        << label << " request " << i;
    EXPECT_EQ(a.counters.naive_tail_steps, b.counters.naive_tail_steps)
        << label << " request " << i;
  }
  EXPECT_EQ(got.stats.rounds, ref.stats.rounds) << label;
  EXPECT_EQ(got.stats.messages, ref.stats.messages) << label;
  EXPECT_EQ(got.walks, ref.walks) << label;
  EXPECT_EQ(got.lambda, ref.lambda) << label;
  EXPECT_EQ(got.stitches, ref.stitches) << label;
  EXPECT_EQ(got.inventory_hits, ref.inventory_hits) << label;
  EXPECT_EQ(got.engine_gmw_calls, ref.engine_gmw_calls) << label;
  EXPECT_EQ(got.replenishments, ref.replenishments) << label;
  EXPECT_EQ(got.replenished_walks, ref.replenished_walks) << label;
  EXPECT_EQ(got.mux_groups, ref.mux_groups) << label;
  EXPECT_EQ(got.mux_lanes, ref.mux_lanes) << label;
  EXPECT_EQ(got.mux_conflicts, ref.mux_conflicts) << label;
  EXPECT_EQ(got.rejected, ref.rejected) << label;
}

// ------------------------------------------------------------ warm restart

// The acceptance gate: snapshot after batch 1, restore into a fresh
// service, serve batch 2 -- bit-identical to the uninterrupted run at every
// thread count x partition x mux width. Also cross-checks that all configs
// sharing a mux width agree with each other (threads/partition never change
// results; mux width legitimately does).
TEST(Resil, WarmRestartBitIdenticalAcrossThreadsPartitionAndMux) {
  Rng graph_rng(808);
  const Graph g = gen::random_regular(64, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_warm.snap");
  const congest::Partition partitions[] = {congest::Partition::kEdgeWeighted,
                                           congest::Partition::kNodeCount};

  for (const unsigned mux : {1u, 4u}) {
    bool have_mux_ref = false;
    BatchReport mux_ref;
    for (const congest::Partition partition : partitions) {
      for (const unsigned threads : kThreadCounts) {
        const std::string label =
            "mux=" + std::to_string(mux) + " partition=" +
            std::to_string(static_cast<int>(partition)) +
            " threads=" + std::to_string(threads);

        // Uninterrupted run: batch 1, checkpoint, batch 2 (the reference).
        congest::Network net_a(g, 4242);
        WalkService a(net_a, diameter, resil_config(threads, mux, partition));
        a.serve(batch_one());
        a.save_snapshot(path);
        const BatchReport ref = a.serve(batch_two());

        // Warm restart: fresh network + service, adopt the checkpoint,
        // serve the same batch 2.
        congest::Network net_b(g, 4242);
        WalkService b(net_b, diameter, resil_config(threads, mux, partition));
        ASSERT_TRUE(b.restore_snapshot(path)) << label;
        const BatchReport got = b.serve(batch_two());
        expect_reports_identical(got, ref, label);

        // Threads/partition are not part of the result contract: every
        // config at this mux width must agree.
        if (!have_mux_ref) {
          mux_ref = ref;
          have_mux_ref = true;
        } else {
          expect_reports_identical(ref, mux_ref, label + " vs mux baseline");
        }
      }
    }
  }
  std::remove(path.c_str());
}

// The snapshot-after-batch policy (ServiceConfig::snapshot_path) writes a
// checkpoint the moment a batch retires, and that checkpoint round-trips
// under concurrent stitching (mux_width > 1).
TEST(Resil, SnapshotAfterBatchPolicyRoundTripsUnderMux) {
  Rng graph_rng(515);
  const Graph g = gen::random_regular(48, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_policy.snap");
  std::remove(path.c_str());

  ServiceConfig config = resil_config(2, 4);
  config.snapshot_path = path;
  congest::Network net_a(g, 99);
  WalkService a(net_a, diameter, config);
  a.serve(batch_one());  // policy checkpoint fires here

  const resil::ReadOutcome outcome = resil::read_snapshot_file(path);
  ASSERT_TRUE(outcome.snapshot.has_value()) << outcome.error;
  EXPECT_EQ(outcome.snapshot->rng_states.size(), g.node_count());
  EXPECT_EQ(outcome.snapshot->inventory.unused.size(), g.node_count());

  // Restore BEFORE serving batch 2 on `a`: its policy would overwrite the
  // post-batch-1 checkpoint this test is about.
  congest::Network net_b(g, 99);
  WalkService b(net_b, diameter, resil_config(2, 4));
  ASSERT_TRUE(b.restore_snapshot(path));

  const BatchReport ref = a.serve(batch_two());
  const BatchReport got = b.serve(batch_two());
  expect_reports_identical(got, ref, "policy snapshot, mux=4");
  std::remove(path.c_str());
}

// ------------------------------------------------------ snapshot rotation

// snapshot_keep > 1: every checkpoint rotates path.1 (newest) .. path.N and
// restore walks them newest-first, falling back a generation per corrupt
// file, so losing the latest checkpoint costs one batch of warmth instead
// of a cold start. Generation by generation:
//   S1 = state after batch 1, S2 = after batch 2, S3 = after batch 3.
TEST(Resil, SnapshotRotationRestoresNewestValidGeneration) {
  Rng graph_rng(717);
  const Graph g = gen::random_regular(48, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_rotate.snap");
  const auto slot_path = [&](std::uint32_t slot) {
    return resil::snapshot_generation_path(path, slot);
  };
  for (std::uint32_t slot = 0; slot <= 3; ++slot) {
    std::remove(slot_path(slot).c_str());
  }
  const auto exists = [](const std::string& file) {
    return std::ifstream(file, std::ios::binary).good();
  };
  // Restoring services rotate-aware (snapshot_keep) but never checkpoint
  // themselves (no snapshot_path), so restores don't disturb the files.
  const auto restorer_config = [&]() {
    ServiceConfig config = resil_config(2, 1);
    config.snapshot_keep = 3;
    return config;
  };

  ServiceConfig writer = resil_config(2, 1);
  writer.snapshot_path = path;
  writer.snapshot_keep = 3;
  congest::Network net_a(g, 31);
  WalkService a(net_a, diameter, writer);

  a.serve(batch_one());  // checkpoint S1 -> .1
  a.serve(batch_two());  // rotate (.1 -> .2), checkpoint S2 -> .1
  EXPECT_TRUE(exists(slot_path(1)));
  EXPECT_TRUE(exists(slot_path(2)));
  EXPECT_FALSE(exists(slot_path(3)));
  EXPECT_FALSE(exists(path)) << "rotation must not write the plain path";

  // Newest wins: a restore now adopts S2 (.1), so serving batch 3 matches
  // the uninterrupted run's batch 3. Restore BEFORE `a` serves it -- a's
  // policy rotates the files again the moment that batch retires.
  congest::Network net_b(g, 31);
  WalkService b(net_b, diameter, restorer_config());
  ASSERT_TRUE(b.restore_snapshot(path));
  const BatchReport ref3 = a.serve(batch_one());  // S2 -> S3; .1=S3 .2=S2 .3=S1
  expect_reports_identical(b.serve(batch_one()), ref3, "newest generation");
  EXPECT_TRUE(exists(slot_path(3)));

  const auto corrupt = [&](const std::string& file) {
    std::fstream io(file,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(48);  // mid-payload: caught by the CRC
    char byte = 0;
    io.seekg(48);
    io.get(byte);
    byte ^= 0x20;
    io.seekp(48);
    io.put(byte);
  };

  // Corrupt .1 (S3): restore falls back to .2 = S2, so batch 3 replays
  // bit-identically to ref3 again.
  corrupt(slot_path(1));
  congest::Network net_c(g, 31);
  WalkService c(net_c, diameter, restorer_config());
  ASSERT_TRUE(c.restore_snapshot(path));
  expect_reports_identical(c.serve(batch_one()), ref3,
                           "fallback to second generation");

  // Corrupt .2 (S2) as well: restore reaches .3 = S1, the state after
  // batch 1 -- from which batch_two replays a's second batch. That report
  // is recomputed from an independent uninterrupted run (a has moved on).
  congest::Network net_ref(g, 31);
  WalkService uninterrupted(net_ref, diameter, resil_config(2, 1));
  uninterrupted.serve(batch_one());
  const BatchReport ref2 = uninterrupted.serve(batch_two());
  corrupt(slot_path(2));
  congest::Network net_d(g, 31);
  WalkService d(net_d, diameter, restorer_config());
  ASSERT_TRUE(d.restore_snapshot(path));
  expect_reports_identical(d.serve(batch_two()), ref2,
                           "fallback to oldest generation");

  // Every generation corrupt: detected, cold start.
  corrupt(slot_path(3));
  congest::Network net_e(g, 31);
  WalkService e(net_e, diameter, restorer_config());
  EXPECT_FALSE(e.restore_snapshot(path));

  for (std::uint32_t slot = 0; slot <= 3; ++slot) {
    std::remove(slot_path(slot).c_str());
  }
}

// Migration: a plain single-file checkpoint (written under keep == 1, the
// historical layout) still warm-starts a service configured with
// snapshot_keep > 1 -- the plain path is the last restore candidate.
TEST(Resil, SnapshotRotationFallsBackToPlainPathCheckpoint) {
  Rng graph_rng(818);
  const Graph g = gen::random_regular(48, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_migrate.snap");
  std::remove((path + ".1").c_str());

  congest::Network net_a(g, 13);
  WalkService a(net_a, diameter, resil_config(2, 1));
  a.serve(batch_one());
  a.save_snapshot(path);  // keep == 1: plain path, no generations

  ServiceConfig rotated = resil_config(2, 1);
  rotated.snapshot_keep = 3;
  congest::Network net_b(g, 13);
  WalkService b(net_b, diameter, rotated);
  ASSERT_TRUE(b.restore_snapshot(path));
  const BatchReport ref = a.serve(batch_two());
  expect_reports_identical(b.serve(batch_two()), ref,
                           "plain-path migration");
  std::remove(path.c_str());
}

// ------------------------------------------------- corruption -> cold start

// Every corruption mode must be *detected* (restore_snapshot returns false,
// service untouched) and must degrade to a working cold start, never UB.
TEST(Resil, CorruptSnapshotsAreDetectedAndDegradeToColdStart) {
  Rng graph_rng(616);
  const Graph g = gen::random_regular(48, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_corrupt.snap");

  congest::Network net_a(g, 7);
  WalkService a(net_a, diameter, resil_config(2, 1));
  a.serve(batch_one());
  a.save_snapshot(path);

  const auto file_bytes = [&]() {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  const auto write_bytes = [&](const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::vector<char> pristine = file_bytes();
  ASSERT_GT(pristine.size(), 64u);

  const auto expect_cold_start = [&](const std::string& why) {
    congest::Network net(g, 7);
    WalkService s(net, diameter, resil_config(2, 1));
    EXPECT_FALSE(s.restore_snapshot(path)) << why;
    // Cold start still serves correctly.
    const BatchReport report = s.serve({{3, 12, 2, false}});
    ASSERT_EQ(report.results.size(), 1u) << why;
    ASSERT_EQ(report.results[0].destinations.size(), 2u) << why;
    for (const NodeId d : report.results[0].destinations) {
      EXPECT_LT(d, g.node_count()) << why;
    }
  };

  {  // Payload bit flip: caught by the CRC.
    std::vector<char> bytes = pristine;
    bytes[48] = static_cast<char>(bytes[48] ^ 0x10);
    write_bytes(bytes);
    const resil::ReadOutcome rc = resil::read_snapshot_file(path);
    EXPECT_FALSE(rc.snapshot.has_value());
    EXPECT_NE(rc.error.find("checksum"), std::string::npos) << rc.error;
    expect_cold_start("payload bit flip");
  }
  {  // Last-byte bit flip (tail corruption).
    std::vector<char> bytes = pristine;
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    write_bytes(bytes);
    expect_cold_start("tail bit flip");
  }
  {  // Clobbered magic: not a snapshot at all.
    std::vector<char> bytes = pristine;
    bytes[0] = 'X';
    write_bytes(bytes);
    const resil::ReadOutcome rc = resil::read_snapshot_file(path);
    EXPECT_FALSE(rc.snapshot.has_value());
    EXPECT_NE(rc.error.find("magic"), std::string::npos) << rc.error;
    expect_cold_start("bad magic");
  }
  {  // Torn tail: file cut below the size the header promises.
    std::vector<char> bytes = pristine;
    bytes.resize(bytes.size() / 2);
    write_bytes(bytes);
    expect_cold_start("truncated file");
  }
  {  // Header cut mid-way.
    std::vector<char> bytes = pristine;
    bytes.resize(16);
    write_bytes(bytes);
    expect_cold_start("truncated header");
  }

  write_bytes(pristine);
  {  // Fingerprint mismatch: same graph, different master seed.
    congest::Network net(g, 8);
    WalkService s(net, diameter, resil_config(2, 1));
    EXPECT_FALSE(s.restore_snapshot(path));
  }
  {  // Fingerprint salt: a paths snapshot must not warm-start a service
     // with paths disabled (and vice versa).
    congest::Network net(g, 7);
    ServiceConfig no_paths = resil_config(2, 1);
    no_paths.enable_paths = false;
    WalkService s(net, diameter, no_paths);
    EXPECT_FALSE(s.restore_snapshot(path));
  }
  std::remove(path.c_str());
  {  // Missing file.
    congest::Network net(g, 7);
    WalkService s(net, diameter, resil_config(2, 1));
    EXPECT_FALSE(s.restore_snapshot(path));
  }
}

TEST(Resil, SaveSnapshotRequiresAPreparedEngine) {
  const Graph g = gen::torus(4, 4);
  congest::Network net(g, 3);
  WalkService s(net, exact_diameter(g), resil_config(1, 1));
  EXPECT_THROW(s.save_snapshot(tmp_path("drw_resil_never.snap")),
               std::logic_error);
}

// --------------------------------------------------------------- failpoints

class ResilFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { resil::disarm_failpoints(); }
};

TEST_F(ResilFailpointTest, ShortWriteTornSnapshotFailsValidation) {
  Rng graph_rng(717);
  const Graph g = gen::random_regular(32, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::string path = tmp_path("drw_resil_torn.snap");

  congest::Network net_a(g, 11);
  WalkService a(net_a, diameter, resil_config(1, 1));
  a.serve(batch_one());

  resil::arm_failpoints("snapshot.write@1:short_write");
  a.save_snapshot(path);  // writes a torn file: header promises more bytes
  EXPECT_EQ(resil::failpoint_hits("snapshot.write"), 1u);
  resil::disarm_failpoints();

  const resil::ReadOutcome rc = resil::read_snapshot_file(path);
  EXPECT_FALSE(rc.snapshot.has_value());
  EXPECT_FALSE(rc.error.empty());

  congest::Network net_b(g, 11);
  WalkService b(net_b, diameter, resil_config(1, 1));
  EXPECT_FALSE(b.restore_snapshot(path));
  // Cold start serves fine; an intact re-write then restores warm.
  b.serve(batch_one());
  a.save_snapshot(path);
  congest::Network net_c(g, 11);
  WalkService c(net_c, diameter, resil_config(1, 1));
  EXPECT_TRUE(c.restore_snapshot(path));
  std::remove(path.c_str());
}

TEST_F(ResilFailpointTest, ActionsFireAtTheConfiguredHitAndSpecsAreChecked) {
  resil::arm_failpoints("x@2:throw");
  EXPECT_FALSE(resil::failpoint("x"));  // hit 1 passes through
  EXPECT_THROW(resil::failpoint("x"), resil::InjectedFault);  // hit 2 fires
  EXPECT_FALSE(resil::failpoint("x"));  // one-shot: hit 3 passes again
  EXPECT_EQ(resil::failpoint_hits("x"), 3u);

  resil::arm_failpoints("y:short_write,z:delay_ms=1");
  EXPECT_TRUE(resil::failpoint("y"));   // site simulates a truncated write
  EXPECT_FALSE(resil::failpoint("y"));
  EXPECT_FALSE(resil::failpoint("z"));  // sleeps 1ms, then continues
  EXPECT_EQ(resil::failpoint_hits("y"), 2u);
  EXPECT_EQ(resil::failpoint_hits("never-armed"), 0u);

  EXPECT_THROW(resil::arm_failpoints("nonsense"), std::invalid_argument);
  EXPECT_THROW(resil::arm_failpoints("a@0:throw"), std::invalid_argument);
  EXPECT_THROW(resil::arm_failpoints("a@x:throw"), std::invalid_argument);
  EXPECT_THROW(resil::arm_failpoints("a@1:frobnicate"),
               std::invalid_argument);
  EXPECT_THROW(resil::arm_failpoints("a@1:delay_ms=oops"),
               std::invalid_argument);
}

TEST_F(ResilFailpointTest, ServiceBatchFaultLosesNoRequests) {
  Rng graph_rng(919);
  const Graph g = gen::random_regular(32, 4, graph_rng);
  congest::Network net(g, 13);
  WalkService s(net, exact_diameter(g), resil_config(2, 1));

  resil::arm_failpoints("service.batch@2:throw");
  s.serve({{0, 12, 2, false}});  // hit 1 passes
  EXPECT_THROW(s.serve({{1, 12, 2, false}}), resil::InjectedFault);
  resil::disarm_failpoints();

  // The fault fired before the batch was consumed: the request is still
  // pending and the next flush serves it.
  EXPECT_EQ(s.pending(), 1u);
  const BatchReport report = s.flush();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].request.source, NodeId{1});
  EXPECT_EQ(report.results[0].destinations.size(), 2u);
}

// -------------------------------------------- exception-safe Network reuse

/// Deterministic TTL-bounded flood that never touches ctx.rng(): its result
/// is identical on a freshly built network and on one that just aborted a
/// run, which is exactly the pool/arena-reuse property under test.
class Flood : public congest::Protocol {
 public:
  explicit Flood(std::size_t n) : sum_(n, 0) {}

  void on_round(congest::Context& ctx) override {
    if (ctx.round() == 0) {
      for (std::uint32_t s = 0; s < ctx.degree(); ++s) {
        ctx.send(s, congest::Message{1, {ctx.self() + 1ull, 3, 0, 0}});
      }
      return;
    }
    for (const congest::Delivery& d : ctx.inbox()) {
      sum_[ctx.self()] += d.msg.f[0] * (ctx.round() + 1);
      if (d.msg.f[1] > 0) {
        const auto slot = static_cast<std::uint32_t>(
            (d.msg.f[0] + ctx.round()) % ctx.degree());
        ctx.send(slot, congest::Message{1, {d.msg.f[0], d.msg.f[1] - 1, 0, 0}});
      }
    }
  }

  const std::vector<std::uint64_t>& sums() const { return sum_; }

 private:
  std::vector<std::uint64_t> sum_;
};

/// Flood whose callback throws from a worker thread mid-run.
class ThrowingFlood final : public Flood {
 public:
  explicit ThrowingFlood(std::size_t n) : Flood(n) {}
  void on_round(congest::Context& ctx) override {
    if (ctx.round() == 2 && ctx.self() == 17) {
      throw std::runtime_error("injected worker fault");
    }
    Flood::on_round(ctx);
  }
};

TEST(Resil, ThrowingWorkerCallbackPropagatesAndPoolStaysUsable) {
  Rng graph_rng(505);
  const Graph g = gen::random_regular(96, 4, graph_rng);

  congest::Network net(g, 1234);
  net.set_threads(8);

  // The first exception a worker throws surfaces from run()...
  ThrowingFlood bad(g.node_count());
  EXPECT_THROW(net.run(bad), std::runtime_error);
  // ...repeatably...
  ThrowingFlood bad2(g.node_count());
  EXPECT_THROW(net.run(bad2), std::runtime_error);

  // ...and the pool + arena stay usable: the next run on the SAME network
  // is bit-identical to a freshly constructed one.
  Flood reused(g.node_count());
  const congest::RunStats stats = net.run(reused);

  congest::Network fresh(g, 1234);
  fresh.set_threads(8);
  Flood baseline(g.node_count());
  const congest::RunStats fresh_stats = fresh.run(baseline);

  EXPECT_EQ(reused.sums(), baseline.sums());
  EXPECT_EQ(stats.rounds, fresh_stats.rounds);
  EXPECT_EQ(stats.messages, fresh_stats.messages);
  EXPECT_EQ(stats.max_backlog, fresh_stats.max_backlog);
}

TEST_F(ResilFailpointTest, NetworkPhaseFailpointsAbortRunsSafely) {
  Rng graph_rng(606);
  const Graph g = gen::random_regular(64, 4, graph_rng);
  congest::Network net(g, 77);
  net.set_threads(8);

  resil::arm_failpoints("net.round.compute@3:throw");
  Flood p1(g.node_count());
  EXPECT_THROW(net.run(p1), resil::InjectedFault);

  resil::arm_failpoints("net.round.transmit@1:throw");
  Flood p2(g.node_count());
  EXPECT_THROW(net.run(p2), resil::InjectedFault);
  resil::disarm_failpoints();

  Flood reused(g.node_count());
  const congest::RunStats stats = net.run(reused);
  congest::Network fresh(g, 77);
  fresh.set_threads(8);
  Flood baseline(g.node_count());
  const congest::RunStats fresh_stats = fresh.run(baseline);
  EXPECT_EQ(reused.sums(), baseline.sums());
  EXPECT_EQ(stats.messages, fresh_stats.messages);
}

// ------------------------------------------------------------ zero overhead

// The contract armed sites must not breach: a DISARMED process never enters
// the failpoint slow path -- a full serving workload crosses the
// service.batch + net.round.* + snapshot sites thousands of times and the
// slow-path entry counter stays flat (mirrors test_obs's discipline check).
TEST_F(ResilFailpointTest, DisarmedSitesStayOffTheSlowPath) {
  Rng graph_rng(404);
  const Graph g = gen::random_regular(48, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  resil::disarm_failpoints();
  const std::uint64_t before = resil::failpoint_slow_path_entries();
  std::vector<NodeId> disarmed_dests;
  {
    congest::Network net(g, 21);
    WalkService s(net, diameter, resil_config(2, 1));
    const BatchReport report = s.serve(batch_one());
    for (const auto& r : report.results) {
      disarmed_dests.insert(disarmed_dests.end(), r.destinations.begin(),
                            r.destinations.end());
    }
  }
  EXPECT_EQ(resil::failpoint_slow_path_entries(), before)
      << "disarmed failpoint sites must cost exactly one relaxed load";

  // Armed (with a site this workload never crosses): the slow path IS
  // entered, and results stay bit-identical -- observation never branches
  // execution.
  resil::arm_failpoints("unrelated.site@1:throw");
  std::vector<NodeId> armed_dests;
  {
    congest::Network net(g, 21);
    WalkService s(net, diameter, resil_config(2, 1));
    const BatchReport report = s.serve(batch_one());
    for (const auto& r : report.results) {
      armed_dests.insert(armed_dests.end(), r.destinations.begin(),
                         r.destinations.end());
    }
  }
  EXPECT_GT(resil::failpoint_slow_path_entries(), before);
  EXPECT_EQ(armed_dests, disarmed_dests);
}

// ------------------------------------------- engine state-handoff guards

TEST(Resil, ReleaseAndAdoptStateGuardRails) {
  const Graph g = gen::torus(4, 4);
  const std::uint32_t diameter = exact_diameter(g);
  core::Params params = core::Params::paper();
  params.lambda_override = 3;

  congest::Network net(g, 5);
  core::StitchEngine engine(net, params, diameter);
  // Never prepared: nothing to release.
  EXPECT_THROW(engine.release_state(), std::logic_error);

  engine.prepare(2, 12);
  ASSERT_TRUE(engine.prepared());
  ASSERT_FALSE(engine.naive_mode());
  core::StitchEngine::EngineState state = engine.release_state();
  EXPECT_FALSE(engine.prepared());
  // Double release.
  EXPECT_THROW(engine.release_state(), std::logic_error);

  {  // Node-count mismatch.
    core::StitchEngine::EngineState wrong;
    wrong.store = core::WalkStore(g.node_count() + 1);
    wrong.trajectories = core::TrajectoryStore(g.node_count() + 1);
    wrong.lambda = 3;
    wrong.prepared_l = 12;
    EXPECT_THROW(engine.adopt_state(std::move(wrong)), std::invalid_argument);
  }
  {  // lambda == 0 is never a valid prepared state.
    core::StitchEngine::EngineState zeroed;
    zeroed.store = core::WalkStore(g.node_count());
    zeroed.trajectories = core::TrajectoryStore(g.node_count());
    zeroed.lambda = 0;
    zeroed.prepared_l = 12;
    EXPECT_THROW(engine.adopt_state(std::move(zeroed)),
                 std::invalid_argument);
  }
  EXPECT_THROW(
      engine.restore_connector_visits(
          std::vector<std::uint64_t>(g.node_count() + 1)),
      std::invalid_argument);

  // The legitimate round-trip still works after all the failed adopts.
  engine.adopt_state(std::move(state));
  EXPECT_TRUE(engine.prepared());

  // A naive-mode engine (lambda > l) has no reusable state to hand off.
  core::Params naive_params = core::Params::paper();
  naive_params.lambda_override = 50;
  congest::Network naive_net(g, 5);
  core::StitchEngine naive_engine(naive_net, naive_params, diameter);
  naive_engine.prepare(1, 4);
  ASSERT_TRUE(naive_engine.naive_mode());
  EXPECT_THROW(naive_engine.release_state(), std::logic_error);
}

// --------------------------------------------------- boundary validation

TEST(Resil, RequestCapsComeBackAsStructuredStatuses) {
  Rng graph_rng(303);
  const Graph g = gen::random_regular(32, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  ServiceConfig config = resil_config(2, 1);
  config.caps.max_count = 4;
  config.caps.max_length = 50;
  config.caps.max_batch_walks = 6;
  congest::Network net(g, 7);
  WalkService s(net, diameter, config);

  const BatchReport report = s.serve({
      {0, 10, 5, false},   // count 5 > max_count 4
      {1, 100, 1, false},  // length 100 > max_length 50
      {2, 10, 4, false},   // ok: admits 4 of 6
      {3, 10, 3, false},   // 4 + 3 > max_batch_walks 6
      {4, 10, 2, false},   // ok: admits the remaining 2
  });

  ASSERT_EQ(report.results.size(), 5u);
  EXPECT_EQ(report.results[0].status, RequestStatus::kCountExceedsCap);
  EXPECT_EQ(report.results[1].status, RequestStatus::kLengthExceedsCap);
  EXPECT_EQ(report.results[2].status, RequestStatus::kOk);
  EXPECT_EQ(report.results[3].status, RequestStatus::kBatchCapExceeded);
  EXPECT_EQ(report.results[4].status, RequestStatus::kOk);
  EXPECT_EQ(report.rejected, 3u);
  EXPECT_EQ(report.walks, 6u);
  EXPECT_EQ(s.lifetime().rejected, 3u);

  // Rejected slots sample nothing but explain themselves; admitted slots
  // are served normally in their submission order.
  EXPECT_TRUE(report.results[0].destinations.empty());
  EXPECT_STREQ(report.results[0].error(), "count exceeds cap");
  EXPECT_STREQ(report.results[3].error(), "batch walk cap exceeded");
  EXPECT_EQ(report.results[2].destinations.size(), 4u);
  EXPECT_EQ(report.results[4].destinations.size(), 2u);
  for (const NodeId d : report.results[2].destinations) {
    EXPECT_LT(d, g.node_count());
  }
}

}  // namespace
}  // namespace drw
