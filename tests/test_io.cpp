#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(GraphIo, ParsesBasicEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, IgnoresCommentsAndBlanks) {
  std::istringstream in(
      "# a comment\n% another style\n\n0 1\n\n# trailing\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphIo, NodeHeaderRaisesNodeCount) {
  std::istringstream in("# nodes 10\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, CoalescesDuplicatesAndReversals) {
  std::istringstream in("0 1\n1 0\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream in("0\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 3\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("-1 2\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
}

TEST(GraphIo, RejectsIdRangeViolationsWithLineNumbers) {
  {
    // Id overflows the 32-bit node id space (kInvalidNode is reserved).
    std::istringstream in("0 1\n2 4294967295\n");
    try {
      read_edge_list(in);
      FAIL() << "overflowing id accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
          << e.what();
    }
  }
  {
    // Id at/above the declared node count, header first.
    std::istringstream in("# nodes 4\n0 1\n2 7\n");
    try {
      read_edge_list(in);
      FAIL() << "id above declared header accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("declared"), std::string::npos)
          << e.what();
    }
  }
  {
    // Header after the edge block still validates earlier lines.
    std::istringstream in("0 9\n# nodes 4\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    // Conflicting duplicate headers.
    std::istringstream in("# nodes 4\n0 1\n# nodes 9\n");
    try {
      read_edge_list(in);
      FAIL() << "conflicting duplicate header accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
          << e.what();
    }
  }
  {
    // A repeated header with the SAME value stays legal.
    std::istringstream in("# nodes 4\n0 1\n# nodes 4\n");
    EXPECT_EQ(read_edge_list(in).node_count(), 4u);
  }
}

TEST(GraphIo, RejectsTruncatedFiles) {
  {
    // File cut mid-line: the final record carries one id and no newline.
    std::istringstream in("0 1\n1 2\n2");
    try {
      read_edge_list(in);
      FAIL() << "truncated final line accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
    }
  }
  {
    // File cut to nothing (created, then the writer died before any row).
    std::istringstream in("");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    // Cut right after the header is still a valid (edgeless) declaration.
    std::istringstream in("# nodes 3\n");
    EXPECT_EQ(read_edge_list(in).node_count(), 3u);
  }
}

TEST(GraphIo, RoundTripsThroughStreams) {
  Rng rng(5);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(back.has_edge(v, u));
    }
  }
}

TEST(GraphIo, RoundTripsThroughFiles) {
  const Graph g = gen::torus(4, 5);
  const std::string path = "/tmp/drw_io_test_graph.txt";
  write_edge_list_file(path, g);
  const Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_EQ(exact_diameter(back), exact_diameter(g));
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace drw
