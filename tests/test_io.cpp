#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(GraphIo, ParsesBasicEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, IgnoresCommentsAndBlanks) {
  std::istringstream in(
      "# a comment\n% another style\n\n0 1\n\n# trailing\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphIo, NodeHeaderRaisesNodeCount) {
  std::istringstream in("# nodes 10\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, CoalescesDuplicatesAndReversals) {
  std::istringstream in("0 1\n1 0\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream in("0\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 3\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("-1 2\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
}

TEST(GraphIo, RoundTripsThroughStreams) {
  Rng rng(5);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(back.has_edge(v, u));
    }
  }
}

TEST(GraphIo, RoundTripsThroughFiles) {
  const Graph g = gen::torus(4, 5);
  const std::string path = "/tmp/drw_io_test_graph.txt";
  write_edge_list_file(path, g);
  const Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_EQ(exact_diameter(back), exact_diameter(g));
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace drw
