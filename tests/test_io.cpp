#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

TEST(GraphIo, ParsesBasicEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, IgnoresCommentsAndBlanks) {
  std::istringstream in(
      "# a comment\n% another style\n\n0 1\n\n# trailing\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphIo, NodeHeaderRaisesNodeCount) {
  std::istringstream in("# nodes 10\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, CoalescesDuplicatesAndReversals) {
  std::istringstream in("0 1\n1 0\n0 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream in("0\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 3\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("-1 2\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
}

TEST(GraphIo, RejectsIdRangeViolationsWithLineNumbers) {
  {
    // Id overflows the 32-bit node id space (kInvalidNode is reserved).
    std::istringstream in("0 1\n2 4294967295\n");
    try {
      read_edge_list(in);
      FAIL() << "overflowing id accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
          << e.what();
    }
  }
  {
    // Id at/above the declared node count, header first.
    std::istringstream in("# nodes 4\n0 1\n2 7\n");
    try {
      read_edge_list(in);
      FAIL() << "id above declared header accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("declared"), std::string::npos)
          << e.what();
    }
  }
  {
    // Header after the edge block still validates earlier lines.
    std::istringstream in("0 9\n# nodes 4\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    // Conflicting duplicate headers.
    std::istringstream in("# nodes 4\n0 1\n# nodes 9\n");
    try {
      read_edge_list(in);
      FAIL() << "conflicting duplicate header accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
          << e.what();
    }
  }
  {
    // A repeated header with the SAME value stays legal.
    std::istringstream in("# nodes 4\n0 1\n# nodes 4\n");
    EXPECT_EQ(read_edge_list(in).node_count(), 4u);
  }
}

TEST(GraphIo, RejectsTruncatedFiles) {
  {
    // File cut mid-line: the final record carries one id and no newline.
    std::istringstream in("0 1\n1 2\n2");
    try {
      read_edge_list(in);
      FAIL() << "truncated final line accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
    }
  }
  {
    // File cut to nothing (created, then the writer died before any row).
    std::istringstream in("");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    // Cut right after the header is still a valid (edgeless) declaration.
    std::istringstream in("# nodes 3\n");
    EXPECT_EQ(read_edge_list(in).node_count(), 3u);
  }
}

TEST(GraphIo, RoundTripsThroughStreams) {
  Rng rng(5);
  const Graph g = gen::random_geometric(40, 0.3, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_TRUE(back.has_edge(v, u));
    }
  }
}

TEST(GraphIo, RoundTripsThroughFiles) {
  const Graph g = gen::torus(4, 5);
  const std::string path = "/tmp/drw_io_test_graph.txt";
  write_edge_list_file(path, g);
  const Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_EQ(exact_diameter(back), exact_diameter(g));
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

// ------------------------------------------------------- bulk parallel parse

// The bulk parser must produce CSR arrays identical to the serial one at
// every thread count, on every input shape that exercises the chunk
// stitching: missing trailing newline, CRLF, comments/blanks between edges,
// duplicate and reversed edges, and a mid-file '# nodes' header.
TEST(GraphIo, ParallelParseMatchesSerialAtEveryThreadCount) {
  const char* inputs[] = {
      "0 1\n1 2\n2 0\n",
      "0 1\n1 2\n2 3",  // no trailing newline
      "0 1\r\n1 2\r\n2 0\r\n",
      "# c\n% c\n\n0 1\n\n1 2\n# t\n2 0\n",
      "0 1\n1 0\n0 1\n2 1\n",
      "# nodes 12\n0 1\n5 9\n",
      "3 4\n# nodes 12\n0 1\n",  // header after edges, still in range
  };
  for (const char* input : inputs) {
    const Graph serial = parse_edge_list(input);
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      const Graph parallel = parse_edge_list_parallel(input, threads);
      ASSERT_EQ(parallel.node_count(), serial.node_count())
          << "threads=" << threads << " input=" << input;
      ASSERT_EQ(parallel.offsets().size(), serial.offsets().size());
      for (std::size_t i = 0; i < serial.offsets().size(); ++i) {
        ASSERT_EQ(parallel.offsets()[i], serial.offsets()[i])
            << "threads=" << threads << " input=" << input;
      }
      ASSERT_EQ(parallel.adjacency().size(), serial.adjacency().size());
      for (std::size_t i = 0; i < serial.adjacency().size(); ++i) {
        ASSERT_EQ(parallel.adjacency()[i], serial.adjacency()[i])
            << "threads=" << threads << " input=" << input;
      }
    }
  }
}

TEST(GraphIo, ParallelParseMatchesSerialOnALargeGraph) {
  Rng rng(17);
  const Graph g = gen::random_geometric(300, 0.12, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const std::string text = buffer.str();
  const Graph serial = parse_edge_list(text);
  for (const unsigned threads : {2u, 8u}) {
    const Graph parallel = parse_edge_list_parallel(text, threads);
    ASSERT_EQ(parallel.node_count(), serial.node_count());
    ASSERT_EQ(parallel.edge_count(), serial.edge_count());
    for (NodeId v = 0; v < serial.node_count(); ++v) {
      const auto a = serial.neighbors(v);
      const auto b = parallel.neighbors(v);
      ASSERT_EQ(a.size(), b.size()) << "node " << v;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "node " << v << " slot " << i;
      }
    }
  }
}

// Diagnostics carry the same line numbers and messages no matter how many
// workers parsed the file.
TEST(GraphIo, ParallelParseKeepsSerialDiagnostics) {
  const char* inputs[] = {
      "0 1\n1 2\n3\n2 0\n",          // expected two node IDs (line 3)
      "0 1\n-3 2\n",                 // negative node ID (line 2)
      "0 1\n5000000000 2\n",         // id overflows 32 bits (line 2)
      "0 1\n7 7\n0 2\n",             // self-loop (line 2)
      "# nodes 3\n0 1\n1 9\n",       // exceeds declared header (line 3)
      "0 1\n# nodes 4\n# nodes 9\n", // conflicting duplicate header (line 3)
  };
  for (const char* input : inputs) {
    std::string serial_what;
    try {
      parse_edge_list(input);
    } catch (const std::invalid_argument& e) {
      serial_what = e.what();
    }
    ASSERT_FALSE(serial_what.empty()) << input;
    for (const unsigned threads : {2u, 8u}) {
      try {
        parse_edge_list_parallel(input, threads);
        FAIL() << "threads=" << threads << " input=" << input;
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()), serial_what)
            << "threads=" << threads << " input=" << input;
      }
    }
  }
}

TEST(GraphIo, ParseStatsCountBytesLinesAndEdges) {
  const Graph g = gen::torus(4, 5);
  const std::string path = "/tmp/drw_io_stats_graph.txt";
  write_edge_list_file(path, g);
  ParseStats stats;
  const Graph back = read_edge_list_file(path, 2, &stats);
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.edges, g.edge_count());
  EXPECT_GE(stats.lines, stats.edges);
  EXPECT_EQ(stats.threads, 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- --no-header

TEST(GraphIo, NoHeaderIgnoresDeclaredCount) {
  EdgeListOptions options;
  options.no_header = true;
  const Graph g = parse_edge_list("# nodes 10\n0 1\n", options);
  EXPECT_EQ(g.node_count(), 2u);  // max id + 1, the header is a comment
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphIo, NoHeaderLiftsTheDeclaredCountContract) {
  const char* input = "# nodes 4\n0 1\n2 7\n";
  EXPECT_THROW(parse_edge_list(input), std::invalid_argument);
  EdgeListOptions options;
  options.no_header = true;
  const Graph g = parse_edge_list(input, options);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphIo, NoHeaderIgnoresConflictingAndOverflowingHeaders) {
  EdgeListOptions options;
  options.no_header = true;
  // Conflicting duplicate headers: an error normally, comments here.
  const Graph g = parse_edge_list("# nodes 4\n0 1\n# nodes 9\n", options);
  EXPECT_EQ(g.node_count(), 2u);
  // A header whose count overflows the id space: same.
  const Graph h =
      parse_edge_list("# nodes 99999999999\n0 1\n", options);
  EXPECT_EQ(h.node_count(), 2u);
}

TEST(GraphIo, NoHeaderParallelMatchesSerialAtEveryThreadCount) {
  EdgeListOptions options;
  options.no_header = true;
  const char* inputs[] = {
      "# nodes 10\n0 1\n1 2\n",
      "# nodes 2\n0 1\n5 9\n",   // ids beyond the (ignored) header
      "0 1\n# nodes 4\n# nodes 9\n2 3\n",
  };
  for (const char* input : inputs) {
    const Graph serial = parse_edge_list(input, options);
    for (const unsigned threads : {1u, 2u, 8u}) {
      const Graph parallel =
          parse_edge_list_parallel(input, threads, nullptr, options);
      ASSERT_EQ(parallel.node_count(), serial.node_count())
          << "threads=" << threads << " input=" << input;
      ASSERT_EQ(parallel.edge_count(), serial.edge_count())
          << "threads=" << threads << " input=" << input;
      for (NodeId v = 0; v < serial.node_count(); ++v) {
        const auto a = serial.neighbors(v);
        const auto b = parallel.neighbors(v);
        ASSERT_EQ(a.size(), b.size()) << "node " << v;
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "node " << v << " slot " << i;
        }
      }
    }
  }
}

TEST(GraphIo, NoHeaderStillRejectsRealLineErrors) {
  EdgeListOptions options;
  options.no_header = true;
  EXPECT_THROW(parse_edge_list("0 1\n7 7\n", options),
               std::invalid_argument);  // self-loops stay errors
  EXPECT_THROW(parse_edge_list("# nodes 3\n", options),
               std::invalid_argument);  // header-only file is now empty
}

}  // namespace
}  // namespace drw
