// Cross-cutting randomized property tests: reference-model checking for
// IntervalSet, distributed-BFS correctness across every generator family,
// and conservation invariants of the walk store.
#include <gtest/gtest.h>

#include <set>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lowerbound/interval_set.hpp"
#include "util/rng.hpp"

namespace drw {
namespace {

using congest::Network;

// ----------------------------------------------- IntervalSet vs reference

/// Reference model: an explicit set of covered integer points.
class PointSetReference {
 public:
  void insert(std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t p = lo; p <= hi; ++p) points_.insert(p);
  }
  bool covers(std::uint64_t lo, std::uint64_t hi) const {
    for (std::uint64_t p = lo; p <= hi; ++p) {
      if (points_.count(p) == 0) return false;
    }
    return true;
  }
  /// Number of maximal runs of consecutive points.
  std::size_t runs() const {
    std::size_t count = 0;
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t p : points_) {
      if (first || p != prev + 1) ++count;
      first = false;
      prev = p;
    }
    return count;
  }

 private:
  std::set<std::uint64_t> points_;
};

class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, AgreesWithPointSetReference) {
  Rng rng(GetParam());
  lowerbound::IntervalSet set;
  PointSetReference reference;
  for (int op = 0; op < 300; ++op) {
    const std::uint64_t lo = rng.next_below(120);
    const std::uint64_t hi = lo + rng.next_below(9);
    set.insert(lo, hi);
    reference.insert(lo, hi);

    // Interval count == number of maximal runs. Note: IntervalSet merges
    // only OVERLAPPING intervals ([1,2]+[3,4] stay separate even though the
    // points are consecutive), so compare coverage, not run counts, except
    // via the <= direction.
    EXPECT_GE(set.size(), reference.runs());

    // Random coverage queries agree.
    for (int q = 0; q < 5; ++q) {
      const std::uint64_t qlo = rng.next_below(130);
      const std::uint64_t qhi = qlo + rng.next_below(12);
      // IntervalSet::covers is stricter (single containing interval); if it
      // says yes, every point is covered; if reference says no, IntervalSet
      // must say no.
      if (set.covers(qlo, qhi)) {
        EXPECT_TRUE(reference.covers(qlo, qhi))
            << "[" << qlo << "," << qhi << "]";
      }
      if (!reference.covers(qlo, qhi)) {
        EXPECT_FALSE(set.covers(qlo, qhi));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// -------------------------------------- distributed BFS on every family

struct FamilyCase {
  std::string name;
  Graph graph;
};

std::vector<FamilyCase> all_families() {
  Rng rng(99);
  std::vector<FamilyCase> out;
  out.push_back({"path", gen::path(40)});
  out.push_back({"cycle", gen::cycle(31)});
  out.push_back({"grid", gen::grid(6, 7)});
  out.push_back({"torus", gen::torus(5, 6)});
  out.push_back({"hypercube", gen::hypercube(5)});
  out.push_back({"complete", gen::complete(20)});
  out.push_back({"star", gen::star(25)});
  out.push_back({"binary_tree", gen::binary_tree(31)});
  out.push_back({"caterpillar", gen::caterpillar(8, 3)});
  out.push_back({"lollipop", gen::lollipop(8, 12)});
  out.push_back({"barbell", gen::barbell(7, 3)});
  out.push_back({"erdos_renyi", gen::erdos_renyi_connected(40, 0.1, rng)});
  out.push_back({"random_regular", gen::random_regular(36, 4, rng)});
  out.push_back({"rgg", gen::random_geometric(40, 0.3, rng)});
  out.push_back({"expander_chain", gen::expander_chain(3, 12, 4, rng)});
  return out;
}

class EveryFamily : public ::testing::TestWithParam<int> {};

TEST_P(EveryFamily, DistributedBfsMatchesCentralized) {
  const auto families = all_families();
  const FamilyCase& c = families[static_cast<std::size_t>(GetParam())];
  Network net(c.graph, 7);
  congest::RunStats stats;
  const auto tree = congest::build_bfs_tree(net, 0, stats);
  const auto dist = bfs_distances(c.graph, 0);
  for (NodeId v = 0; v < c.graph.node_count(); ++v) {
    EXPECT_EQ(tree.depth[v], dist[v]) << c.name << " node " << v;
  }
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(tree.height) + 2)
      << c.name;
}

TEST_P(EveryFamily, StitchedWalkRunsAndCountsAreCoherent) {
  const auto families = all_families();
  const FamilyCase& c = families[static_cast<std::size_t>(GetParam())];
  const std::uint32_t diameter = exact_diameter(c.graph);
  Network net(c.graph, 11);
  const std::uint64_t l = 4 * c.graph.node_count();
  const auto out = core::single_random_walk(net, 0, l, core::Params::paper(),
                                            diameter);
  EXPECT_LT(out.result.destination, c.graph.node_count()) << c.name;
  EXPECT_GT(out.result.stats.rounds, 0u) << c.name;
  EXPECT_GE(out.result.counters.sample_calls, out.result.counters.stitches)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(Families, EveryFamily, ::testing::Range(0, 15));

// ------------------------------------------------- store conservation

TEST(WalkStoreInvariants, PreparedTokensAreConservedAndConsumedOnce) {
  const Graph g = gen::grid(5, 5);
  Network net(g, 13);
  core::Params params = core::Params::paper();
  params.lambda_override = 4;
  core::StitchEngine engine(net, params, 8);
  const std::uint64_t l = 60;
  engine.prepare(1, l);

  std::uint64_t expected = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) expected += g.degree(v);

  std::uint64_t used_total = 0;
  for (std::uint32_t w = 0; w < 4; ++w) {
    const auto result = engine.walk(0, l, w);
    used_total += result.counters.stitches;
  }
  // The engine's internals are not exposed; verify through counters: every
  // stitch consumed exactly one distinct token, and the total supply
  // (prepared + any GET-MORE-WALKS batches) never runs negative -- i.e. the
  // walks completed and the sample calls match stitches + retries.
  EXPECT_GT(used_total, 0u);
  EXPECT_EQ(engine.max_connector_visits() > 0, true);
  EXPECT_GE(expected, 1u);
}

TEST(WalkStoreInvariants, EveryWalkLengthStaysInLambdaBand) {
  // All stored short walks -- Phase 1 and GET-MORE-WALKS alike -- have
  // length in [lambda, 2*lambda): verified indirectly by checking the
  // stitch arithmetic (completed length never overshoots l).
  const Graph g = gen::cycle(16);
  Network net(g, 17);
  core::Params params = core::Params::paper();
  params.lambda_override = 5;
  core::StitchEngine engine(net, params, 8);
  for (std::uint64_t l : {11, 23, 47, 95}) {
    engine.prepare(1, l);
    const auto result = engine.walk(3, l, 0);
    // tail < 2*lambda always (Algorithm 1's loop invariant).
    EXPECT_LT(result.counters.naive_tail_steps, 2u * engine.lambda());
  }
}

}  // namespace
}  // namespace drw
