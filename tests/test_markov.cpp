#include "graph/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace drw {
namespace {

TEST(Markov, OneStepOnPath3) {
  // Path 0-1-2: from node 1 the walk moves to 0 or 2 with prob 1/2 each.
  const Graph g = gen::path(3);
  const MarkovOracle oracle(g);
  const auto p = oracle.distribution_after(1, 1);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(Markov, TwoStepsOnPath3) {
  const Graph g = gen::path(3);
  const MarkovOracle oracle(g);
  const auto p = oracle.distribution_after(0, 2);
  // 0 ->1 -> {0, 2} each 1/2.
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(Markov, DistributionsSumToOne) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(30, 0.15, rng);
  const MarkovOracle oracle(g);
  for (std::uint64_t t : {0, 1, 5, 20}) {
    const auto p = oracle.distribution_after(7, t);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(Markov, StationaryIsDegreeProportional) {
  const Graph g = gen::star(5);
  const MarkovOracle oracle(g);
  const auto pi = oracle.stationary();
  EXPECT_NEAR(pi[0], 4.0 / 8.0, 1e-12);
  for (NodeId v = 1; v < 5; ++v) EXPECT_NEAR(pi[v], 1.0 / 8.0, 1e-12);
}

TEST(Markov, StationaryIsFixedPoint) {
  Rng rng(11);
  const Graph g = gen::erdos_renyi_connected(25, 0.2, rng);
  const MarkovOracle oracle(g);
  const auto pi = oracle.stationary();
  const auto next = oracle.step(pi);
  EXPECT_LT(l1_distance(pi, next), 1e-12);
}

TEST(Markov, LazyChainKeepsHalfMass) {
  const Graph g = gen::path(3);
  const MarkovOracle lazy(g, true);
  const auto p = lazy.distribution_after(1, 1);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.25, 1e-12);
}

TEST(Markov, MixingTimeOnCompleteGraphIsTiny) {
  const Graph g = gen::complete(16);
  const MarkovOracle oracle(g);
  const auto tau = oracle.mixing_time_standard(0, 100);
  ASSERT_TRUE(tau.has_value());
  EXPECT_LE(*tau, 3u);
}

TEST(Markov, MixingMonotoneDecreasing) {
  // Lemma 4.4 for the lazy chain: distance to stationarity never increases.
  const Graph g = gen::cycle(9);
  const MarkovOracle oracle(g, true);
  double prev = 2.0;
  for (std::uint64_t t = 0; t <= 60; ++t) {
    const double d = oracle.l1_to_stationary(0, t);
    EXPECT_LE(d, prev + 1e-12);
    prev = d;
  }
}

TEST(Markov, BipartiteNonLazyNeverMixes) {
  const Graph g = gen::cycle(8);  // even cycle: bipartite, periodic
  const MarkovOracle oracle(g);
  EXPECT_FALSE(oracle.mixing_time_standard(0, 2000).has_value());
  const MarkovOracle lazy(g, true);
  EXPECT_TRUE(lazy.mixing_time_standard(0, 2000).has_value());
}

TEST(Markov, OddCycleMixingGrowsQuadratically) {
  const Graph g_small = gen::cycle(9);
  const Graph g_big = gen::cycle(27);
  const MarkovOracle small(g_small);
  const MarkovOracle big(g_big);
  const auto tau_small = small.mixing_time_standard(0, 100000);
  const auto tau_big = big.mixing_time_standard(0, 100000);
  ASSERT_TRUE(tau_small.has_value());
  ASSERT_TRUE(tau_big.has_value());
  const double ratio = static_cast<double>(*tau_big) /
                       static_cast<double>(*tau_small);
  // Tripling n should roughly 9x the mixing time (allow wide slack).
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(Markov, SecondEigenvalueOfCompleteGraph) {
  // K_n: eigenvalues of P are 1 and -1/(n-1); modulus of the second is
  // 1/(n-1).
  const Graph g = gen::complete(10);
  const MarkovOracle oracle(g);
  EXPECT_NEAR(oracle.second_eigenvalue(), 1.0 / 9.0, 1e-6);
}

TEST(Markov, SecondEigenvalueOfBipartiteCycleIsOne) {
  // Even cycle: bipartite, eigenvalue -1 gives SLEM 1 (no mixing).
  const Graph g = gen::cycle(12);
  const MarkovOracle oracle(g);
  EXPECT_NEAR(oracle.second_eigenvalue(), 1.0, 1e-6);
}

TEST(Markov, SecondEigenvalueOfLazyCycle) {
  // Lazy cycle: eigenvalues (1 + cos(2 pi k / n)) / 2, all nonnegative, so
  // the SLEM is (1 + cos(2 pi / n)) / 2.
  const std::size_t n = 12;
  const Graph g = gen::cycle(n);
  const MarkovOracle oracle(g, true);
  EXPECT_NEAR(oracle.second_eigenvalue(),
              0.5 * (1.0 + std::cos(2.0 * M_PI / static_cast<double>(n))),
              1e-6);
}

TEST(Markov, SpectralBoundsBracketMixing) {
  const Graph g = gen::cycle(15);
  const MarkovOracle lazy(g, true);
  const auto bounds = lazy.spectral_bounds();
  const auto tau = lazy.mixing_time_standard(0, 100000);
  ASSERT_TRUE(tau.has_value());
  EXPECT_GT(bounds.gap, 0.0);
  // tau >= (1/gap - 1)-ish and tau <= c log n / gap; generous constants.
  EXPECT_GE(static_cast<double>(*tau), 0.25 / bounds.gap);
  EXPECT_LE(static_cast<double>(*tau), 4.0 * bounds.tau_upper + 2.0);
}

TEST(Markov, RejectsDegenerateGraphs) {
  const Graph empty;
  EXPECT_THROW(MarkovOracle{empty}, std::invalid_argument);
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph isolated = b.build();
  EXPECT_THROW(MarkovOracle{isolated}, std::invalid_argument);
}

}  // namespace
}  // namespace drw
