// End-to-end integration tests spanning all modules: the full pipeline on
// realistic mid-size networks, cross-validating the distributed algorithms
// against each other and against the centralized oracle.
#include <gtest/gtest.h>

#include "apps/mixing.hpp"
#include "apps/rst.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"
#include "walk_test_utils.hpp"

namespace drw {
namespace {

using congest::Network;

TEST(Integration, StitchedAndNaiveAgreeInDistributionOnRgg) {
  // Two independent estimators of the same l-step distribution: the
  // stitched walk and the naive walk. Both must match the oracle.
  Rng rng(42);
  const Graph g = gen::random_geometric(16, 0.42, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const MarkovOracle oracle(g);
  const std::uint64_t l = 12;
  const auto expected = oracle.distribution_after(0, l);

  core::Params params = core::Params::paper();
  params.lambda_override = 3;
  std::vector<std::uint64_t> stitched(g.node_count(), 0);
  std::vector<std::uint64_t> naive(g.node_count(), 0);
  const int runs = 2500;
  for (int run = 0; run < runs; ++run) {
    Network net(g, 80000 + run);
    ++stitched[core::single_random_walk(net, 0, l, params, diameter)
                   .result.destination];
    Network net2(g, 90000 + run);
    ++naive[core::naive_random_walk(net2, 0, l).destination];
  }
  EXPECT_GT(chi_square_test(stitched, expected).p_value, 1e-4);
  EXPECT_GT(chi_square_test(naive, expected).p_value, 1e-4);
}

TEST(Integration, SublinearSpeedupGrowsWithWalkLength) {
  // E1's essence: rounds(stitched)/rounds(naive) shrinks as l grows on a
  // fixed low-diameter network.
  Rng rng(7);
  const Graph g = gen::random_regular(96, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  auto stitched_rounds = [&](std::uint64_t l) {
    Network net(g, 123);
    return core::single_random_walk(net, 0, l, core::Params::paper(),
                                    diameter)
        .result.stats.rounds;
  };
  const double ratio_short =
      static_cast<double>(stitched_rounds(512)) / 512.0;
  const double ratio_long =
      static_cast<double>(stitched_rounds(8192)) / 8192.0;
  EXPECT_LT(ratio_long, ratio_short);
  EXPECT_LT(ratio_long, 1.0) << "stitched walk must beat naive at l=8192";
}

TEST(Integration, RoundsScaleAsSqrtLTimesSqrtD) {
  // Log-log slope of rounds vs l should be ~0.5 (Theorem 2.5), measured
  // across a wide l sweep on a fixed expander.
  Rng rng(11);
  const Graph g = gen::random_regular(64, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  std::vector<double> ls;
  std::vector<double> rounds;
  for (std::uint64_t l = 512; l <= 32768; l *= 4) {
    RunningStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      Network net(g, 1000 + rep);
      stats.add(static_cast<double>(
          core::single_random_walk(net, 0, l, core::Params::paper(),
                                   diameter)
              .result.stats.rounds));
    }
    ls.push_back(static_cast<double>(l));
    rounds.push_back(stats.mean());
  }
  const double slope = log_log_slope(ls, rounds);
  EXPECT_GT(slope, 0.3) << "slope=" << slope;
  EXPECT_LT(slope, 0.75) << "slope=" << slope;
}

TEST(Integration, FullPipelineOnAdHocNetwork) {
  // The paper's motivating scenario: an ad-hoc (random geometric) network
  // runs all three deliverables back to back on one topology.
  Rng rng(99);
  const Graph g = gen::random_geometric(48, 0.28, rng);
  const std::uint32_t diameter = exact_diameter(g);

  // 1. Sample via k random walks.
  Network net(g, 555);
  const std::vector<NodeId> sources(8, 0);
  const auto walks =
      core::many_random_walks(net, sources, 200, core::Params::paper(),
                              diameter);
  EXPECT_EQ(walks.destinations.size(), 8u);

  // 2. Build a random spanning tree.
  const auto rst =
      apps::random_spanning_tree(net, 0, core::Params::paper(), diameter);
  EXPECT_TRUE(is_spanning_tree(g, rst.tree));

  // 3. Estimate the mixing time and compare to the oracle.
  apps::MixingOptions options;
  options.samples = 300;
  const auto mix = apps::estimate_mixing_time(
      net, 0, core::Params::paper(), diameter, options);
  EXPECT_TRUE(mix.converged);
  const MarkovOracle oracle(g);
  const auto exact = oracle.mixing_time_standard(0, 100000);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(mix.tau, std::max<std::uint64_t>(*exact, 1) * 16);
  EXPECT_GE(mix.tau * 16, *exact);
}

TEST(Integration, RegeneratedWalkMatchesDestinationAcrossModes) {
  // Walk positions must be consistent whether the walk came from the
  // single-walk API, the engine, or many-walks.
  const Graph g = gen::torus(4, 4);
  core::Params params = core::Params::paper();
  params.record_trajectories = true;
  params.lambda_override = 5;
  const std::uint64_t l = 60;

  Network net(g, 777);
  const auto single = core::single_random_walk(net, 3, l, params, 4);
  test::expect_valid_walk(g, single.positions, 0, l, 3,
                          single.result.destination);

  Network net2(g, 778);
  const std::vector<NodeId> sources{3, 9};
  const auto many = core::many_random_walks(net2, sources, l, params, 4);
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    test::expect_valid_walk(g, many.positions, i, l, sources[i],
                            many.destinations[i]);
  }
}

TEST(Integration, MessageBudgetRespectsCongestModel) {
  // Every protocol in the pipeline must fit its payload in the 4-word
  // message; this is enforced statically, but verify the network also never
  // delivers more than one message per directed edge per round by checking
  // the accounting identity messages <= rounds * directed_edges.
  Rng rng(3);
  const Graph g = gen::random_regular(40, 4, rng);
  Network net(g, 31);
  const auto out = core::single_random_walk(
      net, 0, 2000, core::Params::paper(), exact_diameter(g));
  EXPECT_LE(out.result.stats.messages,
            out.result.stats.rounds * g.directed_edge_count());
}

}  // namespace
}  // namespace drw
