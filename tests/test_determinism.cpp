// Determinism of the parallel round executor (tier-1): the same seeded
// workload must produce bit-identical results at every thread count --
// delivery traces, walk endpoints, recorded paths, RunStats.messages --
// and be invariant under the shard partition strategy (node-count vs
// edge-weighted) and the work-stealing chunk grain, including on the
// degree-skewed topologies (star, lollipop, power-law) where the
// edge-weighted partition actually moves shard boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/walk_service.hpp"

namespace drw {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

/// Stress protocol for ordering: every node seeds a few random-walking
/// tokens and records its full delivery trace (round, sender, payload) --
/// any divergence in inbox order or RNG consumption shows up here.
class TracingStorm final : public congest::Protocol {
 public:
  explicit TracingStorm(std::size_t n) : trace_(n) {}

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      for (int t = 0; t < 3; ++t) {
        hop(ctx, 24 + static_cast<std::uint64_t>(ctx.rng().next_below(8)));
      }
      return;
    }
    for (const congest::Delivery& d : ctx.inbox()) {
      trace_[v].push_back((ctx.round() << 40) ^
                          (static_cast<std::uint64_t>(d.from) << 20) ^
                          d.msg.f[0]);
      if (d.msg.f[0] > 0) hop(ctx, d.msg.f[0] - 1);
    }
  }

  const std::vector<std::vector<std::uint64_t>>& trace() const {
    return trace_;
  }

 private:
  void hop(congest::Context& ctx, std::uint64_t ttl) {
    // Bursty: occasionally duplicate a token so edge backlogs build up and
    // the one-message-per-edge-per-round drain order is on the tested path.
    const int copies = ctx.rng().next_below(8) == 0 ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ctx.send(static_cast<std::uint32_t>(ctx.rng().next_below(ctx.degree())),
               congest::Message{1, {ttl, 0, 0, 0}});
    }
  }

  std::vector<std::vector<std::uint64_t>> trace_;
};

TEST(Determinism, DeliveryTraceBitIdenticalAcrossThreadCounts) {
  Rng graph_rng(505);
  const Graph g = gen::random_regular(96, 4, graph_rng);

  std::vector<std::vector<std::uint64_t>> baseline_trace;
  congest::RunStats baseline;
  for (const unsigned threads : kThreadCounts) {
    congest::Network net(g, 1234);
    net.set_threads(threads);
    TracingStorm protocol(g.node_count());
    const congest::RunStats stats = net.run(protocol);
    EXPECT_EQ(stats.threads, net.threads());
    if (threads == kThreadCounts[0]) {
      baseline_trace = protocol.trace();
      baseline = stats;
      continue;
    }
    EXPECT_EQ(protocol.trace(), baseline_trace) << "threads=" << threads;
    EXPECT_EQ(stats.rounds, baseline.rounds) << "threads=" << threads;
    EXPECT_EQ(stats.messages, baseline.messages) << "threads=" << threads;
    EXPECT_EQ(stats.max_backlog, baseline.max_backlog)
        << "threads=" << threads;
  }
}

TEST(Determinism, SingleWalkEndpointAndPathBitIdentical) {
  Rng graph_rng(606);
  const Graph g = gen::random_regular(64, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);
  core::Params params = core::Params::paper();
  params.record_trajectories = true;

  NodeId baseline_destination = kInvalidNode;
  std::uint64_t baseline_messages = 0;
  std::uint64_t baseline_rounds = 0;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      baseline_positions;
  for (const unsigned threads : kThreadCounts) {
    congest::Network net(g, 77);
    net.set_threads(threads);
    const core::SingleWalkOutput out =
        core::single_random_walk(net, 5, 1500, params, diameter);
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        positions(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const core::WalkPosition& p : out.positions[v]) {
        positions[v].emplace_back(p.walk, p.step);
      }
    }
    if (threads == kThreadCounts[0]) {
      baseline_destination = out.result.destination;
      baseline_messages = out.result.stats.messages;
      baseline_rounds = out.result.stats.rounds;
      baseline_positions = std::move(positions);
      continue;
    }
    EXPECT_EQ(out.result.destination, baseline_destination)
        << "threads=" << threads;
    EXPECT_EQ(out.result.stats.messages, baseline_messages)
        << "threads=" << threads;
    EXPECT_EQ(out.result.stats.rounds, baseline_rounds)
        << "threads=" << threads;
    EXPECT_EQ(positions, baseline_positions) << "threads=" << threads;
  }
}

TEST(Determinism, ServiceBatchBitIdentical) {
  Rng graph_rng(707);
  const Graph g = gen::random_regular(96, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  std::vector<service::WalkRequest> requests;
  Rng workload_rng(88);
  for (int i = 0; i < 10; ++i) {
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>(workload_rng.next_below(g.node_count())),
        256u << (i % 3), 1 + static_cast<std::uint32_t>(i % 2), false});
  }

  std::vector<std::vector<NodeId>> baseline_destinations;
  std::uint64_t baseline_messages = 0;
  std::uint64_t baseline_rounds = 0;
  for (const unsigned threads : kThreadCounts) {
    congest::Network net(g, 99);
    service::ServiceConfig config;
    config.threads = threads;
    service::WalkService svc(net, diameter, config);
    EXPECT_EQ(net.threads(), threads);
    const service::BatchReport report = svc.serve(requests);
    std::vector<std::vector<NodeId>> destinations;
    for (const service::RequestResult& r : report.results) {
      destinations.push_back(r.destinations);
    }
    EXPECT_GT(report.stats.wall_ms, 0.0);
    EXPECT_EQ(report.stats.threads, threads);
    if (threads == kThreadCounts[0]) {
      baseline_destinations = std::move(destinations);
      baseline_messages = report.stats.messages;
      baseline_rounds = report.stats.rounds;
      continue;
    }
    EXPECT_EQ(destinations, baseline_destinations) << "threads=" << threads;
    EXPECT_EQ(report.stats.messages, baseline_messages)
        << "threads=" << threads;
    EXPECT_EQ(report.stats.rounds, baseline_rounds) << "threads=" << threads;
  }
}

/// One executor configuration of the skew sweep.
struct ExecConfig {
  unsigned threads;
  congest::Partition partition;
  std::uint32_t steal_chunk;  // 0 = auto
};

std::string describe(const ExecConfig& c) {
  return "threads=" + std::to_string(c.threads) + " partition=" +
         (c.partition == congest::Partition::kEdgeWeighted ? "edges"
                                                           : "nodes") +
         " steal_chunk=" + std::to_string(c.steal_chunk);
}

/// The cross product that must all collapse onto the 1-thread/node-count
/// baseline: every thread count under both partition strategies, plus a
/// forced chunk grain of 1 (every active node its own steal chunk -- the
/// maximum-interleaving configuration the TSan CI leg also exercises).
std::vector<ExecConfig> skew_configs() {
  std::vector<ExecConfig> configs;
  for (const unsigned threads : kThreadCounts) {
    configs.push_back({threads, congest::Partition::kNodeCount, 0});
    configs.push_back({threads, congest::Partition::kEdgeWeighted, 0});
    configs.push_back({threads, congest::Partition::kEdgeWeighted, 1});
  }
  return configs;
}

TEST(Determinism, SkewedTopologyTracesInvariantAcrossPartitions) {
  Rng pl_rng(909);
  struct Family {
    const char* name;
    Graph graph;
  };
  const Family families[] = {
      {"star", gen::star(96)},
      {"lollipop", gen::lollipop(24, 48)},
      {"power_law", gen::power_law(96, 3, pl_rng)},
  };

  for (const Family& family : families) {
    std::vector<std::vector<std::uint64_t>> baseline_trace;
    congest::RunStats baseline;
    bool first = true;
    for (const ExecConfig& config : skew_configs()) {
      congest::Network net(family.graph, 4321);
      net.set_threads(config.threads);
      net.set_partition(config.partition);
      if (config.steal_chunk != 0) net.set_steal_chunk(config.steal_chunk);
      TracingStorm protocol(family.graph.node_count());
      const congest::RunStats stats = net.run(protocol);
      if (first) {
        baseline_trace = protocol.trace();
        baseline = stats;
        first = false;
        continue;
      }
      EXPECT_EQ(protocol.trace(), baseline_trace)
          << family.name << " " << describe(config);
      EXPECT_EQ(stats.rounds, baseline.rounds)
          << family.name << " " << describe(config);
      EXPECT_EQ(stats.messages, baseline.messages)
          << family.name << " " << describe(config);
      EXPECT_EQ(stats.max_backlog, baseline.max_backlog)
          << family.name << " " << describe(config);
    }
  }
}

TEST(Determinism, SkewedWalkEndpointsInvariantAcrossPartitions) {
  // A serviced batch on the lollipop: walks pile into the clique, so the
  // edge-weighted partition genuinely reshapes shard boundaries while the
  // endpoints must not move.
  const Graph g = gen::lollipop(24, 48);
  const std::uint32_t diameter = exact_diameter(g);

  std::vector<service::WalkRequest> requests;
  Rng workload_rng(55);
  for (int i = 0; i < 8; ++i) {
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>(workload_rng.next_below(g.node_count())),
        256u << (i % 3), 1 + static_cast<std::uint32_t>(i % 2), false});
  }

  std::vector<std::vector<NodeId>> baseline_destinations;
  std::uint64_t baseline_messages = 0;
  std::uint64_t baseline_rounds = 0;
  bool first = true;
  for (const ExecConfig& config : skew_configs()) {
    congest::Network net(g, 777);
    if (config.steal_chunk != 0) net.set_steal_chunk(config.steal_chunk);
    service::ServiceConfig service_config;
    service_config.threads = config.threads;
    service_config.partition = config.partition;
    service::WalkService svc(net, diameter, service_config);
    const service::BatchReport report = svc.serve(requests);
    std::vector<std::vector<NodeId>> destinations;
    for (const service::RequestResult& r : report.results) {
      destinations.push_back(r.destinations);
    }
    if (first) {
      baseline_destinations = std::move(destinations);
      baseline_messages = report.stats.messages;
      baseline_rounds = report.stats.rounds;
      first = false;
      continue;
    }
    EXPECT_EQ(destinations, baseline_destinations) << describe(config);
    EXPECT_EQ(report.stats.messages, baseline_messages) << describe(config);
    EXPECT_EQ(report.stats.rounds, baseline_rounds) << describe(config);
  }
}

TEST(Determinism, TracingOnDoesNotPerturbExecution) {
  // The obs invariant: observation never branches execution. The UNTRACED
  // 1-thread run is the baseline; every traced configuration (thread count
  // x partition x forced chunk grain, metrics registry armed too) must
  // reproduce it bit-for-bit.
  Rng graph_rng(1010);
  const Graph g = gen::random_regular(96, 4, graph_rng);

  std::vector<std::vector<std::uint64_t>> baseline_trace;
  congest::RunStats baseline;
  {
    congest::Network net(g, 4242);
    net.set_threads(1);
    TracingStorm protocol(g.node_count());
    baseline = net.run(protocol);
    baseline_trace = protocol.trace();
  }

  const std::string trace_path =
      ::testing::TempDir() + "obs_determinism_trace.json";
  for (const ExecConfig& config : skew_configs()) {
    obs::Tracer::instance().enable(trace_path);
    obs::Registry::global().set_enabled(true);
    congest::Network net(g, 4242);
    net.set_threads(config.threads);
    net.set_partition(config.partition);
    if (config.steal_chunk != 0) net.set_steal_chunk(config.steal_chunk);
    TracingStorm protocol(g.node_count());
    const congest::RunStats stats = net.run(protocol);
    obs::Tracer::instance().disable();
    obs::Tracer::instance().flush();
    obs::Registry::global().set_enabled(false);
    obs::Registry::global().reset();
    EXPECT_EQ(protocol.trace(), baseline_trace)
        << "traced " << describe(config);
    EXPECT_EQ(stats.rounds, baseline.rounds) << "traced " << describe(config);
    EXPECT_EQ(stats.messages, baseline.messages)
        << "traced " << describe(config);
    EXPECT_EQ(stats.max_backlog, baseline.max_backlog)
        << "traced " << describe(config);
  }
}

TEST(Determinism, TracedServiceBatchBitIdentical) {
  // Same invariant through the service layer: ServiceConfig::trace_path
  // arms the tracer for the service's lifetime (flushed by its destructor)
  // and must not move a single walk destination.
  Rng graph_rng(1111);
  const Graph g = gen::random_regular(96, 4, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  std::vector<service::WalkRequest> requests;
  Rng workload_rng(66);
  for (int i = 0; i < 8; ++i) {
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>(workload_rng.next_below(g.node_count())),
        256u << (i % 3), 1 + static_cast<std::uint32_t>(i % 2), false});
  }

  auto serve_once = [&](unsigned threads, bool traced) {
    congest::Network net(g, 2025);
    service::ServiceConfig config;
    config.threads = threads;
    if (traced) {
      config.trace_path =
          ::testing::TempDir() + "obs_determinism_service.json";
    }
    service::WalkService svc(net, diameter, config);
    const service::BatchReport report = svc.serve(requests);
    std::vector<std::vector<NodeId>> destinations;
    for (const service::RequestResult& r : report.results) {
      destinations.push_back(r.destinations);
    }
    return std::make_tuple(std::move(destinations), report.stats.messages,
                           report.stats.rounds);
  };

  const auto baseline = serve_once(1, /*traced=*/false);
  for (const unsigned threads : kThreadCounts) {
    const auto traced = serve_once(threads, /*traced=*/true);
    EXPECT_EQ(traced, baseline) << "traced threads=" << threads;
  }
}

}  // namespace
}  // namespace drw
