// Random spanning tree on a grid network (Section 4.1).
//
// Runs the distributed Aldous-Broder simulation on an 8x8 grid, renders the
// resulting tree as ASCII art, and verifies it against the matrix-tree
// count. Random spanning trees are fault-tolerant routing overlays (Goyal
// et al., cited by the paper): every run yields an independent uniform tree.
//
//   $ ./examples/spanning_tree_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "apps/rst.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanning.hpp"

int main(int argc, char** argv) {
  using namespace drw;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2024;
  const std::size_t rows = 8;
  const std::size_t cols = 8;
  const Graph g = gen::grid(rows, cols);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("grid %zux%zu: %s, %.3g spanning trees\n", rows, cols,
              g.summary().c_str(), count_spanning_trees(g));

  congest::Network net(g, seed);
  const auto result =
      apps::random_spanning_tree(net, /*root=*/0, core::Params::paper(),
                                 diameter);
  std::printf("covered after %llu walk steps, %llu rounds, %u phases\n",
              static_cast<unsigned long long>(result.cover_length),
              static_cast<unsigned long long>(result.stats.rounds),
              result.phases);
  std::printf("tree valid: %s\n\n",
              is_spanning_tree(g, result.tree) ? "yes" : "NO (bug!)");

  // ASCII rendering: nodes are 'o', tree edges are drawn, non-tree omitted.
  std::set<std::pair<NodeId, NodeId>> edges(result.tree.edges.begin(),
                                            result.tree.edges.end());
  auto has = [&](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return edges.count({a, b}) > 0;
  };
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::printf("o");
      if (c + 1 < cols) {
        std::printf(has(id(r, c), id(r, c + 1)) ? "---" : "   ");
      }
    }
    std::printf("\n");
    if (r + 1 < rows) {
      for (std::size_t c = 0; c < cols; ++c) {
        std::printf(has(id(r, c), id(r + 1, c)) ? "|" : " ");
        if (c + 1 < cols) std::printf("   ");
      }
      std::printf("\n");
    }
  }
  std::printf("\nRe-run with a different seed for an independent uniform "
              "sample.\n");
  return 0;
}
