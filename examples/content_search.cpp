// Content search in an unstructured P2P network -- the "random-walk based
// search" application from the paper's Section 1.3, combined with PageRank
// ranking of providers (Section 5's direction).
//
// A 128-node overlay stores files on random nodes; a querying peer locates
// a file via k stitched random walks (sublinear rounds for long walks) and
// the network ranks the most central providers with token-based PageRank.
//
//   $ ./examples/content_search
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/pagerank.hpp"
#include "apps/search.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace drw;

  Rng rng(2026);
  const Graph g = gen::random_geometric(128, 0.17, rng);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("overlay: %s, D=%u\n", g.summary().c_str(), diameter);

  // Place 20 files, each replicated on 3 random nodes.
  std::vector<std::vector<std::uint64_t>> stores(g.node_count());
  for (std::uint64_t file = 1; file <= 20; ++file) {
    for (int replica = 0; replica < 3; ++replica) {
      stores[rng.next_below(g.node_count())].push_back(file);
    }
  }

  congest::Network net(g, 7);
  int found = 0;
  std::uint64_t total_rounds = 0;
  for (std::uint64_t file = 1; file <= 20; ++file) {
    apps::SearchOptions options;
    options.walks = 8;
    options.walk_length = 4 * g.node_count();
    const auto result = apps::random_walk_search(
        net, /*source=*/0, file, stores, core::Params::paper(), diameter,
        options);
    total_rounds += result.stats.rounds;
    if (result.found) {
      ++found;
      if (file <= 3) {
        std::printf("file %2llu: found at node %u (first hit at walk step "
                    "%llu, %llu rounds)\n",
                    static_cast<unsigned long long>(file), result.holder,
                    static_cast<unsigned long long>(result.first_hit_step),
                    static_cast<unsigned long long>(result.stats.rounds));
      }
    }
  }
  std::printf("...\nlocated %d/20 files; avg %llu rounds per query "
              "(walks of length %zu on a D=%u graph)\n",
              found, static_cast<unsigned long long>(total_rounds / 20),
              4 * g.node_count(), diameter);

  // Rank the best-connected providers for replica placement.
  apps::PageRankOptions pr_options;
  pr_options.tokens_per_node = 200;
  const auto pr = apps::estimate_pagerank(net, pr_options);
  std::vector<NodeId> order(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return pr.scores[a] > pr.scores[b];
  });
  std::printf("\nbest replica hosts by PageRank (%llu rounds to compute):\n",
              static_cast<unsigned long long>(pr.stats.rounds));
  for (int i = 0; i < 5; ++i) {
    std::printf("  node %-4u score %.4f (degree %u)\n", order[i],
                pr.scores[order[i]], g.degree(order[i]));
  }
  return 0;
}
