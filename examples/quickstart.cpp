// Quickstart: sample one random-walk destination on a simulated network.
//
// Builds a 12x12 torus (144 nodes), runs the paper's stitched algorithm
// (SINGLE-RANDOM-WALK, Theorem 2.5) for a 4096-step walk, and compares its
// round count against the naive token-forwarding baseline. Also prints the
// stitch trace so you can see Figure 2's "stitching short walks" in action.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace drw;

  // 1. Topology: every node knows only its neighbors (CONGEST model).
  const Graph g = gen::torus(12, 12);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("network: %s, diameter %u\n", g.summary().c_str(), diameter);

  // 2. One l-step walk from node 0 with the paper's algorithm.
  const std::uint64_t l = 4096;
  congest::Network net(g, /*seed=*/42);
  const auto out = core::single_random_walk(net, /*source=*/0, l,
                                            core::Params::paper(), diameter);
  std::printf("\nstitched walk of length %llu:\n",
              static_cast<unsigned long long>(l));
  std::printf("  destination         : node %u\n", out.result.destination);
  std::printf("  rounds              : %llu  (naive would take %llu)\n",
              static_cast<unsigned long long>(out.result.stats.rounds),
              static_cast<unsigned long long>(l));
  std::printf("  messages            : %llu\n",
              static_cast<unsigned long long>(out.result.stats.messages));
  std::printf("  short-walk length   : lambda = %u (= ~sqrt(l*D))\n",
              out.result.counters.lambda);
  std::printf("  walks prepared      : %llu (Phase 1, eta*deg(v) per node)\n",
              static_cast<unsigned long long>(
                  out.result.counters.walks_prepared));
  std::printf("  stitches            : %llu connector hand-offs\n",
              static_cast<unsigned long long>(out.result.counters.stitches));
  std::printf("  GET-MORE-WALKS calls: %llu (w.h.p. zero, Theorem 2.5)\n",
              static_cast<unsigned long long>(
                  out.result.counters.get_more_walks_calls));
  std::printf("  naive tail steps    : %llu (< 2*lambda)\n",
              static_cast<unsigned long long>(
                  out.result.counters.naive_tail_steps));

  // 3. The naive baseline on the same network.
  congest::Network net2(g, /*seed=*/42);
  const auto naive = core::naive_random_walk(net2, 0, l);
  std::printf("\nnaive token forwarding: %llu rounds, destination node %u\n",
              static_cast<unsigned long long>(naive.stats.rounds),
              naive.destination);
  std::printf("speedup: %.1fx\n",
              static_cast<double>(naive.stats.rounds) /
                  static_cast<double>(out.result.stats.rounds));
  return 0;
}
