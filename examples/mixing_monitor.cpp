// Topology-aware network health monitoring (Section 4.2).
//
// A node wants to know -- without any global view -- whether its network is
// well-connected (fast mixing, large spectral gap, no bottleneck cut). It
// runs the decentralized mixing-time estimator on two contrasting
// topologies: a healthy expander overlay and a barbell (two communities
// joined by a thin bridge). The derived spectral-gap and conductance
// brackets flag the bottleneck.
//
//   $ ./examples/mixing_monitor
#include <cstdio>

#include "apps/mixing.hpp"
#include "congest/network.hpp"
#include "core/params.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"

namespace {

void monitor(const char* name, const drw::Graph& g) {
  using namespace drw;
  const std::uint32_t diameter = exact_diameter(g);
  congest::Network net(g, 77);
  apps::MixingOptions options;
  options.samples = 500;
  const auto est = apps::estimate_mixing_time(
      net, /*source=*/0, core::Params::paper(), diameter, options);

  const MarkovOracle oracle(g);
  const auto exact = oracle.mixing_time_standard(0, 1000000);

  std::printf("\n== %s ==  (%s, D=%u)\n", name, g.summary().c_str(),
              diameter);
  std::printf("  estimated tau_mix : %llu steps  (exact: %s)\n",
              static_cast<unsigned long long>(est.tau),
              exact ? std::to_string(*exact).c_str() : "n/a");
  std::printf("  cost              : %llu rounds, %u lengths tested, "
              "K=%u samples each\n",
              static_cast<unsigned long long>(est.stats.rounds),
              est.lengths_tested, est.samples);
  std::printf("  spectral gap      : [%.5f, %.5f]\n", est.gap_lower,
              est.gap_upper);
  std::printf("  conductance       : [%.5f, %.5f]\n",
              est.conductance_lower, est.conductance_upper);
  if (est.conductance_upper < 0.2) {
    std::printf("  !! bottleneck suspected: conductance upper bound is "
                "low -- consider adding links across the cut\n");
  } else {
    std::printf("  network looks well-connected\n");
  }
}

}  // namespace

int main() {
  using namespace drw;
  Rng rng(5);
  const Graph healthy = gen::random_regular(48, 4, rng);
  const Graph bottleneck = gen::barbell(20, 2);
  monitor("healthy expander overlay", healthy);
  monitor("two communities, thin bridge (barbell)", bottleneck);
  std::printf("\nBoth estimates used only local message passing: no node "
              "ever saw the topology.\n");
  return 0;
}
