// The lower-bound gadget in action (Section 3, Figures 3-5).
//
// Builds G_n for a path of length l, prints its anatomy (path, tree,
// breakpoints), runs the PATH-VERIFICATION protocol and shows the
// fundamental gap the paper proves: the graph's diameter is O(log n) yet
// verification needs Omega(sqrt(l / log l)) rounds because the left and
// right subtrees must exchange ~n/k' disjoint verified intervals over the
// tree bottleneck.
//
//   $ ./examples/lower_bound_demo
#include <cstdio>
#include <vector>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "lowerbound/gadget.hpp"
#include "lowerbound/path_verification.hpp"

int main() {
  using namespace drw;
  using namespace drw::lowerbound;

  const std::uint64_t l = 8192;
  const Gadget gadget = build_gadget(l);
  const std::uint32_t diameter =
      double_sweep_diameter_estimate(gadget.graph, gadget.root());

  std::printf("gadget G_n for l = %llu (Definition 3.3):\n",
              static_cast<unsigned long long>(l));
  std::printf("  nodes            : %zu (path n' = %llu + tree 2k'-1)\n",
              gadget.graph.node_count(),
              static_cast<unsigned long long>(gadget.path_len));
  std::printf("  k (round bound)  : %llu = sqrt(l / log l)\n",
              static_cast<unsigned long long>(gadget.k));
  std::printf("  k' (tree leaves) : %llu\n",
              static_cast<unsigned long long>(gadget.k_prime));
  std::printf("  diameter         : %u  (O(log n))\n", diameter);
  std::printf("  breakpoints      : %zu left / %zu right (Lemma 3.4: >= "
              "n/4k each)\n",
              gadget.left_breakpoints().size(),
              gadget.right_breakpoints().size());

  congest::Network net(gadget.graph, 123);
  std::vector<NodeId> sequence;
  for (std::uint64_t i = 1; i <= l + 1; ++i) {
    sequence.push_back(gadget.path_node(i));
  }
  const auto result = verify_path(net, sequence, gadget.root());
  std::printf("\nPATH-VERIFICATION at the tree root:\n");
  std::printf("  verified : %s\n", result.verified ? "yes" : "NO");
  std::printf("  rounds   : %llu  >= k = %llu  >> D = %u\n",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(gadget.k), diameter);
  std::printf("  intervals received at verifier: %llu\n",
              static_cast<unsigned long long>(
                  result.intervals_received_at_verifier));
  std::printf("\nAny distributed random-walk algorithm that reports "
              "positions solves this problem,\nso it inherits the "
              "Omega(sqrt(l / log l)) round bound (Theorem 3.7).\n");
  return 0;
}
