// Peer-to-peer node sampling -- the paper's Section 1 motivation.
//
// An ad-hoc overlay (random geometric graph) wants uniform-ish peer samples
// for gossip/search. A peer issues k random walks of length l >> D with
// MANY-RANDOM-WALKS (Theorem 2.8) and uses the endpoints as samples. The
// demo shows (a) the rounds saved over naive walks, (b) that for l past the
// mixing time the sample histogram approaches the stationary
// (degree-proportional) distribution.
//
//   $ ./examples/p2p_sampling
#include <cstdio>
#include <vector>

#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"

int main() {
  using namespace drw;

  Rng rng(7);
  const Graph g = gen::random_geometric(96, 0.2, rng);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("P2P overlay: %s, diameter %u\n", g.summary().c_str(),
              diameter);

  // Long walks (l >> D) are where the stitched algorithm shines: k tokens
  // forwarded naively would need ~l rounds.
  const std::uint64_t l = 32768;
  const std::size_t k = 16;
  const std::vector<NodeId> sources(k, 0);

  congest::Network net(g, 99);
  const auto out = core::many_random_walks(net, sources, l,
                                           core::Params::paper(), diameter);
  std::printf("sampled %zu peers (walks of length %llu) in %llu rounds "
              "(naive: ~%llu)\n",
              k, static_cast<unsigned long long>(l),
              static_cast<unsigned long long>(out.stats.rounds),
              static_cast<unsigned long long>(l + k));

  // Aggregate many batches to compare the sample histogram with the
  // stationary distribution.
  // (Shorter walks suffice for the distribution check: l = 512 is already
  // past this overlay's mixing time.)
  std::vector<std::uint64_t> histogram(g.node_count(), 0);
  const std::vector<NodeId> batch_sources(48, 0);
  for (int batch = 0; batch < 30; ++batch) {
    congest::Network net_b(g, 1000 + batch);
    const auto batch_out = core::many_random_walks(
        net_b, batch_sources, 512, core::Params::paper(), diameter);
    for (NodeId dest : batch_out.destinations) ++histogram[dest];
  }
  const MarkovOracle oracle(g);
  const auto pi = oracle.stationary();
  std::uint64_t total = 0;
  for (auto c : histogram) total += c;
  std::vector<double> empirical(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    empirical[v] = static_cast<double>(histogram[v]) /
                   static_cast<double>(total);
  }
  std::printf("TV distance of %llu samples to stationary pi: %.3f\n",
              static_cast<unsigned long long>(total),
              tv_distance(empirical, pi));
  std::printf("(pi is degree-proportional; re-weighting by 1/deg gives "
              "uniform peer sampling)\n");

  // Show the five most-sampled peers vs their stationary weights.
  std::printf("\n%-6s %-8s %-10s %-10s\n", "peer", "degree", "empirical",
              "pi");
  std::vector<NodeId> order(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return histogram[a] > histogram[b];
  });
  for (std::size_t i = 0; i < 5; ++i) {
    const NodeId v = order[i];
    std::printf("%-6u %-8u %-10.4f %-10.4f\n", v, g.degree(v), empirical[v],
                pi[v]);
  }
  return 0;
}
