// Walk service demo: serving mixed random-walk traffic from a persistent
// short-walk inventory.
//
// Builds an expander, stands up a WalkService, and serves three batches of
// heterogeneous requests (mixed sources, lengths and counts; one request
// asks for full paths). Batch 1 pays the only Phase 1; batches 2 and 3 reuse
// the inventory, topping up hot connectors incrementally, and the report
// shows rounds/request dropping and the hit rate staying high.
//
//   $ ./examples/walk_service_demo
#include <cstdio>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/walk_service.hpp"

namespace {

void print_report(const char* name, const drw::service::BatchReport& r) {
  std::printf("%s: %llu requests / %llu walks, lambda=%u%s%s\n", name,
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.walks), r.lambda,
              r.full_prepare ? " [phase 1]" : " [inventory reuse]",
              r.naive_mode ? " [naive]" : "");
  std::printf("  rounds              : %llu  (%.1f per request; naive "
              "serving model: %llu)\n",
              static_cast<unsigned long long>(r.stats.rounds),
              r.rounds_per_request(),
              static_cast<unsigned long long>(r.naive_rounds_estimate));
  std::printf("  messages            : %llu  (%.1f per request)\n",
              static_cast<unsigned long long>(r.stats.messages),
              r.messages_per_request());
  std::printf("  inventory hit rate  : %.3f  (%llu/%llu stitches; %llu "
              "in-walk GET-MORE-WALKS)\n",
              r.inventory_hit_rate(),
              static_cast<unsigned long long>(r.inventory_hits),
              static_cast<unsigned long long>(r.stitches),
              static_cast<unsigned long long>(r.engine_gmw_calls));
  std::printf("  targeted top-ups    : %llu runs, %llu short walks added\n",
              static_cast<unsigned long long>(r.replenishments),
              static_cast<unsigned long long>(r.replenished_walks));
}

}  // namespace

int main() {
  using namespace drw;

  Rng rng(7);
  const Graph g = gen::random_regular(96, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("network: %s, diameter %u\n\n", g.summary().c_str(), diameter);

  congest::Network net(g, /*seed=*/42);
  service::ServiceConfig config;
  config.enable_paths = true;  // allow per-request record_positions
  service::WalkService service(net, diameter, config);

  // Batch 1: mixed lengths and sources; the last request wants full paths.
  service.submit({/*source=*/0, /*length=*/2048, /*count=*/4});
  service.submit({/*source=*/17, /*length=*/512, /*count=*/8});
  service.submit({/*source=*/33, /*length=*/64, /*count=*/16});
  service.submit({/*source=*/5, /*length=*/100, /*count=*/1,
                  /*record_positions=*/true});
  const service::BatchReport b1 = service.flush();
  print_report("batch 1", b1);

  const auto& recorded = b1.results.back();
  std::printf("  recorded path       : %zu nodes, ", recorded.paths[0].size());
  std::printf("%u -> ... -> %u\n\n", recorded.paths[0].front(),
              recorded.paths[0].back());

  // Batch 2: same traffic shape -- served from the surviving inventory.
  const service::BatchReport b2 = service.serve({
      {3, 2048, 4}, {40, 512, 8}, {71, 64, 16}, {9, 1024, 2},
  });
  print_report("batch 2", b2);
  std::printf("\n");

  // Batch 3: heavier, skewed toward one source.
  const service::BatchReport b3 = service.serve({
      {12, 4096, 2}, {12, 2048, 6}, {12, 256, 24}, {80, 32, 8},
  });
  print_report("batch 3", b3);

  const service::ServiceStats& life = service.lifetime();
  std::printf("\nlifetime: %llu batches, %llu requests, %llu walks | "
              "%llu rounds total | %llu Phase 1 run(s), %llu targeted "
              "top-ups | hit rate %.3f\n",
              static_cast<unsigned long long>(life.batches),
              static_cast<unsigned long long>(life.requests),
              static_cast<unsigned long long>(life.walks),
              static_cast<unsigned long long>(life.stats.rounds),
              static_cast<unsigned long long>(life.full_prepares),
              static_cast<unsigned long long>(life.replenishments),
              life.inventory_hit_rate());
  std::printf("naive serving model would cost %llu rounds (%.1fx)\n",
              static_cast<unsigned long long>(life.naive_rounds_estimate),
              static_cast<double>(life.naive_rounds_estimate) /
                  static_cast<double>(life.stats.rounds));
  return 0;
}
