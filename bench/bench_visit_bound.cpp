// E4 (Lemma 2.6): no node x is visited more than 24 d(x) sqrt(l+1) log n + 1
// times in an l-step walk, on any graph, from any start.
//
// For each family we measure max_x visits(x)/d(x) over many walks and
// compare with the paper's bound and with the sqrt(l) growth the lemma
// predicts (tight on the line).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

std::vector<std::uint64_t> central_walk_visits(const Graph& g, NodeId source,
                                               std::uint64_t l, Rng& rng) {
  std::vector<std::uint64_t> visits(g.node_count(), 0);
  NodeId at = source;
  ++visits[at];
  for (std::uint64_t i = 0; i < l; ++i) {
    at = g.neighbor(at, static_cast<std::uint32_t>(
                            rng.next_below(g.degree(at))));
    ++visits[at];
  }
  return visits;
}

double max_normalized_visits(const Graph& g, std::uint64_t l, int trials,
                             Rng& rng) {
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto visits = central_walk_visits(g, 0, l, rng);
    for (NodeId x = 0; x < g.node_count(); ++x) {
      worst = std::max(worst, static_cast<double>(visits[x]) /
                                  static_cast<double>(g.degree(x)));
    }
  }
  return worst;
}

void run_experiment() {
  bench::banner("E4 / Lemma 2.6",
                "max over nodes of visits(x)/d(x) in an l-step walk vs the "
                "24 sqrt(l+1) log n bound (worst of 20 trials)");
  struct Family {
    std::string name;
    Graph graph;
  };
  Rng gen_rng(2024);
  std::vector<Family> families;
  families.push_back({"line(128)", gen::path(128)});
  families.push_back({"star(128)", gen::star(128)});
  families.push_back({"lollipop(32,64)", gen::lollipop(32, 64)});
  families.push_back({"expander(128,4)",
                      gen::random_regular(128, 4, gen_rng)});

  for (const Family& family : families) {
    std::printf("\n-- %s --\n", family.name.c_str());
    bench::Table table({"l", "max visits/deg", "bound 24*sqrt(l+1)*log n",
                        "ratio"});
    const double logn =
        std::log2(static_cast<double>(family.graph.node_count()));
    std::vector<double> ls;
    std::vector<double> observed;
    Rng rng(7);
    for (std::uint64_t l = 1024; l <= 65536; l *= 4) {
      const double worst = max_normalized_visits(family.graph, l, 20, rng);
      const double bound =
          24.0 * std::sqrt(static_cast<double>(l + 1)) * logn;
      ls.push_back(static_cast<double>(l));
      observed.push_back(worst);
      table.add_row({bench::fmt_u64(l), bench::fmt_double(worst, 1),
                     bench::fmt_double(bound, 0),
                     bench::fmt_double(worst / bound, 4)});
    }
    table.print();
    // Lemma 2.6's content is the BOUND (always respected, see ratio column);
    // growth rates differ: ~sqrt(l) on the line (the tight case) vs ~l once
    // past mixing (visits ~ l * pi(x)) on rapidly-mixing families.
    const bool line = family.name.substr(0, 4) == "line";
    bench::print_slope(line ? "max visits/deg vs l (tight case: ~sqrt(l))"
                            : "max visits/deg vs l (stationary regime: ~l)",
                       ls, observed, line ? 0.5 : 1.0);
  }
}

void BM_CentralWalk(benchmark::State& state) {
  const Graph g = gen::path(128);
  Rng rng(3);
  const auto l = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto visits = central_walk_visits(g, 0, l, rng);
    benchmark::DoNotOptimize(visits.data());
  }
}
BENCHMARK(BM_CentralWalk)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
