// E10 (Definition 3.3, Figures 3-4, Lemma 3.4): the gadget construction
// itself. For a sweep of l we report the gadget's size, measured diameter
// (must stay O(log n)) and breakpoint counts (must be >= ~n/(8k) per side).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "lowerbound/gadget.hpp"

namespace {

using namespace drw;
using namespace drw::lowerbound;

void run_experiment() {
  bench::banner("E10 / Definition 3.3 + Lemma 3.4",
                "gadget G_n: diameter O(log n) and breakpoint counts vs "
                "the n/(4k) bound");
  bench::Table table({"l", "n", "k", "k'", "D measured", "4*log2(n)",
                      "left bp", "right bp", "n'/(8k) bound"});
  for (std::uint64_t l = 256; l <= 262144; l *= 4) {
    const Gadget gadget = build_gadget(l);
    const auto n = gadget.graph.node_count();
    const std::uint32_t diameter =
        double_sweep_diameter_estimate(gadget.graph, gadget.root());
    const double logn = std::log2(static_cast<double>(n));
    const double bound = static_cast<double>(gadget.path_len) /
                         (8.0 * static_cast<double>(gadget.k));
    table.add_row({bench::fmt_u64(l), bench::fmt_u64(n),
                   bench::fmt_u64(gadget.k), bench::fmt_u64(gadget.k_prime),
                   bench::fmt_u64(diameter),
                   bench::fmt_double(4.0 * logn, 1),
                   bench::fmt_u64(gadget.left_breakpoints().size()),
                   bench::fmt_u64(gadget.right_breakpoints().size()),
                   bench::fmt_double(bound, 1)});
  }
  table.print();
  std::printf("Shape check: D tracks 4 log2 n while n grows 1024x; "
              "breakpoints exceed the Lemma 3.4 bound.\n");
}

void BM_BuildGadget(benchmark::State& state) {
  const auto l = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto gadget = build_gadget(l);
    benchmark::DoNotOptimize(gadget.graph.node_count());
  }
}
BENCHMARK(BM_BuildGadget)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
