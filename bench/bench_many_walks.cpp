// E3 (Theorem 2.8): k walks in O~(min(sqrt(k l D) + k, k + l)) rounds.
//
// Sweeps k at fixed l on an expander, reporting the stitched algorithm
// against the k-token naive baseline and showing the fallback crossover:
// when lambda(k, l) exceeds l the algorithm itself switches to k + l naive
// tokens (printed in the "mode" column).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_experiment() {
  Rng rng(4040);
  const Graph g = gen::random_regular(128, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const std::uint64_t l = 4096;
  bench::JsonReport json("many_walks");
  json.add("n", static_cast<std::uint64_t>(g.node_count()));
  json.add("l", l);
  // Reported values average reps seeded seed_base + rep, rep in {0, 1}.
  json.add("seed_base", static_cast<std::uint64_t>(300));
  json.add("reps", static_cast<std::uint64_t>(2));

  bench::banner("E3 / Theorem 2.8",
                "k walks of length l = 4096 from one source on "
                "expander(128,4): rounds vs k");
  bench::Table table({"k", "rounds", "mode", "sqrt(klD)+k (model)",
                      "k+l (naive model)"});
  std::vector<double> ks;
  std::vector<double> rounds_series;
  for (std::uint64_t k = 1; k <= 64; k *= 2) {
    const std::vector<NodeId> sources(k, 0);
    RunningStats rounds;
    bool fallback = false;
    double wall_ms = 0.0;
    std::uint64_t messages = 0;
    for (int rep = 0; rep < 2; ++rep) {
      congest::Network net(g, 300 + rep);
      const auto out = core::many_random_walks(
          net, sources, l, core::Params::paper(), diameter);
      rounds.add(static_cast<double>(out.stats.rounds));
      fallback = out.used_naive_fallback;
      wall_ms += out.stats.wall_ms;
      messages += out.stats.messages;
      if (rep == 0 && k == 1) json.add("threads", out.stats.threads);
    }
    const std::string suffix = "_k" + std::to_string(k);
    json.add("rounds" + suffix, rounds.mean());
    json.add("wall_ms" + suffix, wall_ms / 2.0);
    json.add("messages" + suffix, messages / 2);
    ks.push_back(static_cast<double>(k));
    rounds_series.push_back(rounds.mean());
    const double model = std::sqrt(static_cast<double>(k * l * diameter)) +
                         static_cast<double>(k);
    table.add_row({bench::fmt_u64(k), bench::fmt_double(rounds.mean(), 0),
                   fallback ? "naive-fallback" : "stitched",
                   bench::fmt_double(model, 0),
                   bench::fmt_u64(k + l)});
  }
  table.print();
  bench::print_slope("rounds vs k", ks, rounds_series, 0.5);
  json.write();
}

void BM_ManyWalks(benchmark::State& state) {
  Rng rng(4040);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  const auto k = static_cast<std::uint64_t>(state.range(0));
  const std::vector<NodeId> sources(k, 0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto out = core::many_random_walks(net, sources, 1024,
                                       core::Params::paper(), diameter);
    benchmark::DoNotOptimize(out.destinations.data());
    state.counters["rounds"] = static_cast<double>(out.stats.rounds);
  }
}
BENCHMARK(BM_ManyWalks)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
