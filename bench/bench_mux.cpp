// Concurrent-stitching experiment (acceptance gate for the multi-protocol
// round multiplexer):
//
//   A batch of independent long walks is stitched three ways from the same
//   prepared inventory: kOff (legacy walk-at-a-time), kSerial (the
//   conflict-aware schedule, one lane per Network::run) and kMux (the same
//   schedule with every non-conflicting group executed as one multiplexed
//   run). Two gates:
//
//   * Round fusion (deterministic, binds on EVERY host): mux-of-8 must cut
//     the stitch-phase round count >= 2x vs the serial schedule. Rounds
//     are the paper's currency and independent of host load, so this gate
//     arms CI even on small shared runners.
//   * Wall clock (hardware-gated, mirroring bench_skew's ladder): >= 1.5x
//     over sequential stitching at 8 threads on >= 8-hw-thread hosts --
//     fused waves are wide enough for the work-stealing pool, sequential
//     traversals are not. On 4..7-thread hosts the calibrated floor is
//     1.0x at the native width ("multiplexing must not pessimize"): the
//     per-round mux bookkeeping costs a few percent that narrower pools
//     cannot always win back, so the speedup claim there is carried by the
//     deterministic round gate. Trajectory-only below 4.
//
//   kMux results must be bit-identical to kSerial (same destinations,
//   same per-walk stats) -- the lane-isolation invariant, re-checked here
//   on the bench workload, with per-walk ("per-lane") round/message
//   counts emitted into BENCH_mux.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/batch_scheduler.hpp"

namespace {

using namespace drw;

constexpr double kRoundFusionGate = 2.0;   ///< serial/mux stitch rounds
constexpr double kWallGate8 = 1.5;         ///< serial/mux wall @8t, hw >= 8
constexpr double kWallFloorMid = 1.0;      ///< same at native width, 4..7 hw
constexpr unsigned kWidth = 8;             ///< mux lanes
constexpr std::uint64_t kWalks = 16;
constexpr std::uint64_t kLength = 4096;

struct ModeResult {
  std::vector<NodeId> destinations;
  std::vector<std::uint64_t> walk_rounds;    ///< per lane (walk)
  std::vector<std::uint64_t> walk_messages;  ///< per lane (walk)
  std::uint64_t batch_rounds = 0;
  std::uint64_t stitch_rounds = 0;  ///< batch minus phase1/tails/regen
  std::uint64_t stitches = 0;
  std::uint64_t groups = 0;
  std::uint64_t lanes = 0;
  std::uint64_t conflicts = 0;
  double wall_ms = 0.0;
};

/// One full serve of the batch in the given mode, on a fresh engine with a
/// fresh (deterministically re-prepared) inventory; only the scheduler run
/// is timed, Phase 1 is identical warmup for every mode.
ModeResult run_mode(const Graph& g, std::uint32_t diameter,
                    const std::vector<service::WalkRequest>& requests,
                    service::MuxMode mode, unsigned threads) {
  congest::Network net(g, 515151);
  net.set_threads(threads);
  core::StitchEngine engine(net, core::Params::paper(), diameter);
  engine.prepare(kWalks, kLength);
  if (engine.naive_mode()) {
    std::fprintf(stderr, "bench_mux: workload fell into naive mode\n");
    std::exit(1);
  }

  service::MuxOptions options;
  options.mode = mode;
  options.width = kWidth;
  service::BatchScheduler scheduler(engine);
  const auto start = std::chrono::steady_clock::now();
  const service::BatchScheduler::Outcome out =
      scheduler.run(requests, 0, options);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ModeResult r;
  for (const service::RequestResult& rr : out.results) {
    r.destinations.insert(r.destinations.end(), rr.destinations.begin(),
                          rr.destinations.end());
    r.walk_rounds.push_back(rr.stats.rounds);
    r.walk_messages.push_back(rr.stats.messages);
  }
  r.batch_rounds = out.stats.rounds;
  const std::uint64_t overhead = out.counters.phase1.rounds +
                                 out.tail_stats.rounds +
                                 out.regen_stats.rounds;
  r.stitch_rounds =
      out.stats.rounds > overhead ? out.stats.rounds - overhead : 0;
  r.stitches = out.counters.stitches;
  r.groups = out.mux_groups;
  r.lanes = out.mux_lanes;
  r.conflicts = out.mux_conflicts;
  r.wall_ms = wall_ms;
  return r;
}

/// Best-of-3 wall time (shared runners hiccup); same-seed reps double as a
/// determinism check.
ModeResult run_mode_best(const Graph& g, std::uint32_t diameter,
                         const std::vector<service::WalkRequest>& requests,
                         service::MuxMode mode, unsigned threads) {
  ModeResult best = run_mode(g, diameter, requests, mode, threads);
  for (int rep = 0; rep < 2; ++rep) {
    ModeResult again = run_mode(g, diameter, requests, mode, threads);
    if (again.destinations != best.destinations) {
      std::fprintf(stderr, "bench_mux: same-seed reps diverged\n");
      std::exit(1);
    }
    if (again.wall_ms < best.wall_ms) best = std::move(again);
  }
  return best;
}

int run_experiment() {
  Rng graph_rng(808);
  const Graph g = gen::random_regular(2048, 6, graph_rng);
  const std::uint32_t diameter = exact_diameter(g);

  // 16 independent long walks from spread-out sources: several stitches
  // per walk, connectors rarely colliding -- the workload the conflict
  // rule should multiplex almost perfectly.
  std::vector<service::WalkRequest> requests;
  for (std::uint64_t i = 0; i < kWalks; ++i) {
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>((i * 127) % g.node_count()), kLength, 1, false});
  }

  bench::banner(
      "MUX / concurrent cross-walk stitching vs sequential",
      "16 stitched walks of length 4096: the conflict-aware schedule run "
      "as mux-of-8 groups (one Network::run per wave) vs one lane at a "
      "time vs the legacy walk-at-a-time path; mux must fuse stitch "
      "rounds >=2x and results must match the serial schedule exactly");

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned wall_threads = hw >= 8 ? 8 : (hw >= 1 ? hw : 1);

  // Deterministic comparison at 1 thread (round counts are
  // thread-invariant; these runs also give the 1-thread wall trajectory).
  const ModeResult off1 = run_mode_best(g, diameter, requests,
                                        service::MuxMode::kOff, 1);
  const ModeResult serial1 = run_mode_best(g, diameter, requests,
                                           service::MuxMode::kSerial, 1);
  const ModeResult mux1 = run_mode_best(g, diameter, requests,
                                        service::MuxMode::kMux, 1);

  // Lane isolation on the bench workload: the mux must reproduce the
  // serial schedule bit-for-bit.
  const bool identical = mux1.destinations == serial1.destinations &&
                         mux1.walk_rounds == serial1.walk_rounds &&
                         mux1.walk_messages == serial1.walk_messages &&
                         mux1.stitches == serial1.stitches;

  // Wall comparison at the gated width. On a 1-thread host the sweep
  // point IS the 1-thread run already measured -- reuse it instead of
  // re-serving the batch nine more times (same policy as bench_service's
  // 1-core skip).
  const ModeResult serial_w =
      wall_threads == 1 ? serial1
                        : run_mode_best(g, diameter, requests,
                                        service::MuxMode::kSerial,
                                        wall_threads);
  const ModeResult mux_w =
      wall_threads == 1 ? mux1
                        : run_mode_best(g, diameter, requests,
                                        service::MuxMode::kMux, wall_threads);
  const ModeResult off_w =
      wall_threads == 1 ? off1
                        : run_mode_best(g, diameter, requests,
                                        service::MuxMode::kOff, wall_threads);

  const double round_fusion =
      mux1.stitch_rounds == 0
          ? 0.0
          : static_cast<double>(serial1.stitch_rounds) /
                static_cast<double>(mux1.stitch_rounds);
  const double wall_speedup =
      mux_w.wall_ms == 0.0 ? 0.0 : serial_w.wall_ms / mux_w.wall_ms;
  const double wall_vs_off =
      mux_w.wall_ms == 0.0 ? 0.0 : off_w.wall_ms / mux_w.wall_ms;

  bench::Table table({"mode", "stitch rounds", "batch rounds", "waves",
                      "conflicts", "wall ms (1t)",
                      "wall ms (" + std::to_string(wall_threads) + "t)"});
  table.add_row({"off (legacy)", bench::fmt_u64(off1.stitch_rounds),
                 bench::fmt_u64(off1.batch_rounds), "-", "-",
                 bench::fmt_double(off1.wall_ms, 1),
                 bench::fmt_double(off_w.wall_ms, 1)});
  table.add_row({"serial", bench::fmt_u64(serial1.stitch_rounds),
                 bench::fmt_u64(serial1.batch_rounds),
                 bench::fmt_u64(serial1.groups),
                 bench::fmt_u64(serial1.conflicts),
                 bench::fmt_double(serial1.wall_ms, 1),
                 bench::fmt_double(serial_w.wall_ms, 1)});
  table.add_row({"mux-of-8", bench::fmt_u64(mux1.stitch_rounds),
                 bench::fmt_u64(mux1.batch_rounds),
                 bench::fmt_u64(mux1.groups),
                 bench::fmt_u64(mux1.conflicts),
                 bench::fmt_double(mux1.wall_ms, 1),
                 bench::fmt_double(mux_w.wall_ms, 1)});
  table.print();

  bench::JsonReport json("mux");
  json.add("walks", kWalks);
  json.add("length", kLength);
  json.add("width", static_cast<std::uint64_t>(kWidth));
  json.add("hw_threads", static_cast<std::uint64_t>(hw));
  json.add("wall_threads", static_cast<std::uint64_t>(wall_threads));
  json.add("stitch_rounds_off", off1.stitch_rounds);
  json.add("stitch_rounds_serial", serial1.stitch_rounds);
  json.add("stitch_rounds_mux", mux1.stitch_rounds);
  json.add("batch_rounds_mux", mux1.batch_rounds);
  json.add("mux_waves", mux1.groups);
  json.add("mux_lanes", mux1.lanes);
  json.add("mux_conflicts", mux1.conflicts);
  json.add("stitches", mux1.stitches);
  json.add("round_fusion", round_fusion);
  json.add("round_fusion_gate", kRoundFusionGate);
  json.add("wall_ms_off_t1", off1.wall_ms);
  json.add("wall_ms_serial_t1", serial1.wall_ms);
  json.add("wall_ms_mux_t1", mux1.wall_ms);
  json.add("wall_ms_off_tw", off_w.wall_ms);
  json.add("wall_ms_serial_tw", serial_w.wall_ms);
  json.add("wall_ms_mux_tw", mux_w.wall_ms);
  json.add("wall_speedup", wall_speedup);
  json.add("wall_vs_off", wall_vs_off);
  json.add("wall_gate8", kWallGate8);
  json.add("wall_floor_mid", kWallFloorMid);
  json.add("deterministic", identical ? 1 : 0);
  // Per-lane (per-walk) trajectories: how evenly the per-walk cost spreads.
  for (std::size_t i = 0; i < mux1.walk_rounds.size(); ++i) {
    json.add("walk" + std::to_string(i) + "_rounds", mux1.walk_rounds[i]);
    json.add("walk" + std::to_string(i) + "_messages",
             mux1.walk_messages[i]);
  }

  // Gate ladder (mirrors bench_skew): the deterministic round-fusion gate
  // binds everywhere; wall gates bind only where the host can express them.
  const bool enforce8 = hw >= 8;
  const bool enforce_mid = !enforce8 && hw >= 4;
  const bool pass_rounds = round_fusion >= kRoundFusionGate;
  const bool pass8 = !enforce8 || wall_speedup >= kWallGate8;
  const bool pass_mid = !enforce_mid || wall_speedup >= kWallFloorMid;
  std::printf(
      "acceptance: mux == serial schedule: %s; stitch-round fusion %.2fx "
      "(>=%.1fx gate %s); wall mux-vs-serial @%ut %.2fx (>=%.1fx gate %s; "
      ">=%.2fx floor %s); legacy-vs-mux wall %.2fx (info)\n",
      identical ? "PASS" : "FAIL", round_fusion, kRoundFusionGate,
      pass_rounds ? "PASS" : "FAIL", wall_threads, wall_speedup, kWallGate8,
      !enforce8 ? "SKIP, <8 hw threads" : (pass8 ? "PASS" : "FAIL"),
      kWallFloorMid,
      !enforce_mid
          ? (enforce8 ? "SKIP, 8t gate binds" : "SKIP, <4 hw threads")
          : (pass_mid ? "PASS" : "FAIL"),
      wall_vs_off);
  json.write();
  return identical && pass_rounds && pass8 && pass_mid ? 0 : 1;
}

}  // namespace

int main() { return run_experiment(); }
