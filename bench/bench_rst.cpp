// E7 (Theorem 4.1): random spanning trees in O~(sqrt(m D)) rounds.
//
// Part 1 -- rounds: sweep graph size on expanders and tori; report measured
// rounds, the covering walk's length (what a token-forwarding Aldous-Broder
// would pay) and the sqrt(m D) model.
// Part 2 -- uniformity: chi-square of the distributed sampler against the
// matrix-tree count on small graphs.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "apps/rst.hpp"
#include "bench_common.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanning.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_rounds_experiment() {
  bench::banner("E7a / Theorem 4.1",
                "distributed RST rounds vs the covering-walk length and the "
                "sqrt(m D) model");
  bench::Table table({"graph", "n", "m", "D", "rounds", "cover length",
                      "rounds/cover", "sqrt(m*D)"});
  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  Rng rng(9);
  for (std::size_t n : {64, 128, 256}) {
    cases.push_back({"expander(" + std::to_string(n) + ",4)",
                     gen::random_regular(n, 4, rng)});
  }
  cases.push_back({"torus(10x10)", gen::torus(10, 10)});
  cases.push_back({"rgg(100)", gen::random_geometric(100, 0.18, rng)});

  for (const Case& c : cases) {
    const std::uint32_t diameter = exact_diameter(c.graph);
    RunningStats rounds;
    RunningStats cover;
    for (int rep = 0; rep < 3; ++rep) {
      congest::Network net(c.graph, 40 + rep);
      const auto result = apps::random_spanning_tree(
          net, 0, core::Params::paper(), diameter);
      rounds.add(static_cast<double>(result.stats.rounds));
      cover.add(static_cast<double>(result.cover_length));
    }
    table.add_row(
        {c.name, bench::fmt_u64(c.graph.node_count()),
         bench::fmt_u64(c.graph.edge_count()), bench::fmt_u64(diameter),
         bench::fmt_double(rounds.mean(), 0),
         bench::fmt_double(cover.mean(), 0),
         bench::fmt_double(rounds.mean() / cover.mean(), 2),
         bench::fmt_double(
             std::sqrt(static_cast<double>(c.graph.edge_count()) * diameter),
             0)});
  }
  table.print();
  std::printf("Shape check: rounds/cover < 1 on low-diameter graphs (the "
              "paper's win) and shrinking as n grows.\n");
}

void run_uniformity_experiment() {
  bench::banner("E7b / Theorem 4.1",
                "uniformity: distributed sampler vs matrix-tree counts "
                "(chi-square p-values; > 0.001 = consistent with uniform)");
  bench::Table table({"graph", "#trees", "samples", "chi2", "p-value"});
  struct Case {
    std::string name;
    Graph graph;
    int samples;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle(4)", gen::cycle(4), 1200});
  cases.push_back({"K4", gen::complete(4), 1600});
  {
    GraphBuilder b(5);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 4);
    b.add_edge(4, 0);
    b.add_edge(0, 2);
    cases.push_back({"C5+chord", b.build(), 2200});
  }
  for (const Case& c : cases) {
    const double tree_count = count_spanning_trees(c.graph);
    std::map<std::string, std::uint64_t> histogram;
    for (int i = 0; i < c.samples; ++i) {
      congest::Network net(c.graph, 100000 + i);
      const auto result = apps::random_spanning_tree(
          net, 0, core::Params::paper(), exact_diameter(c.graph));
      ++histogram[result.tree.canonical_key()];
    }
    std::vector<std::uint64_t> counts;
    for (const auto& [key, count] : histogram) counts.push_back(count);
    for (std::size_t i = histogram.size();
         i < static_cast<std::size_t>(tree_count); ++i) {
      counts.push_back(0);
    }
    const std::vector<double> expected(counts.size(), 1.0 / tree_count);
    const auto chi = chi_square_test(counts, expected);
    table.add_row({c.name, bench::fmt_double(tree_count, 0),
                   bench::fmt_u64(c.samples),
                   bench::fmt_double(chi.statistic, 2),
                   bench::fmt_double(chi.p_value, 4)});
  }
  table.print();
}

void BM_DistributedRst(benchmark::State& state) {
  Rng rng(9);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::random_regular(n, 4, rng);
  const auto diameter = exact_diameter(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto result =
        apps::random_spanning_tree(net, 0, core::Params::paper(), diameter);
    benchmark::DoNotOptimize(result.tree.edges.data());
    state.counters["rounds"] = static_cast<double>(result.stats.rounds);
  }
}
BENCHMARK(BM_DistributedRst)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  run_rounds_experiment();
  run_uniformity_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
