// E6 (Theorems 3.2 / 3.7, Figures 3-5): the path-verification lower bound.
//
// On the gadget G_n (path + tree, diameter O(log n)) the interval-merging
// verification needs Omega(sqrt(l / log l)) rounds. We sweep l, build G_n,
// run the natural in-class algorithm and print: measured rounds, the lower
// bound k = sqrt(l / log l), and the diameter -- the shape to reproduce is
// rounds >= k >> D with rounds growing polynomially in l while D stays
// logarithmic.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "lowerbound/gadget.hpp"
#include "lowerbound/path_verification.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;
using namespace drw::lowerbound;

void run_experiment() {
  bench::banner("E6 / Theorem 3.2",
                "PATH-VERIFICATION on the gadget G_n: measured rounds vs "
                "the Omega(sqrt(l / log l)) lower bound and the O(log n) "
                "diameter");
  bench::Table table({"l", "n", "D", "k=sqrt(l/log l)", "measured rounds",
                      "rounds/k", "intervals@verifier"});
  std::vector<double> ls;
  std::vector<double> rounds_series;
  for (std::uint64_t l = 1024; l <= 65536; l *= 4) {
    const Gadget gadget = build_gadget(l);
    congest::Network net(gadget.graph, 7);
    std::vector<NodeId> sequence;
    for (std::uint64_t i = 1; i <= l + 1; ++i) {
      sequence.push_back(gadget.path_node(i));
    }
    const auto result = verify_path(net, sequence, gadget.root());
    const std::uint32_t diameter =
        double_sweep_diameter_estimate(gadget.graph, gadget.root());
    ls.push_back(static_cast<double>(l));
    rounds_series.push_back(static_cast<double>(result.stats.rounds));
    table.add_row({bench::fmt_u64(l),
                   bench::fmt_u64(gadget.graph.node_count()),
                   bench::fmt_u64(diameter), bench::fmt_u64(gadget.k),
                   bench::fmt_u64(result.stats.rounds),
                   bench::fmt_double(static_cast<double>(result.stats.rounds) /
                                         static_cast<double>(gadget.k),
                                     2),
                   bench::fmt_u64(result.intervals_received_at_verifier)});
    if (!result.verified) std::printf("WARNING: verification failed!\n");
  }
  table.print();
  bench::print_slope("measured rounds vs l (lower bound slope ~0.5)", ls,
                     rounds_series, 0.5);

  std::printf(
      "\nReduction check (Theorem 3.7): weighted gadget forward "
      "probabilities\n");
  const WeightedGadget weighted = build_weighted_gadget(4096);
  double min_p = 1.0;
  for (std::uint64_t i = 1; i <= 4096; ++i) {
    min_p = std::min(min_p, weighted.forward_probability(i));
  }
  const double n = static_cast<double>(weighted.base.graph.node_count());
  std::printf("min forward prob over path = %.10f (needs >= 1 - 1/n^2 = "
              "%.10f)\n",
              min_p, 1.0 - 1.0 / (n * n));
}

void BM_PathVerification(benchmark::State& state) {
  const auto l = static_cast<std::uint64_t>(state.range(0));
  const Gadget gadget = build_gadget(l);
  std::vector<NodeId> sequence;
  for (std::uint64_t i = 1; i <= l + 1; ++i) {
    sequence.push_back(gadget.path_node(i));
  }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(gadget.graph, seed++);
    auto result = verify_path(net, sequence, gadget.root());
    benchmark::DoNotOptimize(result.verified);
    state.counters["rounds"] = static_cast<double>(result.stats.rounds);
    state.counters["k"] = static_cast<double>(gadget.k);
  }
}
BENCHMARK(BM_PathVerification)->Arg(1024)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
