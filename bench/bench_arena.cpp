// EdgeArena / transmit-staging microbenchmark (perf trajectory for the
// fused transmit path):
//
//   * arena push+pop round trips at depth 1 and depth 8 -- depth 1 is the
//     per-message cost the OLD engine paid for every delivery (push into
//     the per-edge FIFO, pop straight back out); the fused engine only
//     pays it on the congested long tail, so this number is the per-token
//     overhead the rearchitecture removed;
//   * generic staging (56-byte PendingSend-shaped records) vs the SoA
//     token columns (24 packed bytes across three u64 columns), each
//     measured stage -> replay -> inbox delivery, i.e. the full life of a
//     staged message on either path.
//
// Deterministic gate (binds on every host): packing must be lossless --
// every packable message round-trips bit-identically through PackedToken,
// and the classifier accepts/rejects exactly on the 32-bit payload
// boundary. Wall numbers are trajectory-only (BENCH_arena.json, diffed by
// tools/bench_diff.py against bench/baselines/BENCH_arena.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "congest/edge_arena.hpp"
#include "congest/message.hpp"
#include "util/rng.hpp"

namespace {

using namespace drw;
using congest::Delivery;
using congest::EdgeArena;
using congest::Message;
using congest::PackedToken;

constexpr std::uint32_t kEdges = 60000;  ///< n=10^4 deg-6 directed edges
constexpr std::uint32_t kStaged = 1u << 20;
constexpr int kReps = 5;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// The generic staging record's shape (mirrors the network's private
/// PendingSend: routing words + the full 48-byte Message).
struct GenericSend {
  std::uint32_t eid = 0;
  std::uint32_t tokens_before = 0;
  Message msg;
};

Message token_message(Rng& rng) {
  return Message{static_cast<std::uint16_t>(1 + rng.next_below(4)),
                 {rng.next_below(kEdges), rng.next_below(1u << 20),
                  rng.next_below(1u << 20), rng.next_below(64)}};
}

/// Lossless round-trip + classifier boundary check; exits nonzero on any
/// mismatch (this is the bench's deterministic gate).
int run_pack_gate() {
  bench::banner("ARENA-0 packing losslessness",
                "PackedToken round-trips every packable message "
                "bit-identically; the classifier rejects any payload word "
                "with high bits set.");
  Rng rng(4242);
  for (int i = 0; i < 10000; ++i) {
    Message m = token_message(rng);
    m.lane = static_cast<std::uint16_t>(rng.next_below(8));
    if (!congest::token_packable(m)) {
      std::printf("FAIL: packable message rejected\n");
      return 1;
    }
    const std::uint32_t eid =
        static_cast<std::uint32_t>(rng.next_below(kEdges));
    const PackedToken t = congest::pack_token(eid, m, m.lane);
    const Message back = congest::unpack_token(t);
    if (congest::token_eid(t) != eid || back.type != m.type ||
        back.lane != m.lane || back.f != m.f) {
      std::printf("FAIL: pack/unpack round trip diverged\n");
      return 1;
    }
  }
  for (int word = 0; word < 4; ++word) {
    Message m;
    m.type = 1;
    m.f[word] = std::uint64_t{1} << 32;  // exactly one high bit
    if (congest::token_packable(m)) {
      std::printf("FAIL: classifier accepted a 33-bit payload word\n");
      return 1;
    }
  }
  std::printf("pack/unpack round trip + classifier boundary: OK\n");
  return 0;
}

/// Arena push+pop round trips at fixed backlog depth; returns ns/message.
double time_arena_depth(std::uint32_t depth, std::uint64_t& checksum) {
  EdgeArena arena;
  arena.reset(kEdges, 1);
  Rng rng(99);
  Message m = token_message(rng);
  double best_ms = 1e18;
  const std::uint32_t sweeps = 32 / depth;  // ~2M msgs/rep either way
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
      for (std::uint32_t eid = 0; eid < kEdges; ++eid) {
        for (std::uint32_t d = 0; d < depth; ++d) {
          m.f[3] = d;
          checksum += arena.push(0, eid, m);
        }
        for (std::uint32_t d = 0; d < depth; ++d) {
          checksum += arena.pop(0, eid).f[3];
        }
      }
    }
    const double ms = ms_since(t0);
    if (ms < best_ms) best_ms = ms;
  }
  const double msgs = double(sweeps) * kEdges * depth;
  return best_ms * 1e6 / msgs;
}

/// Generic path: stage 56-byte records, then replay them into an inbox of
/// Delivery values (the pre-SoA transmit data flow). Returns ns/message.
double time_stage_generic(std::uint64_t& checksum) {
  Rng rng(7);
  std::vector<Message> inputs;
  inputs.reserve(kStaged);
  for (std::uint32_t i = 0; i < kStaged; ++i) {
    inputs.push_back(token_message(rng));
  }
  std::vector<GenericSend> staged;
  std::vector<Delivery> inbox;
  double best_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    staged.clear();
    for (std::uint32_t i = 0; i < kStaged; ++i) {
      staged.push_back(GenericSend{
          static_cast<std::uint32_t>(inputs[i].f[0]), 0, inputs[i]});
    }
    inbox.clear();
    for (const GenericSend& s : staged) {
      inbox.push_back(Delivery{s.msg, s.eid});
      checksum += s.msg.f[1];
    }
    const double ms = ms_since(t0);
    if (ms < best_ms) best_ms = ms;
  }
  checksum += inbox.size();
  return best_ms * 1e6 / double(kStaged);
}

/// SoA path: stage the three packed columns, then replay them straight
/// into Delivery values as the fused engine does. Returns ns/message.
double time_stage_soa(std::uint64_t& checksum) {
  Rng rng(7);
  std::vector<Message> inputs;
  inputs.reserve(kStaged);
  for (std::uint32_t i = 0; i < kStaged; ++i) {
    inputs.push_back(token_message(rng));
  }
  std::vector<std::uint64_t> hdr, lo, hi;
  std::vector<Delivery> inbox;
  double best_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    hdr.clear();
    lo.clear();
    hi.clear();
    for (std::uint32_t i = 0; i < kStaged; ++i) {
      const PackedToken t = congest::pack_token(
          static_cast<std::uint32_t>(inputs[i].f[0]), inputs[i], 0);
      hdr.push_back(t.hdr);
      lo.push_back(t.lo);
      hi.push_back(t.hi);
    }
    inbox.clear();
    for (std::uint32_t i = 0; i < kStaged; ++i) {
      const std::uint64_t h = hdr[i];
      const std::uint64_t l = lo[i];
      const std::uint64_t g = hi[i];
      inbox.push_back(
          Delivery{Message{static_cast<std::uint16_t>(h >> 16),
                           {l & 0xffffffffull, l >> 32, g & 0xffffffffull,
                            g >> 32},
                           static_cast<std::uint16_t>(h)},
                   static_cast<std::uint32_t>(h >> 32)});
      checksum += l >> 32;
    }
    const double ms = ms_since(t0);
    if (ms < best_ms) best_ms = ms;
  }
  checksum += inbox.size();
  return best_ms * 1e6 / double(kStaged);
}

int run_trajectory(bench::JsonReport& json) {
  bench::banner("ARENA-1 delivery-path throughput",
                "Per-message cost of the arena FIFO round trip vs the "
                "staged generic and SoA token paths (best of 5 reps).");
  std::uint64_t checksum = 0;
  const double depth1 = time_arena_depth(1, checksum);
  const double depth8 = time_arena_depth(8, checksum);
  const double generic = time_stage_generic(checksum);
  const double soa = time_stage_soa(checksum);

  bench::Table table({"path", "ns/msg"});
  table.add_row({"arena push+pop depth1", bench::fmt_double(depth1)});
  table.add_row({"arena push+pop depth8", bench::fmt_double(depth8)});
  table.add_row({"stage+replay generic (56B)", bench::fmt_double(generic)});
  table.add_row({"stage+replay SoA (24B)", bench::fmt_double(soa)});
  table.print();
  std::printf("SoA vs generic staging: %.2fx  (checksum %llu)\n",
              generic / soa, static_cast<unsigned long long>(checksum));

  json.add("arena_push_pop_depth1_ns", depth1);
  json.add("arena_push_pop_depth8_ns", depth8);
  json.add("stage_generic_ns", generic);
  json.add("stage_soa_ns", soa);
  json.add("soa_vs_generic_speedup", generic / soa);
  json.add("stage_generic_bytes_per_msg",
           static_cast<std::uint64_t>(sizeof(GenericSend)));
  json.add("stage_soa_bytes_per_msg",
           static_cast<std::uint64_t>(sizeof(PackedToken)));
  json.add("edges", static_cast<std::uint64_t>(kEdges));
  json.add("staged_messages", static_cast<std::uint64_t>(kStaged));
  json.add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  return 0;
}

void BM_ArenaPushPopDepth1(benchmark::State& state) {
  EdgeArena arena;
  arena.reset(kEdges, 1);
  Rng rng(3);
  const Message m = token_message(rng);
  std::uint32_t eid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.push(0, eid, m));
    benchmark::DoNotOptimize(arena.pop(0, eid));
    eid = eid + 1 < kEdges ? eid + 1 : 0;
  }
}
BENCHMARK(BM_ArenaPushPopDepth1);

void BM_TokenPackUnpack(benchmark::State& state) {
  Rng rng(5);
  const Message m = token_message(rng);
  for (auto _ : state) {
    const PackedToken t = congest::pack_token(17, m, 0);
    benchmark::DoNotOptimize(congest::unpack_token(t));
  }
}
BENCHMARK(BM_TokenPackUnpack);

}  // namespace

int main(int argc, char** argv) {
  const int gate_rc = run_pack_gate();
  if (gate_rc != 0) return gate_rc;
  drw::bench::JsonReport json("arena");
  const int rc = run_trajectory(json);
  json.write();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
