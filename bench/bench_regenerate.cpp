// E9 (Section 2.2): regenerating the entire walk costs O~(sqrt(l D)) extra
// rounds -- the same order as sampling the endpoint alone.
//
// We run the stitched walk with and without trajectory recording and report
// the regeneration surcharge, verifying it stays a constant factor of the
// base cost as l grows.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_experiment() {
  bench::banner("E9 / Section 2.2",
                "walk regeneration surcharge: rounds with full position "
                "regeneration vs endpoint-only");
  Rng rng(21);
  const Graph g = gen::random_regular(96, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  bench::Table table({"l", "endpoint-only rounds", "with regen rounds",
                      "regen surcharge", "surcharge/base"});
  for (std::uint64_t l = 512; l <= 16384; l *= 2) {
    RunningStats base;
    RunningStats with_regen;
    RunningStats surcharge;
    for (int rep = 0; rep < 3; ++rep) {
      core::Params plain = core::Params::paper();
      congest::Network net(g, 60 + rep);
      base.add(static_cast<double>(
          core::single_random_walk(net, 0, l, plain, diameter)
              .result.stats.rounds));

      core::Params recording = core::Params::paper();
      recording.record_trajectories = true;
      congest::Network net2(g, 60 + rep);
      const auto out =
          core::single_random_walk(net2, 0, l, recording, diameter);
      with_regen.add(static_cast<double>(out.result.stats.rounds));
      surcharge.add(static_cast<double>(out.result.counters.regen.rounds));
    }
    table.add_row({bench::fmt_u64(l), bench::fmt_double(base.mean(), 0),
                   bench::fmt_double(with_regen.mean(), 0),
                   bench::fmt_double(surcharge.mean(), 0),
                   bench::fmt_double(surcharge.mean() / base.mean(), 3)});
  }
  table.print();
  std::printf("Shape check: the surcharge stays a small fraction of the "
              "base cost at every l (same O~(sqrt(l D)) order).\n");
}

void BM_WalkWithRegeneration(benchmark::State& state) {
  Rng rng(21);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  core::Params params = core::Params::paper();
  params.record_trajectories = true;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto out = core::single_random_walk(
        net, 0, static_cast<std::uint64_t>(state.range(0)), params,
        diameter);
    benchmark::DoNotOptimize(out.positions.data());
  }
}
BENCHMARK(BM_WalkWithRegeneration)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
