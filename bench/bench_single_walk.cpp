// E1 (Theorem 2.5): round complexity of one l-step walk.
//
// Series: naive token forwarding (l rounds), the PODC 2009 baseline
// (O~(l^{2/3} D^{1/3})), and this paper's algorithm (O~(sqrt(l D))), swept
// over l on three fixed low-diameter topologies. The shape to reproduce:
// the paper's algorithm wins for l >> D, with a log-log slope of ~0.5 in l
// versus 1.0 for naive and ~0.67 for PODC 2009.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

struct Topology {
  std::string name;
  Graph graph;
  std::uint32_t diameter;
};

std::vector<Topology> topologies() {
  Rng rng(2024);
  std::vector<Topology> out;
  {
    Graph g = gen::random_regular(128, 4, rng);
    const auto d = exact_diameter(g);
    out.push_back({"expander(128,4)", std::move(g), d});
  }
  {
    Graph g = gen::torus(12, 12);
    const auto d = exact_diameter(g);
    out.push_back({"torus(12x12)", std::move(g), d});
  }
  {
    Graph g = gen::random_geometric(128, 0.16, rng);
    const auto d = exact_diameter(g);
    out.push_back({"rgg(128)", std::move(g), d});
  }
  return out;
}

std::uint64_t measured_rounds(const Graph& g, std::uint32_t diameter,
                              std::uint64_t l, const core::Params& params,
                              std::uint64_t seed) {
  congest::Network net(g, seed);
  return core::single_random_walk(net, 0, l, params, diameter)
      .result.stats.rounds;
}

void run_experiment() {
  bench::banner("E1 / Theorem 2.5",
                "rounds to sample one l-step walk: naive (l) vs PODC'09 "
                "(l^{2/3} D^{1/3}) vs this paper (sqrt(l D))");
  for (const Topology& topo : topologies()) {
    std::printf("\n-- %s  D=%u  %s --\n", topo.name.c_str(), topo.diameter,
                topo.graph.summary().c_str());
    bench::Table table({"l", "naive", "podc09", "paper", "paper/naive",
                        "sqrt(l*D) (model)"});
    std::vector<double> ls;
    std::vector<double> paper_rounds;
    std::vector<double> podc_rounds;
    for (std::uint64_t l = 256; l <= 32768; l *= 2) {
      RunningStats naive;
      RunningStats podc;
      RunningStats paper;
      for (int rep = 0; rep < 3; ++rep) {
        const std::uint64_t seed = 17 + 1000 * rep;
        congest::Network net(topo.graph, seed);
        naive.add(static_cast<double>(
            core::naive_random_walk(net, 0, l).stats.rounds));
        podc.add(static_cast<double>(measured_rounds(
            topo.graph, topo.diameter, l, core::Params::podc09(), seed)));
        paper.add(static_cast<double>(measured_rounds(
            topo.graph, topo.diameter, l, core::Params::paper(), seed)));
      }
      ls.push_back(static_cast<double>(l));
      paper_rounds.push_back(paper.mean());
      podc_rounds.push_back(podc.mean());
      table.add_row(
          {bench::fmt_u64(l), bench::fmt_double(naive.mean(), 0),
           bench::fmt_double(podc.mean(), 0),
           bench::fmt_double(paper.mean(), 0),
           bench::fmt_double(paper.mean() / naive.mean(), 3),
           bench::fmt_double(
               std::sqrt(static_cast<double>(l) * topo.diameter), 0)});
    }
    table.print();
    bench::print_slope("paper rounds vs l", ls, paper_rounds, 0.5);
    bench::print_slope("podc09 rounds vs l", ls, podc_rounds, 0.67);
  }
}

// Wall-clock timing of the full protocol stack (simulator throughput).
void BM_SingleWalkSimulation(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  const auto l = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto out = core::single_random_walk(net, 0, l, core::Params::paper(),
                                        diameter);
    benchmark::DoNotOptimize(out.result.destination);
    state.counters["rounds"] =
        static_cast<double>(out.result.stats.rounds);
    state.counters["messages"] =
        static_cast<double>(out.result.stats.messages);
  }
}
BENCHMARK(BM_SingleWalkSimulation)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_NaiveWalkSimulation(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto l = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto result = core::naive_random_walk(net, 0, l);
    benchmark::DoNotOptimize(result.destination);
    state.counters["rounds"] = static_cast<double>(result.stats.rounds);
  }
}
BENCHMARK(BM_NaiveWalkSimulation)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
