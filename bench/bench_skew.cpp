// Skew experiment (acceptance gate for the load-balanced round executor):
//
//   On degree-skewed graph families -- star, lollipop, power-law -- the
//   legacy equal-node-count shard partition piles most edge traffic onto
//   one worker while the rest idle. The edge-weighted partition plus
//   work-stealing must recover the lost parallelism: at 8 threads the
//   edge-weighted executor must be >= 1.5x faster than the node-count
//   partition on at least one of the star/lollipop/power-law families,
//   while results stay bit-identical under every thread count, partition
//   strategy and steal-chunk grain. An expander rides along as the
//   no-skew control (both partitions should be ~equal there).
//
//   Gate policy mirrors bench_service: the 8-thread gate binds only when
//   the host has >= 8 hardware threads; on 4..7-thread hosts the
//   calibrated 2-thread speedup floor is enforced instead; below 4 the
//   experiment still runs and emits the BENCH_skew.json trajectory point.
//
// The workload is a degree-proportional token storm: every node seeds
// ~deg/4 TTL-limited tokens that random-walk until they expire. Per-round
// work is proportional to local edge traffic -- the same shape as the
// paper's Phase 1 / GET-MORE-WALKS floods, which is exactly the traffic
// the executor must balance.
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

namespace {

using namespace drw;

constexpr double kImprovementGate8 = 1.5;  ///< edges-vs-nodes floor @8t
using bench::kSpeedupFloorT2;  ///< 1t->2t floor on 4..7t hosts (shared)

/// Degree-proportional token storm. Each node folds its delivery stream
/// into a per-node checksum, so any divergence in delivery order or RNG
/// consumption across executor configurations is detected exactly.
class SkewStorm final : public congest::Protocol {
 public:
  SkewStorm(std::size_t n, std::uint32_t ttl) : sum_(n), ttl_(ttl) {}

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      const std::uint32_t seeds = 1 + ctx.degree() / 4;
      for (std::uint32_t t = 0; t < seeds; ++t) hop(ctx, ttl_);
      return;
    }
    for (const congest::Delivery& d : ctx.inbox()) {
      sum_[v] = sum_[v] * 1099511628211ull ^
                ((ctx.round() << 32) ^
                 (static_cast<std::uint64_t>(d.from) << 8) ^ d.msg.f[0]);
      if (d.msg.f[0] > 0) hop(ctx, d.msg.f[0] - 1);
    }
  }

  /// Order-sensitive digest over every node's delivery stream.
  std::uint64_t digest() const {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint64_t s : sum_) h = (h ^ s) * 1099511628211ull;
    return h;
  }

 private:
  void hop(congest::Context& ctx, std::uint64_t ttl) {
    ctx.send(static_cast<std::uint32_t>(ctx.rng().next_below(ctx.degree())),
             congest::Message{1, {ttl, 0, 0, 0}});
  }

  std::vector<std::uint64_t> sum_;
  std::uint32_t ttl_;
};

struct StormPoint {
  double wall_ms = 0.0;
  std::uint64_t digest = 0;
  congest::RunStats stats;
};

StormPoint run_storm_once(const Graph& g, unsigned threads,
                          congest::Partition partition) {
  congest::Network net(g, 70707);
  net.set_threads(threads);
  net.set_partition(partition);
  SkewStorm storm(g.node_count(), 24);
  StormPoint point;
  point.stats = net.run(storm);
  point.wall_ms = point.stats.wall_ms;
  point.digest = storm.digest();
  return point;
}

/// Best-of-3 wall time: the storms are short (tens of ms), so a single
/// scheduler hiccup on a shared runner could swing a ratio gate by far
/// more than the thresholds -- the best of three approximates the
/// uncontended run. Same-seed reps double as a same-config determinism
/// check.
StormPoint run_storm(const Graph& g, unsigned threads,
                     congest::Partition partition) {
  StormPoint best = run_storm_once(g, threads, partition);
  for (int rep = 0; rep < 2; ++rep) {
    const StormPoint again = run_storm_once(g, threads, partition);
    if (again.digest != best.digest) {
      std::fprintf(stderr, "bench_skew: same-seed reps diverged\n");
      std::exit(1);
    }
    if (again.wall_ms < best.wall_ms) {
      best.wall_ms = again.wall_ms;
      best.stats = again.stats;
    }
  }
  return best;
}

struct FamilyResult {
  std::string name;
  double wall_t1 = 0.0;
  double wall_t2_edges = 0.0;
  double wall_t8_nodes = 0.0;
  double wall_t8_edges = 0.0;
  double improvement8 = 0.0;  ///< node-count wall / edge-weighted wall @8t
  double speedup2 = 0.0;      ///< 1-thread wall / 2-thread edge wall
  bool deterministic = true;
  congest::RunStats stats_t8_edges;  ///< per-phase breakdown source
};

FamilyResult run_family(const std::string& name, const Graph& g) {
  FamilyResult r;
  r.name = name;
  const StormPoint t1 =
      run_storm(g, 1, congest::Partition::kEdgeWeighted);
  const StormPoint t2e =
      run_storm(g, 2, congest::Partition::kEdgeWeighted);
  const StormPoint t8n =
      run_storm(g, 8, congest::Partition::kNodeCount);
  const StormPoint t8e =
      run_storm(g, 8, congest::Partition::kEdgeWeighted);
  r.wall_t1 = t1.wall_ms;
  r.wall_t2_edges = t2e.wall_ms;
  r.wall_t8_nodes = t8n.wall_ms;
  r.wall_t8_edges = t8e.wall_ms;
  r.improvement8 = t8n.wall_ms / t8e.wall_ms;
  r.speedup2 = t1.wall_ms / t2e.wall_ms;
  r.deterministic = t1.digest == t2e.digest && t1.digest == t8n.digest &&
                    t1.digest == t8e.digest &&
                    t1.stats.rounds == t8e.stats.rounds &&
                    t1.stats.messages == t8e.stats.messages;
  r.stats_t8_edges = t8e.stats;
  return r;
}

int run_experiment() {
  Rng pl_rng(606);
  Rng reg_rng(707);
  struct Family {
    std::string name;
    Graph graph;
    bool gated;  ///< counts toward the >=1.5x improvement gate
  };
  const Family families[] = {
      {"star", gen::star(12288), true},
      {"lollipop", gen::lollipop(192, 4096), true},
      {"powerlaw", gen::power_law(8192, 4, pl_rng), true},
      // No-skew control: both partitions should be ~equal here.
      {"expander", gen::random_regular(8192, 8, reg_rng), false},
  };

  bench::banner(
      "SKEW / edge-weighted shards + work-stealing vs node-count shards",
      "degree-proportional token storms on star/lollipop/power-law (the "
      "lower-bound gadget shapes) vs an expander control: same seeded "
      "storm at {1t, 2t, 8t-node-partition, 8t-edge-partition}; results "
      "must be bit-identical, wall time must not be");

  const unsigned hw = std::thread::hardware_concurrency();
  bench::Table table({"family", "t1 ms", "t2(edges) ms", "t8(nodes) ms",
                      "t8(edges) ms", "edges vs nodes @8", "speedup @2"});
  bench::JsonReport json("skew");

  bool deterministic = true;
  double best_gated_improvement = 0.0;
  double best_gated_speedup2 = 0.0;
  std::size_t grain = 0;
  std::uint32_t steal_chunk = 0;
  for (const Family& family : families) {
    const FamilyResult r = run_family(family.name, family.graph);
    deterministic = deterministic && r.deterministic;
    if (family.gated && r.improvement8 > best_gated_improvement) {
      best_gated_improvement = r.improvement8;
    }
    // The floor takes the best 2-thread speedup over the gated families: a
    // genuinely serialized executor scores ~1.0 on ALL of them, while a
    // healthy one clears the floor on at least one even if a particular
    // family's short storm caught scheduler noise.
    if (family.gated && r.speedup2 > best_gated_speedup2) {
      best_gated_speedup2 = r.speedup2;
    }
    table.add_row({family.name, bench::fmt_double(r.wall_t1, 1),
                   bench::fmt_double(r.wall_t2_edges, 1),
                   bench::fmt_double(r.wall_t8_nodes, 1),
                   bench::fmt_double(r.wall_t8_edges, 1),
                   bench::fmt_double(r.improvement8, 2),
                   bench::fmt_double(r.speedup2, 2)});
    json.add("wall_ms_" + r.name + "_t1", r.wall_t1);
    json.add("wall_ms_" + r.name + "_t2_edges", r.wall_t2_edges);
    json.add("wall_ms_" + r.name + "_t8_nodes", r.wall_t8_nodes);
    json.add("wall_ms_" + r.name + "_t8_edges", r.wall_t8_edges);
    json.add("improvement8_" + r.name, r.improvement8);
    json.add("speedup2_" + r.name, r.speedup2);
    json.add("rounds_" + r.name, r.stats_t8_edges.rounds);
    json.add("messages_" + r.name, r.stats_t8_edges.messages);
    bench::add_phase_fields(json, r.name + "_t8_edges_", r.stats_t8_edges);
  }
  table.print();

  // The executor knobs actually in effect (one probe network; the grain is
  // per-width, so build it at the widest sweep point).
  {
    congest::Network probe(families[0].graph, 1);
    probe.set_threads(8);
    SkewStorm tiny(families[0].graph.node_count(), 0);
    (void)probe.run(tiny);
    grain = probe.dispatch_grain();
    steal_chunk = probe.steal_chunk();
  }
  json.add("dispatch_grain", static_cast<std::uint64_t>(grain));
  json.add("steal_chunk", steal_chunk);
  json.add("hw_threads", static_cast<std::uint64_t>(hw));
  json.add("improvement_gate8", kImprovementGate8);
  json.add("speedup_floor_t2", kSpeedupFloorT2);
  json.add("best_gated_improvement8", best_gated_improvement);
  json.add("best_gated_speedup2", best_gated_speedup2);
  json.add("deterministic", deterministic ? 1 : 0);

  // Gate selection mirrors bench_service: 8-thread improvement where the
  // host can actually run 8 workers; the calibrated 2-thread floor on
  // 4..7-thread hosts; trajectory-only below that.
  const bool enforce8 = hw >= 8;
  const bool enforce2 = !enforce8 && hw >= 4;
  const bool pass8 = !enforce8 || best_gated_improvement >= kImprovementGate8;
  const bool pass2 = !enforce2 || best_gated_speedup2 >= kSpeedupFloorT2;
  std::printf(
      "acceptance: bit-identical across configs: %s; best skew-family "
      "edges-vs-nodes improvement @8t %.2fx (>=%.1fx gate %s); best "
      "skew-family 2-thread speedup %.2fx (>=%.2fx floor %s)\n",
      deterministic ? "PASS" : "FAIL", best_gated_improvement,
      kImprovementGate8,
      !enforce8 ? "SKIP, <8 hw threads" : (pass8 ? "PASS" : "FAIL"),
      best_gated_speedup2, kSpeedupFloorT2,
      !enforce2 ? (enforce8 ? "SKIP, 8t gate binds" : "SKIP, <4 hw threads")
                : (pass2 ? "PASS" : "FAIL"));
  json.write();
  return deterministic && pass8 && pass2 ? 0 : 1;
}

}  // namespace

int main() { return run_experiment(); }
