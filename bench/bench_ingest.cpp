// Real-graph ingestion benchmark (perf trajectory for the bulk parser and
// the binary CSR cache):
//
//   * legacy per-line istringstream parsing (the pre-bulk reader,
//     reimplemented here as the reference) vs the in-place bulk tokenizer
//     at t=1 -- the satellite speedup this PR claims (>= 3x gate);
//   * cold convert (parse + degree relabel + CRC + atomic write) and the
//     serving-start comparison: warm mmap reload of the .csr vs re-parsing
//     the text edge list (>= 5x gate);
//   * parse scaling across thread counts (informational on this host).
//
// Deterministic gate (binds on every host): the legacy reference, the bulk
// parser at every thread count, and the converted + mmap'd CSR must all
// carry the SAME graph -- identical CSR arrays after relabeling. Wall
// numbers land in BENCH_ingest.json (diffed informationally by
// tools/bench_diff.py against bench/baselines/BENCH_ingest.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace drw;

constexpr int kReps = 3;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

const char* text_path() { return "/tmp/drw_bench_ingest.txt"; }
const char* csr_path() { return "/tmp/drw_bench_ingest.txt.csr"; }

/// The workload: a scale-free graph big enough that parsing dominates
/// process startup but small enough for a 1-core CI box.
void write_workload() {
  Rng rng(4242);
  const Graph g = gen::power_law(30000, 6, rng);
  write_edge_list_file(text_path(), g);
}

/// The pre-bulk reader, verbatim in spirit: getline + istringstream
/// extraction per line. This is the per-line cost every server start used
/// to pay; kept here as the timing reference and identity oracle.
Graph legacy_parse(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t declared = 0;
  NodeId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      std::istringstream header(line.substr(1));
      std::string word;
      if (header >> word && word == "nodes") {
        std::size_t n = 0;
        if (header >> n) declared = n;
      }
      continue;
    }
    std::istringstream iss(line);
    long long a = 0;
    long long b = 0;
    if (!(iss >> a >> b)) continue;
    const NodeId u = static_cast<NodeId>(a);
    const NodeId v = static_cast<NodeId>(b);
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  const std::size_t n = std::max(declared, edges.empty()
                                               ? std::size_t{0}
                                               : std::size_t{max_id} + 1);
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.node_count() != b.node_count()) return false;
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  if (ao.size() != bo.size()) return false;
  for (std::size_t i = 0; i < ao.size(); ++i) {
    if (ao[i] != bo[i]) return false;
  }
  const auto aa = a.adjacency();
  const auto ba = b.adjacency();
  if (aa.size() != ba.size()) return false;
  for (std::size_t i = 0; i < aa.size(); ++i) {
    if (aa[i] != ba[i]) return false;
  }
  return true;
}

/// Identity across every ingestion route; exits nonzero on any divergence
/// (this is the bench's deterministic gate).
int run_identity_gate() {
  bench::banner("INGEST-0 route identity",
                "Legacy per-line parse, bulk parse at t=1/2/8, and the "
                "converted + mmap'd CSR all carry the same graph.");
  const Graph legacy = legacy_parse(text_path());
  for (const unsigned threads : {1u, 2u, 8u}) {
    const Graph bulk = read_edge_list_file(text_path(), threads);
    if (!graphs_equal(legacy, bulk)) {
      std::printf("FAIL: bulk parse (t=%u) diverged from legacy\n", threads);
      return 1;
    }
  }
  const csr::LoadedGraph converted =
      csr::convert_edge_list(text_path(), csr_path());
  const csr::LoadedGraph mapped = csr::load_graph(csr_path());
  if (!mapped.from_csr) {
    std::printf("FAIL: load_graph did not mmap the converted file\n");
    return 1;
  }
  if (!graphs_equal(converted.graph, mapped.graph) ||
      converted.new_to_old != mapped.new_to_old) {
    std::printf("FAIL: mmap'd CSR diverged from the converted graph\n");
    return 1;
  }
  std::printf("legacy == bulk(t=1,2,8) == csr(mmap): OK\n");
  return 0;
}

template <typename Fn>
double best_of_reps(Fn&& fn) {
  double best_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    fn();
    const double ms = ms_since(t0);
    if (ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

int run_trajectory(bench::JsonReport& json) {
  bench::banner("INGEST-1 parse + serving-start throughput",
                "Legacy per-line vs bulk parse, and warm mmap reload vs "
                "text re-parse at serving start (best of 3 reps).");
  ParseStats stats;
  read_edge_list_file(text_path(), 1, &stats);

  std::size_t sink = 0;
  const double legacy_ms =
      best_of_reps([&] { sink += legacy_parse(text_path()).edge_count(); });
  const double bulk_t1_ms = best_of_reps(
      [&] { sink += read_edge_list_file(text_path(), 1).edge_count(); });
  const double bulk_auto_ms = best_of_reps(
      [&] { sink += read_edge_list_file(text_path(), 0).edge_count(); });
  const double convert_ms = best_of_reps(
      [&] { sink += csr::convert_edge_list(text_path(), csr_path(), 1)
                        .graph.edge_count(); });
  const double text_start_ms = best_of_reps(
      [&] { sink += csr::load_graph(text_path(), 1).graph.edge_count(); });
  const double mmap_start_ms = best_of_reps(
      [&] { sink += csr::load_graph(csr_path()).graph.edge_count(); });

  const double parse_speedup = legacy_ms / bulk_t1_ms;
  const double start_speedup = text_start_ms / mmap_start_ms;
  const double mb = static_cast<double>(stats.bytes) / (1024.0 * 1024.0);

  bench::Table table({"route", "ms", "edges/s"});
  auto rate = [&](double ms) {
    return bench::fmt_double(static_cast<double>(stats.edges) / (1e3 * ms),
                             2) + "M";
  };
  table.add_row({"legacy per-line parse", bench::fmt_double(legacy_ms),
                 rate(legacy_ms)});
  table.add_row({"bulk parse t=1", bench::fmt_double(bulk_t1_ms),
                 rate(bulk_t1_ms)});
  table.add_row({"bulk parse t=auto", bench::fmt_double(bulk_auto_ms),
                 rate(bulk_auto_ms)});
  table.add_row({"convert (parse+relabel+write)",
                 bench::fmt_double(convert_ms), rate(convert_ms)});
  table.add_row({"serving start: text re-parse",
                 bench::fmt_double(text_start_ms), rate(text_start_ms)});
  table.add_row({"serving start: mmap .csr",
                 bench::fmt_double(mmap_start_ms), rate(mmap_start_ms)});
  table.print();
  std::printf(
      "%.1f MB / %llu edges | bulk vs legacy: %.2fx | mmap vs re-parse: "
      "%.2fx (sink %zu)\n",
      mb, static_cast<unsigned long long>(stats.edges), parse_speedup,
      start_speedup, sink);

  json.add("ingest_legacy_ms", legacy_ms);
  json.add("ingest_bulk_t1_ms", bulk_t1_ms);
  json.add("ingest_bulk_auto_ms", bulk_auto_ms);
  json.add("ingest_parse_speedup", parse_speedup);
  json.add("csr_convert_ms", convert_ms);
  json.add("csr_text_start_ms", text_start_ms);
  json.add("csr_mmap_start_ms", mmap_start_ms);
  json.add("csr_start_speedup", start_speedup);
  json.add("ingest_bytes", static_cast<std::uint64_t>(stats.bytes));
  json.add("ingest_edges", static_cast<std::uint64_t>(stats.edges));
  json.add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  // The PR's perf gates. Margins are wide (the measured ratios are ~10x and
  // ~50x+): a failure here means the fast paths regressed structurally, not
  // that the host is noisy.
  int rc = 0;
  if (parse_speedup < 3.0) {
    std::printf("FAIL: bulk parser < 3x over per-line (%.2fx)\n",
                parse_speedup);
    rc = 1;
  }
  if (start_speedup < 5.0) {
    std::printf("FAIL: mmap reload < 5x over text re-parse (%.2fx)\n",
                start_speedup);
    rc = 1;
  }
  return rc;
}

void BM_BulkParseT1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_edge_list_file(text_path(), 1));
  }
}
BENCHMARK(BM_BulkParseT1);

void BM_MmapLoad(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr::load_graph(csr_path()));
  }
}
BENCHMARK(BM_MmapLoad);

}  // namespace

int main(int argc, char** argv) {
  write_workload();
  const int gate_rc = run_identity_gate();
  if (gate_rc != 0) return gate_rc;
  drw::bench::JsonReport json("ingest");
  const int rc = run_trajectory(json);
  json.write();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::remove(text_path());
  std::remove(csr_path());
  return 0;
}
