// E11 (Section 2.1 design choices): ablations of the paper's parameter
// decisions on a fixed workload (expander, l = 8192).
//
//   (a) lambda sweep around sqrt(l D): the round count is minimized near the
//       paper's choice (Phase 1 cost rises with lambda, stitching cost falls).
//   (b) eta*deg(v) walks per node (paper) vs flat eta (PODC 2009): the
//       degree-proportional supply keeps GET-MORE-WALKS rare.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_lambda_sweep(const Graph& g, std::uint32_t diameter,
                      std::uint64_t l) {
  bench::banner("E11a / Section 2.1",
                "lambda sweep around sqrt(l*D): total rounds split into "
                "Phase 1 / stitching / tail");
  const double lambda_star =
      std::sqrt(static_cast<double>(l) * static_cast<double>(diameter));
  bench::Table table({"lambda", "lambda/sqrt(lD)", "total rounds", "phase1",
                      "stitch", "tail", "stitches"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::Params params = core::Params::paper();
    params.lambda_override =
        static_cast<std::uint32_t>(std::max(1.0, scale * lambda_star));
    RunningStats total;
    RunningStats phase1;
    RunningStats stitch;
    RunningStats tail;
    RunningStats stitches;
    for (int rep = 0; rep < 3; ++rep) {
      congest::Network net(g, 700 + rep);
      const auto out =
          core::single_random_walk(net, 0, l, params, diameter);
      total.add(static_cast<double>(out.result.stats.rounds));
      phase1.add(static_cast<double>(out.result.counters.phase1.rounds));
      stitch.add(static_cast<double>(out.result.counters.phase2.rounds));
      tail.add(static_cast<double>(out.result.counters.naive_tail_steps));
      stitches.add(static_cast<double>(out.result.counters.stitches));
    }
    table.add_row({bench::fmt_u64(params.lambda_override),
                   bench::fmt_double(scale, 2),
                   bench::fmt_double(total.mean(), 0),
                   bench::fmt_double(phase1.mean(), 0),
                   bench::fmt_double(stitch.mean(), 0),
                   bench::fmt_double(tail.mean(), 0),
                   bench::fmt_double(stitches.mean(), 1)});
  }
  table.print();
}

void run_eta_ablation(std::uint64_t l) {
  bench::banner("E11b / Section 2.1",
                "walk supply allocation on an irregular graph (RGG): one Phase 1, "
                "8 stitched walks. eta*deg(v) per node (paper) vs a flat "
                "supply with the SAME total -- flat under-provisions hubs, "
                "which recur as connectors (Lemma 2.6), forcing extra "
                "GET-MORE-WALKS invocations");
  Rng rng(6);
  const Graph g = gen::random_geometric(128, 0.16, rng);
  const std::uint32_t diameter = exact_diameter(g);
  const double avg_deg = 2.0 * static_cast<double>(g.edge_count()) /
                         static_cast<double>(g.node_count());
  std::printf("graph: %s  D=%u  avg deg %.1f\n", g.summary().c_str(),
              diameter, avg_deg);
  bench::Table table({"supply", "walks prepared", "GET-MORE-WALKS calls",
                      "total rounds"});
  for (const bool degree_proportional : {true, false}) {
    core::Params params = core::Params::paper();
    params.degree_proportional = degree_proportional;
    if (!degree_proportional) params.eta = avg_deg;  // same total supply
    // One Phase-1 preparation serves a burst of walks, so the supply
    // allocation matters: hubs recur as connectors and run dry first.
    RunningStats prepared;
    RunningStats gmw;
    RunningStats rounds;
    for (int rep = 0; rep < 6; ++rep) {
      congest::Network net(g, 800 + rep);
      core::StitchEngine engine(net, params, diameter);
      engine.prepare(1, l);
      double gmw_total = 0.0;
      double rounds_total = 0.0;
      double prepared_total = 0.0;
      for (std::uint32_t w = 0; w < 8; ++w) {
        const auto out = engine.walk(0, l, w);
        gmw_total += static_cast<double>(out.counters.get_more_walks_calls);
        rounds_total += static_cast<double>(out.stats.rounds);
        prepared_total += static_cast<double>(out.counters.walks_prepared);
      }
      prepared.add(prepared_total);
      gmw.add(gmw_total);
      rounds.add(rounds_total);
    }
    table.add_row({degree_proportional ? "eta*deg(v)" : "flat (same total)",
                   bench::fmt_double(prepared.mean(), 0),
                   bench::fmt_double(gmw.mean(), 2),
                   bench::fmt_double(rounds.mean(), 0)});
  }
  table.print();
}

void BM_PaperPreset(benchmark::State& state) {
  Rng rng(2);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto out = core::single_random_walk(net, 0, 4096, core::Params::paper(),
                                        diameter);
    benchmark::DoNotOptimize(out.result.destination);
  }
}
BENCHMARK(BM_PaperPreset);

}  // namespace

int main(int argc, char** argv) {
  Rng rng(2);
  const Graph g = gen::random_regular(128, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);
  run_lambda_sweep(g, diameter, 8192);
  run_eta_ablation(8192);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
