// E5 (Lemma 2.7 + Section 2.1 design choice): random short-walk lengths in
// [lambda, 2 lambda) vs fixed length lambda.
//
// On a periodic topology (cycle), fixed-length short walks can resonate so
// the same nodes recur as connectors and exhaust their walk supply,
// triggering GET-MORE-WALKS; random lengths spread connectors out. We
// measure max connector visits and GET-MORE-WALKS invocations per walk.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

struct AblationResult {
  double max_connector = 0.0;
  double gmw_calls = 0.0;
  double rounds = 0.0;
};

AblationResult run_config(const Graph& g, std::uint32_t diameter,
                          std::uint64_t l, std::uint32_t lambda,
                          bool random_lengths, int trials) {
  AblationResult out;
  for (int t = 0; t < trials; ++t) {
    core::Params params =
        random_lengths ? core::Params::paper() : core::Params::podc09();
    params.lambda_override = lambda;
    // Hold preparation volume constant across the two arms so only the
    // length randomization differs.
    params.preset = core::Preset::kPaper;
    params.random_lengths = random_lengths;
    congest::Network net(g, 900 + t);
    core::StitchEngine engine(net, params, diameter);
    engine.prepare(1, l);
    const auto result = engine.walk(0, l, 0);
    out.max_connector += static_cast<double>(engine.max_connector_visits());
    out.gmw_calls +=
        static_cast<double>(result.counters.get_more_walks_calls);
    out.rounds += static_cast<double>(result.stats.rounds);
  }
  out.max_connector /= trials;
  out.gmw_calls /= trials;
  out.rounds /= trials;
  return out;
}

void run_experiment() {
  bench::banner("E5 / Lemma 2.7",
                "connector concentration: fixed-length short walks vs "
                "random lengths in [lambda, 2*lambda)");
  struct Case {
    std::string name;
    Graph graph;
    std::uint32_t diameter;
    std::uint64_t l;
    std::uint32_t lambda;
  };
  Rng rng(11);
  std::vector<Case> cases;
  cases.push_back({"cycle(32) l=600 lam=8", gen::cycle(32), 16, 600, 8});
  cases.push_back({"cycle(64) l=1200 lam=16", gen::cycle(64), 32, 1200, 16});
  {
    Graph g = gen::random_regular(64, 4, rng);
    const auto d = exact_diameter(g);
    cases.push_back({"expander(64,4) l=1200 lam=16", std::move(g), d, 1200,
                     16});
  }

  bench::Table table({"case", "mode", "max connector visits",
                      "GET-MORE-WALKS calls", "rounds"});
  for (const Case& c : cases) {
    const AblationResult fixed =
        run_config(c.graph, c.diameter, c.l, c.lambda, false, 25);
    const AblationResult random =
        run_config(c.graph, c.diameter, c.l, c.lambda, true, 25);
    table.add_row({c.name, "fixed lambda",
                   bench::fmt_double(fixed.max_connector, 2),
                   bench::fmt_double(fixed.gmw_calls, 2),
                   bench::fmt_double(fixed.rounds, 0)});
    table.add_row({c.name, "random [lam,2lam)",
                   bench::fmt_double(random.max_connector, 2),
                   bench::fmt_double(random.gmw_calls, 2),
                   bench::fmt_double(random.rounds, 0)});
  }
  table.print();
  std::printf(
      "Shape check: random lengths should never concentrate connectors "
      "more than fixed lengths, and reduce GET-MORE-WALKS churn on the "
      "periodic cycle.\n");
}

void BM_StitchedWalkCycle(benchmark::State& state) {
  const Graph g = gen::cycle(64);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::Params params = core::Params::paper();
    params.lambda_override = 16;
    congest::Network net(g, seed++);
    auto out = core::single_random_walk(net, 0, 1200, params, 32);
    benchmark::DoNotOptimize(out.result.destination);
  }
}
BENCHMARK(BM_StitchedWalkCycle);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
