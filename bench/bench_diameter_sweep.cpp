// E2 (Theorem 2.5): dependence of the round count on the diameter D.
//
// l is held fixed while D is swept with expander chains (segments of
// d-regular expanders joined by bridges: D grows linearly in the number of
// segments while n and the degree stay comparable). The paper predicts
// rounds ~ sqrt(l D): a log-log slope of ~0.5 in D.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_experiment() {
  bench::banner("E2 / Theorem 2.5",
                "rounds vs diameter at fixed l = 8192 (expander chains; "
                "n ~ 128 throughout)");
  bench::Table table({"segments", "n", "D", "paper rounds", "naive rounds",
                      "sqrt(l*D) (model)"});
  const std::uint64_t l = 8192;
  std::vector<double> diameters;
  std::vector<double> rounds_series;
  for (std::size_t segments : {1, 2, 4, 8, 16}) {
    Rng rng(55);
    const Graph g = gen::expander_chain(segments, 128 / segments, 4, rng);
    const std::uint32_t diameter = exact_diameter(g);
    RunningStats rounds;
    for (int rep = 0; rep < 3; ++rep) {
      congest::Network net(g, 100 + rep);
      rounds.add(static_cast<double>(
          core::single_random_walk(net, 0, l, core::Params::paper(),
                                   diameter)
              .result.stats.rounds));
    }
    diameters.push_back(diameter);
    rounds_series.push_back(rounds.mean());
    table.add_row({bench::fmt_u64(segments),
                   bench::fmt_u64(g.node_count()), bench::fmt_u64(diameter),
                   bench::fmt_double(rounds.mean(), 0), bench::fmt_u64(l),
                   bench::fmt_double(
                       std::sqrt(static_cast<double>(l) * diameter), 0)});
  }
  table.print();
  bench::print_slope("paper rounds vs D", diameters, rounds_series, 0.5);
}

void BM_WalkOnChain(benchmark::State& state) {
  Rng rng(55);
  const auto segments = static_cast<std::size_t>(state.range(0));
  const Graph g = gen::expander_chain(segments, 128 / segments, 4, rng);
  const auto diameter = exact_diameter(g);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto out = core::single_random_walk(net, 0, 4096, core::Params::paper(),
                                        diameter);
    benchmark::DoNotOptimize(out.result.destination);
    state.counters["rounds"] = static_cast<double>(out.result.stats.rounds);
    state.counters["D"] = diameter;
  }
}
BENCHMARK(BM_WalkOnChain)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
