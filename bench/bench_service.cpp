// Service experiment (acceptance gate for the walk service layer):
//
//   A serviced workload of >= 32 mixed-length requests must use strictly
//   fewer TOTAL rounds than the same requests issued as independent
//   single_random_walk() calls (each of which pays its own Phase 1), and
//   the run must exercise incremental inventory replenishment -- targeted
//   pre-batch GET-MORE-WALKS top-ups and/or in-walk GET-MORE-WALKS -- with
//   exactly one full Phase 1 across the whole workload.
//
// The workload: 36 requests, lengths mixed across 256..4096, sources spread
// over an expander, served in 3 batches so cross-batch inventory reuse and
// demand-driven top-ups are on the measured path.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/walk_service.hpp"

namespace {

using namespace drw;

std::vector<service::WalkRequest> workload(const Graph& g, Rng& rng) {
  const std::uint64_t lengths[] = {256, 512, 1024, 2048, 4096};
  std::vector<service::WalkRequest> requests;
  for (int i = 0; i < 36; ++i) {
    // Skewed sources, like real serving traffic: half the requests hit one
    // hot key, whose Phase-1 stock (eta * deg walks) cannot cover them --
    // forcing the inventory to replenish incrementally.
    const NodeId source =
        i % 2 == 0 ? 0
                   : static_cast<NodeId>(rng.next_below(g.node_count()));
    requests.push_back(service::WalkRequest{
        source, lengths[static_cast<std::size_t>(i) % 5], 1, false});
  }
  return requests;
}

struct Comparison {
  std::uint64_t serviced_rounds = 0;
  std::uint64_t serviced_messages = 0;
  std::uint64_t independent_rounds = 0;
  std::uint64_t independent_messages = 0;
  std::uint64_t full_prepares = 0;
  std::uint64_t topups = 0;
  std::uint64_t engine_gmw = 0;
  double hit_rate = 0.0;
};

Comparison run_comparison(const Graph& g, std::uint32_t diameter,
                          std::uint64_t seed) {
  Rng workload_rng(4242);
  const std::vector<service::WalkRequest> requests = workload(g, workload_rng);
  Comparison cmp;

  // Serviced: one WalkService, three batches of 12.
  {
    congest::Network net(g, seed);
    service::WalkService svc(net, diameter, service::ServiceConfig{});
    for (std::size_t at = 0; at < requests.size(); at += 12) {
      for (std::size_t i = at; i < at + 12; ++i) svc.submit(requests[i]);
      const service::BatchReport report = svc.flush();
      cmp.topups += report.replenishments;
      cmp.engine_gmw += report.engine_gmw_calls;
    }
    cmp.serviced_rounds = svc.lifetime().stats.rounds;
    cmp.serviced_messages = svc.lifetime().stats.messages;
    cmp.full_prepares = svc.lifetime().full_prepares;
    cmp.hit_rate = svc.lifetime().inventory_hit_rate();
  }

  // Independent: every request pays its own engine + Phase 1.
  {
    congest::Network net(g, seed);
    for (const service::WalkRequest& r : requests) {
      const auto out = core::single_random_walk(
          net, r.source, r.length, core::Params::paper(), diameter);
      cmp.independent_rounds += out.result.stats.rounds;
      cmp.independent_messages += out.result.stats.messages;
    }
  }
  return cmp;
}

int run_experiment() {
  Rng rng(808);
  const Graph g = gen::random_regular(128, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);

  bench::banner(
      "SERVICE / batched serving vs per-request SINGLE-RANDOM-WALK",
      "36 mixed-length requests (256..4096) on expander(128,4), serviced "
      "in 3 batches from one persistent inventory vs 36 independent "
      "single_random_walk calls (one Phase 1 EACH)");

  bench::Table table({"seed", "serviced rounds", "independent rounds",
                      "speedup", "phase1 runs", "topups", "in-walk gmw",
                      "hit rate"});
  bool rounds_ok = true;
  bool replenish_ok = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Comparison cmp = run_comparison(g, diameter, seed);
    rounds_ok = rounds_ok && cmp.serviced_rounds < cmp.independent_rounds;
    replenish_ok = replenish_ok && (cmp.topups + cmp.engine_gmw) > 0 &&
                   cmp.full_prepares == 1;
    table.add_row(
        {bench::fmt_u64(seed), bench::fmt_u64(cmp.serviced_rounds),
         bench::fmt_u64(cmp.independent_rounds),
         bench::fmt_double(static_cast<double>(cmp.independent_rounds) /
                               static_cast<double>(cmp.serviced_rounds),
                           2),
         bench::fmt_u64(cmp.full_prepares), bench::fmt_u64(cmp.topups),
         bench::fmt_u64(cmp.engine_gmw), bench::fmt_double(cmp.hit_rate, 3)});
  }
  table.print();
  std::printf("acceptance: serviced < independent on every seed: %s; "
              "replenishment exercised with a single Phase 1: %s\n",
              rounds_ok ? "PASS" : "FAIL",
              replenish_ok ? "PASS" : "FAIL");
  return rounds_ok && replenish_ok ? 0 : 1;
}

void BM_ServicedBatch(benchmark::State& state) {
  Rng rng(808);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  Rng workload_rng(11);
  const auto requests = workload(g, workload_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    service::WalkService svc(net, diameter, service::ServiceConfig{});
    const auto report = svc.serve(requests);
    benchmark::DoNotOptimize(report.results.data());
    state.counters["rounds"] = static_cast<double>(report.stats.rounds);
  }
}
BENCHMARK(BM_ServicedBatch);

void BM_IndependentWalks(benchmark::State& state) {
  Rng rng(808);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  Rng workload_rng(11);
  const auto requests = workload(g, workload_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    std::uint64_t rounds = 0;
    for (const auto& r : requests) {
      rounds += core::single_random_walk(net, r.source, r.length,
                                         core::Params::paper(), diameter)
                    .result.stats.rounds;
    }
    state.counters["rounds"] = static_cast<double>(rounds);
  }
}
BENCHMARK(BM_IndependentWalks);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_experiment();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
