// Service experiment (acceptance gate for the walk service layer):
//
//   A serviced workload of >= 32 mixed-length requests must use strictly
//   fewer TOTAL rounds than the same requests issued as independent
//   single_random_walk() calls (each of which pays its own Phase 1), and
//   the run must exercise incremental inventory replenishment -- targeted
//   pre-batch GET-MORE-WALKS top-ups and/or in-walk GET-MORE-WALKS -- with
//   exactly one full Phase 1 across the whole workload.
//
// The workload: 36 requests, lengths mixed across 256..4096, sources spread
// over an expander, served in 3 batches so cross-batch inventory reuse and
// demand-driven top-ups are on the measured path.
// It doubles as the parallel-executor gate: the same serviced workload on an
// n = 10^4 expander is timed at 1/2/8 executor threads; endpoints must be
// bit-identical and, when the host has >= 8 hardware threads, 8 threads must
// be >= 2x faster than 1 (4..7-thread hosts enforce the calibrated 2-thread
// floor instead; 1-core hosts measure t1 only -- the widths would execute
// identically). Results land in BENCH_service.json, including the per-phase
// compute/transmit/merge breakdown of the widest point.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "service/walk_service.hpp"

namespace {

using namespace drw;

std::vector<service::WalkRequest> workload(const Graph& g, Rng& rng) {
  const std::uint64_t lengths[] = {256, 512, 1024, 2048, 4096};
  std::vector<service::WalkRequest> requests;
  for (int i = 0; i < 36; ++i) {
    // Skewed sources, like real serving traffic: half the requests hit one
    // hot key, whose Phase-1 stock (eta * deg walks) cannot cover them --
    // forcing the inventory to replenish incrementally.
    const NodeId source =
        i % 2 == 0 ? 0
                   : static_cast<NodeId>(rng.next_below(g.node_count()));
    requests.push_back(service::WalkRequest{
        source, lengths[static_cast<std::size_t>(i) % 5], 1, false});
  }
  return requests;
}

struct Comparison {
  std::uint64_t serviced_rounds = 0;
  std::uint64_t serviced_messages = 0;
  std::uint64_t independent_rounds = 0;
  std::uint64_t independent_messages = 0;
  std::uint64_t full_prepares = 0;
  std::uint64_t topups = 0;
  std::uint64_t engine_gmw = 0;
  double hit_rate = 0.0;
};

Comparison run_comparison(const Graph& g, std::uint32_t diameter,
                          std::uint64_t seed) {
  Rng workload_rng(4242);
  const std::vector<service::WalkRequest> requests = workload(g, workload_rng);
  Comparison cmp;

  // Serviced: one WalkService, three batches of 12.
  {
    congest::Network net(g, seed);
    service::WalkService svc(net, diameter, service::ServiceConfig{});
    for (std::size_t at = 0; at < requests.size(); at += 12) {
      for (std::size_t i = at; i < at + 12; ++i) svc.submit(requests[i]);
      const service::BatchReport report = svc.flush();
      cmp.topups += report.replenishments;
      cmp.engine_gmw += report.engine_gmw_calls;
    }
    cmp.serviced_rounds = svc.lifetime().stats.rounds;
    cmp.serviced_messages = svc.lifetime().stats.messages;
    cmp.full_prepares = svc.lifetime().full_prepares;
    cmp.hit_rate = svc.lifetime().inventory_hit_rate();
  }

  // Independent: every request pays its own engine + Phase 1.
  {
    congest::Network net(g, seed);
    for (const service::WalkRequest& r : requests) {
      const auto out = core::single_random_walk(
          net, r.source, r.length, core::Params::paper(), diameter);
      cmp.independent_rounds += out.result.stats.rounds;
      cmp.independent_messages += out.result.stats.messages;
    }
  }
  return cmp;
}

using bench::kSpeedupFloorT2;

/// Times one serviced workload at a fixed executor width; returns the
/// destinations too so the sweep can assert thread-count independence.
struct ParallelPoint {
  double wall_ms = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  congest::RunStats stats;  ///< lifetime totals (per-phase breakdown)
  std::vector<NodeId> destinations;
};

ParallelPoint run_parallel_point_once(
    const Graph& g, std::uint32_t diameter, unsigned threads,
    std::span<const service::WalkRequest> reqs) {
  congest::Network net(g, 9001);
  service::ServiceConfig config;
  config.threads = threads;
  service::WalkService svc(net, diameter, config);
  ParallelPoint point;
  for (std::size_t at = 0; at < reqs.size(); at += 16) {
    for (std::size_t i = at; i < std::min(reqs.size(), at + 16); ++i) {
      svc.submit(reqs[i]);
    }
    const service::BatchReport report = svc.flush();
    for (const service::RequestResult& r : report.results) {
      point.destinations.insert(point.destinations.end(),
                                r.destinations.begin(),
                                r.destinations.end());
    }
  }
  point.stats = svc.lifetime().stats;
  point.wall_ms = point.stats.wall_ms;
  point.rounds = point.stats.rounds;
  point.messages = point.stats.messages;
  return point;
}

/// Best-of-2 wall time per width: one scheduling hiccup on a shared CI
/// runner must not trip the speedup gates. Both reps are seeded alike, so
/// they double as a same-width determinism check.
ParallelPoint run_parallel_point(const Graph& g, std::uint32_t diameter,
                                 unsigned threads,
                                 std::span<const service::WalkRequest> reqs) {
  ParallelPoint best = run_parallel_point_once(g, diameter, threads, reqs);
  const ParallelPoint rep = run_parallel_point_once(g, diameter, threads, reqs);
  if (rep.destinations != best.destinations) {
    std::fprintf(stderr, "parallel experiment: same-seed reps diverged\n");
    std::exit(1);
  }
  if (rep.wall_ms < best.wall_ms) {
    best.wall_ms = rep.wall_ms;
    best.stats = rep.stats;
  }
  return best;
}

int run_parallel_experiment(bench::JsonReport& json) {
  const std::size_t n = 10000;
  Rng rng(909);
  const Graph g = gen::random_regular(n, 6, rng);
  const std::uint32_t diameter =
      double_sweep_diameter_estimate(g, 0);

  Rng workload_rng(17);
  std::vector<service::WalkRequest> requests;
  const std::uint64_t lengths[] = {1024, 2048, 4096};
  for (int i = 0; i < 32; ++i) {
    const NodeId source =
        i % 2 == 0 ? 0
                   : static_cast<NodeId>(workload_rng.next_below(n));
    requests.push_back(service::WalkRequest{
        source, lengths[static_cast<std::size_t>(i) % 3], 1, false});
  }

  bench::banner(
      "PARALLEL / sharded round executor",
      "32 mixed-length requests (1024..4096) on expander(10000,6), the same "
      "seeded workload at 1/2/8 executor threads: results must be "
      "bit-identical, wall time should not be");

  const unsigned hw = std::thread::hardware_concurrency();
  // On a 1-core host every width executes the same single-stream schedule
  // (the pool only adds hand-offs), so re-measuring t2/t8 burns ~3x the
  // wall time for three copies of the same number; measure t1 once and let
  // the cross-width determinism guarantee rest on tests/test_determinism.
  const bool sweep_widths = hw > 1;
  const unsigned sweep[] = {1, 2, 8};
  bench::Table table({"threads", "wall ms", "rounds", "messages", "speedup"});
  ParallelPoint base;
  ParallelPoint widest;
  double speedup2 = 0.0;
  double speedup8 = 0.0;
  bool identical = true;
  // Arm the metrics registry for the sweep; resetting per width leaves it
  // holding the WIDEST point's distributions when the loop ends, which
  // add_registry_fields folds into the report below.
  obs::Registry::global().set_enabled(true);
  for (const unsigned threads : sweep) {
    if (threads != 1 && !sweep_widths) continue;
    obs::Registry::global().reset();
    const ParallelPoint point =
        run_parallel_point(g, diameter, threads, requests);
    widest = point;
    if (threads == 1) {
      base = point;
    } else {
      identical = identical && point.destinations == base.destinations &&
                  point.rounds == base.rounds &&
                  point.messages == base.messages;
    }
    const double speedup = base.wall_ms / point.wall_ms;
    if (threads == 2) speedup2 = speedup;
    if (threads == 8) speedup8 = speedup;
    table.add_row({bench::fmt_u64(threads), bench::fmt_double(point.wall_ms, 1),
                   bench::fmt_u64(point.rounds), bench::fmt_u64(point.messages),
                   bench::fmt_double(speedup, 2)});
    json.add("wall_ms_t" + std::to_string(threads), point.wall_ms);
  }
  table.print();

  json.add_string("workload", "expander(10000,6) x 32 requests 1024..4096");
  json.add("n", static_cast<std::uint64_t>(n));
  json.add("seed", static_cast<std::uint64_t>(9001));
  json.add("rounds", base.rounds);
  json.add("messages", base.messages);
  json.add("hw_threads", static_cast<std::uint64_t>(hw));
  json.add("sweep_skipped_hw1", sweep_widths ? 0 : 1);
  json.add("speedup_t2", speedup2);
  json.add("speedup_t8", speedup8);
  json.add("speedup_floor_t2", kSpeedupFloorT2);
  json.add("deterministic", identical ? 1 : 0);
  // Per-phase breakdown of the widest measured point -- how to read these
  // fields is documented in README "Performance tuning".
  bench::add_phase_fields(json, "t_widest_", widest.stats);
  // Registry distributions of the same point (both best-of-2 reps
  // accumulate, so counters are ~2x the RunStats totals; the percentile
  // fields are the interesting trajectory signal).
  bench::add_registry_fields(json, "obs_widest_");
  obs::Registry::global().set_enabled(false);
  obs::Registry::global().reset();

  // The >=2x gate only binds where 8 workers have real cores to run on;
  // on 4..7-thread hosts (the common CI runner shape) the calibrated
  // 2-thread floor is ENFORCED, replacing the old WARN-only canary;
  // smaller hosts still emit the trajectory point.
  const bool enforce8 = hw >= 8;
  const bool enforce2 = !enforce8 && hw >= 4;
  const bool pass8 = !enforce8 || speedup8 >= 2.0;
  const bool pass2 = !enforce2 || speedup2 >= kSpeedupFloorT2;
  std::printf("acceptance: bit-identical across thread counts: %s; "
              "8-thread speedup %.2fx (>=2x gate %s); "
              "2-thread speedup %.2fx (>=%.2fx floor %s)\n",
              identical ? "PASS" : "FAIL", speedup8,
              !enforce8 ? "SKIP, <8 hw threads" : (pass8 ? "PASS" : "FAIL"),
              speedup2, kSpeedupFloorT2,
              !enforce2 ? (enforce8 ? "SKIP, 8t gate binds"
                                    : "SKIP, <4 hw threads")
                        : (pass2 ? "PASS" : "FAIL"));
  return identical && pass8 && pass2 ? 0 : 1;
}

int run_experiment() {
  Rng rng(808);
  const Graph g = gen::random_regular(128, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);

  bench::banner(
      "SERVICE / batched serving vs per-request SINGLE-RANDOM-WALK",
      "36 mixed-length requests (256..4096) on expander(128,4), serviced "
      "in 3 batches from one persistent inventory vs 36 independent "
      "single_random_walk calls (one Phase 1 EACH)");

  bench::Table table({"seed", "serviced rounds", "independent rounds",
                      "speedup", "phase1 runs", "topups", "in-walk gmw",
                      "hit rate"});
  bool rounds_ok = true;
  bool replenish_ok = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Comparison cmp = run_comparison(g, diameter, seed);
    rounds_ok = rounds_ok && cmp.serviced_rounds < cmp.independent_rounds;
    replenish_ok = replenish_ok && (cmp.topups + cmp.engine_gmw) > 0 &&
                   cmp.full_prepares == 1;
    table.add_row(
        {bench::fmt_u64(seed), bench::fmt_u64(cmp.serviced_rounds),
         bench::fmt_u64(cmp.independent_rounds),
         bench::fmt_double(static_cast<double>(cmp.independent_rounds) /
                               static_cast<double>(cmp.serviced_rounds),
                           2),
         bench::fmt_u64(cmp.full_prepares), bench::fmt_u64(cmp.topups),
         bench::fmt_u64(cmp.engine_gmw), bench::fmt_double(cmp.hit_rate, 3)});
  }
  table.print();
  std::printf("acceptance: serviced < independent on every seed: %s; "
              "replenishment exercised with a single Phase 1: %s\n",
              rounds_ok ? "PASS" : "FAIL",
              replenish_ok ? "PASS" : "FAIL");
  return rounds_ok && replenish_ok ? 0 : 1;
}

void BM_ServicedBatch(benchmark::State& state) {
  Rng rng(808);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  Rng workload_rng(11);
  const auto requests = workload(g, workload_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    service::WalkService svc(net, diameter, service::ServiceConfig{});
    const auto report = svc.serve(requests);
    benchmark::DoNotOptimize(report.results.data());
    state.counters["rounds"] = static_cast<double>(report.stats.rounds);
  }
}
BENCHMARK(BM_ServicedBatch);

void BM_IndependentWalks(benchmark::State& state) {
  Rng rng(808);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto diameter = exact_diameter(g);
  Rng workload_rng(11);
  const auto requests = workload(g, workload_rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    std::uint64_t rounds = 0;
    for (const auto& r : requests) {
      rounds += core::single_random_walk(net, r.source, r.length,
                                         core::Params::paper(), diameter)
                    .result.stats.rounds;
    }
    state.counters["rounds"] = static_cast<double>(rounds);
  }
}
BENCHMARK(BM_IndependentWalks);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_experiment();
  if (rc != 0) return rc;
  bench::JsonReport json("service");
  const int parallel_rc = run_parallel_experiment(json);
  json.write();
  if (parallel_rc != 0) return parallel_rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
