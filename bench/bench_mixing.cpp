// E8 (Theorem 4.6): decentralized mixing-time estimation in
// O~(n^{1/2} + n^{1/4} sqrt(D tau_x)) rounds.
//
// For families with very different mixing behaviour (expander: O(log n);
// odd cycle: Theta(n^2); barbell: bottleneck-dominated) we report the
// estimate, the exact tau from the Markov oracle, the measured rounds and
// the paper's round model. The shape to reproduce: the estimate tracks the
// exact value across orders of magnitude, and rounds grow far slower than
// tau itself (the naive Kempe-McSherry style alternative costs ~tau rounds).
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/mixing.hpp"
#include "bench_common.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/markov.hpp"
#include "util/stats.hpp"

namespace {

using namespace drw;

void run_experiment() {
  bench::banner("E8 / Theorem 4.6",
                "decentralized tau_x estimate vs exact mixing time");
  bench::Table table({"graph", "n", "D", "exact tau", "estimate", "rounds",
                      "model n^.5+n^.25*sqrt(D*tau)", "rounds/tau"});
  struct Case {
    std::string name;
    Graph graph;
  };
  Rng rng(31);
  std::vector<Case> cases;
  cases.push_back({"expander(64,4)", gen::random_regular(64, 4, rng)});
  cases.push_back({"cycle(33)", gen::cycle(33)});
  cases.push_back({"cycle(65)", gen::cycle(65)});
  cases.push_back({"barbell(12,2)", gen::barbell(12, 2)});
  cases.push_back({"lollipop(16,16)", gen::lollipop(16, 16)});

  for (const Case& c : cases) {
    const std::uint32_t diameter = exact_diameter(c.graph);
    const MarkovOracle oracle(c.graph);
    const auto exact = oracle.mixing_time_standard(0, 2000000);
    apps::MixingOptions options;
    options.samples = 500;
    congest::Network net(c.graph, 71);
    const auto est = apps::estimate_mixing_time(
        net, 0, core::Params::paper(), diameter, options);
    const double n = static_cast<double>(c.graph.node_count());
    const double tau = exact ? static_cast<double>(*exact) : 0.0;
    const double model =
        std::sqrt(n) +
        std::pow(n, 0.25) * std::sqrt(static_cast<double>(diameter) * tau);
    table.add_row(
        {c.name, bench::fmt_u64(c.graph.node_count()),
         bench::fmt_u64(diameter),
         exact ? bench::fmt_u64(*exact) : "n/a", bench::fmt_u64(est.tau),
         bench::fmt_u64(est.stats.rounds), bench::fmt_double(model, 0),
         tau > 0.0
             ? bench::fmt_double(
                   static_cast<double>(est.stats.rounds) / tau, 2)
             : "n/a"});
  }
  table.print();
  std::printf(
      "Derived global metrics on cycle(65): spectral gap and conductance "
      "brackets from the tau estimate --\n");
  {
    const Graph g = gen::cycle(65);
    congest::Network net(g, 72);
    apps::MixingOptions options;
    options.samples = 400;
    const auto est = apps::estimate_mixing_time(
        net, 0, core::Params::paper(), 32, options);
    const MarkovOracle oracle(g);
    const double true_gap = 1.0 - oracle.second_eigenvalue();
    std::printf("gap in [%.5f, %.5f], true %.5f; conductance in "
                "[%.5f, %.5f]\n",
                est.gap_lower, est.gap_upper, true_gap,
                est.conductance_lower, est.conductance_upper);
  }
}

void BM_MixingEstimate(benchmark::State& state) {
  const Graph g = gen::cycle(33);
  apps::MixingOptions options;
  options.samples = 200;
  options.binary_search = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    congest::Network net(g, seed++);
    auto est = apps::estimate_mixing_time(net, 0, core::Params::paper(), 16,
                                          options);
    benchmark::DoNotOptimize(est.tau);
    state.counters["rounds"] = static_cast<double>(est.stats.rounds);
  }
}
BENCHMARK(BM_MixingEstimate);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
