// Shared support for the experiment harness: aligned table printing, series
// bookkeeping, log-log slope fits, and machine-readable result files. Every
// bench binary prints the paper-vs-measured series for its experiment
// (EXPERIMENTS.md records the mapping), then runs its registered
// google-benchmark timings; perf-trajectory benches additionally emit a
// BENCH_<name>.json via JsonReport.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace drw::bench {

/// Prints a named experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n", id.c_str(), claim.c_str());
}

/// A simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_double(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Machine-readable bench output: accumulates flat key/value fields and
/// writes them as `BENCH_<name>.json` in the working directory, so CI and
/// perf-trajectory tooling can diff runs without scraping tables. Numbers
/// are emitted as JSON numbers, everything else as strings.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& add(const std::string& key, double value) {
    if (!std::isfinite(value)) {  // "inf"/"nan" are not valid JSON
      fields_.emplace_back(key, "null");
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonReport& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& add(const std::string& key, std::uint32_t value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  JsonReport& add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& add_string(const std::string& key, const std::string& value) {
    std::string escaped = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    fields_.emplace_back(key, std::move(escaped));
    return *this;
  }

  /// Writes BENCH_<name>.json; returns false (with a stderr note) on IO
  /// failure so benches can keep running in read-only environments.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The calibrated 2-thread executor speedup floor, enforced by the
/// acceptance gates (bench_service, bench_skew) on 4..7-hardware-thread
/// hosts where the >=2x@8 gate cannot bind. One value, one home: an
/// accidentally serialized executor measures ~1.0x, a healthy one >= ~1.5x
/// on idle runners; 1.2 leaves headroom for noisy shared CI.
inline constexpr double kSpeedupFloorT2 = 1.2;

/// Emits the per-phase executor timing breakdown of a RunStats under
/// `<prefix>compute_ms` / `transmit_ms` / `merge_ms` / `steals`, so bench
/// JSON consumers (tools/bench_diff.py, the CI trajectory diff) can
/// attribute wall-clock movement to a phase.
inline void add_phase_fields(JsonReport& json, const std::string& prefix,
                             const congest::RunStats& stats) {
  json.add(prefix + "compute_ms", stats.compute_ms);
  json.add(prefix + "transmit_ms", stats.transmit_ms);
  json.add(prefix + "merge_ms", stats.merge_ms);
  json.add(prefix + "steals", stats.steals);
}

/// Folds the armed obs::Registry into the flat bench JSON as
/// `<prefix><metric>` fields: executor totals plus the coarse round
/// wall-time and arena-backlog distributions the registry histograms
/// collect. No-op when the registry is disabled, so benches that never arm
/// it emit unchanged reports; consumers (tools/bench_diff.py) tolerate the
/// keys appearing or disappearing across runs.
inline void add_registry_fields(JsonReport& json, const std::string& prefix) {
  obs::Registry& reg = obs::Registry::global();
  if (!reg.enabled()) return;
  json.add(prefix + "rounds", reg.counter("executor.rounds").value());
  json.add(prefix + "messages", reg.counter("executor.messages").value());
  json.add(prefix + "runs", reg.counter("executor.runs").value());
  const obs::Histogram& wall = reg.histogram("executor.round_wall_us");
  json.add(prefix + "round_wall_us_mean", wall.mean());
  json.add(prefix + "round_wall_us_p50", wall.quantile_bound(0.5));
  json.add(prefix + "round_wall_us_p99", wall.quantile_bound(0.99));
  const obs::Histogram& backlog = reg.histogram("arena.backlog");
  json.add(prefix + "backlog_p50", backlog.quantile_bound(0.5));
  json.add(prefix + "backlog_p99", backlog.quantile_bound(0.99));
  json.add(prefix + "backlog_samples", backlog.count());
}

/// Fits and prints the log-log slope of a measured series.
inline void print_slope(const std::string& label,
                        const std::vector<double>& x,
                        const std::vector<double>& y,
                        double expected) {
  const double slope = log_log_slope(x, y);
  std::printf("%s: measured log-log slope %.3f (paper predicts ~%.2f)\n",
              label.c_str(), slope, expected);
}

}  // namespace drw::bench
