// Shared support for the experiment harness: aligned table printing, series
// bookkeeping and log-log slope fits. Every bench binary prints the
// paper-vs-measured series for its experiment (EXPERIMENTS.md records the
// mapping), then runs its registered google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace drw::bench {

/// Prints a named experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n", id.c_str(), claim.c_str());
}

/// A simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_double(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Fits and prints the log-log slope of a measured series.
inline void print_slope(const std::string& label,
                        const std::vector<double>& x,
                        const std::vector<double>& y,
                        double expected) {
  const double slope = log_log_slope(x, y);
  std::printf("%s: measured log-log slope %.3f (paper predicts ~%.2f)\n",
              label.c_str(), slope, expected);
}

}  // namespace drw::bench
