// Serving-latency experiment (acceptance gate for the admission front end):
//
//   Open-loop arrivals -- a 48-request hot-key flood at t=0 plus 16 light
//   requests trickling in just after -- are pushed through the REAL
//   AdmissionQueue and served batch by batch on a WalkService; a simulated
//   clock advances by the measured wall time of each served batch, so every
//   request's latency = (clock at batch completion) - (scheduled arrival).
//   Under deficit round robin the light class's p99 must stay within 2x of
//   its no-flood baseline; the FIFO baseline policy must measurably violate
//   that bound (the light burst waits behind the whole flood backlog).
//
// Both gates are RATIOS of latencies measured in the same process, so they
// are machine-speed invariant: a slow runner scales numerator and
// denominator alike. Percentiles are exact (sorted samples, no histogram
// buckets). Results land in BENCH_serve_latency.json; ci.yml diffs the
// lat_*_p99_ms trajectory fields against the committed baseline with a
// fnmatch --gate-field glob.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/admission.hpp"
#include "service/walk_service.hpp"

namespace {

using namespace drw;

// Exact percentile of a sample set (nearest-rank).
double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(samples.size()))));
  return samples[std::min(rank, samples.size()) - 1];
}

struct Arrival {
  service::PendingRequest pending;
};

struct ClassLatencies {
  std::vector<double> light;
  std::vector<double> flood;
  std::uint64_t batches = 0;
  double serve_ms = 0.0;  ///< total measured serving wall time
};

// The open-loop schedule. Flood: 48 requests of length 2048 from one hot
// flow, all scheduled at t=0 (12 full batches of backlog at the default
// max_batch_cost of 8192). Light: 16 requests of length 1024 from a second
// flow, arriving at t = 0.1 + 0.02*i ms -- effectively simultaneous
// relative to any batch's serve time, i.e. two full batches of light
// work. The light flow id sorts FIRST so the DRR cycle credits it before
// the flood each drain.
std::vector<Arrival> schedule(const Graph& g, std::uint32_t light_class,
                              std::uint32_t flood_class, bool with_flood) {
  std::vector<Arrival> out;
  const NodeId n = static_cast<NodeId>(g.node_count());
  if (with_flood) {
    for (int i = 0; i < 48; ++i) {
      service::PendingRequest p;
      p.request = service::WalkRequest{static_cast<NodeId>(7 % n), 2048, 1,
                                       false};
      p.user_source = p.request.source;
      p.flow = 2;
      p.class_id = flood_class;
      p.arrival_ms = 0.0;
      out.push_back(Arrival{p});
    }
  }
  for (int i = 0; i < 16; ++i) {
    service::PendingRequest p;
    p.request = service::WalkRequest{static_cast<NodeId>((i * 11) % n), 1024,
                                     1, false};
    p.user_source = p.request.source;
    p.flow = 1;
    p.class_id = light_class;
    p.arrival_ms = 0.1 + 0.02 * i;
    out.push_back(Arrival{p});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.pending.arrival_ms < b.pending.arrival_ms;
                   });
  return out;
}

ClassLatencies run_scenario(const Graph& g, std::uint32_t diameter,
                            service::AdmissionPolicy policy,
                            bool with_flood) {
  service::AdmissionConfig config;
  config.policy = policy;
  service::AdmissionQueue queue(config);
  const std::uint32_t light_class = queue.intern_class("light");
  const std::uint32_t flood_class = queue.intern_class("flood");
  // The light class gets a full batch's quantum per DRR cycle: a queued
  // light burst drains into the very next batch instead of dribbling out.
  queue.set_class_quantum(light_class, config.max_batch_cost);
  queue.set_class_quantum(flood_class, config.quantum);

  const std::vector<Arrival> arrivals =
      schedule(g, light_class, flood_class, with_flood);

  congest::Network net(g, 4242);
  service::WalkService svc(net, diameter);

  ClassLatencies lat;
  double clock = 0.0;
  std::size_t next = 0;
  std::size_t completed = 0;
  while (completed < arrivals.size()) {
    // Open loop: arrivals land at their scheduled instant regardless of
    // service progress. An idle queue fast-forwards to the next arrival.
    if (queue.depth() == 0 && next < arrivals.size() &&
        arrivals[next].pending.arrival_ms > clock) {
      clock = arrivals[next].pending.arrival_ms;
    }
    while (next < arrivals.size() &&
           arrivals[next].pending.arrival_ms <= clock) {
      if (queue.enqueue(arrivals[next].pending) !=
          service::RequestStatus::kOk) {
        std::fprintf(stderr, "serve_latency: unexpected admission reject\n");
        std::exit(1);
      }
      ++next;
    }
    const std::vector<service::PendingRequest> batch =
        queue.drain(clock, nullptr);
    if (batch.empty()) continue;  // nothing admitted yet (cannot stall: the
                                  // fast-forward above injects work)
    std::vector<service::WalkRequest> requests;
    requests.reserve(batch.size());
    for (const service::PendingRequest& p : batch) {
      requests.push_back(p.request);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const service::BatchReport report = svc.serve(requests);
    const double dt =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (report.results.size() != batch.size()) {
      std::fprintf(stderr, "serve_latency: short batch report\n");
      std::exit(1);
    }
    clock += dt;
    lat.serve_ms += dt;
    lat.batches += 1;
    for (const service::PendingRequest& p : batch) {
      auto& samples = p.class_id == light_class ? lat.light : lat.flood;
      samples.push_back(clock - p.arrival_ms);
      ++completed;
    }
  }
  return lat;
}

int run_experiment() {
  Rng rng(606);
  const Graph g = gen::random_regular(256, 4, rng);
  const std::uint32_t diameter = exact_diameter(g);

  bench::banner(
      "SERVE-LATENCY / DRR admission vs FIFO under a hot-key flood",
      "open-loop arrivals: 48-request flood (l=2048) at t=0 + 16 light "
      "requests (l=1024) just after, drained through the real "
      "AdmissionQueue; light-class p99 under DRR must stay within 2x of "
      "its no-flood baseline, FIFO must violate that bound");

  const ClassLatencies noflood = run_scenario(
      g, diameter, service::AdmissionPolicy::kDrr, /*with_flood=*/false);
  const ClassLatencies drr = run_scenario(
      g, diameter, service::AdmissionPolicy::kDrr, /*with_flood=*/true);
  const ClassLatencies fifo = run_scenario(
      g, diameter, service::AdmissionPolicy::kFifo, /*with_flood=*/true);

  const double base_p50 = percentile(noflood.light, 0.5);
  const double base_p99 = percentile(noflood.light, 0.99);
  const double drr_light_p50 = percentile(drr.light, 0.5);
  const double drr_light_p99 = percentile(drr.light, 0.99);
  const double drr_flood_p99 = percentile(drr.flood, 0.99);
  const double fifo_light_p99 = percentile(fifo.light, 0.99);
  const double fairness_drr = base_p99 > 0 ? drr_light_p99 / base_p99 : 0;
  const double fairness_fifo = base_p99 > 0 ? fifo_light_p99 / base_p99 : 0;

  bench::Table table({"scenario", "light p50 ms", "light p99 ms",
                      "flood p99 ms", "batches", "serve ms"});
  table.add_row({"no flood (drr)", bench::fmt_double(base_p50, 2),
                 bench::fmt_double(base_p99, 2), "-",
                 bench::fmt_u64(noflood.batches),
                 bench::fmt_double(noflood.serve_ms, 1)});
  table.add_row({"flood + drr", bench::fmt_double(drr_light_p50, 2),
                 bench::fmt_double(drr_light_p99, 2),
                 bench::fmt_double(drr_flood_p99, 2),
                 bench::fmt_u64(drr.batches),
                 bench::fmt_double(drr.serve_ms, 1)});
  table.add_row({"flood + fifo", bench::fmt_double(percentile(fifo.light, 0.5), 2),
                 bench::fmt_double(fifo_light_p99, 2),
                 bench::fmt_double(percentile(fifo.flood, 0.99), 2),
                 bench::fmt_u64(fifo.batches),
                 bench::fmt_double(fifo.serve_ms, 1)});
  table.print();

  bench::JsonReport json("serve_latency");
  json.add_string("workload",
                  "expander(256,4): 48-req flood l=2048 + 16 light l=1024, "
                  "open loop, max_batch_cost=8192");
  json.add("hw_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.add("lat_light_noflood_p50_ms", base_p50);
  json.add("lat_light_noflood_p99_ms", base_p99);
  json.add("lat_light_p50_ms", drr_light_p50);
  json.add("lat_light_p99_ms", drr_light_p99);
  json.add("lat_flood_p99_ms", drr_flood_p99);
  json.add("lat_fifo_light_p99_ms", fifo_light_p99);
  json.add("fairness_ratio_drr", fairness_drr);
  json.add("fairness_ratio_fifo", fairness_fifo);
  json.add("batches_noflood", noflood.batches);
  json.add("batches_drr", drr.batches);
  json.add("batches_fifo", fifo.batches);
  json.write();

  const bool drr_ok = fairness_drr > 0 && fairness_drr <= 2.0;
  const bool fifo_violates = fairness_fifo > 2.0;
  std::printf(
      "acceptance: DRR light p99 within 2x of no-flood: %.2fx (%s); "
      "FIFO baseline violates the bound: %.2fx (%s)\n",
      fairness_drr, drr_ok ? "PASS" : "FAIL", fairness_fifo,
      fifo_violates ? "PASS" : "FAIL");
  return drr_ok && fifo_violates ? 0 : 1;
}

// Micro: pure admission overhead -- enqueue+drain 1024 requests across 8
// flows, no serving. Keeps the DRR bookkeeping itself off the latency path.
void BM_AdmissionDrain(benchmark::State& state) {
  for (auto _ : state) {
    service::AdmissionQueue queue;
    for (int i = 0; i < 1024; ++i) {
      service::PendingRequest p;
      p.request = service::WalkRequest{0, 64, 1, false};
      p.flow = static_cast<std::uint64_t>(i % 8);
      if (queue.enqueue(p) != service::RequestStatus::kOk) std::abort();
    }
    std::size_t drained = 0;
    while (drained < 1024) {
      const auto batch = queue.drain(0.0, nullptr);
      drained += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
}
BENCHMARK(BM_AdmissionDrain);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_experiment();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
