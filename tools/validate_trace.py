#!/usr/bin/env python3
"""Validate a drw Chrome trace-event JSON (DRW_TRACE / drw --trace).

Structural checks (always):
  * the file parses as JSON with a ``traceEvents`` list;
  * per (pid, tid) track, timestamps are non-decreasing (the exporter
    stable-sorts by stamp, so a violation means a broken merge);
  * 'B'/'E' duration events are balanced and name-matched per track (an
    unmatched 'E' is tolerated only when otherData.dropped > 0 -- the ring
    dropped its opening 'B');
  * every mux-track tid is < otherData.mux_width (lane attribution cannot
    name a lane the scheduler could not have opened).

Cross-check (when the producer recorded the metadata):
  * with otherData.threads == 1 and no drops, the summed transmit-shard
    span time (the fused ``transmit.fused.shard`` spans; legacy
    ``transmit.shard`` spans from pre-fusion traces count too) must land
    within --tolerance (default 10%) of the driver's
    otherData.transmit_ms -- the acceptance gate tying the trace to
    RunStats. At threads > 1 shards transmit concurrently and span-sum is
    CPU time, not wall time, so the check is skipped with a note.

Exit status 0 on success, 1 on any failure.

Usage: tools/validate_trace.py TRACE.json [--tolerance 0.10]
"""

import argparse
import json
import sys

MUX_PID = 2  # obs::kPidMux


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}")
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative transmit span-sum mismatch allowed "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{args.trace}: {err}")
    if not isinstance(data, dict) or "traceEvents" not in data:
        fail("missing traceEvents")
    events = data["traceEvents"]
    other = data.get("otherData", {})
    dropped = int(other.get("dropped", 0))

    last_ts = {}    # (pid, tid) -> last timestamp seen
    stacks = {}     # (pid, tid) -> open 'B' stack of (name, ts)
    unmatched_e = 0
    transmit_spans_us = 0.0
    mux_width = other.get("mux_width")
    n_events = 0

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        n_events += 1
        for field in ("name", "ts", "pid", "tid"):
            if field not in ev:
                fail(f"event missing {field}: {ev}")
        key = (ev["pid"], ev["tid"])
        ts = float(ev["ts"])
        if key in last_ts and ts < last_ts[key]:
            fail(f"timestamps regress on track {key}: "
                 f"{last_ts[key]} -> {ts} at {ev['name']}")
        last_ts[key] = ts

        if ev["pid"] == MUX_PID and mux_width is not None:
            if int(ev["tid"]) >= int(mux_width):
                fail(f"mux event on lane {ev['tid']} but mux_width is "
                     f"{int(mux_width)}: {ev['name']}")

        if ph == "B":
            stacks.setdefault(key, []).append((ev["name"], ts))
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                unmatched_e += 1
                if dropped == 0:
                    fail(f"unmatched 'E' ({ev['name']}) on track {key} "
                         "with no ring drops")
                continue
            name, begin = stack.pop()
            if name != ev["name"]:
                fail(f"mismatched span on track {key}: "
                     f"B={name} closed by E={ev['name']}")
            # The fused engine traces transmit.fused.shard; legacy traces
            # carry transmit.shard. Either way the span brackets one
            # shard's whole transmit pass, so both feed the same sum.
            if ev["name"] in ("transmit.shard", "transmit.fused.shard"):
                transmit_spans_us += ts - begin
        elif ph not in ("i", "C"):
            fail(f"unknown phase {ph!r}: {ev}")

    open_spans = sum(len(s) for s in stacks.values())
    if open_spans and dropped == 0:
        leftovers = [s[-1][0] for s in stacks.values() if s]
        fail(f"{open_spans} unclosed 'B' span(s) with no ring drops "
             f"(e.g. {leftovers[:4]})")

    notes = [f"{n_events} events", f"{dropped} dropped"]
    transmit_ms = other.get("transmit_ms")
    threads = other.get("threads")
    if transmit_ms is None or threads is None:
        notes.append("no transmit_ms/threads metadata: span-sum check "
                     "skipped")
    elif int(threads) != 1:
        notes.append(f"threads={int(threads)}: span-sum vs transmit_ms "
                     "only comparable at threads=1, skipped")
    elif dropped > 0:
        notes.append("ring dropped events: span-sum check skipped")
    elif float(transmit_ms) <= 0.0:
        notes.append("transmit_ms is zero: span-sum check skipped")
    else:
        span_ms = transmit_spans_us / 1000.0
        rel = abs(span_ms - float(transmit_ms)) / float(transmit_ms)
        if rel > args.tolerance:
            fail(f"transmit shard spans sum to {span_ms:.3f} ms but "
                 f"RunStats.transmit_ms is {float(transmit_ms):.3f} ms "
                 f"({rel:+.1%} off, tolerance {args.tolerance:.0%})")
        notes.append(f"transmit spans {span_ms:.1f} ms vs RunStats "
                     f"{float(transmit_ms):.1f} ms ({rel:.1%} off)")

    print(f"validate_trace: OK ({'; '.join(notes)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
