// drw — command-line driver for the distributed random-walk library.
//
// Usage:
//   drw <command> [--graph=SPEC] [--seed=N] [options]
//
// Commands:
//   walk       one l-step stitched walk          (--l, --source, --naive)
//   many       k walks of length l               (--l, --k, --source)
//   rst        random spanning tree              (--root)
//   mixing     decentralized mixing-time         (--samples, --lazy)
//   expander   expander check                    (--samples)
//   pagerank   PageRank via terminating walks    (--alpha, --tokens)
//   verify     PATH-VERIFICATION on the gadget   (--l)
//
// Graph specs (default torus:12x12):
//   path:N cycle:N grid:RxC torus:RxC hypercube:D complete:N star:N
//   lollipop:C,P barbell:C,P er:N,P regular:N,D rgg:N,R chain:S,N,D
//
// Examples:
//   drw walk --graph=regular:128,4 --l=8192
//   drw rst --graph=grid:8x8 --seed=7
//   drw pagerank --graph=rgg:96,0.2 --alpha=0.15 --tokens=200
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "apps/mixing.hpp"
#include "apps/pagerank.hpp"
#include "apps/rst.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/spanning.hpp"
#include "lowerbound/gadget.hpp"
#include "lowerbound/path_verification.hpp"

namespace {

using namespace drw;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: drw <walk|many|rst|mixing|expander|pagerank|verify>\n"
               "           [--graph=SPEC] [--seed=N] [--l=N] [--k=N]\n"
               "           [--source=N] [--root=N] [--alpha=F] [--tokens=N]\n"
               "           [--samples=N] [--naive] [--lazy] [--mh]\n"
               "graph specs: path:N cycle:N grid:RxC torus:RxC hypercube:D\n"
               "             complete:N star:N lollipop:C,P barbell:C,P\n"
               "             er:N,P regular:N,D rgg:N,R chain:S,N,D file:PATH\n");
  std::exit(2);
}

struct Args {
  std::string command;
  std::string graph_spec = "torus:12x12";
  std::uint64_t seed = 42;
  std::uint64_t l = 4096;
  std::uint64_t k = 8;
  NodeId source = 0;
  NodeId root = 0;
  double alpha = 0.15;
  std::uint32_t tokens = 128;
  std::uint32_t samples = 0;
  bool naive = false;
  TransitionModel model = TransitionModel::kSimple;
};

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (auto v = flag_value(a, "--graph")) {
      args.graph_spec = *v;
    } else if (auto v = flag_value(a, "--seed")) {
      args.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--l")) {
      args.l = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--k")) {
      args.k = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--source")) {
      args.source = static_cast<NodeId>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--root")) {
      args.root = static_cast<NodeId>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--alpha")) {
      args.alpha = std::strtod(v->c_str(), nullptr);
    } else if (auto v = flag_value(a, "--tokens")) {
      args.tokens =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--samples")) {
      args.samples =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--naive") == 0) {
      args.naive = true;
    } else if (std::strcmp(a, "--lazy") == 0) {
      args.model = TransitionModel::kLazy;
    } else if (std::strcmp(a, "--mh") == 0) {
      args.model = TransitionModel::kMetropolisUniform;
    } else {
      usage(("unknown flag: " + std::string(a)).c_str());
    }
  }
  return args;
}

/// Parses "name:a,b" / "name:AxB" graph specs.
Graph build_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  std::vector<double> params;
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    for (char& c : rest) {
      if (c == 'x' || c == ',') c = ' ';
    }
    char* cursor = rest.data();
    while (*cursor != '\0') {
      char* end = nullptr;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) break;
      params.push_back(value);
      cursor = end;
    }
  }
  auto p = [&](std::size_t i, double fallback) {
    return i < params.size() ? params[i] : fallback;
  };
  Rng rng(seed ^ 0xabcdef);
  if (name == "file") {
    return read_edge_list_file(spec.substr(colon + 1));
  }
  if (name == "path") return gen::path(static_cast<std::size_t>(p(0, 64)));
  if (name == "cycle") return gen::cycle(static_cast<std::size_t>(p(0, 64)));
  if (name == "grid") {
    return gen::grid(static_cast<std::size_t>(p(0, 8)),
                     static_cast<std::size_t>(p(1, 8)));
  }
  if (name == "torus") {
    return gen::torus(static_cast<std::size_t>(p(0, 12)),
                      static_cast<std::size_t>(p(1, 12)));
  }
  if (name == "hypercube") {
    return gen::hypercube(static_cast<std::size_t>(p(0, 6)));
  }
  if (name == "complete") {
    return gen::complete(static_cast<std::size_t>(p(0, 16)));
  }
  if (name == "star") return gen::star(static_cast<std::size_t>(p(0, 16)));
  if (name == "lollipop") {
    return gen::lollipop(static_cast<std::size_t>(p(0, 8)),
                         static_cast<std::size_t>(p(1, 8)));
  }
  if (name == "barbell") {
    return gen::barbell(static_cast<std::size_t>(p(0, 8)),
                        static_cast<std::size_t>(p(1, 2)));
  }
  if (name == "er") {
    return gen::erdos_renyi_connected(static_cast<std::size_t>(p(0, 64)),
                                      p(1, 0.08), rng);
  }
  if (name == "regular") {
    return gen::random_regular(static_cast<std::size_t>(p(0, 64)),
                               static_cast<std::uint32_t>(p(1, 4)), rng);
  }
  if (name == "rgg") {
    return gen::random_geometric(static_cast<std::size_t>(p(0, 96)),
                                 p(1, 0.2), rng);
  }
  if (name == "chain") {
    return gen::expander_chain(static_cast<std::size_t>(p(0, 4)),
                               static_cast<std::size_t>(p(1, 32)),
                               static_cast<std::uint32_t>(p(2, 4)), rng);
  }
  usage(("unknown graph spec: " + spec).c_str());
}

int cmd_walk(const Args& args, const Graph& g, std::uint32_t diameter) {
  congest::Network net(g, args.seed);
  if (args.naive) {
    const auto result =
        core::naive_random_walk(net, args.source, args.l, args.model);
    std::printf("naive walk: destination=%u rounds=%llu messages=%llu\n",
                result.destination,
                static_cast<unsigned long long>(result.stats.rounds),
                static_cast<unsigned long long>(result.stats.messages));
    return 0;
  }
  core::Params params = core::Params::paper();
  params.transition = args.model;
  const auto out =
      core::single_random_walk(net, args.source, args.l, params, diameter);
  std::printf("stitched walk: destination=%u rounds=%llu (naive: %llu) "
              "lambda=%u stitches=%llu gmw=%llu\n",
              out.result.destination,
              static_cast<unsigned long long>(out.result.stats.rounds),
              static_cast<unsigned long long>(args.l),
              out.result.counters.lambda,
              static_cast<unsigned long long>(out.result.counters.stitches),
              static_cast<unsigned long long>(
                  out.result.counters.get_more_walks_calls));
  return 0;
}

int cmd_many(const Args& args, const Graph& g, std::uint32_t diameter) {
  congest::Network net(g, args.seed);
  core::Params params = core::Params::paper();
  params.transition = args.model;
  const std::vector<NodeId> sources(args.k, args.source);
  const auto out =
      core::many_random_walks(net, sources, args.l, params, diameter);
  std::printf("%llu walks of length %llu: rounds=%llu mode=%s\n",
              static_cast<unsigned long long>(args.k),
              static_cast<unsigned long long>(args.l),
              static_cast<unsigned long long>(out.stats.rounds),
              out.used_naive_fallback ? "naive-fallback" : "stitched");
  std::printf("destinations:");
  for (NodeId dest : out.destinations) std::printf(" %u", dest);
  std::printf("\n");
  return 0;
}

int cmd_rst(const Args& args, const Graph& g, std::uint32_t diameter) {
  congest::Network net(g, args.seed);
  const auto result =
      apps::random_spanning_tree(net, args.root, core::Params::paper(),
                                 diameter);
  std::printf("random spanning tree: %zu edges, rounds=%llu cover=%llu "
              "phases=%u valid=%s\n",
              result.tree.edges.size(),
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(result.cover_length),
              result.phases,
              is_spanning_tree(g, result.tree) ? "yes" : "NO");
  for (const auto& [u, v] : result.tree.edges) {
    std::printf("%u-%u ", u, v);
  }
  std::printf("\n");
  return 0;
}

int cmd_mixing(const Args& args, const Graph& g, std::uint32_t diameter) {
  congest::Network net(g, args.seed);
  core::Params params = core::Params::paper();
  params.transition = args.model;
  apps::MixingOptions options;
  options.samples = args.samples;
  const auto est =
      apps::estimate_mixing_time(net, args.source, params, diameter, options);
  std::printf("mixing time ~ %llu steps (converged=%s, rounds=%llu, K=%u)\n",
              static_cast<unsigned long long>(est.tau),
              est.converged ? "yes" : "no",
              static_cast<unsigned long long>(est.stats.rounds),
              est.samples);
  std::printf("spectral gap in [%.5f, %.5f]; conductance in [%.5f, %.5f]\n",
              est.gap_lower, est.gap_upper, est.conductance_lower,
              est.conductance_upper);
  return 0;
}

int cmd_expander(const Args& args, const Graph& g, std::uint32_t diameter) {
  congest::Network net(g, args.seed);
  apps::MixingOptions options;
  options.samples = args.samples;
  const auto verdict = apps::check_expander(
      net, args.source, core::Params::paper(), diameter, 2.0, options);
  std::printf("expander: %s (tau=%llu threshold=%.0f gap>=%.4f "
              "rounds=%llu)\n",
              verdict.is_expander ? "YES" : "no",
              static_cast<unsigned long long>(verdict.tau),
              verdict.threshold, verdict.gap_lower,
              static_cast<unsigned long long>(verdict.stats.rounds));
  return 0;
}

int cmd_pagerank(const Args& args, const Graph& g, std::uint32_t) {
  congest::Network net(g, args.seed);
  apps::PageRankOptions options;
  options.alpha = args.alpha;
  options.tokens_per_node = args.tokens;
  const auto result = apps::estimate_pagerank(net, options);
  std::printf("pagerank (alpha=%.2f, %llu tokens, rounds=%llu), top 10:\n",
              args.alpha,
              static_cast<unsigned long long>(result.total_tokens),
              static_cast<unsigned long long>(result.stats.rounds));
  std::vector<NodeId> order(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return result.scores[a] > result.scores[b];
  });
  for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
    std::printf("  node %-6u deg %-4u score %.5f\n", order[i],
                g.degree(order[i]), result.scores[order[i]]);
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const lowerbound::Gadget gadget = lowerbound::build_gadget(args.l);
  congest::Network net(gadget.graph, args.seed);
  std::vector<NodeId> sequence;
  for (std::uint64_t i = 1; i <= args.l + 1; ++i) {
    sequence.push_back(gadget.path_node(i));
  }
  const auto result =
      lowerbound::verify_path(net, sequence, gadget.root());
  std::printf("path verification on G_n (l=%llu, n=%zu): verified=%s "
              "rounds=%llu  k=sqrt(l/log l)=%llu  D=%u\n",
              static_cast<unsigned long long>(args.l),
              gadget.graph.node_count(), result.verified ? "yes" : "NO",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(gadget.k),
              double_sweep_diameter_estimate(gadget.graph, gadget.root()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "verify") return cmd_verify(args);

  const Graph g = build_graph(args.graph_spec, args.seed);
  const std::uint32_t diameter = exact_diameter(g);
  std::printf("graph %s: %s, D=%u\n", args.graph_spec.c_str(),
              g.summary().c_str(), diameter);
  if (args.source >= g.node_count() || args.root >= g.node_count()) {
    usage("--source/--root out of range");
  }

  if (args.command == "walk") return cmd_walk(args, g, diameter);
  if (args.command == "many") return cmd_many(args, g, diameter);
  if (args.command == "rst") return cmd_rst(args, g, diameter);
  if (args.command == "mixing") return cmd_mixing(args, g, diameter);
  if (args.command == "expander") return cmd_expander(args, g, diameter);
  if (args.command == "pagerank") return cmd_pagerank(args, g, diameter);
  usage(("unknown command: " + args.command).c_str());
}
