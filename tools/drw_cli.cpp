// drw — command-line driver for the distributed random-walk library.
//
// Usage:
//   drw <command> [--graph=SPEC] [--seed=N] [--threads=N] [options]
//
// Commands:
//   walk       one l-step stitched walk          (--l, --source, --naive)
//   many       k walks of length l               (--l, --k, --source)
//   serve      walk service over request batches (--requests, --batch-size,
//              alias: batch)                      --paths, --k, --l)
//   rst        random spanning tree              (--root)
//   mixing     decentralized mixing-time         (--samples, --lazy)
//   expander   expander check                    (--samples)
//   pagerank   PageRank via terminating walks    (--alpha, --tokens)
//   verify     PATH-VERIFICATION on the gadget   (--l)
//   convert    edge list -> binary CSR cache     (IN.txt OUT.csr,
//                                                 --no-relabel)
//
// Graph specs (default torus:12x12):
//   path:N cycle:N grid:RxC torus:RxC hypercube:D complete:N star:N
//   lollipop:C,P barbell:C,P er:N,P regular:N,D rgg:N,R chain:S,N,D
//   file:PATH (edge list or .csr; a bare existing path works too)
//
// File graphs go through the ingestion pipeline (graph/csr_file.hpp):
// bulk-parsed, degree-relabeled (node 0 = highest degree), and -- for
// .csr files -- mmap'd zero-copy. --source/--root and every printed node
// id stay in the user's id space; translation is internal. A rejected
// .csr (torn, corrupt, wrong version) degrades to re-parsing PATH minus
// ".csr" with identical results; stdout carries a machine-greppable
// "graph: csr|text" line.
//
// Examples:
//   drw walk --graph=regular:128,4 --l=8192
//   drw rst --graph=grid:8x8 --seed=7
//   drw pagerank --graph=rgg:96,0.2 --alpha=0.15 --tokens=200
//   drw convert soc.txt soc.txt.csr && drw serve --graph=soc.txt.csr
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/mixing.hpp"
#include "apps/pagerank.hpp"
#include "apps/rst.hpp"
#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/spanning.hpp"
#include "lowerbound/gadget.hpp"
#include "lowerbound/path_verification.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "service/walk_service.hpp"

namespace {

using namespace drw;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: drw "
               "<walk|many|serve|rst|mixing|expander|pagerank|verify>\n"
               "       drw convert IN.txt OUT.csr [--threads=N]"
               " [--no-relabel]\n"
               "           (bulk-parse IN.txt, degree-relabel, write an\n"
               "            atomic CRC-checksummed binary CSR cache that\n"
               "            --graph=OUT.csr mmaps zero-copy; --no-relabel\n"
               "            keeps user ids as internal ids)\n"
               "           [--graph=SPEC] [--seed=N] [--l=N] [--k=N]\n"
               "           [--source=N] [--root=N] [--alpha=F] [--tokens=N]\n"
               "           [--samples=N] [--naive] [--lazy] [--mh]\n"
               "           [--threads=N]  (executor threads; 0 = auto,\n"
               "                           results identical at any count)\n"
               "           [--partition=nodes|edges]  (shard balance; results\n"
               "                           identical under either strategy)\n"
               "           [--steal-chunk=N]  (work-stealing grain; 0 = auto)\n"
               "           [--mux=N]  (serve: concurrent stitching width;\n"
               "                       0 = auto via DRW_MUX, 1 = sequential)\n"
               "           [--requests=FILE] [--batch-size=N] [--paths]\n"
               "           [--trace=FILE]  (any command: Chrome trace-event\n"
               "                            JSON, Perfetto-loadable;\n"
               "                            DRW_TRACE=FILE is equivalent)\n"
               "           [--stats-json=FILE]  (serve: full per-batch +\n"
               "                            lifetime + metrics JSON)\n"
               "           [--snapshot=FILE]  (serve: checkpoint the serving\n"
               "                            state here after every batch --\n"
               "                            atomic, checksummed)\n"
               "           [--snapshot-keep=N]  (serve: rotate N snapshot\n"
               "                            generations FILE.1..FILE.N instead\n"
               "                            of overwriting; restore picks the\n"
               "                            newest valid one. Default 1)\n"
               "           [--restore]  (serve: warm-start from --snapshot\n"
               "                         before serving; a missing/corrupt\n"
               "                         snapshot degrades to cold start)\n"
               "           [--print-results]  (serve: one `result[IDX] ...`\n"
               "                         line per request in admitted order\n"
               "                         -- byte-identical to what `drw\n"
               "                         request` prints for the same log)\n"
               "           [--no-header]  (file graphs: ignore `# nodes N`\n"
               "                         headers; node count = max id + 1)\n"
               "serve --listen (always-on TCP server; SIGTERM = clean stop):\n"
               "           --listen=[HOST:]PORT  (port 0 = ephemeral; the\n"
               "                         bound address is printed as\n"
               "                         `listening: HOST:PORT`)\n"
               "           [--queue-cap=N] [--drr-quantum=N]\n"
               "           [--batch-cost=N] [--admission-policy=drr|fifo]\n"
               "           [--class-quantum=NAME:N]  (repeatable)\n"
               "           [--admission-log=FILE]  (admitted order +\n"
               "                         `# batch` markers; replay with\n"
               "                         serve --requests=FILE\n"
               "                         --print-results)\n"
               "           [--io-timeout-ms=N]\n"
               "       drw request --connect=HOST:PORT --requests=FILE\n"
               "           [--class=NAME] [--deadline-ms=N]\n"
               "           (client: sends the file's requests, prints one\n"
               "            result line per response, admitted order keyed\n"
               "            by the server's admission index)\n"
               "request file: one `source length count [record]` per line,\n"
               "              '#' starts a comment; a `# batch` line forces\n"
               "              a batch boundary (serve offline mode)\n"
               "graph specs: path:N cycle:N grid:RxC torus:RxC hypercube:D\n"
               "             complete:N star:N lollipop:C,P barbell:C,P\n"
               "             er:N,P regular:N,D powerlaw:N,M rgg:N,R\n"
               "             chain:S,N,D file:PATH (edge list or .csr;\n"
               "             a bare existing path also works)\n");
  std::exit(2);
}

struct Args {
  std::string command;
  std::string graph_spec = "torus:12x12";
  std::uint64_t seed = 42;
  std::uint64_t l = 4096;
  std::uint64_t k = 8;
  NodeId source = 0;
  NodeId root = 0;
  double alpha = 0.15;
  std::uint32_t tokens = 128;
  std::uint32_t samples = 0;
  bool naive = false;
  TransitionModel model = TransitionModel::kSimple;
  std::string requests_file;
  std::uint32_t batch_size = 8;
  bool paths = false;
  unsigned threads = 0;  // 0 = auto (DRW_THREADS env / hardware)
  std::optional<congest::Partition> partition;  // nullopt = network default
  std::uint32_t steal_chunk = 0;  // 0 = auto (DRW_STEAL_CHUNK env / derived)
  unsigned mux = 0;  // serve: stitching width; 0 = auto (DRW_MUX env / 1)
  std::string trace_file;  // non-empty: obs tracer armed for the command
  std::string stats_json;  // serve: write the full stats JSON here
  std::string snapshot;    // serve: checkpoint path (snapshot-after-batch)
  std::uint32_t snapshot_keep = 1;  // serve: generations kept (1 = in place)
  bool restore = false;    // serve: warm-start from --snapshot
  bool no_relabel = false;  // convert: keep user ids as internal ids
  bool no_header = false;   // file graphs: ignore `# nodes N` headers
  std::vector<std::string> positional;  // convert: IN.txt OUT.csr

  // serve --listen (always-on server) and the `request` client.
  std::string listen;         // "[HOST:]PORT"; non-empty = listening mode
  std::string connect;        // request: "HOST[:PORT]"
  std::string klass;          // request: admission class name
  std::uint32_t deadline_ms = 0;  // request: per-request deadline
  std::size_t queue_cap = 4096;
  std::uint64_t drr_quantum = 2048;
  std::uint64_t batch_cost = 8192;
  service::AdmissionPolicy admission_policy = service::AdmissionPolicy::kDrr;
  std::vector<std::pair<std::string, std::uint64_t>> class_quanta;
  std::string admission_log;
  int io_timeout_ms = 30000;
  bool print_results = false;
};

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (auto v = flag_value(a, "--graph")) {
      args.graph_spec = *v;
    } else if (auto v = flag_value(a, "--seed")) {
      args.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--l")) {
      args.l = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--k")) {
      args.k = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--source")) {
      args.source = static_cast<NodeId>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--root")) {
      args.root = static_cast<NodeId>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--alpha")) {
      args.alpha = std::strtod(v->c_str(), nullptr);
    } else if (auto v = flag_value(a, "--tokens")) {
      args.tokens =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--threads")) {
      args.threads =
          static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--partition")) {
      if (*v == "nodes") {
        args.partition = congest::Partition::kNodeCount;
      } else if (*v == "edges") {
        args.partition = congest::Partition::kEdgeWeighted;
      } else {
        usage("--partition must be nodes or edges");
      }
    } else if (auto v = flag_value(a, "--steal-chunk")) {
      args.steal_chunk =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--mux")) {
      args.mux =
          static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--samples")) {
      args.samples =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--requests")) {
      args.requests_file = *v;
    } else if (auto v = flag_value(a, "--batch-size")) {
      args.batch_size =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--trace")) {
      args.trace_file = *v;
    } else if (auto v = flag_value(a, "--stats-json")) {
      args.stats_json = *v;
    } else if (auto v = flag_value(a, "--snapshot-keep")) {
      args.snapshot_keep =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--snapshot")) {
      args.snapshot = *v;
    } else if (auto v = flag_value(a, "--listen")) {
      args.listen = *v;
    } else if (auto v = flag_value(a, "--connect")) {
      args.connect = *v;
    } else if (auto v = flag_value(a, "--class-quantum")) {
      const auto sep = v->rfind(':');
      if (sep == std::string::npos || sep == 0) {
        usage("--class-quantum needs NAME:N");
      }
      args.class_quanta.emplace_back(
          v->substr(0, sep),
          std::strtoull(v->c_str() + sep + 1, nullptr, 10));
    } else if (auto v = flag_value(a, "--class")) {
      args.klass = *v;
    } else if (auto v = flag_value(a, "--deadline-ms")) {
      args.deadline_ms =
          static_cast<std::uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (auto v = flag_value(a, "--queue-cap")) {
      args.queue_cap = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--drr-quantum")) {
      args.drr_quantum = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--batch-cost")) {
      args.batch_cost = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flag_value(a, "--admission-policy")) {
      if (*v == "drr") {
        args.admission_policy = service::AdmissionPolicy::kDrr;
      } else if (*v == "fifo") {
        args.admission_policy = service::AdmissionPolicy::kFifo;
      } else {
        usage("--admission-policy must be drr or fifo");
      }
    } else if (auto v = flag_value(a, "--admission-log")) {
      args.admission_log = *v;
    } else if (auto v = flag_value(a, "--io-timeout-ms")) {
      args.io_timeout_ms =
          static_cast<int>(std::strtol(v->c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--print-results") == 0) {
      args.print_results = true;
    } else if (std::strcmp(a, "--restore") == 0) {
      args.restore = true;
    } else if (std::strcmp(a, "--no-relabel") == 0) {
      args.no_relabel = true;
    } else if (std::strcmp(a, "--no-header") == 0) {
      args.no_header = true;
    } else if (a[0] != '-') {
      args.positional.push_back(a);
    } else if (std::strcmp(a, "--paths") == 0) {
      args.paths = true;
    } else if (std::strcmp(a, "--naive") == 0) {
      args.naive = true;
    } else if (std::strcmp(a, "--lazy") == 0) {
      args.model = TransitionModel::kLazy;
    } else if (std::strcmp(a, "--mh") == 0) {
      args.model = TransitionModel::kMetropolisUniform;
    } else {
      usage(("unknown flag: " + std::string(a)).c_str());
    }
  }
  return args;
}

/// Parses "name:a,b" / "name:AxB" graph specs.
Graph build_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  std::vector<double> params;
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    for (char& c : rest) {
      if (c == 'x' || c == ',') c = ' ';
    }
    char* cursor = rest.data();
    while (*cursor != '\0') {
      char* end = nullptr;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) break;
      params.push_back(value);
      cursor = end;
    }
  }
  auto p = [&](std::size_t i, double fallback) {
    return i < params.size() ? params[i] : fallback;
  };
  Rng rng(seed ^ 0xabcdef);
  if (name == "path") return gen::path(static_cast<std::size_t>(p(0, 64)));
  if (name == "cycle") return gen::cycle(static_cast<std::size_t>(p(0, 64)));
  if (name == "grid") {
    return gen::grid(static_cast<std::size_t>(p(0, 8)),
                     static_cast<std::size_t>(p(1, 8)));
  }
  if (name == "torus") {
    return gen::torus(static_cast<std::size_t>(p(0, 12)),
                      static_cast<std::size_t>(p(1, 12)));
  }
  if (name == "hypercube") {
    return gen::hypercube(static_cast<std::size_t>(p(0, 6)));
  }
  if (name == "complete") {
    return gen::complete(static_cast<std::size_t>(p(0, 16)));
  }
  if (name == "star") return gen::star(static_cast<std::size_t>(p(0, 16)));
  if (name == "lollipop") {
    return gen::lollipop(static_cast<std::size_t>(p(0, 8)),
                         static_cast<std::size_t>(p(1, 8)));
  }
  if (name == "barbell") {
    return gen::barbell(static_cast<std::size_t>(p(0, 8)),
                        static_cast<std::size_t>(p(1, 2)));
  }
  if (name == "er") {
    return gen::erdos_renyi_connected(static_cast<std::size_t>(p(0, 64)),
                                      p(1, 0.08), rng);
  }
  if (name == "regular") {
    return gen::random_regular(static_cast<std::size_t>(p(0, 64)),
                               static_cast<std::uint32_t>(p(1, 4)), rng);
  }
  if (name == "powerlaw") {
    return gen::power_law(static_cast<std::size_t>(p(0, 64)),
                          static_cast<std::uint32_t>(p(1, 3)), rng);
  }
  if (name == "rgg") {
    return gen::random_geometric(static_cast<std::size_t>(p(0, 96)),
                                 p(1, 0.2), rng);
  }
  if (name == "chain") {
    return gen::expander_chain(static_cast<std::size_t>(p(0, 4)),
                               static_cast<std::size_t>(p(1, 32)),
                               static_cast<std::uint32_t>(p(2, 4)), rng);
  }
  usage(("unknown graph spec: " + spec).c_str());
}

/// A graph ready for a command: the topology (in the internal id space),
/// the user<->internal id maps, and provenance for the "graph:" line.
/// Generator graphs are never relabeled (identity maps), so their results
/// are unchanged; file graphs go through csr::load_graph -- text parse +
/// degree relabel, or zero-copy mmap of a converted .csr.
struct CliGraph {
  csr::LoadedGraph lg;
  bool from_file = false;
  std::string source_desc;  // "csr:PATH" / "text:PATH" / "generator:SPEC"
};

bool path_exists(const std::string& path) {
  std::ifstream probe(path);
  return probe.good();
}

CliGraph load_cli_graph(const Args& args) {
  const std::string& spec = args.graph_spec;
  const auto colon = spec.find(':');
  std::string file_path;
  if (colon != std::string::npos && spec.substr(0, colon) == "file") {
    file_path = spec.substr(colon + 1);
  } else if (colon == std::string::npos &&
             (path_exists(spec) ||
              (spec.size() > 4 &&
               spec.compare(spec.size() - 4, 4, ".csr") == 0))) {
    // Bare path convenience: --graph=soc.txt.csr. A missing .csr still
    // routes through load_graph so it can degrade to the text sibling.
    file_path = spec;
  }
  CliGraph cg;
  if (!file_path.empty()) {
    EdgeListOptions options;
    options.no_header = args.no_header;
    cg.lg = csr::load_graph(file_path, args.threads, options);
    cg.from_file = true;
    cg.source_desc = (cg.lg.from_csr ? "csr:" : "text:") + file_path;
  } else {
    cg.lg.graph = build_graph(spec, args.seed);
    cg.source_desc = "generator:" + spec;
  }
  return cg;
}

/// Applies the executor overrides (--threads / --partition / --steal-chunk;
/// results are bit-identical at every setting).
void configure_threads(congest::Network& net, const Args& args) {
  if (args.threads != 0) net.set_threads(args.threads);
  if (args.partition) net.set_partition(*args.partition);
  if (args.steal_chunk != 0) net.set_steal_chunk(args.steal_chunk);
}

int cmd_walk(const Args& args, const CliGraph& cg, std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  if (args.naive) {
    const auto result =
        core::naive_random_walk(net, args.source, args.l, args.model);
    std::printf("naive walk: destination=%u rounds=%llu messages=%llu\n",
                cg.lg.to_user(result.destination),
                static_cast<unsigned long long>(result.stats.rounds),
                static_cast<unsigned long long>(result.stats.messages));
    return 0;
  }
  core::Params params = core::Params::paper();
  params.transition = args.model;
  const auto out =
      core::single_random_walk(net, args.source, args.l, params, diameter);
  std::printf("stitched walk: destination=%u rounds=%llu (naive: %llu) "
              "lambda=%u stitches=%llu gmw=%llu\n",
              cg.lg.to_user(out.result.destination),
              static_cast<unsigned long long>(out.result.stats.rounds),
              static_cast<unsigned long long>(args.l),
              out.result.counters.lambda,
              static_cast<unsigned long long>(out.result.counters.stitches),
              static_cast<unsigned long long>(
                  out.result.counters.get_more_walks_calls));
  return 0;
}

int cmd_many(const Args& args, const CliGraph& cg, std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  core::Params params = core::Params::paper();
  params.transition = args.model;
  const std::vector<NodeId> sources(args.k, args.source);
  const auto out =
      core::many_random_walks(net, sources, args.l, params, diameter);
  std::printf("%llu walks of length %llu: rounds=%llu mode=%s\n",
              static_cast<unsigned long long>(args.k),
              static_cast<unsigned long long>(args.l),
              static_cast<unsigned long long>(out.stats.rounds),
              out.used_naive_fallback ? "naive-fallback" : "stitched");
  std::printf("destinations:");
  for (NodeId dest : out.destinations) {
    std::printf(" %u", cg.lg.to_user(dest));
  }
  std::printf("\n");
  return 0;
}

/// One request-file line in the user's id space (shared by the offline
/// serve path, the admission-log replay, and the `drw request` client).
struct RequestEntry {
  std::uint64_t source = 0;
  std::uint64_t length = 0;
  std::uint32_t count = 1;
  bool record = false;
};

struct RequestFileData {
  std::vector<RequestEntry> entries;
  /// Entry counts at which a batch ends (from `# batch` marker lines,
  /// strictly increasing; a final partial batch needs no marker). Empty =
  /// no markers, the caller chops by --batch-size.
  std::vector<std::size_t> boundaries;
};

/// Parses a request file: one `source length count [record]` per line;
/// blank lines and '#' comments skipped. A comment line reading exactly
/// `# batch` marks a batch boundary (the admission log's format), which
/// plain-comment readers naturally ignore -- old files stay valid.
RequestFileData parse_request_entries(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open request file: " + path).c_str());
  RequestFileData data;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      std::istringstream comment(line.substr(hash + 1));
      std::string word;
      if (comment >> word && word == "batch" && !(comment >> word) &&
          !data.entries.empty() &&
          (data.boundaries.empty() ||
           data.boundaries.back() != data.entries.size())) {
        data.boundaries.push_back(data.entries.size());
      }
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::uint64_t source = 0;
    std::uint64_t length = 0;
    std::uint64_t count = 1;
    std::uint64_t record = 0;
    if (!(fields >> source)) continue;  // blank / comment-only line
    if (!(fields >> length)) {
      usage(("request file line " + std::to_string(line_no) +
             ": expected `source length [count [record]]`").c_str());
    }
    // Optional fields keep their defaults when absent (a failed >> would
    // zero the target).
    std::uint64_t value = 0;
    if (fields >> value) {
      count = value;
      if (fields >> value) record = value;
    }
    data.entries.push_back(RequestEntry{
        source, length, static_cast<std::uint32_t>(count), record != 0});
  }
  return data;
}

struct RequestFile {
  std::vector<service::WalkRequest> requests;  ///< internal id space
  std::vector<std::size_t> boundaries;         ///< see RequestFileData
};

/// parse_request_entries + validation + user->internal source translation.
RequestFile read_request_file(const std::string& path, const CliGraph& cg) {
  const RequestFileData data = parse_request_entries(path);
  RequestFile out;
  out.boundaries = data.boundaries;
  for (std::size_t i = 0; i < data.entries.size(); ++i) {
    const RequestEntry& e = data.entries[i];
    const NodeId internal =
        e.source <= std::uint64_t{kInvalidNode}
            ? cg.lg.to_internal(static_cast<NodeId>(e.source))
            : kInvalidNode;
    if (internal == kInvalidNode) {
      usage(("request file " + path + " entry " + std::to_string(i + 1) +
             ": source out of range").c_str());
    }
    out.requests.push_back(
        service::WalkRequest{internal, e.length, e.count, e.record});
  }
  return out;
}

/// The admitted-order result line(s) shared -- byte for byte -- by the
/// offline replay (`serve --requests=LOG --print-results`) and the network
/// client (`drw request`). All node ids are user-space.
void print_result_lines(std::uint64_t admission_index, std::uint64_t source,
                        std::uint64_t length, std::uint32_t count,
                        std::uint8_t status,
                        const std::vector<std::uint32_t>& destinations,
                        const std::vector<std::vector<std::uint32_t>>& paths) {
  std::printf("result[%llu] source=%llu length=%llu count=%u status=%s "
              "destinations:",
              static_cast<unsigned long long>(admission_index),
              static_cast<unsigned long long>(source),
              static_cast<unsigned long long>(length), count,
              service::to_string(
                  static_cast<service::RequestStatus>(status)));
  for (std::uint32_t d : destinations) std::printf(" %u", d);
  std::printf("\n");
  for (const auto& path : paths) {
    std::printf("result[%llu] path:",
                static_cast<unsigned long long>(admission_index));
    for (std::uint32_t node : path) std::printf(" %u", node);
    std::printf("\n");
  }
}

/// A reproducible synthetic workload: random sources, log-uniform lengths.
std::vector<service::WalkRequest> synthetic_requests(
    const Args& args, const Graph& g, std::uint32_t diameter) {
  Rng rng(args.seed ^ 0x5e21fe);
  std::vector<service::WalkRequest> requests;
  const double lo = std::log2(std::max<double>(diameter, 2.0));
  const double hi =
      std::log2(static_cast<double>(std::max<std::uint64_t>(args.l, 4)));
  for (std::uint64_t i = 0; i < std::max<std::uint64_t>(args.k, 1); ++i) {
    const double x = lo + (hi - lo) * rng.next_double();
    requests.push_back(service::WalkRequest{
        static_cast<NodeId>(rng.next_below(g.node_count())),
        static_cast<std::uint64_t>(std::llround(std::exp2(x))),
        static_cast<std::uint32_t>(1 + rng.next_below(4)), false});
  }
  return requests;
}

/// Appends the RunStats fields shared by batch and lifetime records.
void append_run_stats(std::ostringstream& out, const congest::RunStats& s) {
  out << "\"rounds\":" << s.rounds << ",\"messages\":" << s.messages
      << ",\"max_backlog\":" << s.max_backlog << ",\"steals\":" << s.steals
      << ",\"threads\":" << s.threads << ",\"wall_ms\":" << s.wall_ms
      << ",\"compute_ms\":" << s.compute_ms
      << ",\"transmit_ms\":" << s.transmit_ms
      << ",\"merge_ms\":" << s.merge_ms;
}

/// One BatchReport as a JSON object: every scalar the report carries (the
/// human-readable per-batch line is a subset of this).
void append_batch_report(std::ostringstream& out,
                         const service::BatchReport& r) {
  out << "{";
  append_run_stats(out, r.stats);
  out << ",\"requests\":" << r.requests << ",\"walks\":" << r.walks
      << ",\"lambda\":" << r.lambda
      << ",\"naive_mode\":" << (r.naive_mode ? "true" : "false")
      << ",\"full_prepare\":" << (r.full_prepare ? "true" : "false")
      << ",\"stitches\":" << r.stitches
      << ",\"inventory_hits\":" << r.inventory_hits
      << ",\"inventory_hit_rate\":" << r.inventory_hit_rate()
      << ",\"engine_gmw_calls\":" << r.engine_gmw_calls
      << ",\"replenishments\":" << r.replenishments
      << ",\"replenished_walks\":" << r.replenished_walks
      << ",\"naive_rounds_estimate\":" << r.naive_rounds_estimate
      << ",\"mux_width\":" << r.mux_width
      << ",\"mux_groups\":" << r.mux_groups
      << ",\"mux_lanes\":" << r.mux_lanes
      << ",\"mux_conflicts\":" << r.mux_conflicts
      << ",\"rejected\":" << r.rejected << "}";
}

/// The running server, for the async-signal-safe SIGTERM/SIGINT path.
std::atomic<service::WalkServer*> g_server{nullptr};

void handle_stop_signal(int) {
  if (auto* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}

int cmd_serve(const Args& args, const CliGraph& cg, std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  if (args.steal_chunk != 0) net.set_steal_chunk(args.steal_chunk);
  service::ServiceConfig config;
  config.threads = args.threads;
  config.partition = args.partition;
  config.params = core::Params::paper();
  config.params.transition = args.model;
  config.enable_paths = args.paths;
  config.mux_width = args.mux;
  config.snapshot_path = args.snapshot;
  config.snapshot_keep = args.snapshot_keep;
  config.graph_source = cg.source_desc;
  if (args.restore && args.snapshot.empty()) {
    usage("--restore needs --snapshot=FILE");
  }
  service::WalkService service(net, diameter, config);
  if (args.restore) {
    // restore_snapshot logs the detailed reason (warm vs cold) to stderr;
    // the summary line keeps stdout machine-greppable for the harness.
    const bool warm = service.restore_snapshot(args.snapshot);
    std::printf("snapshot: %s\n",
                warm ? "warm restart" : "cold start (details on stderr)");
  }

  // --stats-json wants the metrics registry's view of the run as well.
  if (!args.stats_json.empty()) obs::Registry::global().set_enabled(true);
  std::ostringstream batches_json;
  unsigned effective_mux = 1;  // widest lane count any batch could open

  if (!args.listen.empty()) {
    // Always-on mode: serve walk requests over TCP until SIGTERM/SIGINT.
    service::ServerConfig sc;
    const auto colon = args.listen.rfind(':');
    if (colon == std::string::npos) {
      sc.port = static_cast<std::uint16_t>(
          std::strtoul(args.listen.c_str(), nullptr, 10));
    } else {
      sc.host = args.listen.substr(0, colon);
      sc.port = static_cast<std::uint16_t>(
          std::strtoul(args.listen.c_str() + colon + 1, nullptr, 10));
    }
    sc.admission.queue_cap = std::max<std::size_t>(1, args.queue_cap);
    sc.admission.quantum = args.drr_quantum;
    sc.admission.max_batch_cost = args.batch_cost;
    sc.admission.policy = args.admission_policy;
    sc.io_timeout_ms = args.io_timeout_ms;
    sc.admission_log = args.admission_log;
    sc.class_quanta = args.class_quanta;

    service::WalkServer server(service, cg.lg, sc);
    g_server.store(&server, std::memory_order_relaxed);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    server.start();
    // Machine-greppable: tools/server_smoke.py and the crash harness
    // parse this line for the (possibly ephemeral) bound port.
    std::printf("listening: %s:%u\n", sc.host.c_str(),
                unsigned(server.port()));
    std::fflush(stdout);
    server.join();
    g_server.store(nullptr, std::memory_order_relaxed);

    const service::ServerStats st = server.stats();
    std::printf(
        "shutdown: clean | connections=%llu requests=%llu admitted=%llu "
        "batches=%llu rejected(queue_full=%llu deadline=%llu invalid=%llu)\n",
        static_cast<unsigned long long>(st.connections),
        static_cast<unsigned long long>(st.requests),
        static_cast<unsigned long long>(st.admitted),
        static_cast<unsigned long long>(st.batches),
        static_cast<unsigned long long>(st.rejected_queue_full),
        static_cast<unsigned long long>(st.rejected_deadline),
        static_cast<unsigned long long>(st.rejected_invalid));
  } else {
  const RequestFile rf =
      args.requests_file.empty()
          ? RequestFile{synthetic_requests(args, g, diameter), {}}
          : read_request_file(args.requests_file, cg);
  const std::vector<service::WalkRequest>& requests = rf.requests;
  if (requests.empty()) usage("no requests to serve");
  for (const service::WalkRequest& r : requests) {
    if (r.record_positions && !args.paths) {
      usage("request file asks for recorded paths: pass --paths");
    }
  }
  const std::uint32_t batch_size = std::max(args.batch_size, 1u);

  // Batch ends: `# batch` markers from the file (the admission log's
  // boundaries -- replay must reproduce them exactly), else --batch-size.
  std::vector<std::size_t> ends = rf.boundaries;
  if (ends.empty()) {
    for (std::size_t at = batch_size; at < requests.size();
         at += batch_size) {
      ends.push_back(at);
    }
  }
  if (ends.empty() || ends.back() != requests.size()) {
    ends.push_back(requests.size());
  }

  std::uint64_t admitted_index = 0;
  std::size_t batch_no = 0;
  std::size_t at = 0;
  for (const std::size_t end : ends) {
    for (std::size_t i = at; i < end; ++i) service.submit(requests[i]);
    at = end;
    const service::BatchReport report = service.flush();
    effective_mux = std::max(effective_mux, report.mux_width);
    if (!args.stats_json.empty()) {
      if (batch_no != 0) batches_json << ",\n";
      append_batch_report(batches_json, report);
    }
    if (args.print_results) {
      for (const service::RequestResult& r : report.results) {
        std::vector<std::uint32_t> destinations;
        destinations.reserve(r.destinations.size());
        for (NodeId d : r.destinations) {
          destinations.push_back(cg.lg.to_user(d));
        }
        std::vector<std::vector<std::uint32_t>> paths;
        paths.reserve(r.paths.size());
        for (const auto& path : r.paths) {
          std::vector<std::uint32_t> user_path;
          user_path.reserve(path.size());
          for (NodeId node : path) user_path.push_back(cg.lg.to_user(node));
          paths.push_back(std::move(user_path));
        }
        print_result_lines(admitted_index++, cg.lg.to_user(r.request.source),
                           r.request.length, r.request.count,
                           static_cast<std::uint8_t>(r.status), destinations,
                           paths);
      }
    }
    std::printf(
        "batch %zu: %llu req / %llu walks | lambda=%u %s | rounds=%llu "
        "(%.1f/req) msgs=%llu | hit=%.3f gmw=%llu topups=%llu(+%llu) | "
        "mux=%u (%llu waves, %llu conflicts)\n",
        ++batch_no, static_cast<unsigned long long>(report.requests),
        static_cast<unsigned long long>(report.walks), report.lambda,
        report.naive_mode ? "naive"
                          : (report.full_prepare ? "phase1" : "reuse"),
        static_cast<unsigned long long>(report.stats.rounds),
        report.rounds_per_request(),
        static_cast<unsigned long long>(report.stats.messages),
        report.inventory_hit_rate(),
        static_cast<unsigned long long>(report.engine_gmw_calls),
        static_cast<unsigned long long>(report.replenishments),
        static_cast<unsigned long long>(report.replenished_walks),
        report.mux_width,
        static_cast<unsigned long long>(report.mux_groups),
        static_cast<unsigned long long>(report.mux_conflicts));
  }
  }
  const service::ServiceStats& life = service.lifetime();
  std::printf(
      "served %llu requests (%llu walks) in %llu batches: rounds=%llu "
      "messages=%llu | phase1=%llu topups=%llu(+%llu walks) hit=%.3f "
      "gmw=%llu | mux: %llu waves / %llu lanes / %llu conflicts | "
      "naive model rounds=%llu (%.1fx)\n",
      static_cast<unsigned long long>(life.requests),
      static_cast<unsigned long long>(life.walks),
      static_cast<unsigned long long>(life.batches),
      static_cast<unsigned long long>(life.stats.rounds),
      static_cast<unsigned long long>(life.stats.messages),
      static_cast<unsigned long long>(life.full_prepares),
      static_cast<unsigned long long>(life.replenishments),
      static_cast<unsigned long long>(life.replenished_walks),
      life.inventory_hit_rate(),
      static_cast<unsigned long long>(life.engine_gmw_calls),
      static_cast<unsigned long long>(life.mux_groups),
      static_cast<unsigned long long>(life.mux_lanes),
      static_cast<unsigned long long>(life.mux_conflicts),
      static_cast<unsigned long long>(life.naive_rounds_estimate),
      life.stats.rounds == 0
          ? 0.0
          : static_cast<double>(life.naive_rounds_estimate) /
                static_cast<double>(life.stats.rounds));
  std::printf("executor: %u thread(s), %.1f ms wall inside Network::run "
              "(compute %.1f / transmit %.1f / merge %.1f cpu-ms; "
              "%llu chunks stolen; grain %zu, steal chunk %u, %s shards)\n",
              life.stats.threads, life.stats.wall_ms, life.stats.compute_ms,
              life.stats.transmit_ms, life.stats.merge_ms,
              static_cast<unsigned long long>(life.stats.steals),
              net.dispatch_grain(), net.steal_chunk(),
              net.partition() == congest::Partition::kEdgeWeighted
                  ? "edge-weighted" : "node-count");

  if (!args.stats_json.empty()) {
    std::ofstream out(args.stats_json);
    if (!out) usage(("cannot write stats JSON: " + args.stats_json).c_str());
    std::ostringstream lifetime_json;
    lifetime_json << "{";
    append_run_stats(lifetime_json, life.stats);
    lifetime_json << ",\"batches\":" << life.batches
                  << ",\"requests\":" << life.requests
                  << ",\"walks\":" << life.walks
                  << ",\"full_prepares\":" << life.full_prepares
                  << ",\"replenishments\":" << life.replenishments
                  << ",\"replenished_walks\":" << life.replenished_walks
                  << ",\"stitches\":" << life.stitches
                  << ",\"inventory_hits\":" << life.inventory_hits
                  << ",\"inventory_hit_rate\":" << life.inventory_hit_rate()
                  << ",\"engine_gmw_calls\":" << life.engine_gmw_calls
                  << ",\"naive_rounds_estimate\":"
                  << life.naive_rounds_estimate
                  << ",\"mux_groups\":" << life.mux_groups
                  << ",\"mux_lanes\":" << life.mux_lanes
                  << ",\"mux_conflicts\":" << life.mux_conflicts
                  << ",\"rejected\":" << life.rejected << "}";
    out << "{\"batches\":[\n" << batches_json.str() << "\n],\n"
        << "\"lifetime\":" << lifetime_json.str() << ",\n"
        << "\"executor\":{\"dispatch_grain\":" << net.dispatch_grain()
        << ",\"steal_chunk\":" << net.steal_chunk() << ",\"partition\":\""
        << (net.partition() == congest::Partition::kEdgeWeighted
                ? "edge-weighted" : "node-count")
        << "\",\"graph_source\":\"" << config.graph_source << "\"},\n"
        << "\"registry\":" << obs::Registry::global().snapshot_json()
        << "}\n";
    std::printf("stats json: %s\n", args.stats_json.c_str());
  }

  // Cross-check metadata for tools/validate_trace.py (the per-shard
  // transmit span sum is only comparable to the driver's transmit_ms when
  // one shard transmits at a time, i.e. threads == 1).
  if (obs::trace_enabled()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.set_meta("transmit_ms", life.stats.transmit_ms);
    tracer.set_meta("threads", double(life.stats.threads));
    tracer.set_meta("mux_width", double(effective_mux));
  }
  return 0;
}

/// TCP client for a `drw serve --listen` server: sends the request file,
/// prints the same `result[IDX] ...` lines an offline replay of the
/// server's admission log prints (the server-smoke byte-identity check).
int cmd_request(const Args& args) {
  if (args.connect.empty()) usage("request needs --connect=HOST:PORT");
  if (args.requests_file.empty()) usage("request needs --requests=FILE");
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  const auto colon = args.connect.rfind(':');
  if (colon == std::string::npos) {
    port = static_cast<std::uint16_t>(
        std::strtoul(args.connect.c_str(), nullptr, 10));
  } else {
    host = args.connect.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(args.connect.c_str() + colon + 1, nullptr, 10));
  }
  const RequestFileData data = parse_request_entries(args.requests_file);
  if (data.entries.empty()) usage("no requests to send");

  net::Socket sock = net::tcp_connect(host, port, args.io_timeout_ms);
  net::HelloFrame hello;
  hello.klass = args.klass;
  net::FrameType type{};
  std::vector<std::uint8_t> payload;
  if (!net::write_frame(sock, net::FrameType::kHello,
                        net::encode_hello(hello), args.io_timeout_ms) ||
      !net::read_frame(sock, &type, &payload, args.io_timeout_ms) ||
      type != net::FrameType::kHello) {
    std::fprintf(stderr, "request: HELLO handshake failed\n");
    return 1;
  }
  const auto reply = net::decode_hello(payload.data(), payload.size());
  if (!reply || reply->version != net::kProtocolVersion) {
    std::fprintf(stderr, "request: protocol version mismatch\n");
    return 1;
  }

  for (std::size_t i = 0; i < data.entries.size(); ++i) {
    const RequestEntry& e = data.entries[i];
    net::RequestFrame frame;
    frame.tag = i;  // response lookup key into data.entries
    frame.source = e.source;
    frame.length = e.length;
    frame.count = e.count;
    frame.deadline_ms = args.deadline_ms;
    frame.record = e.record;
    if (!net::write_frame(sock, net::FrameType::kRequest,
                          net::encode_request(frame), args.io_timeout_ms)) {
      std::fprintf(stderr, "request: send failed at request %zu\n", i);
      return 1;
    }
  }

  std::vector<net::ResponseFrame> responses;
  while (responses.size() < data.entries.size()) {
    if (!net::read_frame(sock, &type, &payload, args.io_timeout_ms) ||
        type != net::FrameType::kResponse) {
      std::fprintf(stderr, "request: connection lost after %zu/%zu responses\n",
                   responses.size(), data.entries.size());
      return 1;
    }
    auto frame = net::decode_response(payload.data(), payload.size());
    if (!frame || frame->tag >= data.entries.size()) {
      std::fprintf(stderr, "request: malformed response\n");
      return 1;
    }
    responses.push_back(std::move(*frame));
  }

  // Admitted responses in admission order first (the replay-comparable
  // lines), then pre-admission rejects by tag.
  std::sort(responses.begin(), responses.end(),
            [](const net::ResponseFrame& a, const net::ResponseFrame& b) {
              const bool ra = a.admission_index == net::kNotAdmitted;
              const bool rb = b.admission_index == net::kNotAdmitted;
              if (ra != rb) return rb;
              return ra ? a.tag < b.tag
                        : a.admission_index < b.admission_index;
            });
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  for (const net::ResponseFrame& r : responses) {
    const RequestEntry& e = data.entries[r.tag];
    if (r.admission_index == net::kNotAdmitted) {
      ++rejected;
      std::printf("rejected tag=%llu source=%llu status=%s\n",
                  static_cast<unsigned long long>(r.tag),
                  static_cast<unsigned long long>(e.source),
                  service::to_string(
                      static_cast<service::RequestStatus>(r.status)));
      continue;
    }
    ++admitted;
    print_result_lines(r.admission_index, e.source, e.length, e.count,
                       r.status, r.destinations, r.paths);
  }
  std::printf("responses: %llu admitted, %llu rejected (server nodes=%llu)\n",
              static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(reply->node_count));
  return 0;
}

int cmd_rst(const Args& args, const CliGraph& cg, std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  const auto result =
      apps::random_spanning_tree(net, args.root, core::Params::paper(),
                                 diameter);
  std::printf("random spanning tree: %zu edges, rounds=%llu cover=%llu "
              "phases=%u valid=%s\n",
              result.tree.edges.size(),
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(result.cover_length),
              result.phases,
              is_spanning_tree(g, result.tree) ? "yes" : "NO");
  for (const auto& [u, v] : result.tree.edges) {
    std::printf("%u-%u ", cg.lg.to_user(u), cg.lg.to_user(v));
  }
  std::printf("\n");
  return 0;
}

int cmd_mixing(const Args& args, const CliGraph& cg, std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  core::Params params = core::Params::paper();
  params.transition = args.model;
  apps::MixingOptions options;
  options.samples = args.samples;
  const auto est =
      apps::estimate_mixing_time(net, args.source, params, diameter, options);
  std::printf("mixing time ~ %llu steps (converged=%s, rounds=%llu, K=%u)\n",
              static_cast<unsigned long long>(est.tau),
              est.converged ? "yes" : "no",
              static_cast<unsigned long long>(est.stats.rounds),
              est.samples);
  std::printf("spectral gap in [%.5f, %.5f]; conductance in [%.5f, %.5f]\n",
              est.gap_lower, est.gap_upper, est.conductance_lower,
              est.conductance_upper);
  return 0;
}

int cmd_expander(const Args& args, const CliGraph& cg,
                 std::uint32_t diameter) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  apps::MixingOptions options;
  options.samples = args.samples;
  const auto verdict = apps::check_expander(
      net, args.source, core::Params::paper(), diameter, 2.0, options);
  std::printf("expander: %s (tau=%llu threshold=%.0f gap>=%.4f "
              "rounds=%llu)\n",
              verdict.is_expander ? "YES" : "no",
              static_cast<unsigned long long>(verdict.tau),
              verdict.threshold, verdict.gap_lower,
              static_cast<unsigned long long>(verdict.stats.rounds));
  return 0;
}

int cmd_pagerank(const Args& args, const CliGraph& cg, std::uint32_t) {
  const Graph& g = cg.lg.graph;
  congest::Network net(g, args.seed);
  configure_threads(net, args);
  apps::PageRankOptions options;
  options.alpha = args.alpha;
  options.tokens_per_node = args.tokens;
  const auto result = apps::estimate_pagerank(net, options);
  std::printf("pagerank (alpha=%.2f, %llu tokens, rounds=%llu), top 10:\n",
              args.alpha,
              static_cast<unsigned long long>(result.total_tokens),
              static_cast<unsigned long long>(result.stats.rounds));
  std::vector<NodeId> order(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return result.scores[a] > result.scores[b];
  });
  for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
    std::printf("  node %-6u deg %-4u score %.5f\n",
                cg.lg.to_user(order[i]), g.degree(order[i]),
                result.scores[order[i]]);
  }
  return 0;
}

void print_ingest_stats(const ParseStats& s) {
  if (s.bytes == 0) return;
  const double total_ms = s.read_ms + s.parse_ms + s.build_ms;
  std::printf("ingest: %llu bytes / %llu lines / %llu edge rows | "
              "read %.1f ms, parse %.1f ms (%u threads), build %.1f ms | "
              "%.2f M edges/s\n",
              static_cast<unsigned long long>(s.bytes),
              static_cast<unsigned long long>(s.lines),
              static_cast<unsigned long long>(s.edges), s.read_ms,
              s.parse_ms, s.threads, s.build_ms,
              total_ms <= 0.0
                  ? 0.0
                  : static_cast<double>(s.edges) / (1e3 * total_ms));
}

int cmd_convert(const Args& args) {
  if (args.positional.size() != 2) {
    usage("convert needs two paths: drw convert IN.txt OUT.csr");
  }
  const std::string& in = args.positional[0];
  const std::string& out = args.positional[1];
  EdgeListOptions options;
  options.no_header = args.no_header;
  if (args.no_relabel) {
    ParseStats stats;
    const Graph g = read_edge_list_file(in, args.threads, &stats, options);
    csr::write_csr_file(out, g, {});
    std::printf("converted %s -> %s (no relabel): %s\n", in.c_str(),
                out.c_str(), g.summary().c_str());
    print_ingest_stats(stats);
  } else {
    const csr::LoadedGraph loaded = csr::convert_edge_list(in, out,
                                                           args.threads,
                                                           options);
    std::printf("converted %s -> %s: %s\n", in.c_str(), out.c_str(),
                loaded.graph.summary().c_str());
    std::printf("relabel: degree-ordered (internal id 0 = highest degree); "
                "old<->new map stored in the file\n");
    print_ingest_stats(loaded.stats);
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const lowerbound::Gadget gadget = lowerbound::build_gadget(args.l);
  congest::Network net(gadget.graph, args.seed);
  configure_threads(net, args);
  std::vector<NodeId> sequence;
  for (std::uint64_t i = 1; i <= args.l + 1; ++i) {
    sequence.push_back(gadget.path_node(i));
  }
  const auto result =
      lowerbound::verify_path(net, sequence, gadget.root());
  std::printf("path verification on G_n (l=%llu, n=%zu): verified=%s "
              "rounds=%llu  k=sqrt(l/log l)=%llu  D=%u\n",
              static_cast<unsigned long long>(args.l),
              gadget.graph.node_count(), result.verified ? "yes" : "NO",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(gadget.k),
              double_sweep_diameter_estimate(gadget.graph, gadget.root()));
  return 0;
}

}  // namespace

namespace {

int run_command(const Args& args) {
  if (args.command == "verify") return cmd_verify(args);
  if (args.command == "convert") return cmd_convert(args);
  if (args.command == "request") return cmd_request(args);

  const CliGraph cg = load_cli_graph(args);
  const Graph& g = cg.lg.graph;
  // Exact diameter is O(n(n+m)) -- fine for the small generator suite,
  // prohibitive for real datasets. File graphs use the O(n+m) double-sweep
  // estimate; it is a pure function of the (relabeled) topology, so text
  // and CSR loads of the same file agree and bit-identity is unaffected.
  const std::uint32_t diameter =
      cg.from_file ? double_sweep_diameter_estimate(g, 0) : exact_diameter(g);
  std::printf("graph %s: %s, D=%u%s\n", args.graph_spec.c_str(),
              g.summary().c_str(), diameter,
              cg.from_file ? " (double-sweep estimate)" : "");
  // Machine-greppable provenance line (tools/crash_harness.py keys on
  // "graph: csr" vs "graph: text" to assert fallback behavior).
  std::printf("graph: %s%s%s%s\n",
              cg.from_file ? (cg.lg.from_csr ? "csr" : "text") : "generator",
              cg.lg.note.empty() ? "" : " (", cg.lg.note.c_str(),
              cg.lg.note.empty() ? "" : ")");
  if (cg.from_file) print_ingest_stats(cg.lg.stats);

  // Commands run in the internal id space; --source/--root arrive in the
  // user's id space and are translated here (identity for generators).
  Args run = args;
  run.source = cg.lg.to_internal(args.source);
  run.root = cg.lg.to_internal(args.root);
  if (run.source == kInvalidNode || run.root == kInvalidNode) {
    usage("--source/--root out of range");
  }

  if (args.command == "walk") return cmd_walk(run, cg, diameter);
  if (args.command == "many") return cmd_many(run, cg, diameter);
  if (args.command == "serve" || args.command == "batch") {
    return cmd_serve(run, cg, diameter);
  }
  if (args.command == "rst") return cmd_rst(run, cg, diameter);
  if (args.command == "mixing") return cmd_mixing(run, cg, diameter);
  if (args.command == "expander") return cmd_expander(run, cg, diameter);
  if (args.command == "pagerank") return cmd_pagerank(run, cg, diameter);
  usage(("unknown command: " + args.command).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  // --trace arms the process-wide tracer exactly like DRW_TRACE=FILE
  // (which the obs static initializer has already honoured by this point).
  if (!args.trace_file.empty()) {
    obs::Tracer::instance().enable(args.trace_file);
  }
  // Bad inputs (malformed graph files, failed snapshot writes, injected
  // faults) surface as exceptions; report them as errors, not a terminate.
  int rc = 1;
  try {
    rc = run_command(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  if (obs::trace_enabled()) {
    obs::Tracer::instance().flush();
    std::printf("trace: %s (%llu events dropped)\n",
                obs::Tracer::instance().path().c_str(),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().dropped()));
  }
  return rc;
}
