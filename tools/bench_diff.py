#!/usr/bin/env python3
"""Diff two BENCH_<name>.json trajectory files.

Compares every numeric field present in both files and classifies the
movement:

  * wall-clock fields (``*_ms``, ``wall_ms_*``): relative change beyond the
    threshold is a REGRESSION (slower) or an improvement (faster);
  * exact counters (rounds, messages, determinism flags, ...): any change is
    reported -- these are correctness-relevant, not noise;
  * fields present on only one side are listed, since gates and knobs come
    and go across PRs.

Exit status: 0 when clean or in the default warn-only mode (CI runners are
too noisy for a hard wall-clock gate); 1 when regressions were found and
``--fail-on-regression`` was passed, or when a field named by
``--gate-field`` regressed (those gate unconditionally on matching
hardware -- the transmit-phase rearchitecture is protected by
``--gate-field t_widest_transmit_ms`` so a delivery-path regression
cannot hide behind an overall-wall improvement). When GITHUB_ACTIONS is
set, regressions are emitted as ``::warning::`` annotations so they
surface on the workflow summary without failing the build.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]
                      [--fail-on-regression] [--gate-field FIELD ...]
"""

import argparse
import fnmatch
import json
import math
import os
import sys

# Fields whose change is expected run-to-run and never worth reporting.
IGNORED = {"seed"}
# Exact fields that describe the measuring host, not the measured code.
HOST_FIELDS = {"hw_threads", "sweep_skipped_hw1", "dispatch_grain",
               "steal_chunk"}
# Wall-clock families that are informational by default: ingestion timings
# (ingest_*, csr_*) depend on page-cache and filesystem state far more than
# on the measured code, so they never regress a diff unless explicitly
# promoted with --gate-field. The hard ingest gates (bulk >= 3x per-line,
# mmap >= 5x re-parse) live inside bench_ingest itself where they compare
# routes within ONE run.
INFORMATIONAL_PREFIXES = ("ingest_", "csr_")


def is_wall_field(key: str) -> bool:
    return key.endswith("_ms") or "wall_ms" in key


def is_informational_field(key: str) -> bool:
    return key.startswith(INFORMATIONAL_PREFIXES)


def is_gated_field(key: str, gate_fields) -> bool:
    """--gate-field values are fnmatch globs, so one flag can cover a
    field family (``lat_*_p99_ms`` gates every per-class serving tail
    latency the serve bench emits). A plain name matches itself."""
    return any(fnmatch.fnmatchcase(key, pat) for pat in gate_fields)


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a flat JSON object")
    return data


def annotate(message: str) -> None:
    print(message)
    if os.environ.get("GITHUB_ACTIONS"):
        print(f"::warning::{message}")


def run_diff(args: argparse.Namespace) -> int:
    if not os.path.exists(args.current):
        annotate(f"bench_diff: {args.current} missing (bench did not run?)")
        return 0
    base = load(args.baseline)
    cur = load(args.current)

    # A baseline captured on a different host shape (e.g. the committed
    # 1-core dev-container numbers vs a 4-vCPU runner) makes wall-clock
    # comparisons meaningless: report them informationally, but do not
    # annotate or fail until the baseline is refreshed on matching hardware.
    same_host = base.get("hw_threads") == cur.get("hw_threads")

    gate_fields = set(args.gate_field or [])
    regressions = []
    gated_regressions = []
    improvements = []
    moved = []
    counter_changes = []
    shared = [k for k in base if k in cur and k not in IGNORED]
    for key in shared:
        b, c = base[key], cur[key]
        if not (isinstance(b, (int, float)) and isinstance(c, (int, float))):
            if b != c:
                counter_changes.append(f"{key}: {b!r} -> {c!r}")
            continue
        if is_wall_field(key):
            if b <= 0 or math.isnan(b) or math.isnan(c):
                continue
            rel = (c - b) / b
            line = f"{key}: {b:.6g} -> {c:.6g} ms ({rel:+.1%})"
            if rel > args.threshold:
                if is_gated_field(key, gate_fields):
                    gated_regressions.append(line)
                elif is_informational_field(key):
                    moved.append(f"{line} (io-noisy family, informational)")
                else:
                    regressions.append(line)
            elif rel < -args.threshold:
                improvements.append(line)
        elif key in HOST_FIELDS:
            if b != c:
                counter_changes.append(
                    f"{key}: {b!r} -> {c!r} (host/knob difference -- "
                    "wall-clock deltas may be meaningless)")
        elif key.endswith("steals"):
            # Which worker steals which chunk is scheduling-dependent (it
            # is explicitly outside the determinism contract), so steal
            # counts move every multi-threaded run; informational only.
            if b != c:
                moved.append(f"{key}: {b!r} -> {c!r}")
        elif isinstance(b, float) or isinstance(c, float):
            # Measured ratios (speedups, improvements, hit rates) jitter
            # run to run; threshold them like wall fields but keep them
            # informational -- the gates in the benches themselves decide
            # pass/fail for these.
            if b != 0 and abs(c - b) / abs(b) > args.threshold:
                moved.append(f"{key}: {b:.6g} -> {c:.6g}")
        elif b != c:
            counter_changes.append(f"{key}: {b!r} -> {c!r}")

    only_base = sorted(k for k in base if k not in cur)
    only_cur = sorted(k for k in cur if k not in base)

    print(f"bench_diff: {args.baseline} vs {args.current} "
          f"({len(shared)} shared fields, threshold {args.threshold:.0%})")
    if not same_host:
        print("  NOTE: hw_threads differs between baseline and current -- "
              "wall-clock deltas reported informationally only; refresh "
              "the baseline on matching hardware to re-arm the gate")
    for line in counter_changes:
        print(f"  counter  {line}")
    for line in moved:
        print(f"  moved    {line}")
    for line in improvements:
        print(f"  faster   {line}")
    for line in regressions:
        if same_host:
            annotate(f"  REGRESSION {line}")
        else:
            print(f"  slower   {line}")
    for line in gated_regressions:
        if same_host:
            annotate(f"  GATED REGRESSION {line}")
        else:
            print(f"  slower   {line} (gated field, cross-host: not "
                  "enforced)")
    if only_base:
        print(f"  removed fields: {', '.join(only_base)}")
    if only_cur:
        print(f"  new fields: {', '.join(only_cur)}")
    if not (counter_changes or moved or improvements or regressions):
        print("  no movement beyond threshold")

    if gated_regressions and same_host:
        return 1
    if regressions and same_host and args.fail_on_regression:
        return 1
    return 0


def self_test() -> int:
    """Unit-ish checks invocable from ci.sh (--self-test).

    Guards the contracts other tooling relies on: unknown keys never fail
    the diff (bench JSON grows obs_* fields across PRs), wall regressions
    gate only with --fail-on-regression on matching hardware, and
    non-numeric fields diff without crashing.
    """
    import contextlib
    import io
    import tempfile

    def diff(base: dict, cur: dict, fail_on_regression: bool = False,
             threshold: float = 0.10, gate_field=None):
        with tempfile.TemporaryDirectory() as tmp:
            b_path = os.path.join(tmp, "base.json")
            c_path = os.path.join(tmp, "cur.json")
            with open(b_path, "w", encoding="utf-8") as fh:
                json.dump(base, fh)
            with open(c_path, "w", encoding="utf-8") as fh:
                json.dump(cur, fh)
            args = argparse.Namespace(
                baseline=b_path, current=c_path, threshold=threshold,
                fail_on_regression=fail_on_regression,
                gate_field=gate_field or [])
            out = io.StringIO()
            github = os.environ.pop("GITHUB_ACTIONS", None)
            try:
                with contextlib.redirect_stdout(out):
                    code = run_diff(args)
            finally:
                if github is not None:
                    os.environ["GITHUB_ACTIONS"] = github
            return code, out.getvalue()

    checks = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append(ok)
        print(f"  {'ok' if ok else 'FAIL'}  {name}"
              f"{'' if ok else ' -- ' + detail}")

    base = {"hw_threads": 4, "wall_ms_t1": 100.0, "rounds": 7}

    # New (e.g. obs_*) keys on the current side must never fail the diff.
    code, out = diff(base, {**base, "obs_round_wall_us_p99": 512,
                            "obs_steals": 3},
                     fail_on_regression=True)
    check("unknown new keys pass", code == 0 and "new fields" in out,
          f"code={code}")

    # Removed keys are reported, not fatal.
    code, out = diff(base, {"hw_threads": 4, "wall_ms_t1": 100.0},
                     fail_on_regression=True)
    check("removed keys pass", code == 0 and "removed fields" in out,
          f"code={code}")

    # A same-host wall regression beyond threshold fails only when asked.
    slow = {**base, "wall_ms_t1": 150.0}
    code, _ = diff(base, slow, fail_on_regression=True)
    check("wall regression gates with --fail-on-regression", code == 1,
          f"code={code}")
    code, _ = diff(base, slow, fail_on_regression=False)
    check("wall regression warns by default", code == 0, f"code={code}")

    # Cross-host wall deltas are informational even when gating.
    code, _ = diff(base, {**slow, "hw_threads": 8}, fail_on_regression=True)
    check("cross-host wall deltas never gate", code == 0, f"code={code}")

    # Exact counter movement is reported; non-numeric values do not crash.
    code, out = diff(base, {**base, "rounds": 8, "mode": "mux"})
    check("counter changes reported", code == 0 and "rounds: 7 -> 8" in out,
          f"code={code}")
    code, out = diff({**base, "mode": "serial"}, {**base, "mode": "mux"})
    check("non-numeric fields diff cleanly",
          code == 0 and "'serial' -> 'mux'" in out, f"code={code}")

    # Steal counts are scheduling noise: moved, never a regression.
    code, out = diff({**base, "t8_steals": 10}, {**base, "t8_steals": 99},
                     fail_on_regression=True)
    check("steal counts informational", code == 0 and "moved" in out,
          f"code={code}")

    # A --gate-field regression fails even without --fail-on-regression:
    # the transmit-phase gate must not hide behind warn-only mode.
    phase_base = {**base, "t_widest_transmit_ms": 100.0}
    phase_slow = {**phase_base, "t_widest_transmit_ms": 150.0}
    code, out = diff(phase_base, phase_slow,
                     gate_field=["t_widest_transmit_ms"])
    check("gate-field regression fails warn-only diffs",
          code == 1 and "GATED REGRESSION" in out, f"code={code}")

    # Other fields regressing do not trip a gate aimed elsewhere.
    code, _ = diff(phase_base, {**phase_base, "wall_ms_t1": 150.0},
                   gate_field=["t_widest_transmit_ms"])
    check("gate-field ignores other regressions", code == 0,
          f"code={code}")

    # Gated improvements and within-threshold moves pass.
    code, _ = diff(phase_base, {**phase_base, "t_widest_transmit_ms": 60.0},
                   gate_field=["t_widest_transmit_ms"])
    check("gate-field improvement passes", code == 0, f"code={code}")

    # Cross-host gated deltas stay informational like everything else.
    code, _ = diff(phase_base, {**phase_slow, "hw_threads": 8},
                   gate_field=["t_widest_transmit_ms"])
    check("gate-field never gates cross-host", code == 0, f"code={code}")

    # --gate-field is an fnmatch glob: one pattern covers the whole
    # per-class latency family the serve bench emits...
    lat_base = {**base, "lat_light_p99_ms": 10.0, "lat_flood_p99_ms": 40.0,
                "lat_light_p50_ms": 5.0}
    code, out = diff(lat_base, {**lat_base, "lat_flood_p99_ms": 60.0},
                     gate_field=["lat_*_p99_ms"])
    check("gate-field glob matches its field family",
          code == 1 and "GATED REGRESSION" in out, f"code={code}")

    # ...without capturing fields outside the glob (a p50 regression is an
    # ordinary warn-only wall delta).
    code, _ = diff(lat_base, {**lat_base, "lat_light_p50_ms": 9.0},
                   gate_field=["lat_*_p99_ms"])
    check("gate-field glob ignores non-matching keys", code == 0,
          f"code={code}")

    # Ingestion wall fields (ingest_*/csr_*) are IO-noisy: informational
    # even under --fail-on-regression...
    ingest_base = {**base, "ingest_bulk_t1_ms": 10.0, "csr_mmap_start_ms": 1.0}
    ingest_slow = {**ingest_base, "ingest_bulk_t1_ms": 20.0,
                   "csr_mmap_start_ms": 3.0}
    code, out = diff(ingest_base, ingest_slow, fail_on_regression=True)
    check("ingest/csr wall fields informational by default",
          code == 0 and "io-noisy" in out, f"code={code}")

    # ...but still promotable to a hard gate with --gate-field.
    code, out = diff(ingest_base, ingest_slow,
                     gate_field=["csr_mmap_start_ms"])
    check("ingest/csr fields gate when promoted",
          code == 1 and "GATED REGRESSION" in out, f"code={code}")

    if all(checks):
        print(f"bench_diff --self-test: OK ({len(checks)} checks)")
        return 0
    print("bench_diff --self-test: FAILED")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<name>.json files")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative wall-clock change that counts as a "
                             "regression (default 0.10 = 10%%)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 on wall-clock regressions (default: "
                             "warn only -- shared CI runners are noisy)")
    parser.add_argument("--gate-field", action="append", default=[],
                        metavar="FIELD",
                        help="wall-clock field that gates unconditionally "
                             "on matching hardware (repeatable; fnmatch "
                             "globs cover field families), e.g. "
                             "t_widest_transmit_ms or 'lat_*_p99_ms'")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in contract checks and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required (or --self-test)")
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main())
