#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, run the full test suite; optionally the
# same under ASan/UBSan (DRW_SANITIZE=1) or TSan (DRW_SANITIZE=tsan, which
# also forces a multi-threaded executor so races in the parallel round
# engine are actually exercised) and the serving-layer acceptance bench
# (DRW_BENCH=1).
#
#   tools/ci.sh                    # plain build + ctest
#   DRW_SANITIZE=1 tools/ci.sh     # ASan/UBSan build + ctest
#   DRW_SANITIZE=tsan tools/ci.sh  # TSan build + ctest at DRW_THREADS=4
#   DRW_BENCH=1 tools/ci.sh        # also run bench_service acceptance gate
set -euo pipefail
cd "$(dirname "$0")/.."

# One build tree per sanitize mode: a shared tree would cache the previous
# mode's DRW_SANITIZE/DRW_TSAN options and trip their mutual-exclusion check.
if [[ "${DRW_SANITIZE:-0}" == "tsan" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-ci-tsan}
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_TSAN=ON -DDRW_SANITIZE=OFF)
  # Run every test on the parallel executor path, regardless of host width,
  # and drop the inline-dispatch grain to 1 so even small-graph tests run
  # on_round on concurrent workers under the race checker.
  export DRW_THREADS=${DRW_THREADS:-4}
  export DRW_PARALLEL_GRAIN=${DRW_PARALLEL_GRAIN:-1}
elif [[ "${DRW_SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-ci-asan}
  # Debug (no NDEBUG) so the simulator's internal invariant asserts -- e.g.
  # the post-run empty-arena check -- actually execute in at least one leg.
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_SANITIZE=ON -DDRW_TSAN=OFF
              -DCMAKE_BUILD_TYPE=Debug)
else
  BUILD_DIR=${BUILD_DIR:-build-ci}
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_SANITIZE=OFF -DDRW_TSAN=OFF)
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${DRW_BENCH:-0}" == "1" ]]; then
  # bench_service exits non-zero if the serviced workload fails to beat
  # per-request serving, never exercises inventory replenishment, or (on
  # hosts with >= 8 hardware threads) the 8-thread executor fails to hit a
  # 2x wall-clock speedup on the n=10^4 parallel workload.
  "$BUILD_DIR/bench_service" --benchmark_min_time=1x
fi
echo "ci: OK"
