#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, run the full test suite; optionally the
# same under ASan/UBSan (DRW_SANITIZE=1) and the serving-layer acceptance
# bench (DRW_BENCH=1).
#
#   tools/ci.sh                 # plain build + ctest
#   DRW_SANITIZE=1 tools/ci.sh  # sanitizer build + ctest
#   DRW_BENCH=1 tools/ci.sh     # also run bench_service acceptance gate
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
if [[ "${DRW_SANITIZE:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DDRW_SANITIZE=ON)
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${DRW_BENCH:-0}" == "1" ]]; then
  # bench_service exits non-zero if the serviced workload fails to beat
  # per-request serving or never exercises inventory replenishment.
  "$BUILD_DIR/bench_service" --benchmark_min_time=1x
fi
echo "ci: OK"
