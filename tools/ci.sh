#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, run the full test suite; optionally the
# same under ASan/UBSan (DRW_SANITIZE=1) or TSan (DRW_SANITIZE=tsan, which
# also forces a multi-threaded executor so races in the parallel round
# engine are actually exercised) and the serving-layer acceptance benches
# (DRW_BENCH=1).
#
#   tools/ci.sh                    # plain build + ctest
#   DRW_SANITIZE=1 tools/ci.sh     # ASan/UBSan build + ctest
#   DRW_SANITIZE=tsan tools/ci.sh  # TSan build + ctest at DRW_THREADS=4
#   DRW_BENCH=1 tools/ci.sh        # also run the bench acceptance gates
#   DRW_CXX=clang++ tools/ci.sh    # compiler override (the CI matrix sets
#                                  # this per leg; build dirs get a suffix)
#   DRW_LAUNCHER=ccache tools/ci.sh  # compiler launcher (ccache in CI)
set -euo pipefail
cd "$(dirname "$0")/.."

# Compiler / launcher overrides for the CI {gcc, clang} x ccache matrix.
CMAKE_TOOLCHAIN_ARGS=()
DIR_SUFFIX=""
if [[ -n "${DRW_CXX:-}" ]]; then
  CMAKE_TOOLCHAIN_ARGS+=(-DCMAKE_CXX_COMPILER="${DRW_CXX}")
  DIR_SUFFIX="-$(basename "${DRW_CXX}")"
fi
if [[ -n "${DRW_LAUNCHER:-}" ]]; then
  CMAKE_TOOLCHAIN_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER="${DRW_LAUNCHER}")
fi

# One build tree per (sanitize mode, compiler): a shared tree would cache
# the previous mode's DRW_SANITIZE/DRW_TSAN options and trip their
# mutual-exclusion check.
if [[ "${DRW_SANITIZE:-0}" == "tsan" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-ci-tsan${DIR_SUFFIX}}
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_TSAN=ON -DDRW_SANITIZE=OFF)
  # Run every test on the parallel executor path, regardless of host width,
  # drop the inline-dispatch grain to 1 so even small-graph tests run
  # on_round on concurrent workers under the race checker, and force a
  # steal chunk of 1 so every active node is a separately stealable chunk
  # -- the maximum-interleaving configuration for the work-stealing
  # compute phase.
  export DRW_THREADS=${DRW_THREADS:-4}
  export DRW_PARALLEL_GRAIN=${DRW_PARALLEL_GRAIN:-1}
  export DRW_STEAL_CHUNK=${DRW_STEAL_CHUNK:-1}
elif [[ "${DRW_SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-ci-asan${DIR_SUFFIX}}
  # Debug (no NDEBUG) so the simulator's internal invariant asserts -- e.g.
  # the post-run empty-arena check -- actually execute in at least one leg.
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_SANITIZE=ON -DDRW_TSAN=OFF
              -DCMAKE_BUILD_TYPE=Debug)
else
  BUILD_DIR=${BUILD_DIR:-build-ci${DIR_SUFFIX}}
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DDRW_SANITIZE=OFF -DDRW_TSAN=OFF)
fi

cmake "${CMAKE_ARGS[@]}" "${CMAKE_TOOLCHAIN_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
# --timeout backs up the per-test TIMEOUT properties (tests/CMakeLists.txt)
# so a hung protocol run -- e.g. a mux lane that never quiesces -- fails
# the leg in minutes instead of eating the 6-hour job limit.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      --timeout "${DRW_CTEST_TIMEOUT:-900}"

if [[ "${DRW_SANITIZE:-0}" == "tsan" ]]; then
  # The suite above ran with the default edge-weighted partition; re-run
  # the executor determinism and mux lane-isolation tests under the legacy
  # node-count partition so stealing races are exercised under BOTH shard
  # geometries (the skewed families move shard boundaries substantially
  # between the two).
  DRW_PARTITION=nodes "$BUILD_DIR/test_determinism"
  DRW_PARTITION=nodes "$BUILD_DIR/test_mux"
  # Re-run the observability suite with tracing + stats armed process-wide:
  # concurrent workers write their per-thread trace rings and the atomic
  # registry histograms while TSan watches the executor underneath.
  DRW_TRACE="$BUILD_DIR/trace_obs_tsan.json" DRW_STATS=1 \
      "$BUILD_DIR/test_obs"
fi

if [[ "${DRW_SANITIZE:-0}" == "1" ]]; then
  # Re-run the resilience suite with failpoints armed at a site the tests
  # then re-arm themselves: the arm/disarm registry, the snapshot
  # encode/decode round-trips and the torn-file readers all execute under
  # ASan/UBSan with the env-arming startup path on the tested path too.
  DRW_FAILPOINTS="ci.unused@1:throw" "$BUILD_DIR/test_resil"
fi

if [[ "${DRW_BENCH:-0}" == "1" ]]; then
  # bench_service exits non-zero if the serviced workload fails to beat
  # per-request serving, never exercises inventory replenishment, or the
  # executor misses its speedup gate (>=2x@8t on >=8-thread hosts, the
  # calibrated 2-thread floor on 4..7-thread hosts).
  "$BUILD_DIR/bench_service" --benchmark_min_time=1x
  # bench_skew gates the load-balanced executor: edge-weighted shards +
  # work-stealing must beat the node-count partition >=1.5x at 8 threads
  # on a degree-skewed family (same self-skip ladder as above), with
  # results bit-identical under every partition/width/chunk config.
  "$BUILD_DIR/bench_skew"
  # bench_mux gates concurrent stitching: mux-of-8 stitch batches must cut
  # total stitch rounds >=2x (deterministic, host-independent) and beat
  # sequential stitching >=1.5x wall-clock at 8 threads (same self-skip
  # ladder), with mux results bit-identical to the serial schedule.
  "$BUILD_DIR/bench_mux"
  # bench_arena gates the transmit fast path's packing losslessness
  # (PackedToken round trips bit-identically, the classifier binds on the
  # 32-bit payload boundary) and records the arena / generic / SoA
  # per-message costs into BENCH_arena.json for the trajectory diff.
  "$BUILD_DIR/bench_arena" --benchmark_min_time=1x
  # bench_serve_latency gates the admission front end: under a hot-key
  # flood, deficit-round-robin admission must hold the light class's p99
  # latency within 2x of its no-flood baseline while the FIFO baseline
  # policy measurably violates it (both are same-process latency RATIOS,
  # so the gate is machine-speed invariant). Per-class percentiles land in
  # BENCH_serve_latency.json; ci.yml diffs the lat_*_p99_ms family against
  # the committed baseline via a --gate-field glob.
  "$BUILD_DIR/bench_serve_latency" --benchmark_min_time=1x
  # The bench-diff contract the trajectory step depends on (new obs_* keys
  # must never fail a diff, steal counts stay informational, gated fields
  # fail even warn-only diffs, glob gate-fields match families, ...).
  python3 tools/bench_diff.py --self-test
  # Observability gate: a traced single-threaded serve workload must export
  # a Perfetto-loadable trace whose per-shard transmit spans reconcile with
  # RunStats.transmit_ms (tools/validate_trace.py, 10% tolerance), plus a
  # machine-readable stats JSON. Both files are uploaded as CI artifacts.
  DRW_TRACE=trace_serve.json "$BUILD_DIR/drw" serve \
      --graph=regular:2000,4 --seed=7 --k=24 --l=2048 --threads=1 --mux=4 \
      --batch-size=8 --stats-json=stats_serve.json
  python3 tools/validate_trace.py trace_serve.json
  # Resilience gate: kill -9 a serving subprocess inside the snapshot-commit
  # window and demand a warm restart, plus CRC rejection of bit-flipped and
  # torn snapshots, a smoke of every DRW_FAILPOINTS action
  # (throw/abort/short_write/delay_ms) against the real CLI, and a kill -9
  # inside the csr.commit window of `drw convert` (partial caches are
  # rejected and serving degrades to the text sibling).
  python3 tools/crash_harness.py "$BUILD_DIR/drw"
  # Live-service smoke: boot `drw serve --listen` on an ephemeral port,
  # race a mixed-class client against a 40-request flood via `drw
  # request`, SIGTERM it, and demand the admission-log replay reproduce
  # every response byte for byte (artifacts land in
  # server_smoke_artifacts/ for upload on failure).
  python3 tools/server_smoke.py "$BUILD_DIR/drw"
  # Ingestion gate: every route (legacy per-line, bulk at t=1/2/8, converted
  # + mmap'd CSR) must carry the same graph, the bulk parser must beat the
  # per-line reference >=3x at t=1, and a warm mmap reload must beat the
  # text re-parse >=5x at serving start. Wall numbers land in
  # BENCH_ingest.json for the trajectory diff.
  "$BUILD_DIR/bench_ingest" --benchmark_min_time=1x
  # Real-graph round trip: convert a SNAP-class edge list and demand
  # bit-identical serving from the text file and the mmap'd CSR. ci.yml
  # caches the download under data/ (actions/cache); offline hosts fall
  # back to a deterministic synthetic edge list so the gate always runs.
  SNAP_TXT="data/facebook_combined.txt"
  if [[ ! -f "$SNAP_TXT" ]]; then
    mkdir -p data
    if ! curl -fsSL --max-time 120 -o "$SNAP_TXT.gz" \
         https://snap.stanford.edu/data/facebook_combined.txt.gz \
         2>/dev/null || ! gunzip -f "$SNAP_TXT.gz" 2>/dev/null; then
      rm -f "$SNAP_TXT.gz"
      echo "ci: SNAP download unavailable; generating a synthetic edge list"
      python3 - "$SNAP_TXT" <<'PYEOF'
import random, sys
random.seed(4242)
n = 4000
edges = {(i, (i + 1) % n) for i in range(n)}
while len(edges) < 40000:
    a, b = random.randrange(n), random.randrange(n)
    if a != b:
        edges.add((min(a, b), max(a, b)))
with open(sys.argv[1], "w") as f:
    f.write(f"# nodes {n}\n")
    for a, b in sorted(edges):
        f.write(f"{a} {b}\n")
PYEOF
    fi
  fi
  "$BUILD_DIR/drw" convert "$SNAP_TXT" "$SNAP_TXT.csr"
  "$BUILD_DIR/drw" serve --graph="file:$SNAP_TXT" --seed=7 --k=8 --l=512 \
      --batch-size=4 > serve_text.out
  "$BUILD_DIR/drw" serve --graph="$SNAP_TXT.csr" --seed=7 --k=8 --l=512 \
      --batch-size=4 > serve_csr.out
  grep -q '^graph: csr' serve_csr.out
  grep -q '^graph: text' serve_text.out
  # Identical serving modulo provenance: drop the source-describing lines
  # (graph spec banner, provenance, parse stats) and wall-clock executor
  # lines, then demand byte equality of every result and counter.
  filter() { grep -v -e '^graph' -e '^ingest:' -e '^executor:' "$1"; }
  diff <(filter serve_text.out) <(filter serve_csr.out)
  echo "ci: text vs csr serving round trip identical"
fi
echo "ci: OK"
