#!/usr/bin/env python3
"""Live-service smoke for `drw serve --listen` (the always-on TCP server).

Boots a real server process on an ephemeral port, drives it with two
concurrent `drw request` clients -- a light mixed-class workload (some
requests recording full paths) racing a 40-request hot-key flood -- then
stops it with SIGTERM and asserts the serving determinism contract:

  * every client response carries a unique server-assigned admission index;
  * the admission log + `# batch` markers the server wrote replay through
    `drw serve --requests=LOG --print-results` (same graph, same seed,
    fresh process) to the BYTE-IDENTICAL `result[...]` lines the clients
    printed -- destinations, paths, statuses, ordering;
  * SIGTERM produces the `shutdown: clean | ...` summary with zero
    rejections (nothing in this workload should bounce).

Everything the run produced (server stdout, both client transcripts, the
admission log, the replay output) is left under ./server_smoke_artifacts/
so CI can upload it when a check fails.

Exit status 0 when every check passes, 1 otherwise.

Usage: tools/server_smoke.py BUILD_DIR/drw
"""

import os
import shutil
import signal
import subprocess
import sys
import time

GRAPH_ARGS = ["--graph=torus:8x8", "--seed=7", "--paths"]

# Mixed light workload: in-range sources on the 64-node torus, two requests
# recording full trajectories.
LIGHT_REQUESTS = """\
0 32 2 1
5 48 1
9 24 2
17 16 1
63 40 1 1
"""

failures = []


def check(ok: bool, what: str) -> None:
    print(f"  {'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        failures.append(what)


def result_lines(text: str) -> list:
    return [ln for ln in text.splitlines() if ln.startswith("result[")]


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    drw = os.path.abspath(sys.argv[1])
    if not os.access(drw, os.X_OK):
        print(f"server_smoke: not executable: {drw}")
        return 2

    work = os.path.abspath("server_smoke_artifacts")
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)
    adm_log = os.path.join(work, "admission.log")
    light_req = os.path.join(work, "light.req")
    flood_req = os.path.join(work, "flood.req")
    with open(light_req, "w") as f:
        f.write(LIGHT_REQUESTS)
    with open(flood_req, "w") as f:
        for _ in range(40):
            f.write("7 256 1\n")

    env = dict(os.environ)
    env.pop("DRW_FAILPOINTS", None)

    print("server_smoke: booting the live server")
    server = subprocess.Popen(
        [drw, "serve"] + GRAPH_ARGS +
        ["--listen=127.0.0.1:0", f"--admission-log={adm_log}"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    server_out = []
    try:
        port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            server_out.append(line)
            if line.startswith("listening: "):
                port = line.strip().rsplit(":", 1)[-1]
                break
        check(port is not None, "server prints its listening: HOST:PORT line")
        if port is None:
            raise RuntimeError("no listening line")

        # Flood first so its backlog is queued when the light class arrives;
        # DRR admission must still serve the light requests promptly (the
        # bench gates the latency ratio; here we only need full, correct
        # responses for both classes).
        flood = subprocess.Popen(
            [drw, "request", f"--connect=127.0.0.1:{port}",
             f"--requests={flood_req}", "--class=flood"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        light = subprocess.run(
            [drw, "request", f"--connect=127.0.0.1:{port}",
             f"--requests={light_req}", "--class=light"],
            env=env, capture_output=True, text=True, timeout=120)
        flood_out, _ = flood.communicate(timeout=120)
        check(light.returncode == 0, "light client exits 0")
        check(flood.returncode == 0, "flood client exits 0")
        check("responses: 5 admitted, 0 rejected" in light.stdout,
              "light client: all 5 requests admitted")
        check("responses: 40 admitted, 0 rejected" in flood_out,
              "flood client: all 40 requests admitted")
        check("result[" in light.stdout and "] path:" in light.stdout,
              "light client received recorded paths")

        server.send_signal(signal.SIGTERM)
        rest, _ = server.communicate(timeout=60)
        server_out.append(rest)
        check(server.returncode == 0, "SIGTERM: server exits 0")
        shutdown = [ln for ln in rest.splitlines()
                    if ln.startswith("shutdown: clean")]
        check(bool(shutdown), "server prints the clean-shutdown summary")
        if shutdown:
            check("requests=45" in shutdown[0] and "admitted=45" in shutdown[0]
                  and "queue_full=0" in shutdown[0],
                  f"shutdown summary counts 45/45 admitted ({shutdown[0]})")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
        with open(os.path.join(work, "server.out"), "w") as f:
            f.writelines(server_out)
        with open(os.path.join(work, "light.out"), "w") as f:
            f.write(light.stdout if 'light' in dir() else "")
        with open(os.path.join(work, "flood.out"), "w") as f:
            f.write(flood_out if 'flood_out' in dir() else "")

    # The determinism contract: replaying the admission log through a fresh
    # offline process reproduces every served line byte for byte.
    print("server_smoke: replaying the admission log")
    check(os.path.exists(adm_log), "server wrote the admission log")
    replay = subprocess.run(
        [drw, "serve"] + GRAPH_ARGS +
        [f"--requests={adm_log}", "--print-results"],
        env=env, capture_output=True, text=True, timeout=120)
    with open(os.path.join(work, "replay.out"), "w") as f:
        f.write(replay.stdout)
    check(replay.returncode == 0, "replay exits 0")

    served = sorted(result_lines(light.stdout) + result_lines(flood_out))
    replayed = sorted(result_lines(replay.stdout))
    check(len(served) > 0, "clients printed result lines")
    check(served == replayed,
          f"replay is byte-identical to the live responses "
          f"({len(served)} live vs {len(replayed)} replayed lines)")
    if served != replayed:
        for live, rep in zip(served, replayed):
            if live != rep:
                print(f"    first divergence:\n      live:   {live}\n"
                      f"      replay: {rep}")
                break

    # One `result[IDX] source=...` header per request (`result[IDX] path:`
    # continuation lines reuse the index of their request).
    indices = sorted(int(ln.split("]")[0][len("result["):])
                     for ln in served if " source=" in ln)
    check(indices == list(range(len(indices))) and len(indices) == 45,
          "admission indices are a dense 0..44 permutation")

    if failures:
        print(f"server_smoke: FAIL ({len(failures)} check(s)); artifacts in "
              f"{work}")
        return 1
    print(f"server_smoke: PASS ({len(served)} responses byte-identical "
          f"to replay)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
