#!/usr/bin/env python3
"""Crash-recovery harness for the drw serving snapshot (drw::resil).

Exercises the failure modes a unit test cannot: a real process killed with
SIGKILL in the middle of committing a snapshot, then restarted.

Scenarios (each against a scratch directory):

  1. kill -9 mid-commit: a serving process is killed inside the
     snapshot.commit window (tmp fsynced, rename pending -- held open with a
     delay_ms failpoint). The previous *complete* snapshot must survive, and
     a restart with --restore must report a warm restart.
  2. bit flip: one flipped payload byte must fail the CRC -> cold start.
  3. torn write: a snapshot.write short_write arming truncates the payload
     after the header promised the full size -> cold start.
  4. failpoint action smoke: throw kills the run with the injected fault on
     stderr, abort dies by signal, delay_ms completes normally, and a
     malformed DRW_FAILPOINTS spec refuses to start.
  5. kill -9 mid-convert: a `drw convert` killed inside the csr.commit
     window leaves only the stray .tmp (no half-renamed cache); serving
     --graph=X.csr then degrades to the text sibling (the `graph: text`
     provenance line). A csr.write short_write tears the payload instead --
     the renamed file must fail the CRC and degrade identically, and a
     subsequent clean convert must serve from the CSR (`graph: csr`).
  6. kill -9 of the LISTENING server mid-batch: a `drw serve --listen`
     process snapshots after its first served batch, stalls inside the
     second (service.batch delay failpoint, with a live `drw request`
     client mid-flight), and is SIGKILLed there. An offline restart with
     --restore must report a warm restart from the surviving snapshot.

Exit status 0 when every scenario passes, 1 otherwise.

Usage: tools/crash_harness.py BUILD_DIR/drw
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

# Long walks on a small regular graph: lambda lands well under l, so the
# engine prepares a real short-walk inventory (a naive-mode engine has no
# state worth snapshotting and maybe_snapshot correctly skips it).
REQUESTS = """\
0 2048 2
5 2048 1
9 1500 2
17 2048 1
23 1800 2
31 2048 1
40 1500 2
44 2048 1
50 1800 2
57 2048 1
60 1500 2
63 2048 1
"""

failures = []


def check(ok: bool, what: str) -> None:
    print(f"  {'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        failures.append(what)


def serve_args(work: str) -> list:
    reqs = os.path.join(work, "reqs.txt")
    if not os.path.exists(reqs):
        with open(reqs, "w") as f:
            f.write(REQUESTS)
    return ["serve", "--graph=regular:64,4", "--seed=7",
            f"--requests={reqs}", "--batch-size=3", "--threads=2"]


def run(drw, work, extra, failpoints=None, timeout=120):
    env = dict(os.environ)
    env.pop("DRW_FAILPOINTS", None)
    if failpoints is not None:
        env["DRW_FAILPOINTS"] = failpoints
    return subprocess.run([drw] + serve_args(work) + extra, env=env,
                          capture_output=True, text=True, timeout=timeout)


def scenario_kill_mid_commit(drw: str, work: str) -> None:
    print("scenario 1: kill -9 inside the snapshot.commit window")
    snap = os.path.join(work, "snap.bin")
    tmp = snap + ".tmp"
    env = dict(os.environ)
    # Snapshot 1 (after batch 1) commits normally; snapshot 2 stalls for 30s
    # between fsync(tmp) and rename -- the widest torn-state window there is.
    env["DRW_FAILPOINTS"] = "snapshot.commit@2:delay_ms=30000"
    proc = subprocess.Popen([drw] + serve_args(work) + [f"--snapshot={snap}"],
                            env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline:
            # The stall holds the .tmp in existence; the real snapshot from
            # batch 1 is already in place.
            if os.path.exists(tmp) and os.path.exists(snap):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        check(proc.poll() is None, "process still serving inside the window")
        check(os.path.exists(snap), "previous complete snapshot in place")
        check(os.path.exists(tmp), "pending .tmp held open by the stall")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    check(os.path.exists(snap), "snapshot survives the SIGKILL")
    restart = run(drw, work, [f"--snapshot={snap}", "--restore"])
    check(restart.returncode == 0, "restart exits 0")
    check("snapshot: warm restart" in restart.stdout,
          "restart reports a warm restart")


def scenario_bit_flip(drw: str, work: str) -> None:
    print("scenario 2: flipped payload byte fails the CRC")
    snap = os.path.join(work, "snap.bin")
    with open(snap, "rb") as f:
        blob = bytearray(f.read())
    blob[48] ^= 0x20  # payload starts at byte 32
    with open(snap, "wb") as f:
        f.write(blob)
    restart = run(drw, work, [f"--snapshot={snap}", "--restore"])
    check(restart.returncode == 0, "cold start exits 0")
    check("snapshot: cold start" in restart.stdout,
          "corrupt snapshot reported as a cold start")
    check("checksum" in restart.stderr, "CRC named as the detection reason")


def scenario_short_write(drw: str, work: str) -> None:
    print("scenario 3: short_write torn snapshot fails validation")
    snap = os.path.join(work, "torn.bin")
    # 12 requests / batch-size 3 = 4 snapshot writes; tear the LAST one so
    # the torn file is what a restart finds (earlier good snapshots would
    # otherwise be overwritten on top of it).
    first = run(drw, work, [f"--snapshot={snap}"],
                failpoints="snapshot.write@4:short_write")
    check(first.returncode == 0, "serving survives the torn write")
    check(os.path.exists(snap), "torn snapshot renamed into place")
    restart = run(drw, work, [f"--snapshot={snap}", "--restore"])
    check(restart.returncode == 0, "cold start exits 0")
    check("snapshot: cold start" in restart.stdout,
          "torn snapshot reported as a cold start")


def scenario_action_smoke(drw: str, work: str) -> None:
    print("scenario 4: failpoint action smoke")
    thrown = run(drw, work, [], failpoints="service.batch@1:throw")
    check(thrown.returncode != 0, "throw action kills the run")
    check("injected fault at failpoint 'service.batch'" in thrown.stderr,
          "injected fault names its site on stderr")

    aborted = run(drw, work, [], failpoints="net.round.compute@1:abort")
    check(aborted.returncode < 0, "abort action dies by signal")
    check("aborting at failpoint 'net.round.compute'" in aborted.stderr,
          "abort names its site on stderr")

    delayed = run(drw, work, [], failpoints="service.batch@1:delay_ms=10")
    check(delayed.returncode == 0, "delay_ms action continues normally")
    check("served 12 requests" in delayed.stdout,
          "delayed run serves the full workload")

    malformed = run(drw, work, [], failpoints="not-a-spec")
    check(malformed.returncode != 0, "malformed spec refuses to start")
    check("bad DRW_FAILPOINTS" in malformed.stderr,
          "malformed spec diagnosed on stderr")


def graph_provenance(stdout: str) -> str:
    """The machine-greppable `graph: csr|text|generator` line drw prints."""
    for line in stdout.splitlines():
        if line.startswith("graph: "):
            return line[len("graph: "):].split(" ", 1)[0]
    return ""


def scenario_kill_mid_convert(drw: str, work: str) -> None:
    print("scenario 5: kill -9 mid-convert leaves a text-serving fallback")
    text = os.path.join(work, "ingest.txt")
    csr = text + ".csr"
    # A deterministic graph with >= 64 nodes so the serve REQUESTS above are
    # all in range: a 64-cycle plus chords (every node degree >= 2).
    with open(text, "w") as f:
        f.write("# nodes 64\n")
        for i in range(64):
            f.write(f"{i} {(i + 1) % 64}\n")
            f.write(f"{i} {(i + 7) % 64}\n")

    env = dict(os.environ)
    env["DRW_FAILPOINTS"] = "csr.commit@1:delay_ms=30000"
    proc = subprocess.Popen([drw, "convert", text, csr], env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60
        while time.time() < deadline:
            if os.path.exists(csr + ".tmp") or proc.poll() is not None:
                break
            time.sleep(0.02)
        check(proc.poll() is None, "convert stalled inside the commit window")
        check(os.path.exists(csr + ".tmp"), "pending .tmp fsynced in place")
        check(not os.path.exists(csr), "no half-renamed .csr ever visible")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    check(not os.path.exists(csr), "kill leaves only the stray .tmp")
    served = subprocess.run(
        [drw] + serve_args(work) + [f"--graph={csr}"],
        env={k: v for k, v in os.environ.items() if k != "DRW_FAILPOINTS"},
        capture_output=True, text=True, timeout=120)
    check(served.returncode == 0, "serve --graph=X.csr exits 0 after the kill")
    check(graph_provenance(served.stdout) == "text",
          "missing cache degrades to the text sibling (graph: text)")

    # Torn write: the renamed file exists but half the payload is missing;
    # validation must reject it and fall back identically.
    env["DRW_FAILPOINTS"] = "csr.write@1:short_write"
    torn = subprocess.run([drw, "convert", text, csr], env=env,
                          capture_output=True, text=True, timeout=120)
    check(torn.returncode == 0, "convert survives the torn write")
    check(os.path.exists(csr), "torn .csr renamed into place")
    served = subprocess.run(
        [drw] + serve_args(work) + [f"--graph={csr}"],
        env={k: v for k, v in os.environ.items() if k != "DRW_FAILPOINTS"},
        capture_output=True, text=True, timeout=120)
    check(served.returncode == 0, "serve exits 0 on the torn cache")
    check(graph_provenance(served.stdout) == "text",
          "torn cache degrades to the text sibling (graph: text)")

    # And a clean convert heals it: the next serve runs from the mmap.
    clean = subprocess.run([drw, "convert", text, csr],
                           env={k: v for k, v in os.environ.items()
                                if k != "DRW_FAILPOINTS"},
                           capture_output=True, text=True, timeout=120)
    check(clean.returncode == 0, "clean re-convert exits 0")
    served = subprocess.run(
        [drw] + serve_args(work) + [f"--graph={csr}"],
        env={k: v for k, v in os.environ.items() if k != "DRW_FAILPOINTS"},
        capture_output=True, text=True, timeout=120)
    check(served.returncode == 0, "serve exits 0 on the healed cache")
    check(graph_provenance(served.stdout) == "csr",
          "healed cache serves from the mmap (graph: csr)")


def scenario_kill_listening_server(drw: str, work: str) -> None:
    print("scenario 6: kill -9 of the listening server mid-batch")
    snap = os.path.join(work, "snap_listen.bin")
    reqs = os.path.join(work, "reqs.txt")
    serve_args(work)  # ensure reqs.txt exists
    env = dict(os.environ)
    # Interactive arrivals drain one request per batch: batch 1 serves and
    # snapshots normally, batch 2 stalls for 30s -- the kill lands with a
    # client request admitted and mid-serve.
    env["DRW_FAILPOINTS"] = "service.batch@2:delay_ms=30000"
    proc = subprocess.Popen(
        [drw, "serve", "--graph=regular:64,4", "--seed=7",
         "--listen=127.0.0.1:0", f"--snapshot={snap}"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    client = None
    try:
        port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()  # banner lines precede listening:
            if not line:
                break
            if line.startswith("listening: "):
                port = line.strip().rsplit(":", 1)[-1]
                break
        check(port is not None,
              "listening server prints its listening: line")
        client_env = dict(os.environ)
        client_env.pop("DRW_FAILPOINTS", None)
        client = subprocess.Popen(
            [drw, "request", f"--connect=127.0.0.1:{port}",
             f"--requests={reqs}"],
            env=client_env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        deadline = time.time() + 60
        while time.time() < deadline:
            if os.path.exists(snap) or proc.poll() is not None:
                break
            time.sleep(0.02)
        check(proc.poll() is None, "server alive inside the stalled batch")
        check(os.path.exists(snap), "batch-1 snapshot committed before kill")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        if client is not None:
            client.kill()
            client.wait()

    check(os.path.exists(snap), "snapshot survives the SIGKILL")
    restart = run(drw, work, [f"--snapshot={snap}", "--restore"])
    check(restart.returncode == 0, "offline restart exits 0")
    check("snapshot: warm restart" in restart.stdout,
          "restart after the listening-server kill reports a warm restart")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    drw = os.path.abspath(sys.argv[1])
    if not os.access(drw, os.X_OK):
        print(f"crash_harness: not executable: {drw}")
        return 2
    with tempfile.TemporaryDirectory(prefix="drw_crash_") as work:
        scenario_kill_mid_commit(drw, work)
        scenario_bit_flip(drw, work)    # corrupts scenario 1's snapshot
        scenario_short_write(drw, work)
        scenario_action_smoke(drw, work)
        scenario_kill_mid_convert(drw, work)
        scenario_kill_listening_server(drw, work)
    if failures:
        print(f"crash_harness: FAIL ({len(failures)} check(s))")
        return 1
    print("crash_harness: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
