#include "lowerbound/interval_set.hpp"

#include <stdexcept>

namespace drw::lowerbound {

Interval IntervalSet::insert(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("IntervalSet::insert: lo > hi");
  // Absorb every stored interval [a, b] with a <= hi and b >= lo.
  auto it = intervals_.upper_bound(hi);  // first with a > hi
  while (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second < lo) break;  // disjoint and strictly left of [lo, hi]
    lo = std::min(lo, prev->first);
    hi = std::max(hi, prev->second);
    it = intervals_.erase(prev);
  }
  intervals_.emplace(lo, hi);
  return Interval{lo, hi};
}

bool IntervalSet::covers(std::uint64_t lo, std::uint64_t hi) const {
  const auto f = find(lo);
  return f.found && f.interval.hi >= hi;
}

IntervalSet::Find IntervalSet::find(std::uint64_t point) const {
  auto it = intervals_.upper_bound(point);  // first with a > point
  if (it == intervals_.begin()) return {};
  --it;
  if (it->second < point) return {};
  return {true, Interval{it->first, it->second}};
}

std::vector<Interval> IntervalSet::to_vector() const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& [lo, hi] : intervals_) out.push_back(Interval{lo, hi});
  return out;
}

}  // namespace drw::lowerbound
