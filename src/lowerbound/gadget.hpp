// The lower-bound gadget G_n of Definition 3.3 (Figures 3 and 4) and the
// weighted reduction graph G'_n of Theorem 3.7.
//
// G_n = a path P = v_1 ... v_{n'} plus a balanced binary tree T with k'
// leaves u_1 ... u_{k'}, connected by edges (u_i, v_{j k' + i}) for every i
// and j. k' is the power of two with k'/2 <= 4k < k', where k =
// sqrt(l / log l) is the round lower bound being exhibited. The gadget has
// Theta(n) nodes and diameter O(log n), yet verifying that P is a path of
// length l requires Omega(k) rounds (Theorem 3.2).
//
// Breakpoints (proof of Lemma 3.4): the left subtree's leaves L cannot reach
// nodes v_{j k' + k'/2 + k + 1} within k free path-rounds, and symmetrically
// for the right subtree; there are at least n/(4k) of each.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace drw::lowerbound {

struct Gadget {
  Graph graph;
  std::uint64_t k = 0;        ///< target round bound sqrt(l / log l)
  std::uint64_t k_prime = 0;  ///< tree leaf count (power of two)
  std::uint64_t path_len = 0; ///< n' = number of path vertices

  /// Node IDs: path vertices first (path_node(i), 1-based i as in the
  /// paper), then the binary tree in heap order (root = tree_node(1)).
  NodeId path_node(std::uint64_t i) const {  // i in [1, path_len]
    return static_cast<NodeId>(i - 1);
  }
  NodeId tree_node(std::uint64_t heap_index) const {  // 1-based heap index
    return static_cast<NodeId>(path_len + heap_index - 1);
  }
  NodeId root() const { return tree_node(1); }
  /// Leaf u_i (1-based i in [1, k_prime]).
  NodeId leaf(std::uint64_t i) const { return tree_node(k_prime + i - 1); }

  /// Breakpoints for the left subtree: v_{j k' + k'/2 + k + 1} (Lemma 3.4).
  std::vector<NodeId> left_breakpoints() const;
  /// Breakpoints for the right subtree: v_{j k' + k + 1}.
  std::vector<NodeId> right_breakpoints() const;
};

/// Builds G_n for a path of length `l` (the verified path uses the first
/// l + 1 path vertices). The graph has n' + 2k' - 1 = Theta(l) nodes.
Gadget build_gadget(std::uint64_t l);

/// The weighted reduction of Theorem 3.7: edge (v_i, v_{i+1}) gets weight
/// (2n)^{2i} so a random walk follows P with probability >= 1 - 1/n. Weights
/// are kept in log-space (they overflow any integer type by design; the
/// paper notes this "translates to a larger bandwidth" only).
struct WeightedGadget {
  Gadget base;
  /// log2 of the weight of each edge on P: log2_weight[i] = 2 i log2(2n).
  std::vector<double> log2_path_weight;

  /// Probability that a walk at path vertex i (1-based, i < path_len) steps
  /// forward to i+1, under the Theorem 3.7 weighting.
  double forward_probability(std::uint64_t i) const;
};
WeightedGadget build_weighted_gadget(std::uint64_t l);

}  // namespace drw::lowerbound
