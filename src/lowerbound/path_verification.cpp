#include "lowerbound/path_verification.hpp"

#include <stdexcept>
#include <unordered_set>

#include "congest/primitives.hpp"
#include "lowerbound/interval_set.hpp"

namespace drw::lowerbound {

namespace {

constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

class PathVerificationProtocol final : public congest::Protocol {
 public:
  PathVerificationProtocol(const Graph& g, const congest::BfsTree& tree,
                           const std::vector<std::uint64_t>& order,
                           std::uint64_t sequence_length)
      : tree_(&tree), order_(order), sequence_length_(sequence_length),
        verified_(g.node_count()), sent_(g.node_count()),
        pred_slot_(g.node_count(), kNoSlot),
        succ_slot_(g.node_count(), kNoSlot),
        last_path_sent_(g.node_count()) {}

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      if (order_[v] != 0) {
        verified_[v].insert(order_[v], order_[v]);
        const congest::Message announce{kAnnounce, {order_[v], 0, 0, 0}};
        for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
          ctx.send(slot, announce);
        }
        // Ensure streaming starts even when no announcement will arrive
        // back (e.g. a sequence node with no sequence neighbors).
        ctx.wake_me();
      }
      return;
    }

    for (const congest::Delivery& d : ctx.inbox()) {
      switch (d.msg.type) {
        case kAnnounce: {
          const std::uint64_t other = d.msg.f[0];
          if (order_[v] == 0) break;
          if (other == order_[v] + 1) {
            succ_slot_[v] = ctx.slot_of(d.from);
            // Direct knowledge: the edge (v_i, v_{i+1}) exists.
            verified_[v].insert(order_[v], order_[v] + 1);
          } else if (other + 1 == order_[v]) {
            pred_slot_[v] = ctx.slot_of(d.from);
            verified_[v].insert(other, order_[v]);
          }
          break;
        }
        case kInterval:
        case kPath:
          verified_[v].insert(d.msg.f[0], d.msg.f[1]);
          if (v == tree_->root && d.msg.type == kInterval) {
            ++intervals_at_verifier_;
          }
          break;
        default:
          throw std::logic_error("PathVerification: unknown message");
      }
    }

    // Consolidation along the sequence: share the maximal interval around
    // our own order number with our sequence neighbors when it grew.
    if (order_[v] != 0) {
      const auto f = verified_[v].find(order_[v]);
      if (f.found && !(f.interval == last_path_sent_[v])) {
        last_path_sent_[v] = f.interval;
        const congest::Message msg{kPath, {f.interval.lo, f.interval.hi, 0,
                                           0}};
        if (pred_slot_[v] != kNoSlot) ctx.send(pred_slot_[v], msg);
        if (succ_slot_[v] != kNoSlot) ctx.send(succ_slot_[v], msg);
      }
    }

    // Streaming toward the verifier: one interval per round per tree edge
    // ("a node needs to only send the endpoints of the interval").
    if (v != tree_->root) {
      // Locals, not members: node steps may run on different executor
      // threads, so per-call scratch must stay on this call's stack.
      const Interval* best = nullptr;
      std::uint64_t best_len = 0;
      bool pending_send = false;
      const std::vector<Interval> intervals = verified_[v].to_vector();
      for (const Interval& interval : intervals) {
        if (sent_[v].covers(interval.lo, interval.hi)) continue;
        const std::uint64_t len = interval.hi - interval.lo + 1;
        if (best == nullptr || len > best_len) {
          if (best != nullptr) pending_send = true;  // more than one waiting
          best = &interval;
          best_len = len;
        } else {
          pending_send = true;
        }
      }
      if (best != nullptr) {
        ctx.send_to(tree_->parent[v],
                    congest::Message{kInterval, {best->lo, best->hi, 0, 0}});
        sent_[v].insert(best->lo, best->hi);
        if (pending_send) ctx.wake_me();
      }
    }
  }

  bool done() const override {
    return verified_[tree_->root].covers(1, sequence_length_);
  }

  bool verified_at_root() const { return done(); }
  std::uint64_t intervals_at_verifier() const {
    return intervals_at_verifier_;
  }

 private:
  enum MsgType : std::uint16_t { kAnnounce = 70, kInterval = 71, kPath = 72 };
  const congest::BfsTree* tree_;
  std::vector<std::uint64_t> order_;
  std::uint64_t sequence_length_;
  std::vector<IntervalSet> verified_;
  std::vector<IntervalSet> sent_;
  std::vector<std::uint32_t> pred_slot_;
  std::vector<std::uint32_t> succ_slot_;
  std::vector<Interval> last_path_sent_;
  std::uint64_t intervals_at_verifier_ = 0;  ///< root-only write: shard-safe
};

}  // namespace

PathVerificationResult verify_path(congest::Network& net,
                                   std::span<const NodeId> sequence,
                                   NodeId verifier,
                                   std::uint64_t max_rounds) {
  if (sequence.empty()) {
    throw std::invalid_argument("verify_path: empty sequence");
  }
  std::unordered_set<NodeId> seen;
  std::vector<std::uint64_t> order(net.graph().node_count(), 0);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (!seen.insert(sequence[i]).second) {
      throw std::invalid_argument("verify_path: duplicate sequence node");
    }
    order[sequence[i]] = i + 1;
  }

  PathVerificationResult result;
  congest::BfsTree tree =
      congest::build_bfs_tree(net, verifier, result.stats);
  PathVerificationProtocol protocol(net.graph(), tree, order,
                                    sequence.size());
  result.stats += net.run(protocol, max_rounds);
  result.verified = protocol.verified_at_root();
  result.intervals_received_at_verifier = protocol.intervals_at_verifier();
  return result;
}

}  // namespace drw::lowerbound
