#include "lowerbound/gadget.hpp"

#include <cmath>
#include <stdexcept>

namespace drw::lowerbound {

std::vector<NodeId> Gadget::left_breakpoints() const {
  std::vector<NodeId> out;
  for (std::uint64_t j = 0;; ++j) {
    const std::uint64_t index = j * k_prime + k_prime / 2 + k + 1;
    if (index > path_len) break;
    out.push_back(path_node(index));
  }
  return out;
}

std::vector<NodeId> Gadget::right_breakpoints() const {
  std::vector<NodeId> out;
  for (std::uint64_t j = 0;; ++j) {
    const std::uint64_t index = j * k_prime + k + 1;
    if (index > path_len) break;
    out.push_back(path_node(index));
  }
  return out;
}

Gadget build_gadget(std::uint64_t l) {
  if (l < 4) throw std::invalid_argument("build_gadget: l < 4");
  Gadget gadget;

  // k = sqrt(l / log l): the round bound of Theorem 3.2.
  const double dl = static_cast<double>(l);
  gadget.k = static_cast<std::uint64_t>(
      std::max(1.0, std::floor(std::sqrt(dl / std::log2(dl)))));

  // k' = the power of two with k'/2 <= 4k < k'.
  std::uint64_t k_prime = 1;
  while (k_prime <= 4 * gadget.k) k_prime *= 2;
  gadget.k_prime = k_prime;

  // n' = smallest multiple of k' that holds the l+1 path vertices.
  const std::uint64_t n_prime = ((l + 1 + k_prime - 1) / k_prime) * k_prime;
  gadget.path_len = n_prime;

  const std::uint64_t tree_nodes = 2 * k_prime - 1;
  GraphBuilder builder(n_prime + tree_nodes);

  // Path P = v_1 ... v_{n'}.
  for (std::uint64_t i = 1; i < n_prime; ++i) {
    builder.add_edge(gadget.path_node(i), gadget.path_node(i + 1));
  }
  // Balanced binary tree T in heap order (1-based heap indices).
  for (std::uint64_t h = 1; h < k_prime; ++h) {
    builder.add_edge(gadget.tree_node(h), gadget.tree_node(2 * h));
    builder.add_edge(gadget.tree_node(h), gadget.tree_node(2 * h + 1));
  }
  // Connections u_i -- v_{j k' + i} for every i in [1, k'] and every j.
  for (std::uint64_t i = 1; i <= k_prime; ++i) {
    for (std::uint64_t j = 0;; ++j) {
      const std::uint64_t index = j * k_prime + i;
      if (index > n_prime) break;
      builder.add_edge(gadget.leaf(i), gadget.path_node(index));
    }
  }
  gadget.graph = builder.build();
  return gadget;
}

double WeightedGadget::forward_probability(std::uint64_t i) const {
  if (i == 0 || i >= base.path_len) {
    throw std::invalid_argument("forward_probability: index");
  }
  const double log2_2n =
      std::log2(2.0 * static_cast<double>(base.graph.node_count()));
  // Weights: forward edge (2n)^{2i}, backward edge (2n)^{2(i-1)} (absent for
  // i == 1), tree edge weight 1. All relative to the forward weight.
  const double backward_ratio = i == 1 ? 0.0 : std::exp2(-2.0 * log2_2n);
  const double tree_ratio = std::exp2(-2.0 * static_cast<double>(i) *
                                      log2_2n);
  return 1.0 / (1.0 + backward_ratio + tree_ratio);
}

WeightedGadget build_weighted_gadget(std::uint64_t l) {
  WeightedGadget weighted;
  weighted.base = build_gadget(l);
  const double log2_2n =
      std::log2(2.0 * static_cast<double>(weighted.base.graph.node_count()));
  weighted.log2_path_weight.resize(weighted.base.path_len);
  for (std::uint64_t i = 1; i < weighted.base.path_len; ++i) {
    weighted.log2_path_weight[i] = 2.0 * static_cast<double>(i) * log2_2n;
  }
  return weighted;
}

}  // namespace drw::lowerbound
