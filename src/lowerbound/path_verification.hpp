// The PATH-VERIFICATION problem (Definition 3.1) and a natural distributed
// algorithm from the class the lower bound applies to: nodes verify local
// segments, then selectively forward interval endpoints (two words, O(log n)
// bits) and merge overlapping intervals, until some verifier node has
// verified the whole segment [1, s].
//
// The algorithm:
//   * Announce (2 rounds): every sequence node announces its order number to
//     all neighbors; a node with order i that hears i+1 from a neighbor has
//     verified the segment [i, i+1].
//   * Consolidate + stream (concurrent, measured): every round each sequence
//     node sends its maximal verified interval to its sequence predecessor /
//     successor (merging along the path), while every node streams its
//     largest not-yet-sent interval one hop up a BFS tree rooted at the
//     verifier. The run ends when the verifier covers [1, s] (or when no
//     message is left, which means verification failed).
//
// On the gadget G_n this exhibits the Theorem 3.2 bottleneck: the measured
// round count grows like sqrt(l) despite the O(log n) diameter (experiment
// E6); the lower bound says no algorithm in the class can beat
// sqrt(l / log l).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace drw::lowerbound {

struct PathVerificationResult {
  bool verified = false;          ///< verifier covers [1, sequence length]
  congest::RunStats stats;        ///< rounds/messages (announce + merge)
  std::uint64_t intervals_received_at_verifier = 0;
};

/// Verifies that `sequence` (distinct nodes; node sequence[i] gets order
/// number i+1) forms a path in the graph; `verifier` must end up knowing.
/// Throws std::invalid_argument on duplicate sequence nodes.
PathVerificationResult verify_path(congest::Network& net,
                                   std::span<const NodeId> sequence,
                                   NodeId verifier,
                                   std::uint64_t max_rounds = 10'000'000);

}  // namespace drw::lowerbound
