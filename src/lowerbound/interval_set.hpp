// Verified-segment bookkeeping for the PATH-VERIFICATION problem (Section 3,
// Figure 1): a set of disjoint closed integer intervals with the paper's
// merge rule -- two verified segments combine iff they overlap (share at
// least one index), e.g. [1,2] + [2,5] -> [1,5], while [1,2] + [3,5] stay
// separate (continuity at the seam is unverified).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace drw::lowerbound {

struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  /// Inserts [lo, hi], merging with any stored interval that overlaps it
  /// (shares at least one point). Returns the maximal interval now
  /// containing [lo, hi].
  Interval insert(std::uint64_t lo, std::uint64_t hi);

  /// True iff [lo, hi] is fully inside one stored interval.
  bool covers(std::uint64_t lo, std::uint64_t hi) const;

  /// The maximal stored interval containing `point`, or nullopt-like empty
  /// result {0,0} with found=false.
  struct Find {
    bool found = false;
    Interval interval;
  };
  Find find(std::uint64_t point) const;

  std::size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  std::vector<Interval> to_vector() const;

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;  // lo -> hi, disjoint
};

}  // namespace drw::lowerbound
