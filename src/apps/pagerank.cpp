#include "apps/pagerank.hpp"

#include <cmath>
#include <stdexcept>

#include "congest/primitives.hpp"
#include "service/walk_service.hpp"

namespace drw::apps {

namespace {

/// Anonymous terminating tokens with per-edge count aggregation: one message
/// per directed edge per round, lockstep hops, geometric termination.
class TerminatingWalkProtocol final : public congest::Protocol {
 public:
  TerminatingWalkProtocol(const Graph& g,
                          std::vector<std::uint64_t> initial_tokens,
                          double alpha, std::uint32_t max_length)
      : graph_(&g), initial_(std::move(initial_tokens)), alpha_(alpha),
        max_length_(max_length), tallies_(g.node_count(), 0) {
    if (alpha <= 0.0 || alpha >= 1.0) {
      throw std::invalid_argument("TerminatingWalk: alpha must be in (0,1)");
    }
  }

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      if (initial_[v] > 0) process(ctx, initial_[v], 0);
      return;
    }
    std::uint64_t count = 0;
    std::uint32_t steps = 0;
    for (const congest::Delivery& d : ctx.inbox()) {
      if (d.msg.type != kCount) continue;
      count += d.msg.f[0];
      steps = static_cast<std::uint32_t>(d.msg.f[1]);
    }
    if (count > 0) process(ctx, count, steps);
  }

  const std::vector<std::uint64_t>& tallies() const { return tallies_; }

 private:
  enum MsgType : std::uint16_t { kCount = 90 };

  void process(congest::Context& ctx, std::uint64_t count,
               std::uint32_t steps) {
    const NodeId v = ctx.self();
    if (steps >= max_length_) {
      tallies_[v] += count;  // cap: tally the geometric tail in place
      return;
    }
    // Terminate each token independently with probability alpha.
    std::uint64_t stopped = 0;
    for (std::uint64_t t = 0; t < count; ++t) {
      if (ctx.rng().next_bool(alpha_)) ++stopped;
    }
    tallies_[v] += stopped;
    const std::uint64_t surviving = count - stopped;
    if (surviving == 0) return;
    std::vector<std::uint64_t> per_slot(ctx.degree(), 0);
    for (std::uint64_t t = 0; t < surviving; ++t) {
      ++per_slot[ctx.rng().next_below(ctx.degree())];
    }
    for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
      if (per_slot[slot] == 0) continue;
      ctx.send(slot, congest::Message{kCount,
                                      {per_slot[slot], steps + 1u, 0, 0}});
    }
  }

  const Graph* graph_;
  std::vector<std::uint64_t> initial_;
  double alpha_;
  std::uint32_t max_length_;
  std::vector<std::uint64_t> tallies_;
};

PageRankResult run_tokens(congest::Network& net,
                          std::vector<std::uint64_t> initial,
                          const PageRankOptions& options) {
  std::uint64_t total = 0;
  for (auto c : initial) total += c;
  if (total == 0) throw std::invalid_argument("pagerank: no tokens");

  std::uint32_t max_length = options.max_length;
  if (max_length == 0) {
    // P(geometric > L) = (1-alpha)^L < 1/(n * total).
    const double tail = 1.0 / (static_cast<double>(net.graph().node_count()) *
                               static_cast<double>(total));
    max_length = static_cast<std::uint32_t>(
        std::ceil(std::log(tail) / std::log(1.0 - options.alpha)));
  }

  TerminatingWalkProtocol protocol(net.graph(), std::move(initial),
                                   options.alpha, max_length);
  PageRankResult result;
  result.stats = net.run(protocol);
  result.tallies = protocol.tallies();
  result.total_tokens = total;
  result.scores.resize(result.tallies.size());
  for (std::size_t v = 0; v < result.tallies.size(); ++v) {
    result.scores[v] = static_cast<double>(result.tallies[v]) /
                       static_cast<double>(total);
  }
  return result;
}

}  // namespace

PageRankResult estimate_pagerank(congest::Network& net,
                                 const PageRankOptions& options) {
  std::vector<std::uint64_t> initial(net.graph().node_count(),
                                     options.tokens_per_node);
  return run_tokens(net, std::move(initial), options);
}

PageRankResult estimate_personalized_pagerank(
    congest::Network& net, NodeId source, std::uint32_t tokens,
    const PageRankOptions& options) {
  std::vector<std::uint64_t> initial(net.graph().node_count(), 0);
  initial[source] = tokens;
  return run_tokens(net, std::move(initial), options);
}

PageRankResult estimate_personalized_pagerank_via_service(
    service::WalkService& service, NodeId source, std::uint32_t tokens,
    const PageRankOptions& options) {
  if (tokens == 0) throw std::invalid_argument("ppr: no tokens");
  if (!(options.alpha > 0.0 && options.alpha < 1.0)) {
    throw std::invalid_argument("ppr: alpha must be in (0, 1)");
  }
  if (service.config().params.transition != TransitionModel::kSimple) {
    // PPR as the geometric endpoint law holds for the simple chain only.
    throw std::invalid_argument("ppr: service must use the simple walk");
  }
  congest::Network& net = service.network();
  const std::size_t n = net.graph().node_count();

  std::uint32_t max_length = options.max_length;
  if (max_length == 0) {
    // Same tail cap as the token estimator: P(geometric > L) < 1/(n*tokens).
    const double tail = 1.0 / (static_cast<double>(n) *
                               static_cast<double>(tokens));
    max_length = static_cast<std::uint32_t>(
        std::ceil(std::log(tail) / std::log(1.0 - options.alpha)));
  }

  // The source draws its token lengths locally (node-local coin): each token
  // walks L ~ Geometric(alpha) steps, L capped at max_length.
  Rng& rng = net.node_rng(source);
  std::vector<std::uint32_t> per_length(max_length + 1, 0);
  for (std::uint32_t t = 0; t < tokens; ++t) {
    std::uint32_t steps = 0;
    while (steps < max_length && !rng.next_bool(options.alpha)) ++steps;
    ++per_length[steps];
  }
  std::vector<service::WalkRequest> requests;
  for (std::uint32_t len = 0; len <= max_length; ++len) {
    if (per_length[len] > 0) {
      requests.push_back(service::WalkRequest{
          source, len, per_length[len], false});
    }
  }

  const service::BatchReport report = service.serve(requests);
  PageRankResult result;
  result.stats = report.stats;
  result.total_tokens = tokens;
  result.tallies.assign(n, 0);
  for (const service::RequestResult& r : report.results) {
    for (NodeId dest : r.destinations) ++result.tallies[dest];
  }
  result.scores.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    result.scores[v] = static_cast<double>(result.tallies[v]) /
                       static_cast<double>(tokens);
  }
  return result;
}

std::vector<double> pagerank_reference(const Graph& g, double alpha,
                                       std::size_t iterations) {
  const std::size_t n = g.node_count();
  std::vector<double> pr(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> next(n, alpha / static_cast<double>(n));
    for (NodeId v = 0; v < n; ++v) {
      const double share = (1.0 - alpha) * pr[v] / g.degree(v);
      for (NodeId u : g.neighbors(v)) next[u] += share;
    }
    pr = std::move(next);
  }
  return pr;
}

std::vector<double> personalized_pagerank_reference(const Graph& g,
                                                    NodeId source,
                                                    double alpha,
                                                    double tail_mass) {
  const std::size_t n = g.node_count();
  std::vector<double> ppr(n, 0.0);
  std::vector<double> p(n, 0.0);
  p[source] = 1.0;
  double weight = alpha;  // alpha * (1-alpha)^t
  double remaining = 1.0;
  while (remaining > tail_mass) {
    for (std::size_t v = 0; v < n; ++v) ppr[v] += weight * p[v];
    remaining -= weight;
    weight *= (1.0 - alpha);
    // One simple-walk step.
    std::vector<double> next(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      if (p[v] == 0.0) continue;
      const double share = p[v] / g.degree(v);
      for (NodeId u : g.neighbors(v)) next[u] += share;
    }
    p = std::move(next);
  }
  // Distribute the truncated tail proportionally to keep the sum at 1.
  for (auto& value : ppr) value /= (1.0 - remaining);
  return ppr;
}

}  // namespace drw::apps
