// Application 2 (Section 4.2): decentralized estimation of mixing time,
// spectral gap and conductance.
//
// The estimator runs K = O~(sqrt(n)) walks of doubling length l from the
// source and tests whether the endpoint distribution X = pi_x(l) is close to
// the stationary distribution Y = pi (known analytically: pi(v) = d(v)/2m).
// The closeness tester is the Batu et al. [6] construction the paper invokes
// (Theorem 4.5), realized with two statistics computed at the source from
// the collected samples:
//
//   * bucket L1 -- nodes are bucketed geometrically by their stationary
//     probability ("the algorithm partitions the set of nodes into buckets
//     based on the steady state probabilities", Appendix C.1); the sampled
//     bucket histogram is compared with the exact bucket masses.
//   * collision l2 -- an unbiased estimator of ||X - Y||_2^2 from pairwise
//     sample collisions plus the exactly-known <X,Y> and ||Y||_2^2 terms,
//     scaled by sqrt(n) into an L1 bound. This supplies the within-bucket
//     resolution of the Batu et al. test (bucket counts alone are blind on
//     regular graphs, where all nodes share one bucket).
//
// The test PASSes iff both statistics are below the threshold; monotonicity
// of ||pi_x(t) - pi||_1 (Lemma 4.4) then admits a binary search between the
// last FAIL and the first PASS power of two.
//
// Round complexity: O~(n^{1/2} + n^{1/4} sqrt(D tau_x)) (Theorem 4.6);
// sample records reach the source via a pipelined upcast in O(D + K) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace drw::service {
class WalkService;
}

namespace drw::apps {

struct MixingOptions {
  /// Samples per tested length; 0 = auto (c_samples * sqrt(n) * log2(n)).
  std::uint32_t samples = 0;
  double c_samples = 4.0;
  /// PASS threshold on both closeness statistics. Default 1/(2e), mirroring
  /// Definition 4.3's epsilon.
  double pass_threshold = 0.0;  // 0 = 1/(2e)
  /// Geometric bucket growth factor for the stationary-probability buckets.
  double bucket_ratio = 2.0;
  /// Cap on the tested walk length (simulation guard). 0 = n^3.
  std::uint64_t max_length = 0;
  /// Refine the doubling bracket by binary search (the paper's final step);
  /// disable to save rounds when only the power-of-two bracket is needed.
  bool binary_search = true;
};

/// The source-side closeness statistics for one tested length.
struct ClosenessStats {
  double bucket_l1 = 0.0;   ///< sum_b |f_b - q_b| over stationary buckets
  double l2_squared = 0.0;  ///< unbiased estimate of ||X - Y||_2^2
  double l1_upper = 0.0;    ///< sqrt(n * max(0, l2_squared)) >= ||X - Y||_1 est
};

struct MixingEstimate {
  std::uint64_t tau = 0;        ///< estimated mixing time ~tau_x
  std::uint64_t last_fail = 0;  ///< largest tested l that FAILed
  congest::RunStats stats;      ///< total rounds/messages
  std::uint32_t samples = 0;    ///< K walks per tested length
  std::uint32_t buckets = 0;    ///< number of stationary buckets
  std::uint32_t lengths_tested = 0;
  bool converged = false;       ///< false if max_length was hit
  /// Spectral bounds derived from tau (Section 4.2):
  /// 1/(1-lambda_2) <= tau <= log n/(1-lambda_2), and Cheeger:
  /// gap/2 <= Phi <= sqrt(2 gap).
  double gap_lower = 0.0;
  double gap_upper = 0.0;
  double conductance_lower = 0.0;
  double conductance_upper = 0.0;
};

/// Estimates tau_x for walks started at `source`. The graph should be
/// non-bipartite (the paper's standing assumption for mixing).
MixingEstimate estimate_mixing_time(congest::Network& net, NodeId source,
                                    const core::Params& params,
                                    std::uint32_t diameter,
                                    const MixingOptions& options = {});

/// Same estimator, with every probe's K walks served through a WalkService
/// batch: the short-walk inventory persists across the doubling and
/// binary-search probes instead of re-running Phase 1 per tested length.
/// Walk parameters come from the service's config.
MixingEstimate estimate_mixing_time_via_service(
    service::WalkService& service, NodeId source,
    const MixingOptions& options = {});

/// Decentralized expander check (Section 1.3 lists "checking whether a
/// graph is an expander" among the applications): a graph family is an
/// expander iff the spectral gap is constant, i.e. the mixing time is
/// O(log n). The check estimates tau_x and compares against
/// `c_threshold * log2(n)^2` (the log^2 slack absorbs the tau <= log n/gap
/// bound and estimator noise).
struct ExpanderVerdict {
  bool is_expander = false;
  std::uint64_t tau = 0;          ///< estimated mixing time
  double threshold = 0.0;         ///< tau threshold used
  double gap_lower = 0.0;         ///< implied spectral-gap lower bound
  congest::RunStats stats;
};
ExpanderVerdict check_expander(congest::Network& net, NodeId source,
                               const core::Params& params,
                               std::uint32_t diameter,
                               double c_threshold = 2.0,
                               const MixingOptions& options = {});

/// check_expander over a WalkService (see estimate_mixing_time_via_service).
ExpanderVerdict check_expander_via_service(service::WalkService& service,
                                           NodeId source,
                                           double c_threshold = 2.0,
                                           const MixingOptions& options = {});

/// Computes the closeness statistics from collected sample records.
/// `dest_counts[i]` = (sample count, degree) for the i-th distinct endpoint;
/// `two_m` = 2 * edge count; `sum_deg_sq` = sum over all nodes of degree^2;
/// `n` = node count; `total` = number of samples. Exposed for tests.
ClosenessStats closeness_statistics(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& dest_counts,
    std::uint64_t two_m, std::uint64_t sum_deg_sq, std::size_t n,
    std::uint64_t total, double bucket_ratio);

}  // namespace drw::apps
