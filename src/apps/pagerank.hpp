// PageRank estimation via terminating random walks -- the paper's Section 5
// asks about extending the machinery toward PageRank; this implements the
// standard random-surfer estimator on the CONGEST substrate.
//
// Model: the PageRank of the (undirected) network with damping 1-alpha is
// the stationary distribution of "walk one simple step with probability
// 1-alpha, teleport to a uniform node with probability alpha". Equivalently
// PR(v) is the expected endpoint distribution of a walk started at a
// uniform node and terminated with probability alpha per step.
//
// Distributed estimator: every node launches `tokens_per_node` anonymous
// tokens; each round every surviving token terminates w.p. alpha (tallied
// at its current node -- node-local knowledge!) or takes a simple step.
// Because tokens are indistinguishable, per-edge COUNTS travel instead of
// individual messages (the GET-MORE-WALKS aggregation trick, Lemma 2.2), so
// the whole estimation runs in O(max walk length) = O(log(total)/alpha)
// rounds with one message per edge per round, regardless of the number of
// tokens.
//
// Personalized PageRank from a source s is the same process with all tokens
// starting at s: PPR(s, v) = alpha * sum_t (1-alpha)^t P^t(s, v).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace drw::service {
class WalkService;
}

namespace drw::apps {

struct PageRankOptions {
  double alpha = 0.15;             ///< teleport / termination probability
  std::uint32_t tokens_per_node = 64;
  /// Hard cap on walk length (survivors are tallied where they are). The
  /// default covers the geometric tail: P(len > cap) < 1/(n * tokens).
  std::uint32_t max_length = 0;    // 0 = auto
};

struct PageRankResult {
  std::vector<double> scores;      ///< estimated PR, sums to 1
  std::vector<std::uint64_t> tallies;  ///< raw per-node stop counts
  std::uint64_t total_tokens = 0;
  congest::RunStats stats;
};

/// Global PageRank: tokens start uniformly (tokens_per_node each).
PageRankResult estimate_pagerank(congest::Network& net,
                                 const PageRankOptions& options = {});

/// Personalized PageRank from `source`: `tokens` walks start at the source.
PageRankResult estimate_personalized_pagerank(
    congest::Network& net, NodeId source, std::uint32_t tokens,
    const PageRankOptions& options = {});

/// Personalized PageRank served through a WalkService: PPR(s, .) is the
/// endpoint law of a walk whose length is Geometric(alpha), so the source
/// draws `tokens` geometric lengths locally, groups equal lengths, and
/// submits them as one mixed-length request batch -- a natural heterogeneous
/// serving workload that shares the persistent short-walk inventory with
/// every other caller of the service. Requires the simple walk.
PageRankResult estimate_personalized_pagerank_via_service(
    service::WalkService& service, NodeId source, std::uint32_t tokens,
    const PageRankOptions& options = {});

/// Centralized reference: damped power iteration to fixed point.
std::vector<double> pagerank_reference(const Graph& g, double alpha,
                                       std::size_t iterations = 200);

/// Centralized personalized reference: alpha * sum_t (1-alpha)^t P^t e_s,
/// truncated when the remaining mass drops below `tail_mass`.
std::vector<double> personalized_pagerank_reference(const Graph& g,
                                                    NodeId source,
                                                    double alpha,
                                                    double tail_mass = 1e-9);

}  // namespace drw::apps
