// Application 1 (Section 4.1): random spanning trees.
//
// Distributed algorithm = Aldous-Broder simulated with the stitched walk
// engine: ONE walk from the root extended in doubling phases (l = n, 2n,
// ...), a distributed cover check per phase, and -- once the walk has
// covered -- a three-round first-visit-edge protocol in which every
// non-root node locates the neighbor that held the preceding walk step.
// Theorem 4.1: O~(sqrt(m D)) rounds with high probability.
//
// Deviation from the paper's phrasing (documented in DESIGN.md): the paper
// restarts log n fresh length-l walks per phase and keeps the first one that
// covers; selecting a walk conditioned on covering within l steps is
// measurably non-uniform on small graphs. Extending a single walk is the
// unconditioned Aldous-Broder process and is exactly uniform, at the same
// asymptotic round cost.
//
// Centralized references (plain Aldous-Broder and Wilson's algorithm) are
// provided for the uniformity validation in tests and E7.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "graph/spanning.hpp"
#include "util/rng.hpp"

namespace drw::apps {

struct RstResult {
  SpanningTree tree;
  congest::RunStats stats;      ///< total rounds/messages
  std::uint32_t phases = 0;     ///< doubling phases executed
  std::uint32_t walks_run = 0;  ///< walk extensions performed (== phases)
  std::uint64_t cover_length = 0;  ///< total steps until the walk covered
};

struct RstOptions {
  /// Initial walk length; the paper starts at n. 0 = auto (n).
  std::uint64_t initial_length = 0;
  /// Hard cap on the walk length to bound simulation cost (0 = 64 * m * D).
  std::uint64_t max_length = 0;
};

/// Distributed RST rooted at `root`. Throws std::runtime_error if no walk
/// covered the graph within options.max_length (never observed in practice;
/// the expected cover time is O(mD)).
RstResult random_spanning_tree(congest::Network& net, NodeId root,
                               const core::Params& params,
                               std::uint32_t diameter,
                               const RstOptions& options = {});

/// Centralized Aldous-Broder reference: walk from `root` until all nodes are
/// visited; each non-root node's tree edge is its first-entry edge.
SpanningTree aldous_broder_reference(const Graph& g, NodeId root, Rng& rng);

/// Centralized Wilson reference: loop-erased random walks from each node to
/// the growing tree. Also exactly uniform; used to cross-validate.
SpanningTree wilson_reference(const Graph& g, NodeId root, Rng& rng);

}  // namespace drw::apps
