// Random-walk based search (Section 1.3 lists it among the applications
// sped up by the walk machinery; the classic P2P use-case from the paper's
// introduction).
//
// Setting: items (opaque 64-bit keys) are replicated on some nodes; a
// querying node wants to locate a replica without any routing state. It
// launches k random walks of length l; every node visited by a walk checks
// its local store and reports a hit back along the walk's BFS path.
//
// With the stitched engine the walks cost O~(sqrt(k l D) + k) rounds instead
// of l, and the visited set is obtained through walk regeneration
// (Section 2.2) -- each node knows whether it was visited and at which step,
// so the FIRST hit (by walk position) is well-defined. The hit report is a
// single convergecast over the query's BFS tree, O(D) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"

namespace drw::apps {

struct SearchOptions {
  std::uint32_t walks = 8;        ///< k walks per query
  std::uint64_t walk_length = 0;  ///< 0 = auto (4 * n)
};

struct SearchResult {
  bool found = false;
  NodeId holder = kInvalidNode;     ///< replica location (if found)
  std::uint64_t first_hit_step = 0; ///< earliest walk position that hit
  congest::RunStats stats;
  std::uint64_t walk_rounds = 0;    ///< rounds spent on the walks alone
};

/// Searches for `key` starting from `source`. `replicas[v]` is node v's
/// local item store (node-local input, as in a real deployment).
SearchResult random_walk_search(
    congest::Network& net, NodeId source, std::uint64_t key,
    const std::vector<std::vector<std::uint64_t>>& replicas,
    const core::Params& params, std::uint32_t diameter,
    const SearchOptions& options = {});

}  // namespace drw::apps
