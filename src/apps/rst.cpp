#include "apps/rst.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "congest/primitives.hpp"
#include "core/random_walks.hpp"

namespace drw::apps {

namespace {

/// Three-round protocol run after a covering walk: every non-root node v
/// takes its first visit time t_v, asks all neighbors "who held step
/// t_v - 1?", and adopts the unique positive answer as its tree parent
/// (the walk moved along an edge, so the predecessor is a neighbor).
class FirstVisitEdgeProtocol final : public congest::Protocol {
 public:
  FirstVisitEdgeProtocol(const Graph& g, NodeId root, std::uint32_t walk_id,
                         const core::PositionTable& positions)
      : root_(root), parent_(g.node_count(), kInvalidNode),
        first_visit_(g.node_count(),
                     std::numeric_limits<std::uint64_t>::max()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const core::WalkPosition& p : positions[v]) {
        if (p.walk == walk_id) {
          first_visit_[v] = std::min(first_visit_[v], p.step);
        }
      }
    }
    steps_.resize(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const core::WalkPosition& p : positions[v]) {
        if (p.walk == walk_id) steps_[v].push_back(p.step);
      }
      std::sort(steps_[v].begin(), steps_[v].end());
      steps_[v].erase(std::unique(steps_[v].begin(), steps_[v].end()),
                      steps_[v].end());
    }
    parent_[root] = root;
  }

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    if (ctx.round() == 0) {
      if (v == root_) return;
      if (first_visit_[v] == std::numeric_limits<std::uint64_t>::max()) {
        throw std::logic_error("FirstVisitEdge: walk did not cover node");
      }
      const congest::Message query{kQuery, {first_visit_[v] - 1, 0, 0, 0}};
      for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
        ctx.send(slot, query);
      }
      return;
    }
    for (const congest::Delivery& d : ctx.inbox()) {
      if (d.msg.type == kQuery) {
        const std::uint64_t step = d.msg.f[0];
        if (std::binary_search(steps_[v].begin(), steps_[v].end(), step)) {
          ctx.send_to(d.from, congest::Message{kAnswer, {step, 0, 0, 0}});
        }
      } else if (d.msg.type == kAnswer) {
        if (d.msg.f[0] + 1 != first_visit_[v]) continue;
        if (parent_[v] != kInvalidNode) {
          throw std::logic_error("FirstVisitEdge: ambiguous predecessor");
        }
        parent_[v] = d.from;
      }
    }
  }

  const std::vector<NodeId>& parents() const { return parent_; }

 private:
  enum MsgType : std::uint16_t { kQuery = 60, kAnswer = 61 };
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<std::uint64_t> first_visit_;
  std::vector<std::vector<std::uint64_t>> steps_;
};

}  // namespace

RstResult random_spanning_tree(congest::Network& net, NodeId root,
                               const core::Params& params,
                               std::uint32_t diameter,
                               const RstOptions& options) {
  const Graph& g = net.graph();
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("random_spanning_tree: n < 2");

  core::Params walk_params = params;
  walk_params.record_trajectories = true;  // cover check + edge selection

  std::uint64_t l = options.initial_length != 0 ? options.initial_length
                                                : static_cast<std::uint64_t>(n);
  const std::uint64_t max_length =
      options.max_length != 0
          ? options.max_length
          : 64ull * g.edge_count() * std::max<std::uint32_t>(diameter, 1);

  // One logical Aldous-Broder walk, EXTENDED across doubling phases.
  //
  // Note on faithfulness: the paper restarts log n fresh walks of length l
  // per phase and uses the first one that covers. Selecting a walk
  // conditioned on "covered within l steps" biases the tree toward
  // fast-covering walks -- on the 4-cycle the four trees then appear with
  // odds 2:2:1:1 instead of uniformly (our chi-square tests detect this
  // reliably). Continuing a single walk until it has covered is the
  // unconditioned Aldous-Broder process, is exactly uniform, and keeps the
  // same O~(sqrt(tau D)) round budget (the doubled phase lengths telescope).
  // DESIGN.md records this deviation.
  RstResult result;
  core::PositionTable walk_positions(n);  // merged across phases
  NodeId current = root;
  std::uint64_t steps_done = 0;

  while (true) {
    ++result.phases;
    core::StitchEngine engine(net, walk_params, diameter);
    engine.prepare(1, l);

    // The cover check reuses one BFS tree per phase (O(D) to build).
    congest::BfsTree tree = congest::build_bfs_tree(net, root, result.stats);

    core::WalkResult walk = engine.continue_walk(current, l, 0, steps_done);
    result.stats += walk.stats;
    ++result.walks_run;
    for (NodeId v = 0; v < n; ++v) {
      for (const core::WalkPosition& p : engine.positions()[v]) {
        walk_positions[v].push_back(p);
      }
    }
    steps_done += l;
    current = walk.destination;

    // Cover check: every node contributes 1 iff it has appeared in the walk
    // so far ("this can be easily checked in O(D) time").
    std::vector<std::uint64_t> visited(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      visited[v] = walk_positions[v].empty() ? 0 : 1;
    }
    congest::ConvergecastSum cover(tree, std::move(visited));
    result.stats += net.run(cover);
    if (cover.root_sum() == n) {
      // Covered: select first-visit edges (3 rounds).
      result.cover_length = steps_done;
      FirstVisitEdgeProtocol select(g, root, 0, walk_positions);
      result.stats += net.run(select);
      result.tree = tree_from_parents(g, select.parents());
      return result;
    }

    if (steps_done > max_length) {
      throw std::runtime_error(
          "random_spanning_tree: no covering walk within max_length");
    }
    l *= 2;
  }
}

SpanningTree aldous_broder_reference(const Graph& g, NodeId root, Rng& rng) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> parent(n, kInvalidNode);
  parent[root] = root;
  std::size_t visited = 1;
  NodeId current = root;
  while (visited < n) {
    const NodeId next =
        g.neighbor(current, static_cast<std::uint32_t>(
                                rng.next_below(g.degree(current))));
    if (parent[next] == kInvalidNode) {
      parent[next] = current;
      ++visited;
    }
    current = next;
  }
  return tree_from_parents(g, parent);
}

SpanningTree wilson_reference(const Graph& g, NodeId root, Rng& rng) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> next_hop(n, kInvalidNode);
  std::vector<std::uint8_t> in_tree(n, 0);
  in_tree[root] = 1;
  for (NodeId start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    // Loop-erased walk from `start` to the current tree, recorded via
    // next-hop pointers (revisits overwrite, which erases loops).
    NodeId current = start;
    while (!in_tree[current]) {
      const NodeId next =
          g.neighbor(current, static_cast<std::uint32_t>(
                                  rng.next_below(g.degree(current))));
      next_hop[current] = next;
      current = next;
    }
    current = start;
    while (!in_tree[current]) {
      in_tree[current] = 1;
      current = next_hop[current];
    }
  }
  std::vector<NodeId> parent(n, kInvalidNode);
  parent[root] = root;
  for (NodeId v = 0; v < n; ++v) {
    if (v != root) parent[v] = next_hop[v];
  }
  return tree_from_parents(g, parent);
}

}  // namespace drw::apps
