#include "apps/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "congest/primitives.hpp"
#include "core/random_walks.hpp"
#include "service/walk_service.hpp"

namespace drw::apps {

namespace {

/// Produces k endpoint samples of l-step walks from the estimator's source,
/// charging the cost to `stats`. Lets the estimator run over either raw
/// MANY-RANDOM-WALKS batches or a WalkService.
using WalkSampler = std::function<std::vector<NodeId>(
    std::uint64_t l, std::uint32_t k, congest::RunStats& stats)>;

/// Geometric bucket of a node with degree `deg` when 2m = `two_m`:
/// bucket(v) = floor(log_ratio(2m / d(v))), computable node-locally.
std::uint32_t bucket_of(std::uint64_t deg, std::uint64_t two_m,
                        double ratio) {
  const double x = static_cast<double>(two_m) / static_cast<double>(deg);
  return static_cast<std::uint32_t>(
      std::floor(std::log(x) / std::log(ratio)));
}

std::uint32_t bucket_count(std::uint64_t two_m, double ratio) {
  return bucket_of(1, two_m, ratio) + 1;
}

}  // namespace

ClosenessStats closeness_statistics(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& dest_counts,
    std::uint64_t two_m, std::uint64_t sum_deg_sq, std::size_t n,
    std::uint64_t total, double bucket_ratio) {
  if (total < 2) throw std::invalid_argument("closeness_statistics: total<2");
  (void)bucket_ratio;  // bucket L1 needs the exact masses and is finalized
                       // by estimate_mixing_time; this computes the
                       // collision statistics.
  const double k = static_cast<double>(total);
  const double m2 = static_cast<double>(two_m);
  ClosenessStats out;

  // Collision-based unbiased estimate of ||X||_2^2: sum c_d (c_d - 1) over
  // distinct endpoints, divided by K (K - 1).
  double collisions = 0.0;
  double inner = 0.0;  // <X, Y> estimate: mean of pi(sample)
  for (const auto& [count, deg] : dest_counts) {
    const double c = static_cast<double>(count);
    collisions += c * (c - 1.0);
    inner += c * (static_cast<double>(deg) / m2);
  }
  const double x_norm_sq = collisions / (k * (k - 1.0));
  const double xy = inner / k;
  const double y_norm_sq =
      static_cast<double>(sum_deg_sq) / (m2 * m2);
  out.l2_squared = x_norm_sq - 2.0 * xy + y_norm_sq;
  out.l1_upper = std::sqrt(static_cast<double>(n) *
                           std::max(0.0, out.l2_squared));
  return out;
}

namespace {

MixingEstimate estimate_mixing_with_sampler(congest::Network& net,
                                            NodeId source,
                                            bool uniform_target,
                                            const MixingOptions& options,
                                            const WalkSampler& sampler) {
  const Graph& g = net.graph();
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("estimate_mixing_time: n < 2");
  if (options.bucket_ratio <= 1.0) {
    throw std::invalid_argument("estimate_mixing_time: bucket_ratio <= 1");
  }

  MixingEstimate est;
  const double logn =
      std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  est.samples =
      options.samples != 0
          ? options.samples
          : static_cast<std::uint32_t>(std::ceil(
                options.c_samples * std::sqrt(static_cast<double>(n)) *
                logn));
  const double threshold = options.pass_threshold != 0.0
                               ? options.pass_threshold
                               : 1.0 / (2.0 * std::exp(1.0));
  const std::uint64_t max_length =
      options.max_length != 0
          ? options.max_length
          : static_cast<std::uint64_t>(n) * n * n;

  // Infrastructure: BFS tree from the source; learn the total stationary
  // weight W and sum of squared weights so pi(v) = w(v)/W and ||pi||_2^2
  // are known; broadcast W so every node can bucket itself. The weight is
  // deg(v) for the simple/lazy chains (pi = deg/2m) and 1 for
  // Metropolis-Hastings (pi uniform) -- node-local either way.
  auto weight_of = [&](NodeId v) -> std::uint64_t {
    return uniform_target ? 1 : g.degree(v);
  };
  congest::BfsTree tree = congest::build_bfs_tree(net, source, est.stats);
  std::vector<std::uint64_t> degrees(n);
  std::vector<std::uint64_t> degrees_sq(n);
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = weight_of(v);
    degrees_sq[v] = weight_of(v) * weight_of(v);
  }
  congest::ConvergecastSum degree_sum(tree, degrees);
  est.stats += net.run(degree_sum);
  const std::uint64_t two_m = degree_sum.root_sum();
  congest::ConvergecastSum degree_sq_sum(tree, degrees_sq);
  est.stats += net.run(degree_sq_sum);
  const std::uint64_t sum_deg_sq = degree_sq_sum.root_sum();
  congest::BroadcastProtocol announce(
      tree, congest::Message{0, {two_m, 0, 0, 0}}, nullptr);
  est.stats += net.run(announce);

  const std::uint32_t buckets = bucket_count(two_m, options.bucket_ratio);
  est.buckets = buckets;

  // Exact bucket masses of pi via one pipelined vector upcast of per-node
  // degree indicators (integer-exact), O(D + #buckets) rounds.
  std::vector<std::vector<std::uint64_t>> indicator(
      n, std::vector<std::uint64_t>(buckets, 0));
  for (NodeId v = 0; v < n; ++v) {
    indicator[v][bucket_of(weight_of(v), two_m, options.bucket_ratio)] =
        weight_of(v);
  }
  congest::PipelinedVectorUpcast mass_upcast(tree, std::move(indicator));
  est.stats += net.run(mass_upcast);
  std::vector<double> masses(buckets, 0.0);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    masses[b] = static_cast<double>(mass_upcast.root_vector()[b]) /
                static_cast<double>(two_m);
  }

  // One PASS/FAIL probe: K walks from the source; each endpoint holds its
  // sample count and sends one (node, count, degree) record up the tree.
  auto test_length = [&](std::uint64_t l) -> bool {
    const std::vector<NodeId> destinations =
        sampler(l, est.samples, est.stats);

    std::vector<std::uint64_t> per_node(n, 0);
    for (NodeId dest : destinations) ++per_node[dest];
    std::vector<std::vector<congest::PipelinedListUpcast::Record>> records(
        n);
    for (NodeId v = 0; v < n; ++v) {
      if (per_node[v] > 0) {
        records[v].push_back({v, per_node[v], weight_of(v)});
      }
    }
    congest::PipelinedListUpcast collect(tree, std::move(records));
    est.stats += net.run(collect);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> dest_counts;
    std::vector<double> sampled_mass(buckets, 0.0);
    for (const auto& r : collect.root_records()) {
      dest_counts.emplace_back(r[1], r[2]);
      sampled_mass[bucket_of(r[2], two_m, options.bucket_ratio)] +=
          static_cast<double>(r[1]) / static_cast<double>(est.samples);
    }
    ClosenessStats stats = closeness_statistics(
        dest_counts, two_m, sum_deg_sq, n, est.samples,
        options.bucket_ratio);
    stats.bucket_l1 = 0.0;
    for (std::uint32_t b = 0; b < buckets; ++b) {
      stats.bucket_l1 += std::abs(sampled_mass[b] - masses[b]);
    }
    ++est.lengths_tested;
    return stats.bucket_l1 <= threshold && stats.l1_upper <= threshold;
  };

  // Doubling phase: bracket the crossover between FAIL and PASS.
  std::uint64_t l = 1;
  std::uint64_t first_pass = 0;
  while (true) {
    if (test_length(l)) {
      first_pass = l;
      est.converged = true;
      break;
    }
    est.last_fail = l;
    if (l > max_length) break;
    l *= 2;
  }

  if (!est.converged) {
    est.tau = l;
    return est;
  }

  if (options.binary_search) {
    // Monotonicity (Lemma 4.4) admits a binary search in (last_fail,
    // first_pass].
    std::uint64_t lo = est.last_fail;
    std::uint64_t hi = first_pass;
    while (lo + 1 < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (test_length(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    est.tau = hi;
  } else {
    est.tau = first_pass;
  }

  // Derived global metrics (Section 4.2 closing remarks).
  const double tau = static_cast<double>(std::max<std::uint64_t>(est.tau, 1));
  const double ln_n = std::log(static_cast<double>(n));
  est.gap_lower = 1.0 / tau;
  est.gap_upper = std::min(1.0, ln_n / tau);
  est.conductance_lower = est.gap_lower / 2.0;
  est.conductance_upper = std::min(1.0, std::sqrt(2.0 * est.gap_upper));
  return est;
}

/// Shared expander-verdict derivation; `estimate` runs the estimator with
/// the capped options.
ExpanderVerdict expander_verdict(
    std::size_t n, double c_threshold, const MixingOptions& options,
    const std::function<MixingEstimate(const MixingOptions&)>& estimate) {
  const double logn =
      std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  ExpanderVerdict verdict;
  verdict.threshold = c_threshold * logn * logn;

  MixingOptions capped = options;
  // No need to keep testing past the threshold: cap the doubling there.
  if (capped.max_length == 0) {
    capped.max_length =
        static_cast<std::uint64_t>(4.0 * verdict.threshold) + 2;
  }
  const MixingEstimate est = estimate(capped);
  verdict.tau = est.tau;
  verdict.stats = est.stats;
  verdict.is_expander =
      est.converged &&
      static_cast<double>(est.tau) <= verdict.threshold;
  verdict.gap_lower =
      est.tau > 0 ? 1.0 / static_cast<double>(est.tau) : 0.0;
  return verdict;
}

}  // namespace

MixingEstimate estimate_mixing_time(congest::Network& net, NodeId source,
                                    const core::Params& params,
                                    std::uint32_t diameter,
                                    const MixingOptions& options) {
  return estimate_mixing_with_sampler(
      net, source,
      params.transition == TransitionModel::kMetropolisUniform, options,
      [&](std::uint64_t l, std::uint32_t k, congest::RunStats& stats) {
        const std::vector<NodeId> sources(k, source);
        core::ManyWalksOutput walks =
            core::many_random_walks(net, sources, l, params, diameter);
        stats += walks.stats;
        return walks.destinations;
      });
}

MixingEstimate estimate_mixing_time_via_service(
    service::WalkService& service, NodeId source,
    const MixingOptions& options) {
  return estimate_mixing_with_sampler(
      service.network(), source,
      service.config().params.transition ==
          TransitionModel::kMetropolisUniform,
      options,
      [&service, source](std::uint64_t l, std::uint32_t k,
                         congest::RunStats& stats) {
        service::BatchReport report =
            service.serve({service::WalkRequest{source, l, k}});
        stats += report.stats;
        return std::move(report.results[0].destinations);
      });
}

ExpanderVerdict check_expander(congest::Network& net, NodeId source,
                               const core::Params& params,
                               std::uint32_t diameter, double c_threshold,
                               const MixingOptions& options) {
  return expander_verdict(
      net.graph().node_count(), c_threshold, options,
      [&](const MixingOptions& capped) {
        return estimate_mixing_time(net, source, params, diameter, capped);
      });
}

ExpanderVerdict check_expander_via_service(service::WalkService& service,
                                           NodeId source, double c_threshold,
                                           const MixingOptions& options) {
  return expander_verdict(
      service.network().graph().node_count(), c_threshold, options,
      [&](const MixingOptions& capped) {
        return estimate_mixing_time_via_service(service, source, capped);
      });
}

}  // namespace drw::apps
