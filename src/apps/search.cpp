#include "apps/search.hpp"

#include <algorithm>
#include <limits>

#include "congest/primitives.hpp"
#include "core/random_walks.hpp"

namespace drw::apps {

namespace {

/// Convergecast of the earliest (step, holder) hit: each node combines its
/// local hit (if its store holds the key and a walk visited it) with its
/// children's reports; the root learns the first hit. One message per tree
/// edge: O(height) rounds.
class FirstHitConvergecast final : public congest::Protocol {
 public:
  FirstHitConvergecast(const congest::BfsTree& tree,
                       std::vector<std::uint64_t> local_hit_step)
      : tree_(&tree), best_step_(std::move(local_hit_step)),
        best_holder_(best_step_.size(), kInvalidNode),
        pending_(best_step_.size()), sent_(best_step_.size(), 0) {
    for (std::size_t v = 0; v < best_step_.size(); ++v) {
      if (best_step_[v] != kNoHit) best_holder_[v] = static_cast<NodeId>(v);
      pending_[v] = static_cast<std::uint32_t>(tree_->children[v].size());
    }
  }

  static constexpr std::uint64_t kNoHit =
      std::numeric_limits<std::uint64_t>::max();

  void on_round(congest::Context& ctx) override {
    const NodeId v = ctx.self();
    for (const congest::Delivery& d : ctx.inbox()) {
      if (d.msg.type != kReport) continue;
      if (d.msg.f[0] < best_step_[v]) {
        best_step_[v] = d.msg.f[0];
        best_holder_[v] = static_cast<NodeId>(d.msg.f[1]);
      }
      --pending_[v];
    }
    if (!sent_[v] && pending_[v] == 0 && v != tree_->root) {
      sent_[v] = 1;
      ctx.send_to(tree_->parent[v],
                  congest::Message{kReport,
                                   {best_step_[v], best_holder_[v], 0, 0}});
    }
  }

  std::uint64_t root_step() const { return best_step_[tree_->root]; }
  NodeId root_holder() const { return best_holder_[tree_->root]; }

 private:
  enum MsgType : std::uint16_t { kReport = 95 };
  const congest::BfsTree* tree_;
  std::vector<std::uint64_t> best_step_;
  std::vector<NodeId> best_holder_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint8_t> sent_;
};

}  // namespace

SearchResult random_walk_search(
    congest::Network& net, NodeId source, std::uint64_t key,
    const std::vector<std::vector<std::uint64_t>>& replicas,
    const core::Params& params, std::uint32_t diameter,
    const SearchOptions& options) {
  const Graph& g = net.graph();
  const std::size_t n = g.node_count();
  const std::uint64_t l = options.walk_length != 0
                              ? options.walk_length
                              : 4ull * n;

  // 1. k walks with position regeneration so every node knows if/when it
  //    was visited.
  core::Params walk_params = params;
  walk_params.record_trajectories = true;
  const std::vector<NodeId> sources(options.walks, source);
  const core::ManyWalksOutput walks =
      core::many_random_walks(net, sources, l, walk_params, diameter);

  SearchResult result;
  result.stats += walks.stats;
  result.walk_rounds = walks.stats.rounds;

  // 2. Node-local hit detection: earliest visit step among nodes holding
  //    the key (walk index breaks ties implicitly through the step value).
  std::vector<std::uint64_t> local_hit(n, FirstHitConvergecast::kNoHit);
  for (NodeId v = 0; v < n; ++v) {
    const auto& store = replicas[v];
    if (std::find(store.begin(), store.end(), key) == store.end()) continue;
    for (const core::WalkPosition& p : walks.positions[v]) {
      local_hit[v] = std::min(local_hit[v], p.step);
    }
  }

  // 3. Report the first hit back to the querying node.
  congest::BfsTree tree = congest::build_bfs_tree(net, source, result.stats);
  FirstHitConvergecast report(tree, std::move(local_hit));
  result.stats += net.run(report);

  if (report.root_step() != FirstHitConvergecast::kNoHit) {
    result.found = true;
    result.holder = report.root_holder();
    result.first_hit_step = report.root_step();
  }
  return result;
}

}  // namespace drw::apps
