#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "resil/failpoint.hpp"

namespace drw::net {
namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: not an IPv4 address: " + host);
  }
  return addr;
}

/// poll() one fd for `events`, retrying EINTR against the original
/// deadline. Returns false on timeout.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// Every data socket runs non-blocking: send/recv return EAGAIN instead of
/// blocking, so the poll() in send_all/recv_all is the ONLY place a thread
/// waits -- and it always carries the io timeout. A blocking socket would
/// make send_all's timeout dead code (::send just parks until the peer
/// drains its receive window).
void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    throw std::runtime_error(std::string("net: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("net: bind " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(s.fd(), backlog) != 0) {
    throw std::runtime_error(std::string("net: listen: ") +
                             std::strerror(errno));
  }
  return s;
}

std::uint16_t local_port(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    throw std::runtime_error(std::string("net: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr = make_addr(host.empty() ? "127.0.0.1" : host, port);
  // Non-blocking connect so the timeout actually binds; the socket STAYS
  // non-blocking for its lifetime (see set_nonblocking).
  set_nonblocking(s.fd());
  const int rc =
      ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    throw std::runtime_error("net: connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (rc != 0) {
    if (!wait_fd(s.fd(), POLLOUT, timeout_ms)) {
      throw std::runtime_error("net: connect " + host + ":" +
                               std::to_string(port) + ": timeout");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw std::runtime_error("net: connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
    }
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Socket accept_one(Socket& listener, int wake_fd, int timeout_ms) {
  pollfd pfds[2];
  pfds[0] = {listener.fd(), POLLIN, 0};
  nfds_t n = 1;
  if (wake_fd >= 0) {
    pfds[1] = {wake_fd, POLLIN, 0};
    n = 2;
  }
  const int rc = ::poll(pfds, n, timeout_ms);
  if (rc <= 0) return Socket();                       // timeout / EINTR
  if (n == 2 && (pfds[1].revents & POLLIN)) return Socket();  // woken
  if (!(pfds[0].revents & POLLIN)) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();  // transient (peer gone, fd pressure)
  Socket s(fd);
  if (resil::failpoint("net.accept")) return Socket();  // injected drop
  set_nonblocking(s.fd());
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

bool send_all(Socket& s, const void* data, std::size_t n, int timeout_ms) {
  const char* p = static_cast<const char*>(data);
  if (resil::failpoint("net.write")) {
    // Torn write: push out half the bytes, then report the send failed.
    // The peer sees a truncated frame; its read_frame fails cleanly.
    n /= 2;
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(s.fd(), p + sent, n - sent, MSG_NOSIGNAL);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!wait_fd(s.fd(), POLLOUT, timeout_ms)) break;
        continue;
      }
      break;
    }
    return false;
  }
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(s.fd(), p + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(s.fd(), POLLOUT, timeout_ms)) return false;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool recv_all(Socket& s, void* data, std::size_t n, int timeout_ms) {
  if (resil::failpoint("net.read")) return false;
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    if (!wait_fd(s.fd(), POLLIN, timeout_ms)) return false;
    const ssize_t r = ::recv(s.fd(), p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;  // EOF or hard error
  }
  return true;
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) {
    fds_[0] = fds_[1] = -1;
    return;
  }
  for (int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

WakePipe::~WakePipe() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void WakePipe::wake() noexcept {
  if (fds_[1] >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; a full pipe means a wake is already
    // pending, which is all we need.
    [[maybe_unused]] const ssize_t rc = ::write(fds_[1], &byte, 1);
  }
}

}  // namespace drw::net
