#include "net/frame.hpp"

#include <cstring>

namespace drw::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked little-endian reader over [p, p + n).
struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint8_t u8() {
    if (left < 1) {
      ok = false;
      return 0;
    }
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  bool done() const { return ok && left == 0; }
};

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(13 + f.klass.size() + 8);
  put_u32(out, f.version);
  put_u8(out, static_cast<std::uint8_t>(
                  f.klass.size() > 255 ? 255 : f.klass.size()));
  for (std::size_t i = 0; i < f.klass.size() && i < 255; ++i) {
    out.push_back(static_cast<std::uint8_t>(f.klass[i]));
  }
  put_u64(out, f.node_count);
  return out;
}

std::vector<std::uint8_t> encode_request(const RequestFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(33);
  put_u64(out, f.tag);
  put_u64(out, f.source);
  put_u64(out, f.length);
  put_u32(out, f.count);
  put_u32(out, f.deadline_ms);
  put_u8(out, f.record ? 1 : 0);
  return out;
}

std::vector<std::uint8_t> encode_response(const ResponseFrame& f) {
  std::vector<std::uint8_t> out;
  std::size_t path_nodes = 0;
  for (const auto& path : f.paths) path_nodes += path.size();
  out.reserve(26 + 4 * f.destinations.size() + 4 * f.paths.size() +
              4 * path_nodes);
  put_u64(out, f.tag);
  put_u64(out, f.admission_index);
  put_u8(out, f.status);
  put_u8(out, f.record ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(f.destinations.size()));
  for (std::uint32_t d : f.destinations) put_u32(out, d);
  put_u32(out, static_cast<std::uint32_t>(f.paths.size()));
  for (const auto& path : f.paths) {
    put_u32(out, static_cast<std::uint32_t>(path.size()));
    for (std::uint32_t node : path) put_u32(out, node);
  }
  return out;
}

std::optional<HelloFrame> decode_hello(const std::uint8_t* p, std::size_t n) {
  Reader r{p, n};
  HelloFrame f;
  f.version = r.u32();
  const std::uint8_t len = r.u8();
  if (r.left < len) return std::nullopt;
  f.klass.assign(reinterpret_cast<const char*>(r.p), len);
  r.p += len;
  r.left -= len;
  f.node_count = r.u64();
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<RequestFrame> decode_request(const std::uint8_t* p,
                                           std::size_t n) {
  Reader r{p, n};
  RequestFrame f;
  f.tag = r.u64();
  f.source = r.u64();
  f.length = r.u64();
  f.count = r.u32();
  f.deadline_ms = r.u32();
  f.record = r.u8() != 0;
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<ResponseFrame> decode_response(const std::uint8_t* p,
                                             std::size_t n) {
  Reader r{p, n};
  ResponseFrame f;
  f.tag = r.u64();
  f.admission_index = r.u64();
  f.status = r.u8();
  f.record = r.u8() != 0;
  const std::uint32_t n_dest = r.u32();
  if (!r.ok || r.left < std::size_t{n_dest} * 4) return std::nullopt;
  f.destinations.resize(n_dest);
  for (std::uint32_t i = 0; i < n_dest; ++i) f.destinations[i] = r.u32();
  // Each path needs at least its 4-byte length word, so a count beyond
  // left/4 is a lie -- reject it BEFORE resizing, or a tiny forged frame
  // could make us allocate ~n_paths empty vectors up front.
  const std::uint32_t n_paths = r.u32();
  if (!r.ok || n_paths > r.left / 4) return std::nullopt;
  f.paths.resize(n_paths);
  for (std::uint32_t i = 0; i < n_paths; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok || r.left < std::size_t{len} * 4) return std::nullopt;
    f.paths[i].resize(len);
    for (std::uint32_t j = 0; j < len; ++j) f.paths[i][j] = r.u32();
  }
  if (!r.done()) return std::nullopt;
  return f;
}

bool write_frame(Socket& s, FrameType type,
                 const std::vector<std::uint8_t>& payload, int timeout_ms) {
  if (payload.size() > kMaxFramePayload) return false;
  std::vector<std::uint8_t> header;
  header.reserve(5);
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u8(header, static_cast<std::uint8_t>(type));
  if (!send_all(s, header.data(), header.size(), timeout_ms)) return false;
  if (payload.empty()) return true;
  return send_all(s, payload.data(), payload.size(), timeout_ms);
}

bool read_frame(Socket& s, FrameType* type,
                std::vector<std::uint8_t>* payload, int timeout_ms) {
  std::uint8_t header[5];
  if (!recv_all(s, header, sizeof(header), timeout_ms)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(header[i]) << (8 * i);
  const std::uint8_t raw_type = header[4];
  if (len > kMaxFramePayload) return false;
  if (raw_type < 1 || raw_type > 3) return false;
  payload->resize(len);
  if (len != 0 && !recv_all(s, payload->data(), len, timeout_ms)) {
    return false;
  }
  *type = static_cast<FrameType>(raw_type);
  return true;
}

}  // namespace drw::net
