// drw::net framing -- the length-prefixed wire protocol of `drw serve
// --listen` / `drw request`.
//
// Every frame is:
//
//   u32 payload_len (little-endian) | u8 type | payload[payload_len]
//
// with payload_len capped at kMaxFramePayload so a hostile or corrupt
// length prefix cannot drive an allocation. All integers are
// little-endian, fixed width; node ids travel in the USER id space (the
// server translates to/from its internal relabeled space).
//
// Frame types:
//
//   HELLO (1), both directions. Client -> server first:
//       u32 version | u8 class_len | class bytes
//     The class names the client's admission class ("light", "flood",
//     ...) -- it selects the deficit-round-robin quantum its requests
//     drain under. Server replies:
//       u32 version | u64 node_count
//
//   REQUEST (2), client -> server:
//       u64 tag | u64 source | u64 length | u32 count | u32 deadline_ms
//       | u8 record
//     `tag` is an opaque client correlation id echoed in the response;
//     deadline_ms (0 = none) is relative to server-side arrival.
//
//   RESPONSE (3), server -> client:
//       u64 tag | u64 admission_index | u8 status | u8 record
//       | u32 n_destinations | n x u32 destination
//       | u32 n_paths | per path: u32 len | len x u32 node
//     admission_index is the server's global admitted-order position
//     (~0 = rejected before admission: queue full, deadline, invalid
//     source); it keys byte-for-byte comparison against an in-process
//     replay of the admission log. `status` is a service::RequestStatus.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace drw::net {

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;
inline constexpr std::uint64_t kNotAdmitted = ~std::uint64_t{0};

enum class FrameType : std::uint8_t {
  kHello = 1,
  kRequest = 2,
  kResponse = 3,
};

struct HelloFrame {
  std::uint32_t version = kProtocolVersion;
  std::string klass;        ///< client -> server: admission class name
  std::uint64_t node_count = 0;  ///< server -> client: served graph size
};

struct RequestFrame {
  std::uint64_t tag = 0;
  std::uint64_t source = 0;  ///< user id space
  std::uint64_t length = 0;
  std::uint32_t count = 1;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  bool record = false;
};

struct ResponseFrame {
  std::uint64_t tag = 0;
  std::uint64_t admission_index = kNotAdmitted;
  std::uint8_t status = 0;  ///< service::RequestStatus
  bool record = false;
  std::vector<std::uint32_t> destinations;            ///< user id space
  std::vector<std::vector<std::uint32_t>> paths;      ///< user id space
};

std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
std::vector<std::uint8_t> encode_request(const RequestFrame& f);
std::vector<std::uint8_t> encode_response(const ResponseFrame& f);

/// Decoders return nullopt on any structural violation (truncated payload,
/// trailing bytes, count overflows) -- a malformed frame never becomes a
/// partially-filled struct.
std::optional<HelloFrame> decode_hello(const std::uint8_t* p, std::size_t n);
std::optional<RequestFrame> decode_request(const std::uint8_t* p,
                                           std::size_t n);
std::optional<ResponseFrame> decode_response(const std::uint8_t* p,
                                             std::size_t n);

/// Writes one frame (header + payload) with send_all semantics.
bool write_frame(Socket& s, FrameType type,
                 const std::vector<std::uint8_t>& payload, int timeout_ms);

/// Reads one frame. Returns false on EOF, timeout, an oversized length
/// prefix, or an unknown type byte; *type / *payload are only valid on
/// true.
bool read_frame(Socket& s, FrameType* type,
                std::vector<std::uint8_t>* payload, int timeout_ms);

}  // namespace drw::net
