// drw::net -- minimal POSIX TCP plumbing for the always-on walk server.
//
// Everything here is deliberately boring: RAII fds, non-blocking data
// sockets (accept_one and tcp_connect both set O_NONBLOCK for the life of
// the socket) with poll()-based timeouts on every wait -- a stuck peer
// must never wedge a reader or writer thread forever; a full send buffer
// surfaces as EAGAIN and the poll carries the timeout, so a dead client
// marks its connection dead instead of parking ::send -- and a self-pipe
// so an async-signal-safe
// request_stop() can wake a poll()ing accept loop. Failpoint sites
// ("net.accept", "net.read", "net.write" -- see resil/failpoint.hpp) are
// planted on each path so the crash harness and tests can inject
// connection-level faults against the real server.
//
// The framing protocol built on top lives in net/frame.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace drw::net {

/// RAII file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// shutdown(SHUT_RD): wakes a peer thread blocked in recv/poll on this
  /// socket without closing the fd out from under it (the clean-shutdown
  /// path stops readers this way, then lets writers finish).
  void shutdown_read() noexcept;
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral; read the real one
/// back with local_port). Throws std::runtime_error on failure.
Socket tcp_listen(const std::string& host, std::uint16_t port,
                  int backlog = 64);

/// The locally bound port of a listening (or connected) socket.
std::uint16_t local_port(const Socket& s);

/// Connects with a timeout. Throws std::runtime_error on failure/timeout.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   int timeout_ms);

/// Waits for one connection on `listener`, also watching `wake_fd` (< 0 =
/// none; typically WakePipe::read_fd). Returns an invalid Socket on
/// timeout, wake, or transient accept failure. Failpoint "net.accept"
/// (short_write action drops the accepted connection).
Socket accept_one(Socket& listener, int wake_fd, int timeout_ms);

/// Fully sends / receives exactly n bytes, poll()ing with `timeout_ms` per
/// wait. Returns false on EOF, timeout, or error -- the caller treats the
/// connection as dead; no partial-progress state escapes. Failpoints
/// "net.write" (short_write truncates the send and reports failure, so the
/// peer sees a torn frame) and "net.read" (short_write fails the read).
bool send_all(Socket& s, const void* data, std::size_t n, int timeout_ms);
bool recv_all(Socket& s, void* data, std::size_t n, int timeout_ms);

/// Self-pipe (both ends non-blocking). wake() is async-signal-safe: a
/// SIGTERM handler calls it to break the accept loop out of poll().
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;
  void wake() noexcept;
  int read_fd() const noexcept { return fds_[0]; }

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace drw::net
