// Parameterization of the stitched random-walk algorithms.
//
// The paper's algorithm (Theorem 2.5) sets lambda = 24*sqrt(l*D)*(log n)^3
// and eta = 1 with eta*deg(v) short walks prepared per node. Its PODC 2009
// predecessor (Section 2.1's recap) uses fixed-length short walks, a flat
// eta per node, and balances lambda = l^{1/3} D^{2/3}, eta = (l/D)^{1/3}
// for an O~(l^{2/3} D^{1/3}) bound. Both are expressed as presets of one
// Params struct so ablations (E11) can toggle a single knob at a time.
//
// The theory constants exceed l itself for any simulatable n, so the default
// presets drop the polylog factor (`lambda_scale` multiplies sqrt(l*D)); the
// algorithms stay Las Vegas regardless -- parameter choice only affects the
// round count, never the output distribution. Pass `theory_constants = true`
// to reproduce the paper's literal choice.
#pragma once

#include <cstdint>

#include "graph/transition.hpp"

namespace drw::core {

enum class Preset : std::uint8_t {
  kPaper,   ///< PODC 2010: random lengths in [lambda, 2*lambda), eta*deg(v)
  kPodc09,  ///< PODC 2009 baseline: fixed length lambda, flat eta per node
};

struct Params {
  Preset preset = Preset::kPaper;

  /// Markov chain the walk follows (Section 1.3 notes the framework extends
  /// beyond the simple walk; kLazy makes mixing well-defined on bipartite
  /// graphs, kMetropolisUniform removes degree bias from node sampling).
  /// Walk regeneration (record_trajectories) currently requires kSimple.
  TransitionModel transition = TransitionModel::kSimple;

  /// Multiplier applied to the preset's lambda formula.
  double lambda_scale = 1.0;

  /// Walks prepared per node in Phase 1: eta * deg(v) for the paper preset,
  /// eta for podc09 (Algorithm 1 header / Section 2.1).
  double eta = 1.0;

  /// Random short-walk lengths in [lambda, 2*lambda) (the paper's key fix
  /// for connector periodicity, Lemma 2.7). podc09 uses fixed lambda.
  bool random_lengths = true;

  /// Paper preset only: prepare eta * deg(v) walks per node (Algorithm 1
  /// header). Set false (ablation E11b) to prepare a flat eta per node
  /// instead -- under-provisioning high-degree nodes, which the walk visits
  /// proportionally more often (Lemma 2.6).
  bool degree_proportional = true;

  /// Use the paper's literal constants (24 sqrt(lD) (log n)^3 etc.).
  bool theory_constants = false;

  /// Record walk trajectories so the full walk can be regenerated
  /// (Section 2.2); costs memory proportional to total token hops.
  bool record_trajectories = false;

  /// Fixed lambda override (0 = use the preset formula).
  std::uint32_t lambda_override = 0;

  static Params paper() { return Params{}; }

  static Params podc09() {
    Params p;
    p.preset = Preset::kPodc09;
    p.random_lengths = false;
    return p;
  }

  /// Short-walk length lambda for a single walk of length l on a graph with
  /// n nodes and diameter D (Theorem 2.5 parameterization).
  std::uint32_t lambda_single(std::uint64_t l, std::uint32_t diameter,
                              std::size_t n) const;

  /// Lambda for k simultaneous walks (MANY-RANDOM-WALKS parameterization).
  std::uint32_t lambda_many(std::uint64_t k, std::uint64_t l,
                            std::uint32_t diameter, std::size_t n) const;

  /// Number of Phase-1 walks prepared by a node of degree `deg` for a
  /// target walk of length l on a graph of diameter D. The paper preset
  /// prepares eta * deg(v) walks (eta = 1 suffices by Theorem 2.5); the
  /// PODC 2009 preset prepares a flat eta_09 = eta * (l / D)^{1/3} walks per
  /// node, the balance that yields its O~(l^{2/3} D^{1/3}) bound.
  std::uint32_t walks_per_node(std::uint32_t deg, std::uint64_t l,
                               std::uint32_t diameter) const;

  /// Number of fresh walks GET-MORE-WALKS creates (Algorithm 2: floor(l /
  /// lambda) for the paper preset; eta_09 for podc09).
  std::uint32_t get_more_walks_count(std::uint64_t l, std::uint32_t lambda,
                                     std::uint32_t diameter) const;
};

}  // namespace drw::core
