// Public API of the paper's core contribution.
//
//   * single_random_walk  -- Algorithm 1 / Theorem 2.5: an l-step walk from s
//     in O~(sqrt(l D)) rounds. Las Vegas: the returned destination is an
//     exact sample from the l-step walk distribution.
//   * many_random_walks   -- Section 2.3 / Theorem 2.8: k walks in
//     O~(min(sqrt(k l D) + k, k + l)) rounds (naive fallback included).
//   * naive_random_walk   -- the l-round token-forwarding baseline.
//   * StitchEngine        -- the underlying engine (Phase 1 preparation +
//     per-walk stitching), exposed for applications that amortize Phase 1
//     across walks (RST, mixing-time estimation) and for the benchmarks.
//
// All functions take the network's diameter as an input; the paper assumes
// it is known (it can be obtained in O(D) rounds by two BFS sweeps, which is
// asymptotically free next to any of these algorithms).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "core/params.hpp"
#include "core/protocols.hpp"
#include "core/walk_state.hpp"

namespace drw::core {

/// Per-walk instrumentation (experiment counters for E1-E5, E11).
struct WalkCounters {
  std::uint32_t lambda = 0;            ///< short-walk base length used
  std::uint64_t walks_prepared = 0;    ///< Phase-1 short walks created
  std::uint64_t stitches = 0;          ///< connector hand-offs (Phase 2)
  std::uint64_t sample_calls = 0;      ///< SAMPLE-DESTINATION invocations
  std::uint64_t get_more_walks_calls = 0;
  std::uint64_t naive_tail_steps = 0;  ///< final "walk naively" steps
  congest::RunStats phase1;            ///< Phase-1 rounds/messages
  congest::RunStats phase2;            ///< stitching rounds/messages
  congest::RunStats regen;             ///< regeneration rounds/messages

  WalkCounters& operator+=(const WalkCounters& other) noexcept;
};

struct WalkResult {
  NodeId destination = kInvalidNode;
  congest::RunStats stats;   ///< total rounds/messages for this walk
  WalkCounters counters;
};

/// The stitching engine: owns the distributed walk store, trajectories and
/// positions across one `prepare()` + several `walk()` calls.
class StitchEngine {
 public:
  StitchEngine(congest::Network& net, Params params, std::uint32_t diameter);

  /// The network this engine stitches on (the mux scheduler drives group
  /// runs through it directly).
  congest::Network& network() noexcept { return *net_; }

  /// Phase 1: prepares short walks sized for `k` walks of length `l`
  /// (Theorem 2.5 for k == 1, MANY-RANDOM-WALKS otherwise). Resets all
  /// engine state. If the resulting lambda exceeds l, the engine enters
  /// naive mode (Section 2.3's fallback) and prepares nothing.
  void prepare(std::uint64_t k, std::uint64_t l);

  bool naive_mode() const noexcept { return naive_mode_; }
  std::uint32_t lambda() const noexcept { return lambda_; }
  bool prepared() const noexcept { return prepared_; }
  std::uint64_t prepared_l() const noexcept { return prepared_l_; }
  std::uint64_t prepared_k() const noexcept { return prepared_k_; }

  /// Phase 2: one l-step walk from `source`, stitching prepared short walks
  /// (or walking naively in naive mode). `walk_id` tags recorded positions.
  /// `record_positions` lets a caller opt a single walk out of position
  /// recording + regeneration even when the engine records trajectories
  /// (the serving layer's per-request `record_positions` flag); it is a
  /// no-op when the engine does not record.
  WalkResult walk(NodeId source, std::uint64_t l, std::uint32_t walk_id = 0,
                  bool record_positions = true);

  /// Continues a logical walk whose first `start_step` steps were produced
  /// earlier (possibly by a previous engine): performs l further steps from
  /// `source`, recording positions offset by start_step. Used by the RST
  /// application, where the Aldous-Broder walk must be *extended* across
  /// doubling phases -- restarting and conditioning on covering would bias
  /// the tree distribution.
  WalkResult continue_walk(NodeId source, std::uint64_t l,
                           std::uint32_t walk_id, std::uint64_t start_step);

  /// Like walk(), but defers the final naive tail (the "walk naively until l
  /// steps are completed" segment): the result's destination is the LAST
  /// CONNECTOR until run_deferred_tails() finishes the tails of all deferred
  /// walks concurrently. MANY-RANDOM-WALKS needs this to stay within
  /// O~(sqrt(k l D) + k): k sequential tails of up to 2*lambda steps would
  /// cost k*lambda rounds, while the k tail tokens together cost O(k + 2
  /// lambda) (they are independent token walks, exactly like the naive
  /// fallback). The paper's Theorem 2.8 round budget accounts Phase 1 +
  /// stitching only, which is consistent with concurrent tails.
  /// In naive mode the WHOLE walk is deferred as one token job (the
  /// destination is meaningful only after run_deferred_tails()), so a batch
  /// of deferred naive walks costs O(k + l) rounds, not k * l.
  WalkResult walk_deferring_tail(NodeId source, std::uint64_t l,
                                 std::uint32_t walk_id,
                                 bool record_positions = true);

  /// Completes all deferred tails in one protocol run; returns the final
  /// destination per deferred walk_id plus the stats. Jobs run in
  /// ascending-walk_id order -- the canonical order is what keeps the
  /// shared-stream tail draws independent of the mux scheduler's task
  /// completion order (legacy callers already defer in walk_id order, so
  /// the sort is a no-op for them).
  struct TailOutcome {
    std::vector<std::uint32_t> walk_ids;
    std::vector<NodeId> destinations;
    congest::RunStats stats;
  };
  TailOutcome run_deferred_tails();

  // --- Concurrent stitching (congest::ProtocolMux scheduling) ------------

  /// A resumable per-walk stitch driver: the Phase-2 loop of walk_impl
  /// unrolled into a state machine that exposes each traversal
  /// (BFS-to-connector, sample convergecast, GET-MORE-WALKS, commit
  /// broadcast) as a Protocol the caller runs -- solo or as one lane of a
  /// ProtocolMux -- and then feeds back via advance(). All randomness is
  /// drawn from the task's own per-node lane streams (keyed by walk_id
  /// from the network seed), so the walk's outcome is independent of which
  /// other walks it was co-scheduled with; cross-walk coupling through the
  /// short-walk store is confined to the per-connector token pools, which
  /// is exactly what the scheduler's connector-conflict rule serializes.
  /// The naive tail and regeneration are deferred into the engine's
  /// batched runs (run_deferred_tails / run_deferred_regen).
  class WalkTask {
   public:
    WalkTask(WalkTask&&) = default;
    WalkTask& operator=(WalkTask&&) = default;

    bool finished() const noexcept { return step_ == Step::kDone; }
    /// Conflict key: the walk's current position, i.e. the connector whose
    /// token pool (and BFS root) the next traversal touches.
    NodeId connector() const noexcept { return current_; }
    std::uint32_t walk_id() const noexcept { return walk_id_; }
    /// The next traversal to run (valid while !finished()).
    congest::Protocol& protocol() noexcept { return *protocol_; }
    /// Per-node lane streams for this walk (hand to ProtocolMux::add_lane).
    std::vector<Rng>& lane_rngs() noexcept { return rngs_; }
    /// Consumes the completed traversal's per-lane stats and builds the
    /// next one (or finishes, deferring tail + regeneration jobs).
    void advance(const congest::RunStats& lane_stats);
    /// Valid once finished(). The destination is the last connector until
    /// run_deferred_tails() resolves this walk_id's tail.
    const WalkResult& result() const noexcept { return result_; }

   private:
    friend class StitchEngine;
    enum class Step : std::uint8_t {
      kBfs, kSample, kGetMore, kResample, kCommit, kDone
    };
    struct Segment {
      SampleConvergecast::Candidate token;
      NodeId from = kInvalidNode;
      std::uint64_t offset = 0;
    };

    WalkTask(StitchEngine& engine, NodeId source, std::uint64_t l,
             std::uint32_t walk_id, bool record_positions);
    void begin_stitch_or_finish();
    void finish();

    StitchEngine* engine_ = nullptr;
    NodeId source_ = kInvalidNode;
    std::uint64_t l_ = 0;
    std::uint32_t walk_id_ = 0;
    bool record_ = false;
    Step step_ = Step::kDone;
    NodeId current_ = kInvalidNode;
    std::uint64_t completed_ = 0;
    std::vector<Rng> rngs_;
    std::unique_ptr<congest::Protocol> protocol_;
    /// Heap-held so the address stays stable across WalkTask moves (the
    /// sample/commit protocols keep a pointer into it).
    std::unique_ptr<congest::BfsTree> tree_;
    SampleConvergecast::Candidate candidate_;
    std::vector<Segment> segments_;
    WalkResult result_;
  };

  /// Starts a resumable stitch task (requires a prepared, non-naive
  /// engine; for naive mode use walk_deferring_tail, which already defers
  /// the whole walk as one concurrent token job). The first task created
  /// after prepare() absorbs the pending Phase-1 cost, like walk() does.
  WalkTask start_walk_task(NodeId source, std::uint64_t l,
                           std::uint32_t walk_id, bool record_positions);

  /// Replays every deferred regeneration job (segments of walks finished
  /// via WalkTask with record_positions) in one protocol run, in canonical
  /// ascending-walk_id order. No-op without record_trajectories.
  congest::RunStats run_deferred_regen();

  /// Folds an externally driven run's cost (a mux group the scheduler ran
  /// through Network::run_multiplexed) into total_stats().
  void absorb_stats(const congest::RunStats& stats) { total_ += stats; }

  /// Positions recorded so far (non-empty only when
  /// params.record_trajectories was set). positions()[v] lists (walk_id,
  /// step) pairs: node v was at step `step` of walk `walk_id`.
  const PositionTable& positions() const noexcept { return positions_; }

  /// Cumulative stats over prepare() + all walk() calls.
  const congest::RunStats& total_stats() const noexcept { return total_; }

  /// Times each node served as a connector (stitch point) since the last
  /// prepare(); instruments Lemma 2.7 / experiment E5.
  const std::vector<std::uint64_t>& connector_visits() const noexcept {
    return connector_visits_;
  }
  std::uint64_t max_connector_visits() const noexcept;

  // --- Serving-layer hooks (src/service) ---------------------------------
  // The service keeps one engine's short-walk store alive across many
  // batches instead of discarding it per prepare(); these hooks expose the
  // inventory, accept external replenishment, and let the prepared envelope
  // be retargeted without re-running Phase 1.

  /// Read access to the distributed short-walk store (the inventory).
  const WalkStore& store() const noexcept { return store_; }

  /// Read access to the routing records (snapshot serialization).
  const TrajectoryStore& trajectories() const noexcept {
    return trajectories_;
  }

  /// Restores connector-visit counters captured by a snapshot (adopt_state
  /// zeroes them; a warm restart needs the pre-crash values because the
  /// inventory's demand diffs against them). Size must match the network.
  void restore_connector_visits(std::vector<std::uint64_t> visits);

  /// Unused short-walk tokens per source node (one scan of the store).
  std::vector<std::uint64_t> unused_counts_by_source() const;

  /// External replenishment: adds `count` fresh short walks from `source`
  /// via GET-MORE-WALKS (Algorithm 2 as a stand-alone top-up, O(lambda)
  /// rounds) without stitching anything. Requires a prepared, non-naive
  /// engine. Returns the rounds/messages spent.
  congest::RunStats replenish(NodeId source, std::uint32_t count);

  /// Retargets the prepared envelope to k walks of length <= l WITHOUT
  /// discarding the store -- the persistent-inventory alternative to
  /// prepare(). Lambda is kept; walks shorter than 2*lambda simply run as
  /// naive tails (still exact samples). Requires a prepared, non-naive
  /// engine.
  void adopt_plan(std::uint64_t k, std::uint64_t l);

  /// The engine's distributed walk state, movable between engines so a
  /// serving layer can persist the inventory beyond one engine's lifetime.
  struct EngineState {
    WalkStore store{0};
    TrajectoryStore trajectories{0};
    std::uint32_t lambda = 0;
    std::uint64_t prepared_l = 0;
    std::uint64_t prepared_k = 1;
  };
  /// Moves the state out, leaving the engine unprepared.
  EngineState release_state();
  /// Adopts previously released state: the engine becomes prepared without
  /// running Phase 1. The state's node count must match the network.
  void adopt_state(EngineState state);

  /// Drains recorded positions (move + reset), bounding position-table
  /// growth across serving batches. Empty unless record_trajectories.
  PositionTable drain_positions();

 private:
  WalkResult naive_walk_result(NodeId source, std::uint64_t l,
                               std::uint32_t walk_id, bool record_start,
                               bool record_positions);
  WalkResult walk_impl(NodeId source, std::uint64_t l, std::uint32_t walk_id,
                       bool defer_tail, std::uint64_t start_step = 0,
                       bool record_positions = true);

  congest::Network* net_;
  Params params_;
  std::uint32_t diameter_;
  std::uint32_t lambda_ = 0;
  bool naive_mode_ = false;
  bool prepared_ = false;
  std::uint64_t prepared_l_ = 0;
  std::uint64_t prepared_k_ = 1;
  WalkStore store_;
  TrajectoryStore trajectories_;
  PositionTable positions_;
  congest::RunStats total_;
  congest::RunStats pending_phase1_;   ///< Phase-1 cost, charged to next walk
  std::uint64_t pending_prepared_ = 0;
  std::vector<std::uint64_t> connector_visits_;
  std::vector<NaiveSegmentProtocol::Job> deferred_tails_;
  std::vector<RegenerateProtocol::ForwardJob> deferred_forward_;
  std::vector<RegenerateProtocol::ReverseJob> deferred_reverse_;
};

/// Theorem 2.5: one walk of length l from `source`. Positions are recorded
/// into the result only when params.record_trajectories is set.
struct SingleWalkOutput {
  WalkResult result;
  PositionTable positions;
};
SingleWalkOutput single_random_walk(congest::Network& net, NodeId source,
                                    std::uint64_t l, const Params& params,
                                    std::uint32_t diameter);

/// The naive baseline: token forwarding for l rounds (1-RW-DoS: the
/// destination learns the source's ID directly from the token).
WalkResult naive_random_walk(
    congest::Network& net, NodeId source, std::uint64_t l,
    TransitionModel model = TransitionModel::kSimple);

/// Theorem 2.8: k walks of length l from `sources` (not necessarily
/// distinct). Falls back to k parallel naive tokens when lambda > l.
struct ManyWalksOutput {
  std::vector<NodeId> destinations;
  congest::RunStats stats;
  WalkCounters counters;
  bool used_naive_fallback = false;
  PositionTable positions;
};
ManyWalksOutput many_random_walks(congest::Network& net,
                                  std::span<const NodeId> sources,
                                  std::uint64_t l, const Params& params,
                                  std::uint32_t diameter);

}  // namespace drw::core
