// Public API of the paper's core contribution.
//
//   * single_random_walk  -- Algorithm 1 / Theorem 2.5: an l-step walk from s
//     in O~(sqrt(l D)) rounds. Las Vegas: the returned destination is an
//     exact sample from the l-step walk distribution.
//   * many_random_walks   -- Section 2.3 / Theorem 2.8: k walks in
//     O~(min(sqrt(k l D) + k, k + l)) rounds (naive fallback included).
//   * naive_random_walk   -- the l-round token-forwarding baseline.
//   * StitchEngine        -- the underlying engine (Phase 1 preparation +
//     per-walk stitching), exposed for applications that amortize Phase 1
//     across walks (RST, mixing-time estimation) and for the benchmarks.
//
// All functions take the network's diameter as an input; the paper assumes
// it is known (it can be obtained in O(D) rounds by two BFS sweeps, which is
// asymptotically free next to any of these algorithms).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "core/protocols.hpp"
#include "core/walk_state.hpp"

namespace drw::core {

/// Per-walk instrumentation (experiment counters for E1-E5, E11).
struct WalkCounters {
  std::uint32_t lambda = 0;            ///< short-walk base length used
  std::uint64_t walks_prepared = 0;    ///< Phase-1 short walks created
  std::uint64_t stitches = 0;          ///< connector hand-offs (Phase 2)
  std::uint64_t sample_calls = 0;      ///< SAMPLE-DESTINATION invocations
  std::uint64_t get_more_walks_calls = 0;
  std::uint64_t naive_tail_steps = 0;  ///< final "walk naively" steps
  congest::RunStats phase1;            ///< Phase-1 rounds/messages
  congest::RunStats phase2;            ///< stitching rounds/messages
  congest::RunStats regen;             ///< regeneration rounds/messages

  WalkCounters& operator+=(const WalkCounters& other) noexcept;
};

struct WalkResult {
  NodeId destination = kInvalidNode;
  congest::RunStats stats;   ///< total rounds/messages for this walk
  WalkCounters counters;
};

/// The stitching engine: owns the distributed walk store, trajectories and
/// positions across one `prepare()` + several `walk()` calls.
class StitchEngine {
 public:
  StitchEngine(congest::Network& net, Params params, std::uint32_t diameter);

  /// Phase 1: prepares short walks sized for `k` walks of length `l`
  /// (Theorem 2.5 for k == 1, MANY-RANDOM-WALKS otherwise). Resets all
  /// engine state. If the resulting lambda exceeds l, the engine enters
  /// naive mode (Section 2.3's fallback) and prepares nothing.
  void prepare(std::uint64_t k, std::uint64_t l);

  bool naive_mode() const noexcept { return naive_mode_; }
  std::uint32_t lambda() const noexcept { return lambda_; }
  bool prepared() const noexcept { return prepared_; }
  std::uint64_t prepared_l() const noexcept { return prepared_l_; }
  std::uint64_t prepared_k() const noexcept { return prepared_k_; }

  /// Phase 2: one l-step walk from `source`, stitching prepared short walks
  /// (or walking naively in naive mode). `walk_id` tags recorded positions.
  /// `record_positions` lets a caller opt a single walk out of position
  /// recording + regeneration even when the engine records trajectories
  /// (the serving layer's per-request `record_positions` flag); it is a
  /// no-op when the engine does not record.
  WalkResult walk(NodeId source, std::uint64_t l, std::uint32_t walk_id = 0,
                  bool record_positions = true);

  /// Continues a logical walk whose first `start_step` steps were produced
  /// earlier (possibly by a previous engine): performs l further steps from
  /// `source`, recording positions offset by start_step. Used by the RST
  /// application, where the Aldous-Broder walk must be *extended* across
  /// doubling phases -- restarting and conditioning on covering would bias
  /// the tree distribution.
  WalkResult continue_walk(NodeId source, std::uint64_t l,
                           std::uint32_t walk_id, std::uint64_t start_step);

  /// Like walk(), but defers the final naive tail (the "walk naively until l
  /// steps are completed" segment): the result's destination is the LAST
  /// CONNECTOR until run_deferred_tails() finishes the tails of all deferred
  /// walks concurrently. MANY-RANDOM-WALKS needs this to stay within
  /// O~(sqrt(k l D) + k): k sequential tails of up to 2*lambda steps would
  /// cost k*lambda rounds, while the k tail tokens together cost O(k + 2
  /// lambda) (they are independent token walks, exactly like the naive
  /// fallback). The paper's Theorem 2.8 round budget accounts Phase 1 +
  /// stitching only, which is consistent with concurrent tails.
  /// In naive mode the WHOLE walk is deferred as one token job (the
  /// destination is meaningful only after run_deferred_tails()), so a batch
  /// of deferred naive walks costs O(k + l) rounds, not k * l.
  WalkResult walk_deferring_tail(NodeId source, std::uint64_t l,
                                 std::uint32_t walk_id,
                                 bool record_positions = true);

  /// Completes all deferred tails in one protocol run; returns the final
  /// destination per deferred walk_id (in deferral order) plus the stats.
  struct TailOutcome {
    std::vector<std::uint32_t> walk_ids;
    std::vector<NodeId> destinations;
    congest::RunStats stats;
  };
  TailOutcome run_deferred_tails();

  /// Positions recorded so far (non-empty only when
  /// params.record_trajectories was set). positions()[v] lists (walk_id,
  /// step) pairs: node v was at step `step` of walk `walk_id`.
  const PositionTable& positions() const noexcept { return positions_; }

  /// Cumulative stats over prepare() + all walk() calls.
  const congest::RunStats& total_stats() const noexcept { return total_; }

  /// Times each node served as a connector (stitch point) since the last
  /// prepare(); instruments Lemma 2.7 / experiment E5.
  const std::vector<std::uint64_t>& connector_visits() const noexcept {
    return connector_visits_;
  }
  std::uint64_t max_connector_visits() const noexcept;

  // --- Serving-layer hooks (src/service) ---------------------------------
  // The service keeps one engine's short-walk store alive across many
  // batches instead of discarding it per prepare(); these hooks expose the
  // inventory, accept external replenishment, and let the prepared envelope
  // be retargeted without re-running Phase 1.

  /// Read access to the distributed short-walk store (the inventory).
  const WalkStore& store() const noexcept { return store_; }

  /// Unused short-walk tokens per source node (one scan of the store).
  std::vector<std::uint64_t> unused_counts_by_source() const;

  /// External replenishment: adds `count` fresh short walks from `source`
  /// via GET-MORE-WALKS (Algorithm 2 as a stand-alone top-up, O(lambda)
  /// rounds) without stitching anything. Requires a prepared, non-naive
  /// engine. Returns the rounds/messages spent.
  congest::RunStats replenish(NodeId source, std::uint32_t count);

  /// Retargets the prepared envelope to k walks of length <= l WITHOUT
  /// discarding the store -- the persistent-inventory alternative to
  /// prepare(). Lambda is kept; walks shorter than 2*lambda simply run as
  /// naive tails (still exact samples). Requires a prepared, non-naive
  /// engine.
  void adopt_plan(std::uint64_t k, std::uint64_t l);

  /// The engine's distributed walk state, movable between engines so a
  /// serving layer can persist the inventory beyond one engine's lifetime.
  struct EngineState {
    WalkStore store{0};
    TrajectoryStore trajectories{0};
    std::uint32_t lambda = 0;
    std::uint64_t prepared_l = 0;
    std::uint64_t prepared_k = 1;
  };
  /// Moves the state out, leaving the engine unprepared.
  EngineState release_state();
  /// Adopts previously released state: the engine becomes prepared without
  /// running Phase 1. The state's node count must match the network.
  void adopt_state(EngineState state);

  /// Drains recorded positions (move + reset), bounding position-table
  /// growth across serving batches. Empty unless record_trajectories.
  PositionTable drain_positions();

 private:
  WalkResult naive_walk_result(NodeId source, std::uint64_t l,
                               std::uint32_t walk_id, bool record_start,
                               bool record_positions);
  WalkResult walk_impl(NodeId source, std::uint64_t l, std::uint32_t walk_id,
                       bool defer_tail, std::uint64_t start_step = 0,
                       bool record_positions = true);

  congest::Network* net_;
  Params params_;
  std::uint32_t diameter_;
  std::uint32_t lambda_ = 0;
  bool naive_mode_ = false;
  bool prepared_ = false;
  std::uint64_t prepared_l_ = 0;
  std::uint64_t prepared_k_ = 1;
  WalkStore store_;
  TrajectoryStore trajectories_;
  PositionTable positions_;
  congest::RunStats total_;
  congest::RunStats pending_phase1_;   ///< Phase-1 cost, charged to next walk
  std::uint64_t pending_prepared_ = 0;
  std::vector<std::uint64_t> connector_visits_;
  std::vector<NaiveSegmentProtocol::Job> deferred_tails_;
};

/// Theorem 2.5: one walk of length l from `source`. Positions are recorded
/// into the result only when params.record_trajectories is set.
struct SingleWalkOutput {
  WalkResult result;
  PositionTable positions;
};
SingleWalkOutput single_random_walk(congest::Network& net, NodeId source,
                                    std::uint64_t l, const Params& params,
                                    std::uint32_t diameter);

/// The naive baseline: token forwarding for l rounds (1-RW-DoS: the
/// destination learns the source's ID directly from the token).
WalkResult naive_random_walk(
    congest::Network& net, NodeId source, std::uint64_t l,
    TransitionModel model = TransitionModel::kSimple);

/// Theorem 2.8: k walks of length l from `sources` (not necessarily
/// distinct). Falls back to k parallel naive tokens when lambda > l.
struct ManyWalksOutput {
  std::vector<NodeId> destinations;
  congest::RunStats stats;
  WalkCounters counters;
  bool used_naive_fallback = false;
  PositionTable positions;
};
ManyWalksOutput many_random_walks(congest::Network& net,
                                  std::span<const NodeId> sources,
                                  std::uint64_t l, const Params& params,
                                  std::uint32_t diameter);

}  // namespace drw::core
