#include "core/protocols.hpp"

#include <stdexcept>

namespace drw::core {

namespace {

constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

std::uint64_t fragment_key(NodeId source, std::uint32_t hop) {
  return (static_cast<std::uint64_t>(source) << 32) | hop;
}

}  // namespace

// ----------------------------------------------------------------- Phase 1

ShortWalkPhaseProtocol::ShortWalkPhaseProtocol(const Graph& g,
                                               std::vector<Job> jobs,
                                               WalkStore& store,
                                               TrajectoryStore* trajectories,
                                               TransitionModel model)
    : graph_(&g), jobs_by_node_(g.node_count()), store_(&store),
      trajectories_(trajectories), model_(model),
      staying_(g.node_count()) {
  if (trajectories != nullptr && model != TransitionModel::kSimple) {
    throw std::invalid_argument(
        "ShortWalkPhase: trajectory recording requires the simple walk");
  }
  for (const Job& job : jobs) jobs_by_node_[job.origin].push_back(job);
}

void ShortWalkPhaseProtocol::route(congest::Context& ctx, NodeId source,
                                   std::uint32_t seq, std::uint32_t total,
                                   std::uint32_t remaining,
                                   std::uint32_t arrival_slot) {
  const NodeId v = ctx.self();
  if (remaining == 0) {
    store_->held[v].push_back(HeldToken{source, seq, total, WalkKind::kPhase1,
                                        arrival_slot == kNoSlot ? 0
                                                                : arrival_slot,
                                        false});
    return;
  }
  const std::uint32_t slot = sample_step(ctx.rng(), *graph_, v, model_);
  if (slot == kStaySlot) {
    // Self-loop step: one round elapses, no message travels.
    staying_[v].push_back(
        Pending{source, seq, total, remaining - 1u, arrival_slot});
    ctx.wake_me();
    return;
  }
  if (trajectories_ != nullptr) {
    const std::uint32_t hop = total - remaining;
    trajectories_->forward[v][TrajectoryStore::key(source, seq)].push_back(
        ForwardHop{hop, slot});
  }
  ctx.send(slot, congest::Message{kToken, {source, seq, total,
                                           remaining - 1u}});
}

void ShortWalkPhaseProtocol::on_round(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    for (const Job& job : jobs_by_node_[v]) {
      route(ctx, v, job.seq, job.length, job.length, kNoSlot);
    }
    jobs_by_node_[v].clear();
    return;
  }
  if (!staying_[v].empty()) {
    std::vector<Pending> stayed;
    stayed.swap(staying_[v]);
    for (const Pending& p : stayed) {
      route(ctx, p.source, p.seq, p.total, p.remaining, p.arrival_slot);
    }
  }
  for (const congest::Delivery& d : ctx.inbox()) {
    if (d.msg.type != kToken) continue;
    route(ctx, static_cast<NodeId>(d.msg.f[0]),
          static_cast<std::uint32_t>(d.msg.f[1]),
          static_cast<std::uint32_t>(d.msg.f[2]),
          static_cast<std::uint32_t>(d.msg.f[3]), ctx.slot_of(d.from));
  }
}

// --------------------------------------------------------- GET-MORE-WALKS

GetMoreWalksProtocol::GetMoreWalksProtocol(const Graph& g, NodeId source,
                                           std::uint32_t count,
                                           std::uint32_t lambda, bool extend,
                                           WalkStore& store,
                                           TrajectoryStore* trajectories,
                                           TransitionModel model)
    : graph_(&g), source_(source), initial_count_(count), lambda_(lambda),
      extend_(extend), store_(&store), trajectories_(trajectories),
      model_(model), staying_(g.node_count(), {0, 0}) {
  if (lambda == 0) throw std::invalid_argument("GetMoreWalks: lambda == 0");
  if (trajectories != nullptr && model != TransitionModel::kSimple) {
    throw std::invalid_argument(
        "GetMoreWalks: trajectory recording requires the simple walk");
  }
}

void GetMoreWalksProtocol::process(
    congest::Context& ctx,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& arrivals,
    std::uint32_t steps) {
  const NodeId v = ctx.self();

  // Forwarded-token counts are accumulated across all arrival edges so each
  // neighbor receives at most ONE aggregate message per round ("only the
  // count of the number of walks along an edge are passed to the node across
  // the edge") -- this is what keeps GET-MORE-WALKS congestion-free.
  std::vector<std::uint64_t> per_slot(ctx.degree(), 0);

  for (const auto& [arrival_slot, count] : arrivals) {
    std::uint64_t surviving = count;
    if (steps >= lambda_) {
      if (!extend_) {
        // PODC 2009 preset: all walks have length exactly lambda.
        for (std::uint64_t i = 0; i < count; ++i) {
          store_->held[v].push_back(HeldToken{source_, 0, steps,
                                              WalkKind::kGetMore,
                                              arrival_slot, false});
        }
        continue;
      }
      // Reservoir extension (Algorithm 2, lines 8-10): stop each surviving
      // token with probability 1/(lambda - i) at extension step i.
      const std::uint32_t i = steps - lambda_;
      const double stop_probability = 1.0 / static_cast<double>(lambda_ - i);
      std::uint64_t stopped = 0;
      for (std::uint64_t t = 0; t < count; ++t) {
        if (ctx.rng().next_bool(stop_probability)) ++stopped;
      }
      for (std::uint64_t t = 0; t < stopped; ++t) {
        store_->held[v].push_back(HeldToken{source_, 0, steps,
                                            WalkKind::kGetMore, arrival_slot,
                                            false});
      }
      surviving = count - stopped;
    }
    for (std::uint64_t t = 0; t < surviving; ++t) {
      const std::uint32_t slot = sample_step(ctx.rng(), *graph_, v, model_);
      if (slot == kStaySlot) {
        // Aggregated self-loop: carried locally to the next round.
        ++staying_[v].first;
        staying_[v].second = steps + 1;
        ctx.wake_me();
        continue;
      }
      ++per_slot[slot];
      if (trajectories_ != nullptr) {
        trajectories_->fragments[v][fragment_key(source_, steps)].push_back(
            Fragment{arrival_slot, slot});
      }
    }
  }

  for (std::uint32_t slot = 0; slot < ctx.degree(); ++slot) {
    if (per_slot[slot] == 0) continue;
    ctx.send(slot, congest::Message{kAggregate,
                                    {source_, per_slot[slot], steps + 1u,
                                     0}});
  }
}

void GetMoreWalksProtocol::on_round(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    if (v == source_ && initial_count_ > 0) {
      process(ctx, {{kNoSlot, initial_count_}}, 0);
    }
    return;
  }
  // All same-round arrivals carry the same hop count (the aggregate tokens
  // move in lockstep: one message per edge per round, so nothing queues);
  // locally-stayed tokens from the previous round share that hop count too.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> arrivals;
  std::uint32_t steps = 0;
  bool have_steps = false;
  if (staying_[v].first > 0) {
    steps = staying_[v].second;
    have_steps = true;
    arrivals.emplace_back(kNoSlot, staying_[v].first);
    staying_[v] = {0, 0};
  }
  for (const congest::Delivery& d : ctx.inbox()) {
    if (d.msg.type != kAggregate) continue;
    const auto msg_steps = static_cast<std::uint32_t>(d.msg.f[2]);
    if (have_steps && msg_steps != steps) {
      throw std::logic_error("GetMoreWalks: lockstep violated");
    }
    steps = msg_steps;
    have_steps = true;
    arrivals.emplace_back(ctx.slot_of(d.from), d.msg.f[1]);
  }
  if (!arrivals.empty()) process(ctx, arrivals, steps);
}

// ------------------------------------------------------ sample convergecast

SampleConvergecast::SampleConvergecast(const congest::BfsTree& tree,
                                       const WalkStore& store, NodeId source)
    : tree_(&tree), store_(&store), source_(source) {
  const std::size_t n = store.held.size();
  acc_.resize(n);
  pending_children_.resize(n);
  sent_.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    pending_children_[v] =
        static_cast<std::uint32_t>(tree_->children[v].size());
  }
}

void SampleConvergecast::absorb(congest::Context& ctx,
                                const Candidate& incoming) {
  Candidate& acc = acc_[ctx.self()];
  if (incoming.count == 0) return;
  const std::uint64_t total = acc.count + incoming.count;
  // Weighted reservoir merge: keep the incoming candidate with probability
  // proportional to its group size; the result is uniform over the union.
  const double p = static_cast<double>(incoming.count) /
                   static_cast<double>(total);
  if (acc.count == 0 || ctx.rng().next_bool(p)) {
    const std::uint64_t keep_total = total;
    acc = incoming;
    acc.count = keep_total;
  } else {
    acc.count = total;
  }
}

void SampleConvergecast::maybe_forward(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (sent_[v] || pending_children_[v] != 0 || v == tree_->root) return;
  sent_[v] = 1;
  const Candidate& c = acc_[v];
  ctx.send_to(tree_->parent[v],
              congest::Message{
                  kCandidate,
                  {c.holder, c.count,
                   (static_cast<std::uint64_t>(c.kind) << 32) | c.length,
                   (static_cast<std::uint64_t>(c.seq) << 32) | c.held_index}});
}

void SampleConvergecast::on_round(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    // Sample the node's own candidate uniformly among its unused source-v
    // tokens (reservoir over the scan).
    Candidate own;
    const auto& held = store_->held[v];
    for (std::uint32_t idx = 0; idx < held.size(); ++idx) {
      const HeldToken& t = held[idx];
      if (t.used || t.source != source_) continue;
      ++own.count;
      if (ctx.rng().next_below(own.count) == 0) {
        own.holder = v;
        own.length = t.length;
        own.kind = t.kind;
        own.seq = t.seq;
        own.held_index = idx;
      }
    }
    const std::uint64_t preserved = own.count;
    acc_[v] = own;
    acc_[v].count = preserved;
    maybe_forward(ctx);
    return;
  }
  for (const congest::Delivery& d : ctx.inbox()) {
    if (d.msg.type != kCandidate) continue;
    Candidate incoming;
    incoming.holder = static_cast<NodeId>(d.msg.f[0]);
    incoming.count = d.msg.f[1];
    incoming.kind = static_cast<WalkKind>(d.msg.f[2] >> 32);
    incoming.length = static_cast<std::uint32_t>(d.msg.f[2]);
    incoming.seq = static_cast<std::uint32_t>(d.msg.f[3] >> 32);
    incoming.held_index = static_cast<std::uint32_t>(d.msg.f[3]);
    absorb(ctx, incoming);
    --pending_children_[v];
  }
  maybe_forward(ctx);
}

// ----------------------------------------------------------- naive segment

NaiveSegmentProtocol::NaiveSegmentProtocol(const Graph& g,
                                           std::vector<Job> jobs,
                                           PositionTable* positions,
                                           TransitionModel model)
    : graph_(&g), jobs_(std::move(jobs)), jobs_by_node_(g.node_count()),
      positions_(positions), model_(model), staying_(g.node_count()) {
  destinations_.assign(jobs_.size(), kInvalidNode);
  for (std::uint32_t j = 0; j < jobs_.size(); ++j) {
    jobs_by_node_[jobs_[j].start].push_back(j);
  }
}

void NaiveSegmentProtocol::advance(congest::Context& ctx, std::uint32_t job,
                                   std::uint64_t remaining,
                                   std::uint64_t position) {
  const NodeId v = ctx.self();
  if (positions_ != nullptr && jobs_[job].record) {
    (*positions_)[v].push_back(WalkPosition{jobs_[job].walk_id, position});
  }
  if (remaining == 0) {
    destinations_[job] = v;
    return;
  }
  const std::uint32_t slot = sample_step(ctx.rng(), *graph_, v, model_);
  if (slot == kStaySlot) {
    staying_[v].push_back(Pending{job, remaining - 1, position + 1});
    ctx.wake_me();
    return;
  }
  ctx.send(slot, congest::Message{kStep, {job, remaining - 1, position + 1,
                                          0}});
}

void NaiveSegmentProtocol::on_round(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    for (std::uint32_t j : jobs_by_node_[v]) {
      const Job& job = jobs_[j];
      if (positions_ != nullptr && job.record && job.record_start) {
        (*positions_)[v].push_back(WalkPosition{job.walk_id, job.base_step});
      }
      if (job.steps == 0) {
        destinations_[j] = v;
        continue;
      }
      const std::uint32_t slot = sample_step(ctx.rng(), *graph_, v, model_);
      if (slot == kStaySlot) {
        staying_[v].push_back(
            Pending{j, job.steps - 1, job.base_step + 1});
        ctx.wake_me();
        continue;
      }
      ctx.send(slot, congest::Message{kStep, {j, job.steps - 1,
                                              job.base_step + 1, 0}});
    }
    return;
  }
  if (!staying_[v].empty()) {
    std::vector<Pending> stayed;
    stayed.swap(staying_[v]);
    for (const Pending& p : stayed) {
      advance(ctx, p.job, p.remaining, p.position);
    }
  }
  for (const congest::Delivery& d : ctx.inbox()) {
    if (d.msg.type != kStep) continue;
    advance(ctx, static_cast<std::uint32_t>(d.msg.f[0]), d.msg.f[1],
            d.msg.f[2]);
  }
}

// ------------------------------------------------------------ regeneration

RegenerateProtocol::RegenerateProtocol(const Graph& g,
                                       std::vector<ForwardJob> forward,
                                       std::vector<ReverseJob> reverse,
                                       TrajectoryStore& trajectories,
                                       PositionTable& positions)
    : forward_by_node_(g.node_count()), reverse_by_node_(g.node_count()),
      trajectories_(&trajectories), positions_(&positions) {
  for (const ForwardJob& job : forward) {
    forward_by_node_[job.source].push_back(job);
  }
  for (const ReverseJob& job : reverse) {
    reverse_by_node_[job.holder].push_back(job);
  }
}

void RegenerateProtocol::forward_step(congest::Context& ctx, NodeId source,
                                      std::uint32_t seq, std::uint64_t offset,
                                      std::uint32_t hop,
                                      std::uint32_t walk_id) {
  const NodeId v = ctx.self();
  if (hop > 0) {
    (*positions_)[v].push_back(WalkPosition{walk_id, offset + hop});
  }
  auto& map = trajectories_->forward[v];
  const auto it = map.find(TrajectoryStore::key(source, seq));
  if (it != map.end()) {
    for (const ForwardHop& record : it->second) {
      if (record.hop != hop) continue;
      ctx.send(record.next_slot,
               congest::Message{
                   kForward,
                   {(static_cast<std::uint64_t>(walk_id) << 32) | source, seq,
                    offset, hop + 1u}});
      return;
    }
  }
  // No outgoing record at this hop: v is the walk's endpoint; replay done.
}

void RegenerateProtocol::reverse_step(congest::Context& ctx, NodeId source,
                                      std::uint64_t offset, std::uint32_t hop,
                                      std::uint32_t walk_id,
                                      std::uint32_t via_slot) {
  const NodeId v = ctx.self();
  if (hop > 0) {
    (*positions_)[v].push_back(WalkPosition{walk_id, offset + hop});
  }
  if (hop == 0) return;  // back at the short walk's source
  auto& map = trajectories_->fragments[v];
  const auto it = map.find(fragment_key(source, hop));
  if (it == map.end() || it->second.empty()) {
    throw std::logic_error("RegenerateProtocol: missing fragment");
  }
  // Consume any fragment whose next hop went toward the node we came from;
  // exchangeability of the aggregated tokens makes the choice immaterial.
  auto& fragments = it->second;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (fragments[i].next_slot != via_slot) continue;
    const std::uint32_t prev_slot = fragments[i].prev_slot;
    fragments[i] = fragments.back();
    fragments.pop_back();
    ctx.send(prev_slot,
             congest::Message{
                 kReverse,
                 {(static_cast<std::uint64_t>(walk_id) << 32) | source, 0,
                  offset, hop - 1u}});
    return;
  }
  throw std::logic_error("RegenerateProtocol: no fragment matches edge");
}

void RegenerateProtocol::on_round(congest::Context& ctx) {
  const NodeId v = ctx.self();
  if (ctx.round() == 0) {
    for (const ForwardJob& job : forward_by_node_[v]) {
      forward_step(ctx, job.source, job.seq, job.offset, 0, job.walk_id);
    }
    for (const ReverseJob& job : reverse_by_node_[v]) {
      (*positions_)[v].push_back(
          WalkPosition{job.walk_id, job.offset + job.length});
      if (job.length > 0) {
        ctx.send(job.arrival_slot,
                 congest::Message{
                     kReverse,
                     {(static_cast<std::uint64_t>(job.walk_id) << 32) |
                          job.source,
                      0, job.offset, job.length - 1u}});
      }
    }
    return;
  }
  for (const congest::Delivery& d : ctx.inbox()) {
    const auto walk_id = static_cast<std::uint32_t>(d.msg.f[0] >> 32);
    const auto source = static_cast<NodeId>(d.msg.f[0]);
    if (d.msg.type == kForward) {
      forward_step(ctx, source, static_cast<std::uint32_t>(d.msg.f[1]),
                   d.msg.f[2], static_cast<std::uint32_t>(d.msg.f[3]),
                   walk_id);
    } else if (d.msg.type == kReverse) {
      reverse_step(ctx, source, d.msg.f[2],
                   static_cast<std::uint32_t>(d.msg.f[3]), walk_id,
                   ctx.slot_of(d.from));
    }
  }
}

}  // namespace drw::core
