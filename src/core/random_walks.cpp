#include "core/random_walks.hpp"

#include <algorithm>
#include <stdexcept>

#include "congest/mux.hpp"
#include "congest/primitives.hpp"
#include "obs/trace.hpp"

namespace drw::core {

WalkCounters& WalkCounters::operator+=(const WalkCounters& other) noexcept {
  lambda = other.lambda != 0 ? other.lambda : lambda;
  walks_prepared += other.walks_prepared;
  stitches += other.stitches;
  sample_calls += other.sample_calls;
  get_more_walks_calls += other.get_more_walks_calls;
  naive_tail_steps += other.naive_tail_steps;
  phase1 += other.phase1;
  phase2 += other.phase2;
  regen += other.regen;
  return *this;
}

std::uint64_t StitchEngine::max_connector_visits() const noexcept {
  std::uint64_t best = 0;
  for (std::uint64_t c : connector_visits_) best = std::max(best, c);
  return best;
}

StitchEngine::StitchEngine(congest::Network& net, Params params,
                           std::uint32_t diameter)
    : net_(&net), params_(params), diameter_(diameter),
      store_(net.graph().node_count()),
      trajectories_(net.graph().node_count()) {
  if (params_.record_trajectories &&
      params_.transition != TransitionModel::kSimple) {
    // GET-MORE-WALKS tokens travel as anonymous aggregated counts; their
    // reverse replay relies on every transit being an edge traversal.
    throw std::invalid_argument(
        "StitchEngine: walk regeneration requires the simple walk");
  }
  if (params_.record_trajectories) {
    positions_.resize(net.graph().node_count());
  }
}

void StitchEngine::prepare(std::uint64_t k, std::uint64_t l) {
  obs::Span span(obs::Name::kEnginePrepare, obs::kPidService, 0, k);
  const Graph& g = net_->graph();
  // Reset all distributed walk state; a prepare() starts a fresh epoch.
  store_ = WalkStore(g.node_count());
  trajectories_ = TrajectoryStore(g.node_count());
  if (params_.record_trajectories) {
    positions_.assign(g.node_count(), {});
  }
  prepared_ = true;
  prepared_l_ = l;
  prepared_k_ = std::max<std::uint64_t>(k, 1);
  connector_visits_.assign(g.node_count(), 0);

  lambda_ = k <= 1 ? params_.lambda_single(l, diameter_, g.node_count())
                   : params_.lambda_many(k, l, diameter_, g.node_count());
  // MANY-RANDOM-WALKS: "If lambda > l then run the naive random walk
  // algorithm". The same guard is the right call for a single walk.
  naive_mode_ = lambda_ > l;
  if (naive_mode_) return;

  std::vector<ShortWalkPhaseProtocol::Job> jobs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::uint32_t count =
        params_.walks_per_node(g.degree(v), l, diameter_);
    Rng& rng = net_->node_rng(v);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto extra =
          params_.random_lengths
              ? static_cast<std::uint32_t>(rng.next_below(lambda_))
              : 0u;
      jobs.push_back(ShortWalkPhaseProtocol::Job{v, i, lambda_ + extra});
    }
  }
  const auto prepared_count = static_cast<std::uint64_t>(jobs.size());
  ShortWalkPhaseProtocol phase1(
      g, std::move(jobs), store_,
      params_.record_trajectories ? &trajectories_ : nullptr,
      params_.transition);
  const congest::RunStats stats = net_->run(phase1);
  total_ += stats;
  // Stash Phase-1 cost so the next walk() can report it.
  pending_phase1_ = stats;
  pending_prepared_ = prepared_count;
}

WalkResult StitchEngine::naive_walk_result(NodeId source, std::uint64_t l,
                                           std::uint32_t walk_id,
                                           bool record_start,
                                           bool record_positions) {
  NaiveSegmentProtocol::Job job{source, l, walk_id, 0, record_start};
  NaiveSegmentProtocol protocol(
      net_->graph(), {job},
      params_.record_trajectories && record_positions ? &positions_ : nullptr,
      params_.transition);
  WalkResult result;
  result.stats = net_->run(protocol);
  result.counters.naive_tail_steps = l;
  result.destination = protocol.destinations()[0];
  total_ += result.stats;
  return result;
}

WalkResult StitchEngine::walk(NodeId source, std::uint64_t l,
                              std::uint32_t walk_id, bool record_positions) {
  return walk_impl(source, l, walk_id, /*defer_tail=*/false, 0,
                   record_positions);
}

WalkResult StitchEngine::walk_deferring_tail(NodeId source, std::uint64_t l,
                                             std::uint32_t walk_id,
                                             bool record_positions) {
  return walk_impl(source, l, walk_id, /*defer_tail=*/true, 0,
                   record_positions);
}

WalkResult StitchEngine::continue_walk(NodeId source, std::uint64_t l,
                                       std::uint32_t walk_id,
                                       std::uint64_t start_step) {
  return walk_impl(source, l, walk_id, /*defer_tail=*/false, start_step);
}

std::vector<std::uint64_t> StitchEngine::unused_counts_by_source() const {
  std::vector<std::uint64_t> counts(net_->graph().node_count(), 0);
  for (const auto& held : store_.held) {
    for (const HeldToken& t : held) {
      if (!t.used) ++counts[t.source];
    }
  }
  return counts;
}

congest::RunStats StitchEngine::replenish(NodeId source,
                                          std::uint32_t count) {
  if (!prepared_ || naive_mode_) {
    throw std::logic_error(
        "StitchEngine::replenish: requires a prepared, non-naive engine");
  }
  if (count == 0) return {};
  obs::Span span(obs::Name::kEngineReplenish, obs::kPidService, 0, count);
  GetMoreWalksProtocol more(
      net_->graph(), source, count, lambda_, params_.random_lengths, store_,
      params_.record_trajectories ? &trajectories_ : nullptr,
      params_.transition);
  const congest::RunStats stats = net_->run(more);
  total_ += stats;
  return stats;
}

void StitchEngine::adopt_plan(std::uint64_t k, std::uint64_t l) {
  if (!prepared_ || naive_mode_) {
    throw std::logic_error(
        "StitchEngine::adopt_plan: requires a prepared, non-naive engine");
  }
  prepared_k_ = std::max<std::uint64_t>(k, 1);
  prepared_l_ = l;
}

StitchEngine::EngineState StitchEngine::release_state() {
  if (!prepared_ || naive_mode_) {
    throw std::logic_error(
        "StitchEngine::release_state: requires a prepared, non-naive engine");
  }
  EngineState state;
  state.store = std::move(store_);
  state.trajectories = std::move(trajectories_);
  state.lambda = lambda_;
  state.prepared_l = prepared_l_;
  state.prepared_k = prepared_k_;
  const std::size_t n = net_->graph().node_count();
  store_ = WalkStore(n);
  trajectories_ = TrajectoryStore(n);
  prepared_ = false;
  return state;
}

void StitchEngine::adopt_state(EngineState state) {
  const std::size_t n = net_->graph().node_count();
  if (state.store.held.size() != n ||
      state.trajectories.forward.size() != n) {
    throw std::invalid_argument(
        "StitchEngine::adopt_state: node count mismatch");
  }
  if (state.lambda == 0) {
    throw std::invalid_argument("StitchEngine::adopt_state: lambda == 0");
  }
  store_ = std::move(state.store);
  trajectories_ = std::move(state.trajectories);
  lambda_ = state.lambda;
  prepared_l_ = state.prepared_l;
  prepared_k_ = std::max<std::uint64_t>(state.prepared_k, 1);
  naive_mode_ = false;
  prepared_ = true;
  connector_visits_.assign(n, 0);
  pending_phase1_ = {};
  pending_prepared_ = 0;
}

void StitchEngine::restore_connector_visits(
    std::vector<std::uint64_t> visits) {
  if (visits.size() != net_->graph().node_count()) {
    throw std::invalid_argument(
        "StitchEngine::restore_connector_visits: node count mismatch");
  }
  connector_visits_ = std::move(visits);
}

PositionTable StitchEngine::drain_positions() {
  PositionTable out = std::move(positions_);
  positions_ = PositionTable();
  if (params_.record_trajectories) {
    positions_.resize(net_->graph().node_count());
  }
  return out;
}

StitchEngine::TailOutcome StitchEngine::run_deferred_tails() {
  TailOutcome outcome;
  if (deferred_tails_.empty()) return outcome;
  obs::Span span(obs::Name::kEngineTails, obs::kPidService, 0,
                 deferred_tails_.size());
  // Canonical ascending-walk_id order: tail tokens draw from the SHARED
  // node streams, so the job order must not depend on the mux scheduler's
  // task completion order. Legacy callers defer in walk_id order already
  // (stable: preserves their order).
  std::stable_sort(deferred_tails_.begin(), deferred_tails_.end(),
                   [](const NaiveSegmentProtocol::Job& a,
                      const NaiveSegmentProtocol::Job& b) {
                     return a.walk_id < b.walk_id;
                   });
  for (const auto& job : deferred_tails_) {
    outcome.walk_ids.push_back(job.walk_id);
  }
  NaiveSegmentProtocol protocol(
      net_->graph(), std::move(deferred_tails_),
      params_.record_trajectories ? &positions_ : nullptr,
      params_.transition);
  deferred_tails_.clear();
  outcome.stats = net_->run(protocol);
  outcome.destinations = protocol.destinations();
  total_ += outcome.stats;
  return outcome;
}

// --------------------------------------------------------------- WalkTask

StitchEngine::WalkTask::WalkTask(StitchEngine& engine, NodeId source,
                                 std::uint64_t l, std::uint32_t walk_id,
                                 bool record_positions)
    : engine_(&engine), source_(source), l_(l), walk_id_(walk_id),
      record_(engine.params_.record_trajectories && record_positions),
      current_(source),
      rngs_(congest::ProtocolMux::derive_lane_rngs(
          engine.net_->seed(), walk_id,
          engine.net_->graph().node_count())) {
  result_.counters.lambda = engine.lambda_;
  result_.counters.phase1 = engine.pending_phase1_;
  result_.counters.walks_prepared = engine.pending_prepared_;
  engine.pending_phase1_ = {};
  engine.pending_prepared_ = 0;
  result_.stats += result_.counters.phase1;
  if (record_) {
    engine.positions_[source].push_back(WalkPosition{walk_id, 0});
  }
  begin_stitch_or_finish();
}

void StitchEngine::WalkTask::begin_stitch_or_finish() {
  // "While length of walk completed is at most l - 2*lambda" (Algorithm 1).
  if (completed_ + 2 * static_cast<std::uint64_t>(engine_->lambda_) <= l_) {
    protocol_ = std::make_unique<congest::BfsTreeProtocol>(
        engine_->net_->graph(), current_);
    step_ = Step::kBfs;
  } else {
    finish();
  }
}

void StitchEngine::WalkTask::advance(const congest::RunStats& lane_stats) {
  result_.stats += lane_stats;
  result_.counters.phase2 += lane_stats;
  switch (step_) {
    case Step::kBfs: {
      auto& bfs = static_cast<congest::BfsTreeProtocol&>(*protocol_);
      tree_ = std::make_unique<congest::BfsTree>(bfs.take_tree());
      protocol_ = std::make_unique<SampleConvergecast>(*tree_, engine_->store_,
                                                       current_);
      step_ = Step::kSample;
      break;
    }
    case Step::kSample:
    case Step::kResample: {
      auto& sample = static_cast<SampleConvergecast&>(*protocol_);
      candidate_ = sample.result();
      ++result_.counters.sample_calls;
      if (candidate_.count != 0) {
        // Sweep 3: broadcast down the tree to delete the sampled token at
        // its holder and hand the walk token to it.
        WalkStore* store = &engine_->store_;
        const auto held_index = candidate_.held_index;
        protocol_ = std::make_unique<congest::BroadcastProtocol>(
            *tree_,
            congest::Message{
                0, {candidate_.holder, candidate_.held_index, 0, 0}},
            [store, held_index](NodeId at, const congest::Message& m) {
              if (at != static_cast<NodeId>(m.f[0])) return;
              auto& held = store->held[at][held_index];
              if (held.used) {
                throw std::logic_error("StitchEngine: token already used");
              }
              held.used = true;
            });
        step_ = Step::kCommit;
        break;
      }
      if (step_ == Step::kResample) {
        throw std::logic_error("StitchEngine: GET-MORE-WALKS yielded none");
      }
      // Pool at the connector is dry: GET-MORE-WALKS, scaled by the
      // prepared walk count exactly as in walk_impl.
      const Params& params = engine_->params_;
      const std::uint32_t count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(
              static_cast<std::uint64_t>(params.get_more_walks_count(
                  l_, engine_->lambda_, engine_->diameter_)) *
                  engine_->prepared_k_,
              1u << 20));
      protocol_ = std::make_unique<GetMoreWalksProtocol>(
          engine_->net_->graph(), current_, count, engine_->lambda_,
          params.random_lengths, engine_->store_,
          params.record_trajectories ? &engine_->trajectories_ : nullptr,
          params.transition);
      step_ = Step::kGetMore;
      break;
    }
    case Step::kGetMore:
      ++result_.counters.get_more_walks_calls;
      protocol_ = std::make_unique<SampleConvergecast>(*tree_, engine_->store_,
                                                       current_);
      step_ = Step::kResample;
      break;
    case Step::kCommit:
      segments_.push_back(
          Segment{candidate_, current_, completed_});
      ++engine_->connector_visits_[current_];
      completed_ += candidate_.length;
      current_ = candidate_.holder;
      ++result_.counters.stitches;
      begin_stitch_or_finish();
      break;
    case Step::kDone:
      throw std::logic_error("WalkTask::advance: task already finished");
  }
}

void StitchEngine::WalkTask::finish() {
  step_ = Step::kDone;
  protocol_.reset();
  result_.destination = current_;

  // "Walk naively until l steps are completed": deferred into the engine's
  // shared concurrent tail run (the source/connector position is already
  // recorded, so record_start stays false).
  const std::uint64_t tail = l_ - completed_;
  if (tail > 0) {
    result_.counters.naive_tail_steps = tail;
    engine_->deferred_tails_.push_back(NaiveSegmentProtocol::Job{
        current_, tail, walk_id_, completed_, false, record_});
  }

  // Regeneration jobs (Section 2.2), deferred into one batched replay.
  if (record_) {
    for (const Segment& s : segments_) {
      if (s.token.kind == WalkKind::kPhase1) {
        engine_->deferred_forward_.push_back(RegenerateProtocol::ForwardJob{
            s.from, s.token.seq, s.offset, walk_id_});
      } else {
        const HeldToken& held =
            engine_->store_.held[s.token.holder][s.token.held_index];
        engine_->deferred_reverse_.push_back(RegenerateProtocol::ReverseJob{
            s.token.holder, s.from, s.token.length, held.arrival_slot,
            s.offset, walk_id_});
      }
    }
  }
}

StitchEngine::WalkTask StitchEngine::start_walk_task(NodeId source,
                                                     std::uint64_t l,
                                                     std::uint32_t walk_id,
                                                     bool record_positions) {
  if (!prepared_) throw std::logic_error("StitchEngine: prepare() first");
  if (naive_mode_) {
    throw std::logic_error(
        "StitchEngine::start_walk_task: naive mode defers whole walks "
        "(use walk_deferring_tail)");
  }
  if (l > prepared_l_) {
    throw std::logic_error("StitchEngine: walk longer than prepared for");
  }
  return WalkTask(*this, source, l, walk_id, record_positions);
}

congest::RunStats StitchEngine::run_deferred_regen() {
  if (deferred_forward_.empty() && deferred_reverse_.empty()) return {};
  obs::Span span(obs::Name::kEngineRegen, obs::kPidService, 0,
                 deferred_forward_.size() + deferred_reverse_.size());
  // Canonical ascending-walk_id order (stable: preserves each walk's
  // segment order): reverse replay consumes shared anonymous fragments, so
  // the job order must not depend on task completion order.
  std::stable_sort(deferred_forward_.begin(), deferred_forward_.end(),
                   [](const RegenerateProtocol::ForwardJob& a,
                      const RegenerateProtocol::ForwardJob& b) {
                     return a.walk_id < b.walk_id;
                   });
  std::stable_sort(deferred_reverse_.begin(), deferred_reverse_.end(),
                   [](const RegenerateProtocol::ReverseJob& a,
                      const RegenerateProtocol::ReverseJob& b) {
                     return a.walk_id < b.walk_id;
                   });
  RegenerateProtocol regen(net_->graph(), std::move(deferred_forward_),
                           std::move(deferred_reverse_), trajectories_,
                           positions_);
  deferred_forward_.clear();
  deferred_reverse_.clear();
  const congest::RunStats stats = net_->run(regen);
  total_ += stats;
  return stats;
}

WalkResult StitchEngine::walk_impl(NodeId source, std::uint64_t l,
                                   std::uint32_t walk_id, bool defer_tail,
                                   std::uint64_t start_step,
                                   bool record_positions) {
  if (!prepared_) throw std::logic_error("StitchEngine: prepare() first");
  if (l > prepared_l_) {
    throw std::logic_error("StitchEngine: walk longer than prepared for");
  }
  const Graph& g = net_->graph();
  const bool record = params_.record_trajectories && record_positions;

  if (naive_mode_) {
    if (defer_tail && l > 0) {
      // The whole walk becomes one deferred token job so a batch of naive
      // walks runs concurrently (O(k + l) rounds, the MANY-RANDOM-WALKS
      // fallback) instead of sequentially.
      deferred_tails_.push_back(NaiveSegmentProtocol::Job{
          source, l, walk_id, start_step, true, record});
      WalkResult result;
      result.counters.lambda = lambda_;
      result.counters.naive_tail_steps = l;
      result.destination = source;  // real destination: run_deferred_tails()
      return result;
    }
    WalkResult result = naive_walk_result(source, l, walk_id, true, record);
    result.counters.lambda = lambda_;
    return result;
  }

  WalkResult result;
  result.counters.lambda = lambda_;
  result.counters.phase1 = pending_phase1_;
  result.counters.walks_prepared = pending_prepared_;
  pending_phase1_ = {};
  pending_prepared_ = 0;

  // The source knows it is step `start_step` of the walk (node-local
  // knowledge; for a continuation the previous phase already recorded it).
  if (record && start_step == 0) {
    positions_[source].push_back(WalkPosition{walk_id, 0});
  }

  // Phase 2: stitch short walks "while length of walk completed is at most
  // l - 2*lambda" (Algorithm 1).
  struct Segment {
    SampleConvergecast::Candidate token;
    NodeId from = kInvalidNode;
    std::uint64_t offset = 0;
  };
  std::vector<Segment> segments;
  congest::RunStats phase2;
  NodeId current = source;
  std::uint64_t completed = 0;
  while (completed + 2 * static_cast<std::uint64_t>(lambda_) <= l) {
    congest::BfsTree tree = congest::build_bfs_tree(*net_, current, phase2);

    SampleConvergecast sample(tree, store_, current);
    phase2 += net_->run(sample);
    ++result.counters.sample_calls;
    SampleConvergecast::Candidate candidate = sample.result();

    if (candidate.count == 0) {
      // All short walks from `current` are used up: GET-MORE-WALKS.
      // When the engine serves k walks (MANY-RANDOM-WALKS), connectors can
      // recur up to k times as often, so the batch is scaled by k -- the
      // count aggregation makes the bigger batch free (still O(lambda)
      // rounds, Lemma 2.2).
      const std::uint32_t count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(
              static_cast<std::uint64_t>(
                  params_.get_more_walks_count(l, lambda_, diameter_)) *
                  prepared_k_,
              1u << 20));
      GetMoreWalksProtocol more(
          g, current, count, lambda_, params_.random_lengths, store_,
          params_.record_trajectories ? &trajectories_ : nullptr,
          params_.transition);
      phase2 += net_->run(more);
      ++result.counters.get_more_walks_calls;

      SampleConvergecast retry(tree, store_, current);
      phase2 += net_->run(retry);
      ++result.counters.sample_calls;
      candidate = retry.result();
      if (candidate.count == 0) {
        throw std::logic_error("StitchEngine: GET-MORE-WALKS yielded none");
      }
    }

    // Sweep 3: broadcast down the tree to delete the sampled token at its
    // holder ("so that this random walk is not reused") and hand the walk
    // token to it.
    WalkStore* store = &store_;
    const auto held_index = candidate.held_index;
    congest::BroadcastProtocol commit(
        tree,
        congest::Message{0, {candidate.holder, candidate.held_index, 0, 0}},
        [store, held_index](NodeId at, const congest::Message& m) {
          if (at != static_cast<NodeId>(m.f[0])) return;
          auto& held = store->held[at][held_index];
          if (held.used) {
            throw std::logic_error("StitchEngine: token already used");
          }
          held.used = true;
        });
    phase2 += net_->run(commit);

    segments.push_back(Segment{candidate, current, start_step + completed});
    ++connector_visits_[current];
    completed += candidate.length;
    current = candidate.holder;
    ++result.counters.stitches;
  }

  // "Walk naively until l steps are completed (at most another 2*lambda)."
  result.counters.phase2 = phase2;
  result.stats += result.counters.phase1;
  result.stats += phase2;
  total_ += phase2;

  NodeId destination = current;
  const std::uint64_t tail = l - completed;
  if (tail > 0) {
    NaiveSegmentProtocol::Job job{current, tail, walk_id,
                                  start_step + completed, false, record};
    result.counters.naive_tail_steps = tail;
    if (defer_tail) {
      deferred_tails_.push_back(job);
    } else {
      NaiveSegmentProtocol protocol(
          g, {job}, record ? &positions_ : nullptr, params_.transition);
      const congest::RunStats tail_stats = net_->run(protocol);
      result.stats += tail_stats;
      total_ += tail_stats;
      destination = protocol.destinations()[0];
    }
  }
  result.destination = destination;

  // Regeneration (Section 2.2): replay every stitched segment in parallel so
  // all nodes learn their position(s).
  if (record && !segments.empty()) {
    std::vector<RegenerateProtocol::ForwardJob> forward;
    std::vector<RegenerateProtocol::ReverseJob> reverse;
    for (const Segment& s : segments) {
      if (s.token.kind == WalkKind::kPhase1) {
        forward.push_back(RegenerateProtocol::ForwardJob{
            s.from, s.token.seq, s.offset, walk_id});
      } else {
        const HeldToken& held = store_.held[s.token.holder][s.token.held_index];
        reverse.push_back(RegenerateProtocol::ReverseJob{
            s.token.holder, s.from, s.token.length, held.arrival_slot,
            s.offset, walk_id});
      }
    }
    RegenerateProtocol regen(g, std::move(forward), std::move(reverse),
                             trajectories_, positions_);
    const congest::RunStats regen_stats = net_->run(regen);
    result.counters.regen = regen_stats;
    result.stats += regen_stats;
    total_ += regen_stats;
  }
  return result;
}

SingleWalkOutput single_random_walk(congest::Network& net, NodeId source,
                                    std::uint64_t l, const Params& params,
                                    std::uint32_t diameter) {
  StitchEngine engine(net, params, diameter);
  engine.prepare(1, l);
  SingleWalkOutput out;
  out.result = engine.walk(source, l, 0);
  out.positions = engine.positions();
  return out;
}

WalkResult naive_random_walk(congest::Network& net, NodeId source,
                             std::uint64_t l, TransitionModel model) {
  NaiveSegmentProtocol::Job job{source, l, 0, 0, true};
  NaiveSegmentProtocol protocol(net.graph(), {job}, nullptr, model);
  WalkResult result;
  result.stats = net.run(protocol);
  result.destination = protocol.destinations()[0];
  result.counters.naive_tail_steps = l;
  return result;
}

ManyWalksOutput many_random_walks(congest::Network& net,
                                  std::span<const NodeId> sources,
                                  std::uint64_t l, const Params& params,
                                  std::uint32_t diameter) {
  ManyWalksOutput out;
  if (sources.empty()) return out;

  StitchEngine engine(net, params, diameter);
  engine.prepare(sources.size(), l);

  if (engine.naive_mode()) {
    // "If lambda > l then run the naive random walk algorithm, i.e., the
    // sources find walks of length l simultaneously by sending tokens."
    out.used_naive_fallback = true;
    PositionTable positions;
    if (params.record_trajectories) {
      positions.resize(net.graph().node_count());
    }
    std::vector<NaiveSegmentProtocol::Job> jobs;
    for (std::uint32_t i = 0; i < sources.size(); ++i) {
      jobs.push_back(NaiveSegmentProtocol::Job{sources[i], l, i, 0, true});
    }
    NaiveSegmentProtocol protocol(
        net.graph(), std::move(jobs),
        params.record_trajectories ? &positions : nullptr,
        params.transition);
    out.stats = net.run(protocol);
    out.destinations = protocol.destinations();
    out.counters.lambda = engine.lambda();
    out.counters.naive_tail_steps = l * sources.size();
    out.positions = std::move(positions);
    return out;
  }

  // Stitch the k walks one at a time (Section 2.3), but run all the naive
  // tails concurrently at the end -- k independent tail tokens cost
  // O(k + 2*lambda) rounds together instead of k * 2*lambda sequentially,
  // keeping the total within Theorem 2.8's O~(sqrt(k l D) + k).
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    WalkResult walk = engine.walk_deferring_tail(sources[i], l, i);
    out.destinations.push_back(walk.destination);
    out.stats += walk.stats;
    out.counters += walk.counters;
  }
  const StitchEngine::TailOutcome tails = engine.run_deferred_tails();
  out.stats += tails.stats;
  for (std::size_t t = 0; t < tails.walk_ids.size(); ++t) {
    out.destinations[tails.walk_ids[t]] = tails.destinations[t];
  }
  out.counters.lambda = engine.lambda();
  out.positions = engine.positions();
  return out;
}

}  // namespace drw::core
