// The distributed protocols that make up SINGLE-RANDOM-WALK (Algorithm 1)
// and its subroutines GET-MORE-WALKS (Algorithm 2) and SAMPLE-DESTINATION
// (Algorithm 3), plus the naive-walk and regeneration protocols.
//
// Each protocol is a self-contained CONGEST state machine; the drivers in
// single_random_walk.cpp sequence them and accumulate round counts.
//
// LANE COMPATIBILITY: every protocol here draws randomness exclusively
// through Context::rng() and keeps all mutable state node-indexed, so each
// can run as one lane of a congest::ProtocolMux (the mux retargets
// ctx.rng() to a per-lane stream and isolates messages/wakes per lane).
// The stitch protocols' only cross-instance coupling is the shared
// WalkStore, whose token pools are keyed by source connector -- the
// conflict rule BatchScheduler serializes on.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "core/walk_state.hpp"
#include "graph/transition.hpp"

namespace drw::core {

/// Phase 1 of Algorithm 1: every node v starts `eta_v` tokens, the i-th with
/// desired length lambda + r_i; tokens do one random hop per delivery ("the
/// nodes keep forwarding these tokens with decreased desired walk length").
/// Distinct tokens occupy distinct messages, so congestion is real and the
/// round count displays Lemma 2.1's O(lambda * eta * log n) behaviour.
class ShortWalkPhaseProtocol final : public congest::Protocol {
 public:
  /// A short walk to launch from node `origin`.
  struct Job {
    NodeId origin = kInvalidNode;
    std::uint32_t seq = 0;
    std::uint32_t length = 0;  ///< in [lambda, 2*lambda - 1]
  };

  ShortWalkPhaseProtocol(const Graph& g, std::vector<Job> jobs,
                         WalkStore& store, TrajectoryStore* trajectories,
                         TransitionModel model = TransitionModel::kSimple);
  void on_round(congest::Context& ctx) override;

 private:
  enum MsgType : std::uint16_t { kToken = 10 };
  struct Pending {
    NodeId source;
    std::uint32_t seq;
    std::uint32_t total;
    std::uint32_t remaining;
    std::uint32_t arrival_slot;
  };
  void route(congest::Context& ctx, NodeId source, std::uint32_t seq,
             std::uint32_t total, std::uint32_t remaining,
             std::uint32_t arrival_slot);
  const Graph* graph_;
  std::vector<std::vector<Job>> jobs_by_node_;
  WalkStore* store_;
  TrajectoryStore* trajectories_;
  TransitionModel model_;
  /// Tokens that took a self-loop step (lazy / Metropolis stay): processed
  /// again next round without any message, via wake_me.
  std::vector<std::vector<Pending>> staying_;
};

/// GET-MORE-WALKS (Algorithm 2): `count` walks from `source`, forwarded as
/// (source, count, steps) aggregates -- one message per edge per round, so no
/// congestion and exactly O(lambda) rounds -- then extended by reservoir
/// sampling: at extension step i every surviving token stops with probability
/// 1/(lambda - i), yielding lengths uniform in [lambda, 2*lambda - 1]
/// (Lemma 2.4). With `extend == false` (PODC 2009 preset) all tokens stop at
/// exactly lambda.
class GetMoreWalksProtocol final : public congest::Protocol {
 public:
  GetMoreWalksProtocol(const Graph& g, NodeId source, std::uint32_t count,
                       std::uint32_t lambda, bool extend, WalkStore& store,
                       TrajectoryStore* trajectories,
                       TransitionModel model = TransitionModel::kSimple);
  void on_round(congest::Context& ctx) override;

 private:
  enum MsgType : std::uint16_t { kAggregate = 20 };
  /// Handles one round's arrivals ((arrival_slot, count) pairs, all at the
  /// same hop count) and emits at most one aggregate message per neighbor.
  void process(
      congest::Context& ctx,
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& arrivals,
      std::uint32_t steps);
  const Graph* graph_;
  NodeId source_;
  std::uint32_t initial_count_;
  std::uint32_t lambda_;
  bool extend_;
  WalkStore* store_;
  TrajectoryStore* trajectories_;
  TransitionModel model_;
  /// Aggregated self-loop stays per node: (count, steps) carried to the
  /// next round locally (no message), preserving lockstep.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> staying_;
};

/// Sweep 2 of SAMPLE-DESTINATION (Algorithm 3): a convergecast up `tree`
/// (rooted at the sampling node v) where every node samples one candidate
/// among its own unused source-v tokens and its children's candidates,
/// weighted by counts, so the root ends up with a uniform sample over all
/// unused short walks from v (Lemma A.2).
class SampleConvergecast final : public congest::Protocol {
 public:
  struct Candidate {
    NodeId holder = kInvalidNode;
    std::uint64_t count = 0;       ///< tokens this candidate was sampled from
    std::uint32_t length = 0;
    WalkKind kind = WalkKind::kPhase1;
    std::uint32_t seq = 0;
    std::uint32_t held_index = 0;  ///< index into store.held[holder]
  };

  SampleConvergecast(const congest::BfsTree& tree, const WalkStore& store,
                     NodeId source);
  void on_round(congest::Context& ctx) override;

  /// Root's result after the run; count == 0 means "no unused walks left"
  /// (SAMPLE-DESTINATION returned NULL and GET-MORE-WALKS is required).
  const Candidate& result() const { return acc_[tree_->root]; }

 private:
  enum MsgType : std::uint16_t { kCandidate = 30 };
  void absorb(congest::Context& ctx, const Candidate& incoming);
  void maybe_forward(congest::Context& ctx);
  const congest::BfsTree* tree_;
  const WalkStore* store_;
  NodeId source_;
  std::vector<Candidate> acc_;
  std::vector<std::uint32_t> pending_children_;
  std::vector<std::uint8_t> sent_;
};

/// One or more plain token walks with every intermediate position optionally
/// recorded. Used for: the naive baseline, the naive tail of Algorithm 1
/// ("walk naively until l steps are completed"), and the k > lambda fallback
/// of MANY-RANDOM-WALKS. Tokens are individual messages (congestion real).
class NaiveSegmentProtocol final : public congest::Protocol {
 public:
  struct Job {
    NodeId start = kInvalidNode;
    std::uint64_t steps = 0;
    std::uint32_t walk_id = 0;
    std::uint64_t base_step = 0;  ///< absolute position of `start`
    /// Record the start position too (false when a preceding stitched
    /// segment already recorded it as its endpoint).
    bool record_start = true;
    /// Record this job's positions at all (per-walk opt-out: jobs of
    /// walks that did not ask for positions share a protocol run with
    /// ones that did).
    bool record = true;
  };

  NaiveSegmentProtocol(const Graph& g, std::vector<Job> jobs,
                       PositionTable* positions,
                       TransitionModel model = TransitionModel::kSimple);
  void on_round(congest::Context& ctx) override;

  /// Destination of each job (valid after the run).
  const std::vector<NodeId>& destinations() const { return destinations_; }

 private:
  enum MsgType : std::uint16_t { kStep = 40 };
  struct Pending {
    std::uint32_t job;
    std::uint64_t remaining;
    std::uint64_t position;
  };
  void advance(congest::Context& ctx, std::uint32_t job,
               std::uint64_t remaining, std::uint64_t position);
  const Graph* graph_;
  std::vector<Job> jobs_;
  std::vector<std::vector<std::uint32_t>> jobs_by_node_;
  PositionTable* positions_;
  std::vector<NodeId> destinations_;
  TransitionModel model_;
  std::vector<std::vector<Pending>> staying_;
};

/// Regeneration (Section 2.2): every stitched short walk is replayed so each
/// node on it learns its absolute position(s). Phase-1 segments replay
/// forward from their source via recorded (source, seq) hop pointers;
/// GET-MORE-WALKS segments replay backward from their endpoint by consuming
/// anonymous fragments (exchangeability makes any consistent matching
/// distribution-correct). All segments replay in parallel; the round count
/// is dominated by the longest segment, O~(lambda) = O~(sqrt(l D)).
class RegenerateProtocol final : public congest::Protocol {
 public:
  struct ForwardJob {
    NodeId source = kInvalidNode;  ///< stitch connector = short-walk source
    std::uint32_t seq = 0;
    std::uint64_t offset = 0;      ///< absolute position of the source
    std::uint32_t walk_id = 0;
  };
  struct ReverseJob {
    NodeId holder = kInvalidNode;  ///< short-walk endpoint
    NodeId source = kInvalidNode;
    std::uint32_t length = 0;
    std::uint32_t arrival_slot = 0;
    std::uint64_t offset = 0;
    std::uint32_t walk_id = 0;
  };

  RegenerateProtocol(const Graph& g, std::vector<ForwardJob> forward,
                     std::vector<ReverseJob> reverse,
                     TrajectoryStore& trajectories, PositionTable& positions);
  void on_round(congest::Context& ctx) override;

 private:
  enum MsgType : std::uint16_t { kForward = 50, kReverse = 51 };
  void forward_step(congest::Context& ctx, NodeId source, std::uint32_t seq,
                    std::uint64_t offset, std::uint32_t hop,
                    std::uint32_t walk_id);
  void reverse_step(congest::Context& ctx, NodeId source, std::uint64_t offset,
                    std::uint32_t hop, std::uint32_t walk_id,
                    std::uint32_t via_slot);
  std::vector<std::vector<ForwardJob>> forward_by_node_;
  std::vector<std::vector<ReverseJob>> reverse_by_node_;
  TrajectoryStore* trajectories_;
  PositionTable* positions_;
};

}  // namespace drw::core
