#include "core/params.hpp"

#include <algorithm>
#include <cmath>

namespace drw::core {

namespace {

double log2ceil(std::size_t n) {
  return std::max(1.0, std::log2(static_cast<double>(std::max<std::size_t>(n, 2))));
}

}  // namespace

std::uint32_t Params::lambda_single(std::uint64_t l, std::uint32_t diameter,
                                    std::size_t n) const {
  if (lambda_override != 0) return lambda_override;
  const double dl = static_cast<double>(l);
  const double dd = std::max<double>(diameter, 1.0);
  double lambda = 0.0;
  switch (preset) {
    case Preset::kPaper:
      lambda = lambda_scale * std::sqrt(dl * dd);
      if (theory_constants) lambda *= 24.0 * std::pow(log2ceil(n), 3.0);
      break;
    case Preset::kPodc09:
      lambda = lambda_scale * std::cbrt(dl) * std::pow(dd, 2.0 / 3.0);
      break;
  }
  return static_cast<std::uint32_t>(
      std::clamp(std::llround(lambda), 1LL, 1LL << 31));
}

std::uint32_t Params::lambda_many(std::uint64_t k, std::uint64_t l,
                                  std::uint32_t diameter,
                                  std::size_t n) const {
  if (lambda_override != 0) return lambda_override;
  const double dk = static_cast<double>(std::max<std::uint64_t>(k, 1));
  const double dl = static_cast<double>(l);
  const double dd = std::max<double>(diameter, 1.0);
  const double logn = log2ceil(n);
  double lambda = 0.0;
  switch (preset) {
    case Preset::kPaper:
      // MANY-RANDOM-WALKS: lambda = (24 sqrt(k l D + 1) log n + k)(log n)^2.
      lambda = lambda_scale * (std::sqrt(dk * dl * dd + 1.0) + dk);
      if (theory_constants) {
        lambda = (24.0 * std::sqrt(dk * dl * dd + 1.0) * logn + dk) *
                 logn * logn * lambda_scale;
      }
      break;
    case Preset::kPodc09:
      lambda = lambda_scale * std::cbrt(dk * dl) * std::pow(dd, 2.0 / 3.0);
      break;
  }
  return static_cast<std::uint32_t>(
      std::clamp(std::llround(lambda), 1LL, 1LL << 31));
}

namespace {

double podc09_eta(double eta, std::uint64_t l, std::uint32_t diameter) {
  const double dd = std::max<double>(diameter, 1.0);
  return eta * std::cbrt(static_cast<double>(std::max<std::uint64_t>(l, 1)) /
                         dd);
}

}  // namespace

std::uint32_t Params::walks_per_node(std::uint32_t deg, std::uint64_t l,
                                     std::uint32_t diameter) const {
  double base = 0.0;
  if (preset == Preset::kPaper) {
    base = degree_proportional ? eta * static_cast<double>(deg) : eta;
  } else {
    base = podc09_eta(eta, l, diameter);
  }
  return static_cast<std::uint32_t>(
      std::clamp(std::llround(base), 1LL, 1LL << 20));
}

std::uint32_t Params::get_more_walks_count(std::uint64_t l,
                                           std::uint32_t lambda,
                                           std::uint32_t diameter) const {
  if (preset == Preset::kPaper) {
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(l / std::max<std::uint32_t>(lambda, 1), 1,
                                  1u << 20));
  }
  return static_cast<std::uint32_t>(
      std::clamp(std::llround(podc09_eta(eta, l, diameter)), 1LL, 1LL << 20));
}

}  // namespace drw::core
