// Distributed state shared by the phases of SINGLE-RANDOM-WALK.
//
// Every field is node-indexed: entry v belongs to processor v, and protocol
// code only touches its own node's slice -- the aggregate object exists only
// because the simulator hosts all processors in one address space.
//
//   * WalkStore: the short-walk endpoint tokens ("only the destination of
//     each of these walks is aware of its source"). SAMPLE-DESTINATION
//     samples an unused token for a given source uniformly and Sweep 3
//     marks it used so no walk is ever re-stitched.
//   * TrajectoryStore: optional per-hop routing records that let the walk be
//     regenerated (Section 2.2). Phase-1 tokens carry a (source, seq)
//     identity and are replayed forward; GET-MORE-WALKS tokens are
//     aggregated counts, so their hops are stored as anonymous fragments and
//     replayed backward (any hop-consistent matching of fragments to
//     endpoints yields the same walk distribution, because the aggregated
//     tokens are exchangeable).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace drw::core {

/// How a stored short walk was created (affects replay direction).
enum class WalkKind : std::uint8_t { kPhase1 = 0, kGetMore = 1 };

/// A short-walk endpoint held by its destination node.
struct HeldToken {
  NodeId source = kInvalidNode;
  std::uint32_t seq = 0;          ///< unique per source for Phase-1 walks
  std::uint32_t length = 0;       ///< in [lambda, 2*lambda - 1]
  WalkKind kind = WalkKind::kPhase1;
  std::uint32_t arrival_slot = 0; ///< slot the token arrived through
                                  ///< (reverse-replay entry point)
  bool used = false;
};

struct WalkStore {
  explicit WalkStore(std::size_t n) : held(n) {}
  std::vector<std::vector<HeldToken>> held;  // indexed by holder node

  std::size_t unused_count(NodeId holder, NodeId source) const {
    std::size_t count = 0;
    for (const auto& t : held[holder]) {
      if (!t.used && t.source == source) ++count;
    }
    return count;
  }
};

/// One forward routing record: the token for (source, seq) was at this node
/// having completed `hop` hops and left through `next_slot`.
struct ForwardHop {
  std::uint32_t hop = 0;
  std::uint32_t next_slot = 0;
};

/// One anonymous GET-MORE-WALKS fragment at a node: a token arrived through
/// `prev_slot` having completed `hop` hops and left through `next_slot`.
struct Fragment {
  std::uint32_t prev_slot = 0;
  std::uint32_t next_slot = 0;
};

struct TrajectoryStore {
  explicit TrajectoryStore(std::size_t n) : forward(n), fragments(n) {}

  static std::uint64_t key(NodeId source, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(source) << 32) | seq;
  }

  /// forward[v][key(source, seq)] = hops of that token at node v.
  std::vector<std::unordered_map<std::uint64_t, std::vector<ForwardHop>>>
      forward;
  /// fragments[v][key(source, hop)] = anonymous GET-MORE-WALKS transits at
  /// node v (keyed by source AND hop: replay must never mix sources).
  std::vector<std::unordered_map<std::uint64_t, std::vector<Fragment>>>
      fragments;
};

/// Positions discovered during regeneration: node v appears at walk step
/// `step` of walk number `walk`.
struct WalkPosition {
  std::uint32_t walk = 0;
  std::uint64_t step = 0;
};

using PositionTable = std::vector<std::vector<WalkPosition>>;  // per node

}  // namespace drw::core
