#include "obs/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace drw::obs {

std::uint64_t Histogram::quantile_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * double(n);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (double(seen) >= target && seen > 0) return bucket_max(b);
  }
  return bucket_max(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  // DRW_STATS=1 arms the registry process-wide, mirroring DRW_TRACE.
  static const bool env_armed = [] {
    const char* env = std::getenv("DRW_STATS");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  if (env_armed) registry.enabled_.store(true, std::memory_order_relaxed);
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  char buf[160];
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    comma();
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    comma();
    std::snprintf(buf, sizeof(buf), "\"%s\":%.6f", name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    comma();
    std::snprintf(
        buf, sizeof(buf),
        "\"%s\":{\"count\":%llu,\"sum\":%llu,\"mean\":%.3f,"
        "\"p50\":%llu,\"p99\":%llu,",
        name.c_str(), static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()), h->mean(),
        static_cast<unsigned long long>(h->quantile_bound(0.5)),
        static_cast<unsigned long long>(h->quantile_bound(0.99)));
    out += buf;
    // Highest non-empty bucket's bound doubles as an upper bound on max.
    std::uint64_t max_bound = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> nonzero;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      max_bound = Histogram::bucket_max(b);
      nonzero.emplace_back(max_bound, n);
    }
    std::snprintf(buf, sizeof(buf), "\"max\":%llu,\"buckets\":{",
                  static_cast<unsigned long long>(max_bound));
    out += buf;
    bool bfirst = true;
    for (const auto& [bound, n] : nonzero) {
      if (!bfirst) out += ",";
      bfirst = false;
      std::snprintf(buf, sizeof(buf), "\"%llu\":%llu",
                    static_cast<unsigned long long>(bound),
                    static_cast<unsigned long long>(n));
      out += buf;
    }
    out += "}}";
  }
  out += "}";
  return out;
}

}  // namespace drw::obs
