#pragma once
// drw::obs metrics -- a small counter / gauge / histogram registry with a
// JSON snapshot, replacing ad-hoc stat plumbing for observability-grade
// numbers (round wall-time distribution, steal counts, arena backlog,
// inventory hit/miss, per-lane rounds/messages).
//
// Hot-path contract mirrors the tracer: when disabled (the default) the
// instrumentation points cost one relaxed atomic load. Metric objects are
// created on demand, never destroyed, and safe to update from concurrent
// workers (plain atomics). Like tracing, metrics observe -- they never
// branch execution, so the determinism contract is unaffected.
//
// Enable via Registry::global().set_enabled(true), DRW_STATS=1, or the
// surfaces that do it for you (`drw serve --stats-json=`, bench_common).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace drw::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram over uint64 samples: bucket b holds samples
/// whose bit width is b (i.e. values in [2^(b-1), 2^b); bucket 0 holds
/// exactly 0). 65 buckets cover the full uint64 range, so record() never
/// clamps. Concurrent record() is safe; the snapshot is not atomic across
/// buckets (fine for observability).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t sample) {
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }
  static std::size_t bucket_of(std::uint64_t sample) {
    return std::bit_width(sample);
  }
  /// Inclusive upper bound of a bucket (the largest sample it can hold).
  static std::uint64_t bucket_max(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : double(sum()) / double(n);
  }
  /// Upper bound of the smallest bucket prefix holding >= q of the mass
  /// (a coarse quantile: log2 buckets give it factor-2 resolution).
  std::uint64_t quantile_bound(double q) const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class Registry {
 public:
  static Registry& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Lookup-or-create. Returned references stay valid for the process
  /// lifetime; hot loops should hoist the lookup out of the loop.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every metric (the names stay registered).
  void reset();

  /// Snapshot as a JSON object string: counters/gauges as numbers,
  /// histograms as {count, sum, mean, p50, p99, max, buckets:{...}} with
  /// only non-empty buckets listed (keyed by their inclusive upper bound).
  std::string snapshot_json() const;

 private:
  Registry() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // name maps only; metric updates are lock-free
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace drw::obs
