#pragma once
// drw::obs tracing -- per-round / per-shard / per-phase timing events
// recorded into per-thread ring buffers and flushed post-run to Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in priority order:
//   1. Zero overhead when disabled: the hot path is one relaxed atomic
//      load and a predictable branch; no clock reads, no allocation.
//   2. No locks on the hot path when enabled: each OS thread owns a
//      fixed-capacity ring buffer (registered once under a mutex, then
//      written lock-free by its owner). Overflow drops the OLDEST events
//      and counts the drops -- a truncated tail is useless for a trace
//      viewer, a truncated head is just a late start.
//   3. Observation never branches execution: instrumentation points may
//      read clocks and write events, nothing else. The determinism
//      contract (bit-identical results at every thread count, partition,
//      and mux width) holds with tracing on or off; tests enforce it.
//
// Flushing is NOT thread-safe against concurrent recording: call
// Tracer::flush() only while no Network::run is in flight (the worker
// pool's completion barrier provides the happens-before edge that makes
// the rings readable).
//
// Enabling: DRW_TRACE=file.json (process-wide, checked at static init),
// ServiceConfig::trace_path, or `drw --trace=file.json`.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace drw::obs {

/// Interned event names. Events store the enum; the string table lives in
/// trace.cpp. Dynamic payloads (walk ids, backlog depths, counter values)
/// travel in TraceEvent::arg -- never as strings.
enum class Name : std::uint16_t {
  kRound,             ///< counter: round number at round start (driver)
  kComputeDispatch,   ///< span: whole compute phase (driver)
  kTransmitDispatch,  ///< span: whole transmit phase (driver)
  kComputeWorker,     ///< span: one worker's compute_phase invocation
  kTransmitShard,     ///< span: legacy unfused transmit_phase (kept so old
                      ///  traces and tooling keep resolving the name)
  kTransmitFusedShard,  ///< span: one shard's fused stage-merge-deliver
                        ///  transmit_phase invocation
  kMergeShard,        ///< span: canonical-order staged replay within the
                      ///  fused transmit pass (sort + merge + delivery)
  kBarrierWait,       ///< span: driver waiting on the pool barrier
  kNetRun,            ///< span: one Network::run / run_multiplexed
  kEnginePrepare,     ///< span: StitchEngine::prepare (Phase 1)
  kEngineReplenish,   ///< span: GET-MORE-WALKS replenishment run
  kEngineTails,       ///< span: deferred naive tail segments
  kEngineRegen,       ///< span: deferred trajectory regeneration
  kStitchWave,        ///< span: one conflict-free mux wave (arg = lanes)
  kWalkLane,          ///< span: one walk task on a lane (arg = walk id)
  kLaneRound,         ///< instant: lane consumed a round (arg = round)
  kServiceBatch,      ///< span: one WalkService::flush batch
  kArenaBacklog,      ///< counter: max arena depth this shard-round
  kIngestRead,        ///< span: edge-list file -> memory (arg = bytes)
  kIngestParse,       ///< span: bulk tokenize + CSR assembly (arg = bytes)
  kIngestRelabel,     ///< span: degree-ordered vertex relabeling
  kIngestWrite,       ///< span: binary CSR serialization + atomic commit
  kIngestLoad,        ///< span: CSR open + validate + mmap (arg = bytes)
  kServerDrain,       ///< span: one admission drain + serve (arg = admitted)
  kServerRespond,     ///< span: response encode + write (arg = admitted idx)
  kCount
};

/// Track ("process") ids in the exported trace. Within a pid, the tid is
/// the worker/shard index, lane index, or 0 respectively.
inline constexpr std::uint8_t kPidExecutor = 1;
inline constexpr std::uint8_t kPidMux = 2;
inline constexpr std::uint8_t kPidService = 3;
inline constexpr std::uint8_t kPidIngest = 4;
inline constexpr std::uint8_t kPidServer = 5;

/// One recorded event: 24 bytes, trivially copyable, written in place in
/// the owning thread's ring.
struct TraceEvent {
  std::uint64_t ts_ns;  ///< steady-clock ns since Tracer enable
  std::uint64_t arg;    ///< event payload (walk id, depth, counter value)
  Name name;
  std::uint16_t tid;  ///< track row: worker/shard index, lane, ...
  std::uint8_t pid;   ///< track group: kPidExecutor / kPidMux / kPidService
  char ph;            ///< Chrome phase: 'B', 'E', 'i', 'C'
  std::uint16_t pad;
};
static_assert(sizeof(TraceEvent) == 24, "keep the ring entry compact");

/// Process-wide tracing gate. Relaxed is correct: a stale read merely
/// starts/stops observation one event late, it never affects execution.
inline std::atomic<bool> g_trace_enabled{false};
inline bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  static Tracer& instance();

  /// Arm tracing. `capacity` is events per thread ring (0 = default
  /// 1<<18, overridable via DRW_TRACE_BUF). Safe to call again to retarget
  /// the output path. Registers an atexit flush on first use.
  void enable(std::string path, std::size_t capacity = 0);
  void disable();

  /// Merge all rings, write the Chrome trace JSON to the enabled path and
  /// clear the rings. Caller must guarantee no recording is in flight.
  void flush();

  /// Events discarded by drop-oldest overflow (cumulative since enable).
  std::uint64_t dropped() const;

  /// Attach a numeric fact to the trace's otherData section (e.g. the
  /// run's transmit_ms so validate_trace.py can cross-check span sums).
  void set_meta(const std::string& key, double value);

  /// Record one event into the calling thread's ring. Callers gate on
  /// trace_enabled() first; record() re-checks cheaply for safety.
  void record(Name name, char ph, std::uint8_t pid, std::uint16_t tid,
              std::uint64_t arg = 0);

  std::size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

  struct Ring;  // public so the thread-local cache can name it

 private:
  Tracer() = default;
  Ring& ring_for_this_thread();
  void write_json(const std::vector<TraceEvent>& events,
                  std::uint64_t dropped_total);

  mutable std::mutex mu_;  // ring registration, flush, meta, enable state
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<std::string, double> meta_;
  std::string path_;
  std::size_t capacity_ = 0;
  std::uint64_t flushed_dropped_ = 0;  // drops folded out by past flushes
  bool atexit_registered_ = false;
  bool wrote_ = false;  // lets the atexit flush skip an already-final file
  std::uint64_t origin_ns_ = 0;  // steady-clock stamp at enable
};

/// Emit a single event iff tracing is on (the usual entry point).
inline void event(Name name, char ph, std::uint8_t pid, std::uint16_t tid,
                  std::uint64_t arg = 0) {
  if (trace_enabled()) Tracer::instance().record(name, ph, pid, tid, arg);
}

/// RAII 'B'/'E' span. Captures the gate at construction so a flush/toggle
/// mid-span cannot emit an unbalanced 'E'.
class Span {
 public:
  Span(Name name, std::uint8_t pid, std::uint16_t tid, std::uint64_t arg = 0)
      : name_(name), tid_(tid), pid_(pid), on_(trace_enabled()) {
    if (on_) Tracer::instance().record(name_, 'B', pid_, tid_, arg);
  }
  ~Span() {
    if (on_) Tracer::instance().record(name_, 'E', pid_, tid_, 0);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Name name_;
  std::uint16_t tid_;
  std::uint8_t pid_;
  bool on_;
};

}  // namespace drw::obs
