#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

namespace drw::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

/// Static string table matching obs::Name. Dots group related tracks when
/// Perfetto sorts slice names; no dynamic strings ever enter the ring.
constexpr const char* kNames[] = {
    "round",             // kRound
    "compute.dispatch",  // kComputeDispatch
    "transmit.dispatch",  // kTransmitDispatch
    "compute.worker",    // kComputeWorker
    "transmit.shard",    // kTransmitShard
    "transmit.fused.shard",  // kTransmitFusedShard
    "merge.shard",       // kMergeShard
    "barrier.wait",      // kBarrierWait
    "net.run",           // kNetRun
    "engine.prepare",    // kEnginePrepare
    "engine.replenish",  // kEngineReplenish
    "engine.tails",      // kEngineTails
    "engine.regen",      // kEngineRegen
    "stitch.wave",       // kStitchWave
    "walk.lane",         // kWalkLane
    "lane.round",        // kLaneRound
    "service.batch",     // kServiceBatch
    "arena.backlog",     // kArenaBacklog
    "ingest.read",       // kIngestRead
    "ingest.parse",      // kIngestParse
    "ingest.relabel",    // kIngestRelabel
    "ingest.write",      // kIngestWrite
    "ingest.load",       // kIngestLoad
    "server.drain",      // kServerDrain
    "server.respond",    // kServerRespond
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<std::size_t>(Name::kCount),
              "name table out of sync with obs::Name");

const char* process_name(std::uint8_t pid) {
  switch (pid) {
    case kPidExecutor: return "executor";
    case kPidMux: return "mux lanes";
    case kPidService: return "service";
    case kPidIngest: return "ingest";
    case kPidServer: return "server";
    default: return "drw";
  }
}

void append_thread_name(std::string& out, std::uint8_t pid,
                        std::uint16_t tid) {
  char buf[48];
  switch (pid) {
    case kPidExecutor:
      std::snprintf(buf, sizeof(buf), "worker/shard %u", unsigned(tid));
      break;
    case kPidMux:
      std::snprintf(buf, sizeof(buf), "lane %u", unsigned(tid));
      break;
    case kPidIngest:
      std::snprintf(buf, sizeof(buf), "ingest");
      break;
    case kPidServer:
      std::snprintf(buf, sizeof(buf), "server");
      break;
    default:
      std::snprintf(buf, sizeof(buf), "service");
      break;
  }
  out += buf;
}

}  // namespace

/// Per-thread event ring. Single-writer (the owning thread); read by the
/// flushing thread only after the worker pool's completion barrier has
/// established a happens-before edge. `head` counts writes monotonically:
/// the live window is [max(0, head - capacity), head), so overflow drops
/// the oldest events and `head - capacity` IS the drop count.
struct Tracer::Ring {
  std::vector<TraceEvent> events;
  std::uint64_t head = 0;
};

namespace {
thread_local Tracer::Ring* t_ring = nullptr;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  // Slow path: first event from this thread. Ring objects are allocated
  // once and never destroyed (threads come and go across pool resizes;
  // their rings stay merged into every future flush), so the cached
  // pointer stays valid for the process lifetime.
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring& ring = *rings_.back();
  ring.events.resize(capacity_ ? capacity_ : kDefaultCapacity);
  t_ring = &ring;
  return ring;
}

void Tracer::enable(std::string path, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  if (capacity == 0) {
    capacity = kDefaultCapacity;
    if (const char* env = std::getenv("DRW_TRACE_BUF")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && parsed > 0) capacity = std::size_t(parsed);
    }
  }
  capacity_ = capacity;
  origin_ns_ = now_ns();
  // Re-enabling (tests, back-to-back CLI runs) restarts the epoch: any
  // already-registered rings are resized and reset while quiescent.
  for (auto& ring : rings_) {
    ring->events.clear();
    ring->events.resize(capacity_);
    ring->head = 0;
  }
  flushed_dropped_ = 0;
  meta_.clear();
  if (!atexit_registered_) {
    atexit_registered_ = true;
    std::atexit([] { Tracer::instance().flush(); });
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::record(Name name, char ph, std::uint8_t pid, std::uint16_t tid,
                    std::uint64_t arg) {
  Ring* ring = t_ring;
  if (ring == nullptr) ring = &ring_for_this_thread();
  if (ring->events.empty()) return;  // enable() never ran: no capacity
  TraceEvent& ev = ring->events[ring->head % ring->events.size()];
  ev.ts_ns = now_ns() - origin_ns_;
  ev.arg = arg;
  ev.name = name;
  ev.tid = tid;
  ev.pid = pid;
  ev.ph = ph;
  ev.pad = 0;
  ++ring->head;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = flushed_dropped_;
  for (const auto& ring : rings_) {
    if (!ring->events.empty() && ring->head > ring->events.size()) {
      total += ring->head - ring->events.size();
    }
  }
  return total;
}

void Tracer::set_meta(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_[key] = value;
}

void Tracer::flush() {
  std::vector<TraceEvent> merged;
  std::uint64_t dropped_total = 0;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) return;
    for (auto& ring : rings_) {
      if (ring->events.empty()) continue;
      const std::size_t cap = ring->events.size();
      if (ring->head > cap) flushed_dropped_ += ring->head - cap;
      const std::uint64_t begin = ring->head > cap ? ring->head - cap : 0;
      for (std::uint64_t i = begin; i < ring->head; ++i) {
        merged.push_back(ring->events[i % cap]);
      }
      ring->head = 0;
    }
    dropped_total = flushed_dropped_;
    path = path_;
    if (merged.empty() && wrote_) return;  // atexit after an explicit flush
    wrote_ = true;
  }
  // Chrome wants events roughly time-ordered; stable sort keeps same-stamp
  // B-before-E pairs (common at ns resolution on coarse clocks) in the
  // order they were recorded.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  write_json(merged, dropped_total);
}

void Tracer::write_json(const std::vector<TraceEvent>& events,
                        std::uint64_t dropped_total) {
  std::FILE* out = std::fopen(path_.c_str(), "w");
  if (out == nullptr) return;  // tracing must never take the process down
  std::string buf;
  buf.reserve(events.size() * 96 + 4096);
  buf += "{\"traceEvents\":[\n";
  // Metadata events name every (pid, tid) track that appears.
  std::set<std::uint8_t> pids;
  std::set<std::pair<std::uint8_t, std::uint16_t>> tracks;
  for (const TraceEvent& ev : events) {
    pids.insert(ev.pid);
    tracks.insert({ev.pid, ev.tid});
  }
  char line[192];
  bool first = true;
  auto comma = [&] {
    if (!first) buf += ",\n";
    first = false;
  };
  for (std::uint8_t pid : pids) {
    comma();
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  unsigned(pid), process_name(pid));
    buf += line;
  }
  for (const auto& [pid, tid] : tracks) {
    comma();
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":%u,\"args\":{\"name\":\"",
                  unsigned(pid), unsigned(tid));
    buf += line;
    append_thread_name(buf, pid, tid);
    buf += "\"}}";
  }
  for (const TraceEvent& ev : events) {
    comma();
    const char* name = kNames[static_cast<std::size_t>(ev.name)];
    // ts is microseconds in the trace-event format; keep ns resolution as
    // the fractional part.
    const double ts_us = double(ev.ts_ns) / 1000.0;
    if (ev.ph == 'B' || ev.ph == 'E') {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"drw\",\"ph\":\"%c\","
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":%u%s",
                    name, ev.ph, ts_us, unsigned(ev.pid), unsigned(ev.tid),
                    ev.ph == 'B' && ev.arg != 0 ? "" : "}");
      buf += line;
      if (ev.ph == 'B' && ev.arg != 0) {
        std::snprintf(line, sizeof(line),
                      ",\"args\":{\"value\":%llu}}",
                      static_cast<unsigned long long>(ev.arg));
        buf += line;
      }
    } else if (ev.ph == 'C') {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"drw\",\"ph\":\"C\","
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,"
                    "\"args\":{\"value\":%llu}}",
                    name, ts_us, unsigned(ev.pid), unsigned(ev.tid),
                    static_cast<unsigned long long>(ev.arg));
      buf += line;
    } else {  // instant
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"drw\",\"ph\":\"i\","
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,\"s\":\"t\","
                    "\"args\":{\"value\":%llu}}",
                    name, ts_us, unsigned(ev.pid), unsigned(ev.tid),
                    static_cast<unsigned long long>(ev.arg));
      buf += line;
    }
  }
  buf += "\n],\"otherData\":{";
  std::snprintf(line, sizeof(line), "\"dropped\":%llu",
                static_cast<unsigned long long>(dropped_total));
  buf += line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, value] : meta_) {
      std::snprintf(line, sizeof(line), ",\"%s\":%.6f", key.c_str(), value);
      buf += line;
    }
  }
  buf += "}}\n";
  std::fwrite(buf.data(), 1, buf.size(), out);
  std::fclose(out);
}

namespace {
/// Process-wide DRW_TRACE=file.json support: armed before main() so every
/// entry point (CLI, tests, benches) honours the variable without code.
struct TraceEnvInit {
  TraceEnvInit() {
    const char* path = std::getenv("DRW_TRACE");
    if (path != nullptr && *path != '\0') Tracer::instance().enable(path);
  }
} g_trace_env_init;
}  // namespace

}  // namespace drw::obs
