// Deterministic fault injection for resilience testing (drw::resil).
//
// A failpoint is a named site planted on an interesting control path (the
// snapshot writer, graph IO, Network::run phase boundaries, the WalkService
// batch loop). Sites are *disarmed* by default and follow the drw::obs
// zero-overhead discipline: the disabled path is exactly one relaxed atomic
// load -- no string compare, no map lookup, no lock. Arming happens either
// through the DRW_FAILPOINTS environment variable or programmatically
// (tests), with the spec grammar
//
//   DRW_FAILPOINTS="site@N:action[,site@N:action...]"
//
// where `site` is the literal site name, `N` is the 1-based hit at which the
// action fires (the site passes through untouched on every other hit;
// `site:action` is shorthand for N = 1), and `action` is one of
//
//   throw        throw resil::InjectedFault at the site
//   abort        std::abort() at the site (crash harness: simulated kill)
//   short_write  return true from failpoint(): the site truncates its write
//   delay_ms=K   sleep K milliseconds at the site, then continue
//
// Determinism: hit counting is per-site and process-wide, so a given spec
// fires at the same logical point of a deterministic run every time.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace drw::resil {

/// The exception injected by the `throw` action. Distinct from any
/// engine/IO exception type so tests can assert the fault's origin.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide arming flag. `inline` so every translation unit shares one
/// atomic and the disabled check can inline down to a single relaxed load.
inline std::atomic<bool> g_failpoints_armed{false};

inline bool failpoints_armed() noexcept {
  return g_failpoints_armed.load(std::memory_order_relaxed);
}

/// Slow path: counts the hit and fires the configured action when the hit
/// index matches. Returns true iff the site should simulate a short write.
/// May throw InjectedFault or call std::abort() per the armed spec.
bool failpoint_hit(const char* name);

/// A failpoint site. Disabled cost: one relaxed atomic load.
inline bool failpoint(const char* name) {
  if (!failpoints_armed()) return false;
  return failpoint_hit(name);
}

/// Parses and installs a spec (same grammar as DRW_FAILPOINTS), replacing
/// any previous arming and resetting all hit counts. Throws
/// std::invalid_argument on a malformed spec. An empty spec disarms.
void arm_failpoints(const std::string& spec);

/// Disarms every site and resets hit counts (the state DRW_FAILPOINTS-less
/// processes start in).
void disarm_failpoints();

/// Hits recorded for `name` since the last (dis)arm. Armed processes only:
/// sites never reach the counter while disarmed.
std::uint64_t failpoint_hits(const std::string& name);

/// Total slow-path entries across all sites since process start. The
/// zero-overhead contract -- a disarmed site is one relaxed load and
/// nothing else -- is asserted by running a workload disarmed and checking
/// this stays flat (tests/test_resil.cpp, mirroring test_obs).
std::uint64_t failpoint_slow_path_entries() noexcept;

}  // namespace drw::resil
