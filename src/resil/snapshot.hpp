// Crash-safe service snapshots (drw::resil): checkpointed warm restart.
//
// The paper's Phase-1 short-walk inventory is *reusable state* -- the whole
// point of MANY-RANDOM-WALKS amortization -- so a serving process should not
// re-pay preparation rounds after a restart. A ServiceSnapshot captures
// everything a WalkService consumes across batch boundaries:
//
//   * StitchEngine::EngineState (short-walk store, trajectories, lambda,
//     prepared envelope) -- the release_state()/adopt_state() boundary;
//   * the engine's connector-visit counters and the WalkInventory
//     supply/demand image (replenishment planning is part of the sampling
//     stream: it decides which GET-MORE-WALKS runs consume coins);
//   * every node's RNG state (4 x u64 xoshiro words) and the service's
//     next walk id (walk ids key per-walk lane RNG streams);
//   * a graph fingerprint (structure + master seed) so a snapshot can never
//     be adopted by a different network.
//
// Restoring a snapshot therefore yields *bit-identical* destinations, paths
// and per-request stats for all subsequent batches versus the uninterrupted
// run, at every thread count x partition x mux width.
//
// On-disk format (version 1, native-endian, single-host checkpoint):
//
//   [0]  magic   "DRWSNAP1"            (8 bytes)
//   [8]  version u32 | reserved u32
//   [16] payload size u64
//   [24] CRC-32 (IEEE) of payload u32 | reserved u32
//   [32] payload...
//
// Writes are atomic: payload assembled in memory -> <path>.tmp -> fsync ->
// rename(tmp, path) -> fsync(dir). A crash at any point leaves either the
// previous complete snapshot or a stray .tmp; a torn/corrupt/truncated file
// fails the magic/version/size/CRC checks and read_snapshot_file reports
// the reason instead of returning garbage -- callers degrade to cold start.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/random_walks.hpp"
#include "graph/graph.hpp"

namespace drw::resil {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// The WalkInventory image rides along as raw arrays so resil does not
/// depend on the service layer (the service copies in/out).
struct InventoryImage {
  std::vector<std::uint64_t> unused;
  std::vector<std::uint64_t> demand;
  std::vector<std::uint64_t> last_visits;
  std::uint64_t total_unused = 0;
  std::uint64_t total_demand = 0;
};

/// Everything a WalkService needs to warm-start bit-identically.
struct ServiceSnapshot {
  std::uint64_t graph_fingerprint = 0;
  std::uint32_t next_walk_id = 0;
  core::StitchEngine::EngineState engine;
  std::vector<std::uint64_t> connector_visits;
  InventoryImage inventory;
  std::vector<std::array<std::uint64_t, 4>> rng_states;  // per node
};

/// Structure + seed fingerprint: FNV-1a over the node count, every
/// adjacency slot and the master seed. Two networks share a fingerprint
/// iff a snapshot taken on one replays exactly on the other.
std::uint64_t graph_fingerprint(const Graph& g, std::uint64_t seed);

/// CRC-32 (IEEE 802.3, reflected) -- the snapshot checksum.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Atomically writes `snap` to `path` (tmp + fsync + rename). Throws
/// std::runtime_error on IO failure. Failpoints: "snapshot.write"
/// (short_write truncates the payload -- a simulated torn file that the
/// CRC must catch) and "snapshot.commit" (before the rename -- the
/// kill-mid-snapshot window for tools/crash_harness.py).
void write_snapshot_file(const std::string& path, const ServiceSnapshot& snap);

struct ReadOutcome {
  std::optional<ServiceSnapshot> snapshot;  ///< empty on any failure
  std::string error;  ///< human-readable reason when snapshot is empty
};

/// Reads and validates a snapshot. Never throws on bad *content*: a
/// missing/torn/corrupt/mismatched file comes back as an empty snapshot
/// plus the detection reason, so callers can log it and cold-start.
ReadOutcome read_snapshot_file(const std::string& path);

/// Generation naming for rotated snapshots: slot 0 is `path` itself (the
/// single-file layout), slot k >= 1 is `path.k` with 1 the newest
/// generation and higher slots older.
std::string snapshot_generation_path(const std::string& path,
                                     std::uint32_t slot);

/// Shifts generations one slot up (`path.k` -> `path.k+1` for
/// k = keep-1 .. 1, the oldest falling off), making room for a fresh
/// atomic write at `path.1`. Missing generations are skipped silently; a
/// crash mid-rotation leaves every surviving file a complete, validly
/// checksummed snapshot (renames never tear contents), so restore's
/// newest-valid scan still succeeds.
void rotate_snapshot_files(const std::string& path, std::uint32_t keep);

}  // namespace drw::resil
