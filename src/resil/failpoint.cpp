#include "resil/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace drw::resil {

namespace {

enum class Action : std::uint8_t { kThrow, kAbort, kShortWrite, kDelay };

struct SiteSpec {
  std::uint64_t trigger_at = 1;  ///< 1-based hit index that fires
  Action action = Action::kThrow;
  std::uint32_t delay_ms = 0;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteSpec> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

std::atomic<std::uint64_t> g_slow_path_entries{0};

/// Parses one "site@N:action" clause into (name, spec).
std::pair<std::string, SiteSpec> parse_clause(const std::string& clause) {
  const std::size_t colon = clause.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("failpoint spec clause '" + clause +
                                "': expected site[@N]:action");
  }
  std::string site = clause.substr(0, colon);
  const std::string action = clause.substr(colon + 1);
  SiteSpec spec;
  const std::size_t at = site.rfind('@');
  if (at != std::string::npos) {
    const std::string count = site.substr(at + 1);
    char* end = nullptr;
    spec.trigger_at = std::strtoull(count.c_str(), &end, 10);
    if (count.empty() || *end != '\0' || spec.trigger_at == 0) {
      throw std::invalid_argument("failpoint spec clause '" + clause +
                                  "': hit index must be a positive integer");
    }
    site = site.substr(0, at);
  }
  if (site.empty()) {
    throw std::invalid_argument("failpoint spec clause '" + clause +
                                "': empty site name");
  }
  if (action == "throw") {
    spec.action = Action::kThrow;
  } else if (action == "abort") {
    spec.action = Action::kAbort;
  } else if (action == "short_write") {
    spec.action = Action::kShortWrite;
  } else if (action.rfind("delay_ms=", 0) == 0) {
    const std::string ms = action.substr(9);
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(ms.c_str(), &end, 10);
    if (ms.empty() || *end != '\0') {
      throw std::invalid_argument("failpoint spec clause '" + clause +
                                  "': delay_ms wants an integer");
    }
    spec.action = Action::kDelay;
    spec.delay_ms = static_cast<std::uint32_t>(parsed);
  } else {
    throw std::invalid_argument(
        "failpoint spec clause '" + clause +
        "': unknown action (throw|abort|short_write|delay_ms=K)");
  }
  return {site, spec};
}

/// DRW_FAILPOINTS is parsed once, before main touches any site. A malformed
/// env spec aborts loudly: silently running *without* the faults the
/// operator asked for would invalidate whatever the run was testing.
[[maybe_unused]] const bool g_env_armed = [] {
  const char* env = std::getenv("DRW_FAILPOINTS");
  if (env == nullptr || *env == '\0') return false;
  try {
    arm_failpoints(env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "resil: bad DRW_FAILPOINTS: %s\n", e.what());
    std::abort();
  }
  return true;
}();

}  // namespace

void arm_failpoints(const std::string& spec) {
  std::unordered_map<std::string, SiteSpec> parsed;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    if (end > begin) {
      auto [site, site_spec] = parse_clause(spec.substr(begin, end - begin));
      parsed[std::move(site)] = site_spec;
    }
    begin = end + 1;
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites = std::move(parsed);
  g_failpoints_armed.store(!reg.sites.empty(), std::memory_order_relaxed);
}

void disarm_failpoints() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.clear();
  g_failpoints_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t failpoint_hits(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t failpoint_slow_path_entries() noexcept {
  return g_slow_path_entries.load(std::memory_order_relaxed);
}

bool failpoint_hit(const char* name) {
  g_slow_path_entries.fetch_add(1, std::memory_order_relaxed);
  Action action;
  std::uint32_t delay_ms;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.sites.find(name);
    if (it == reg.sites.end()) return false;
    SiteSpec& spec = it->second;
    if (++spec.hits != spec.trigger_at) return false;
    action = spec.action;
    delay_ms = spec.delay_ms;
  }
  // Act outside the lock: throw unwinds arbitrary frames and delay must not
  // serialize unrelated sites on other threads.
  switch (action) {
    case Action::kThrow:
      throw InjectedFault(std::string("injected fault at failpoint '") +
                          name + "'");
    case Action::kAbort:
      std::fprintf(stderr, "resil: aborting at failpoint '%s'\n", name);
      std::abort();
    case Action::kShortWrite:
      return true;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
  }
  return false;
}

}  // namespace drw::resil
