#include "resil/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "resil/failpoint.hpp"

namespace drw::resil {

namespace {

constexpr char kMagic[8] = {'D', 'R', 'W', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderSize = 32;

// --- byte-stream helpers ---------------------------------------------------

struct Writer {
  std::vector<std::uint8_t> bytes;

  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + size);
  }
  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void u64s(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint64_t));
  }
};

/// Bounds-checked reader; any overrun means a truncated/corrupt payload
/// (thrown as runtime_error, translated to a ReadOutcome error by the
/// caller -- it can only happen if the CRC was forged too).
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  void raw(void* out, std::size_t size) {
    if (static_cast<std::size_t>(end - p) < size) {
      throw std::runtime_error("payload truncated");
    }
    std::memcpy(out, p, size);
    p += size;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  /// Guards count fields before vector reserves: a forged count must fail
  /// as "truncated", not as a multi-GB allocation.
  std::uint64_t count(std::size_t elem_size) {
    const std::uint64_t n = u64();
    if (elem_size != 0 &&
        n > static_cast<std::uint64_t>(end - p) / elem_size) {
      throw std::runtime_error("payload truncated");
    }
    return n;
  }
  std::vector<std::uint64_t> u64s() {
    std::vector<std::uint64_t> v(count(sizeof(std::uint64_t)));
    raw(v.data(), v.size() * sizeof(std::uint64_t));
    return v;
  }
};

// --- trajectory-map (de)serialization --------------------------------------
// unordered_map iteration order is unspecified, so entries are emitted
// sorted by key: the byte stream is a pure function of the logical state.
// Per-key vector order is preserved verbatim -- fragment replay consumes by
// index (swap-remove), so it is part of the bit-identity contract.

std::uint32_t r_first(const core::ForwardHop& r) { return r.hop; }
std::uint32_t r_second(const core::ForwardHop& r) { return r.next_slot; }
std::uint32_t r_first(const core::Fragment& r) { return r.prev_slot; }
std::uint32_t r_second(const core::Fragment& r) { return r.next_slot; }

template <typename Record>
Record make_record(std::uint32_t, std::uint32_t);
template <>
core::ForwardHop make_record(std::uint32_t a, std::uint32_t b) {
  return core::ForwardHop{a, b};
}
template <>
core::Fragment make_record(std::uint32_t a, std::uint32_t b) {
  return core::Fragment{a, b};
}

template <typename Record>
void write_trajectory_side(
    Writer& w,
    const std::vector<std::unordered_map<std::uint64_t, std::vector<Record>>>&
        side) {
  static_assert(sizeof(Record) == 8, "Record layout changed: bump version");
  for (const auto& map : side) {
    std::vector<std::uint64_t> keys;
    keys.reserve(map.size());
    for (const auto& [key, records] : map) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const std::uint64_t key : keys) {
      const std::vector<Record>& records = map.at(key);
      w.u64(key);
      w.u64(records.size());
      for (const Record& r : records) {
        w.u32(r_first(r));
        w.u32(r_second(r));
      }
    }
  }
}

template <typename Record>
void read_trajectory_side(
    Reader& r,
    std::vector<std::unordered_map<std::uint64_t, std::vector<Record>>>&
        side) {
  for (auto& map : side) {
    const std::uint64_t entries = r.count(/*key+count=*/16);
    map.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e) {
      const std::uint64_t key = r.u64();
      const std::uint64_t n = r.count(/*two u32s=*/8);
      std::vector<Record>& records = map[key];
      records.resize(n);
      for (Record& rec : records) {
        const std::uint32_t a = r.u32();
        const std::uint32_t b = r.u32();
        rec = make_record<Record>(a, b);
      }
    }
  }
}

std::vector<std::uint8_t> encode_payload(const ServiceSnapshot& snap) {
  const std::size_t n = snap.engine.store.held.size();
  Writer w;
  w.u64(snap.graph_fingerprint);
  w.u64(n);
  w.u32(snap.engine.lambda);
  w.u32(snap.next_walk_id);
  w.u64(snap.engine.prepared_l);
  w.u64(snap.engine.prepared_k);
  w.u64(snap.inventory.total_unused);
  w.u64(snap.inventory.total_demand);
  for (const auto& state : snap.rng_states) {
    for (const std::uint64_t word : state) w.u64(word);
  }
  w.u64s(snap.connector_visits);
  w.u64s(snap.inventory.unused);
  w.u64s(snap.inventory.demand);
  w.u64s(snap.inventory.last_visits);
  for (const auto& held : snap.engine.store.held) {
    w.u64(held.size());
    for (const core::HeldToken& t : held) {
      w.u32(t.source);
      w.u32(t.seq);
      w.u32(t.length);
      w.u32(t.arrival_slot);
      w.u8(static_cast<std::uint8_t>(t.kind));
      w.u8(t.used ? 1 : 0);
    }
  }
  write_trajectory_side(w, snap.engine.trajectories.forward);
  write_trajectory_side(w, snap.engine.trajectories.fragments);
  return std::move(w.bytes);
}

ServiceSnapshot decode_payload(const std::uint8_t* data, std::size_t size) {
  Reader r{data, data + size};
  ServiceSnapshot snap;
  snap.graph_fingerprint = r.u64();
  const std::uint64_t n = r.count(/*>= 4 rng words*/ 32);
  snap.engine.lambda = r.u32();
  snap.next_walk_id = r.u32();
  snap.engine.prepared_l = r.u64();
  snap.engine.prepared_k = r.u64();
  snap.inventory.total_unused = r.u64();
  snap.inventory.total_demand = r.u64();
  snap.rng_states.resize(n);
  for (auto& state : snap.rng_states) {
    for (std::uint64_t& word : state) word = r.u64();
  }
  snap.connector_visits = r.u64s();
  snap.inventory.unused = r.u64s();
  snap.inventory.demand = r.u64s();
  snap.inventory.last_visits = r.u64s();
  snap.engine.store = core::WalkStore(n);
  for (auto& held : snap.engine.store.held) {
    held.resize(r.count(/*token bytes=*/18));
    for (core::HeldToken& t : held) {
      t.source = r.u32();
      t.seq = r.u32();
      t.length = r.u32();
      t.arrival_slot = r.u32();
      t.kind = static_cast<core::WalkKind>(r.u8());
      t.used = r.u8() != 0;
    }
  }
  snap.engine.trajectories = core::TrajectoryStore(n);
  read_trajectory_side(r, snap.engine.trajectories.forward);
  read_trajectory_side(r, snap.engine.trajectories.fragments);
  if (r.p != r.end) throw std::runtime_error("trailing payload bytes");
  return snap;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // IEEE 802.3 reflected polynomial, slicing-by-8: eight derived tables let
  // the hot loop fold 8 input bytes per iteration instead of 1 (~5-8x on
  // the multi-MB payloads the CSR cache checksums). Bitwise identical to
  // the classic byte loop, which still handles the unaligned head/tail.
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint8_t* end = p + size;
  while (p < end && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = tables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  for (; p + 8 <= end; p += 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian hosts only (the endian tag enforces this)
    crc = tables[7][word & 0xFFu] ^ tables[6][(word >> 8) & 0xFFu] ^
          tables[5][(word >> 16) & 0xFFu] ^ tables[4][(word >> 24) & 0xFFu] ^
          tables[3][(word >> 32) & 0xFFu] ^ tables[2][(word >> 40) & 0xFFu] ^
          tables[1][(word >> 48) & 0xFFu] ^ tables[0][word >> 56];
  }
  while (p < end) {
    crc = tables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t graph_fingerprint(const Graph& g, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  };
  mix(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    mix(g.degree(v));
    for (const NodeId u : g.neighbors(v)) mix(u);
  }
  mix(seed);
  return h;
}

void write_snapshot_file(const std::string& path,
                         const ServiceSnapshot& snap) {
  std::vector<std::uint8_t> payload = encode_payload(snap);

  std::vector<std::uint8_t> file(kHeaderSize);
  std::memcpy(file.data(), kMagic, sizeof kMagic);
  const std::uint32_t version = kSnapshotVersion;
  std::memcpy(file.data() + 8, &version, 4);
  const std::uint64_t payload_size = payload.size();
  std::memcpy(file.data() + 16, &payload_size, 8);
  const std::uint32_t checksum = crc32(payload.data(), payload.size());
  std::memcpy(file.data() + 24, &checksum, 4);
  // A short_write arming truncates the payload AFTER the header promised
  // the full size: the torn file renames into place and the reader's
  // size/CRC validation must reject it.
  if (failpoint("snapshot.write")) payload.resize(payload.size() / 2);
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("snapshot: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written,
                              file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("snapshot: write to " + tmp + " failed: " +
                               std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("snapshot: fsync/close of " + tmp + " failed");
  }
  // The kill-mid-snapshot window: a crash here leaves the previous
  // complete snapshot in place plus a stray .tmp (never a torn snapshot).
  failpoint("snapshot.commit");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("snapshot: rename to " + path + " failed: " +
                             std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

ReadOutcome read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {std::nullopt, "cannot open " + path};
  }
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (in.bad()) return {std::nullopt, "read error on " + path};
  if (file.size() < kHeaderSize) {
    return {std::nullopt, "truncated header (" +
                              std::to_string(file.size()) + " bytes)"};
  }
  if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    return {std::nullopt, "bad magic (not a drw snapshot)"};
  }
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + 8, 4);
  if (version != kSnapshotVersion) {
    return {std::nullopt, "unsupported snapshot version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kSnapshotVersion) + ")"};
  }
  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + 16, 8);
  if (payload_size != file.size() - kHeaderSize) {
    return {std::nullopt,
            "payload size mismatch (header says " +
                std::to_string(payload_size) + ", file carries " +
                std::to_string(file.size() - kHeaderSize) + ")"};
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + 24, 4);
  const std::uint32_t actual_crc =
      crc32(file.data() + kHeaderSize, payload_size);
  if (stored_crc != actual_crc) {
    return {std::nullopt, "checksum mismatch (torn or corrupt snapshot)"};
  }
  try {
    return {decode_payload(file.data() + kHeaderSize, payload_size), ""};
  } catch (const std::exception& e) {
    return {std::nullopt, std::string("payload decode failed: ") + e.what()};
  }
}

std::string snapshot_generation_path(const std::string& path,
                                     std::uint32_t slot) {
  if (slot == 0) return path;
  return path + "." + std::to_string(slot);
}

void rotate_snapshot_files(const std::string& path, std::uint32_t keep) {
  // Oldest-first so every rename's destination slot is already vacated
  // (or about to be overwritten -- POSIX rename replaces atomically).
  // rename failures (typically ENOENT for not-yet-populated slots) are
  // deliberately ignored: rotation is best-effort bookkeeping; the write
  // that follows is the operation whose failure matters.
  for (std::uint32_t slot = keep; slot >= 2; --slot) {
    std::rename(snapshot_generation_path(path, slot - 1).c_str(),
                snapshot_generation_path(path, slot).c_str());
  }
}

}  // namespace drw::resil
