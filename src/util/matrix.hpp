// Minimal dense linear algebra for the Markov-chain oracle and the
// matrix-tree spanning-tree counter. Row-major double storage; sized for the
// small "ground truth" graphs used in tests and validation experiments
// (n up to a few thousand), not for the simulated networks themselves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace drw {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix operator*(const Matrix& rhs) const;

  /// Left vector-matrix product: (row vector v) * M. Matches the convention
  /// of distribution evolution p_{t+1} = p_t * P for row-stochastic P.
  std::vector<double> left_multiply(std::span<const double> v) const;

  /// log|det| and sign via partial-pivot LU decomposition; O(n^3).
  /// Returns {log_abs_det, sign}; sign 0 means singular.
  struct LogDet {
    double log_abs = 0.0;
    int sign = 1;
  };
  LogDet log_det() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace drw
