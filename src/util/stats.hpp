// Summary statistics and hypothesis tests used by the test suite and the
// benchmark harness: running moments, percentiles, chi-square goodness of fit
// (with p-values via the regularized incomplete gamma function), and total
// variation / L1 distance between discrete distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace drw {

/// Single-pass running mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,1]) by linear interpolation; copies & sorts.
double percentile(std::span<const double> samples, double p);

/// L1 distance sum_i |a_i - b_i|. Spans must have equal length.
double l1_distance(std::span<const double> a, std::span<const double> b);

/// Total variation distance = l1_distance / 2.
double tv_distance(std::span<const double> a, std::span<const double> b);

/// Regularized lower incomplete gamma P(a, x); used for chi-square p-values.
/// Follows the series/continued-fraction split of Numerical Recipes.
double regularized_gamma_p(double a, double x);

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;   ///< sum (obs - exp)^2 / exp over kept cells
  std::size_t dof = 0;      ///< degrees of freedom (cells kept - 1)
  double p_value = 1.0;     ///< P(X^2_dof >= statistic)
};

/// Chi-square test of observed counts vs expected probabilities.
/// Cells with expected count below `min_expected` are pooled into their
/// neighbor to keep the chi-square approximation valid.
/// Preconditions: equal lengths; probabilities sum to ~1; total > 0.
ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_probs,
                                double min_expected = 5.0);

/// Least-squares fit of log(y) = a + b*log(x); returns the exponent b.
/// Used to verify complexity shapes (e.g. rounds ~ l^0.5). Ignores
/// non-positive entries. Requires at least two usable points.
double log_log_slope(std::span<const double> x, std::span<const double> y);

}  // namespace drw
