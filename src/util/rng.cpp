#include "util/rng.hpp"

#include <bit>
#include <cassert>

namespace drw {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro's state must not be all zero; splitmix64 cannot emit four zero
  // words in a row, so no further handling is required.
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Rng::next_double() noexcept {
  // 53 random bits scaled into [0,1); standard xoshiro recipe.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept {
  Rng child(0);
  std::uint64_t s = (*this)();
  for (auto& word : child.state_) word = splitmix64(s);
  return child;
}

Rng Rng::split_key(std::uint64_t key) const noexcept {
  // Mix the parent state with the key; the parent is not advanced so the
  // mapping key -> stream is stable for a given parent state.
  std::uint64_t s = state_[0] ^ (key * 0x9e3779b97f4a7c15ULL) ^ state_[3];
  Rng child(0);
  for (auto& word : child.state_) word = splitmix64(s);
  return child;
}

std::size_t Rng::pick_weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace drw
