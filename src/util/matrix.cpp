#include "util/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace drw {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::*: shape");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto rhs_row = rhs.row(k);
      auto out_row = out.row(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

std::vector<double> Matrix::left_multiply(std::span<const double> v) const {
  if (v.size() != rows_) throw std::invalid_argument("left_multiply: shape");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double a = v[i];
    if (a == 0.0) continue;
    const auto r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) out[j] += a * r[j];
  }
  return out;
}

Matrix::LogDet Matrix::log_det() const {
  if (rows_ != cols_) throw std::invalid_argument("log_det: not square");
  const std::size_t n = rows_;
  Matrix lu = *this;
  LogDet result;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(lu(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best == 0.0) return {0.0, 0};
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu(pivot, j), lu(col, j));
      }
      result.sign = -result.sign;
    }
    const double diag = lu(col, col);
    result.log_abs += std::log(std::abs(diag));
    if (diag < 0.0) result.sign = -result.sign;
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / diag;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) lu(r, j) -= factor * lu(col, j);
    }
  }
  return result;
}

}  // namespace drw
