// Deterministic random number generation for the whole library.
//
// Every stochastic component (graph generators, distributed protocols,
// benchmark workloads) draws from an Rng seeded from a single master seed, so
// all tests and experiments are exactly reproducible. Per-node randomness in
// distributed protocols uses `Rng::split`, which derives statistically
// independent child streams (SplitMix64 over the parent state), mirroring how
// each processor in the CONGEST model owns a private coin.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace drw {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64 (recommended
  /// initialization; avoids the all-zero state for every seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Derives an independent child stream. Children of distinct calls are
  /// distinct; the parent advances so repeated splits differ.
  Rng split() noexcept;

  /// Derives a child stream keyed by `key` *without* advancing the parent.
  /// Used to give node i of a network its own stream: `master.split_key(i)`.
  Rng split_key(std::uint64_t key) const noexcept;

  /// Uniformly samples an index by nonnegative weights; sum must be > 0.
  std::size_t pick_weighted(std::span<const double> weights) noexcept;

  /// The raw four-word generator state, for checkpointing (drw::resil).
  /// Restoring it with set_state() resumes the stream exactly where the
  /// snapshot left it.
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

  /// Restores a previously captured state. The all-zero state is a fixed
  /// point of xoshiro256** and is rejected by falling back to reseeding
  /// (it can only come from a corrupt snapshot, which the checksum layer
  /// should already have caught).
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
      *this = Rng();
      return;
    }
    state_ = state;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step: the canonical 64-bit mixer used for seeding.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace drw
