#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace drw {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  p = std::clamp(p, 0.0, 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double tv_distance(std::span<const double> a, std::span<const double> b) {
  return 0.5 * l1_distance(a, b);
}

namespace {

/// Series expansion of P(a,x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  const double log_gamma_a = std::lgamma(a);
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
}

/// Continued fraction for Q(a,x) = 1 - P(a,x), valid for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  const double log_gamma_a = std::lgamma(a);
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma_a) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (x < 0.0 || a <= 0.0) {
    throw std::invalid_argument("regularized_gamma_p: domain error");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_probs,
                                double min_expected) {
  assert(observed.size() == expected_probs.size());
  if (observed.empty()) throw std::invalid_argument("chi_square_test: empty");

  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  if (total == 0) throw std::invalid_argument("chi_square_test: no samples");

  // Pool adjacent low-expectation cells so each kept cell has expected count
  // >= min_expected; this is the standard validity fix for sparse tails.
  std::vector<double> pooled_exp;
  std::vector<double> pooled_obs;
  double acc_exp = 0.0;
  double acc_obs = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_exp += expected_probs[i] * static_cast<double>(total);
    acc_obs += static_cast<double>(observed[i]);
    if (acc_exp >= min_expected) {
      pooled_exp.push_back(acc_exp);
      pooled_obs.push_back(acc_obs);
      acc_exp = 0.0;
      acc_obs = 0.0;
    }
  }
  if (acc_exp > 0.0 || acc_obs > 0.0) {
    if (!pooled_exp.empty()) {
      pooled_exp.back() += acc_exp;
      pooled_obs.back() += acc_obs;
    } else {
      pooled_exp.push_back(acc_exp);
      pooled_obs.push_back(acc_obs);
    }
  }

  ChiSquareResult result;
  if (pooled_exp.size() < 2) {
    // Everything pooled into one cell: the test is vacuous.
    return result;
  }
  for (std::size_t i = 0; i < pooled_exp.size(); ++i) {
    const double diff = pooled_obs[i] - pooled_exp[i];
    result.statistic += diff * diff / pooled_exp[i];
  }
  result.dof = pooled_exp.size() - 1;
  result.p_value =
      1.0 - regularized_gamma_p(static_cast<double>(result.dof) / 2.0,
                                result.statistic / 2.0);
  return result;
}

double log_log_slope(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) throw std::invalid_argument("log_log_slope: need >= 2 points");
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("log_log_slope: degenerate x");
  return (dn * sxy - sx * sy) / denom;
}

}  // namespace drw
