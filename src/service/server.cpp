#include "service/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drw::service {
namespace {

/// Mirror of the service's effective stitching width (explicit config,
/// else DRW_MUX, else 1) -- the cross-batch lane floor.
unsigned effective_mux_width(const ServiceConfig& config) {
  if (config.mux_width != 0) return config.mux_width;
  if (const char* env = std::getenv("DRW_MUX")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
  return 1;
}

}  // namespace

WalkServer::WalkServer(WalkService& service, const csr::LoadedGraph& graph,
                       ServerConfig config)
    : service_(service),
      graph_(graph),
      config_(std::move(config)),
      queue_([&] {
        AdmissionConfig a = config_.admission;
        // Lane floor: keep draining until the batch can saturate the mux
        // lanes of the next wave (unless the queue runs dry first).
        a.min_batch_requests =
            std::max<std::uint32_t>(a.min_batch_requests,
                                    effective_mux_width(service.config()));
        return a;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  user_node_count_ = graph_.old_to_new.empty()
                         ? graph_.graph.node_count()
                         : graph_.old_to_new.size();
}

WalkServer::~WalkServer() {
  request_stop();
  if (accept_thread_.joinable() || serve_thread_.joinable()) join();
  if (log_ != nullptr) std::fclose(log_);
}

void WalkServer::start() {
  listener_ = net::tcp_listen(config_.host, config_.port);
  port_ = net::local_port(listener_);
  for (const auto& [name, quantum] : config_.class_quanta) {
    queue_.set_class_quantum(queue_.intern_class(name), quantum);
  }
  if (!config_.admission_log.empty()) {
    log_ = std::fopen(config_.admission_log.c_str(), "w");
    if (log_ == nullptr) {
      throw std::runtime_error("server: cannot open admission log " +
                               config_.admission_log);
    }
  }
  epoch_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  serve_thread_ = std::thread([this] { serve_loop(); });
}

void WalkServer::join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Accepting has stopped. Wake every reader (a blocked recv sees EOF via
  // SHUT_RD), join them, then close the queue so the serving thread can
  // drain the remainder and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.shutdown_read();
  }
  for (;;) {
    Conn* pending = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& conn : conns_) {
        if (conn->reader.joinable()) {
          pending = conn.get();
          break;
        }
      }
    }
    if (pending == nullptr) break;
    pending->reader.join();
  }
  queue_.close();
  if (serve_thread_.joinable()) serve_thread_.join();
  if (log_ != nullptr) {
    std::fflush(log_);
  }
  // Snapshot-on-SIGTERM: persist serving state accumulated since the last
  // batch boundary (no-op without ServiceConfig.snapshot_path).
  service_.checkpoint();
}

ServerStats WalkServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::size_t WalkServer::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void WalkServer::accept_loop() {
  auto& connections = obs::Registry::global().counter("server.connections");
  while (!stopping()) {
    net::Socket sock =
        net::accept_one(listener_, wake_.read_fd(), /*timeout_ms=*/250);
    reap_connections();
    if (stopping()) break;
    if (!sock.valid()) continue;
    connections.add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(sock);
    conn->id = next_conn_id_++;
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
  }
}

void WalkServer::reap_connections() {
  // Collect under the lock, tear down outside it: readers call respond(),
  // which takes conns_mu_, so joining a reader under conns_mu_ deadlocks.
  std::vector<std::shared_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if ((*it)->dead.load(std::memory_order_relaxed)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : dead) {
    // A writer-marked-dead connection may still have its reader parked in
    // poll(POLLIN); shutdown makes that recv return EOF immediately.
    conn->socket.shutdown_both();
    if (conn->reader.joinable()) conn->reader.join();
    queue_.release_flow(conn->id);
    // The socket fd closes when the last shared_ptr (possibly one pinned
    // by an in-flight respond()) drops.
  }
}

void WalkServer::reader_loop(Conn* conn) {
  net::FrameType type{};
  std::vector<std::uint8_t> payload;
  // HELLO handshake first: names the admission class, checks the version.
  if (!net::read_frame(conn->socket, &type, &payload,
                       config_.io_timeout_ms) ||
      type != net::FrameType::kHello) {
    conn->dead.store(true, std::memory_order_relaxed);
    return;
  }
  const auto hello = net::decode_hello(payload.data(), payload.size());
  if (!hello || hello->version != net::kProtocolVersion) {
    conn->dead.store(true, std::memory_order_relaxed);
    return;
  }
  conn->class_id = queue_.intern_class(hello->klass);
  {
    net::HelloFrame reply;
    reply.version = net::kProtocolVersion;
    reply.node_count = user_node_count_;
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (!net::write_frame(conn->socket, net::FrameType::kHello,
                          net::encode_hello(reply), config_.io_timeout_ms)) {
      conn->dead.store(true, std::memory_order_relaxed);
      return;
    }
  }

  while (!stopping()) {
    if (!net::read_frame(conn->socket, &type, &payload,
                         config_.io_timeout_ms) ||
        type != net::FrameType::kRequest) {
      break;  // EOF, timeout, torn frame, or protocol violation
    }
    const auto req = net::decode_request(payload.data(), payload.size());
    if (!req) break;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests;
    }

    // Pre-admission validation: structural rejects never enter the
    // admission log, so the log replays without them.
    const NodeId internal =
        req->source <= std::uint64_t{kInvalidNode}
            ? graph_.to_internal(static_cast<NodeId>(req->source))
            : kInvalidNode;
    RequestStatus reject = RequestStatus::kOk;
    if (internal == kInvalidNode) {
      reject = RequestStatus::kSourceOutOfRange;
    } else if (req->record && !service_.config().enable_paths) {
      reject = RequestStatus::kPathsDisabled;
    }
    if (reject == RequestStatus::kOk) {
      PendingRequest pending;
      pending.request.source = internal;
      pending.request.length = req->length;
      pending.request.count = req->count;
      pending.request.record_positions = req->record;
      pending.user_source = req->source;
      pending.flow = conn->id;
      pending.tag = req->tag;
      pending.class_id = conn->class_id;
      pending.arrival_ms = now_ms();
      pending.deadline_ms = req->deadline_ms;
      const RequestStatus st = queue_.enqueue(std::move(pending));
      if (st == RequestStatus::kOk) continue;
      reject = st;
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (reject == RequestStatus::kQueueFull) {
        ++stats_.rejected_queue_full;
      } else {
        ++stats_.rejected_invalid;
      }
    }
    obs::Registry::global()
        .counter(reject == RequestStatus::kQueueFull
                     ? "server.rejected.queue_full"
                     : "server.rejected.invalid")
        .add(1);
    respond(conn->id, reject_frame(req->tag, reject, req->record));
  }
  conn->dead.store(true, std::memory_order_relaxed);
}

net::ResponseFrame WalkServer::reject_frame(std::uint64_t tag,
                                            RequestStatus status,
                                            bool record) const {
  net::ResponseFrame frame;
  frame.tag = tag;
  frame.admission_index = net::kNotAdmitted;
  frame.status = static_cast<std::uint8_t>(status);
  frame.record = record;
  return frame;
}

void WalkServer::respond(std::uint64_t conn_id,
                         const net::ResponseFrame& frame) {
  std::shared_ptr<Conn> conn;  // pins the Conn past a concurrent reap
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) {
      if (c->id == conn_id) {
        conn = c;
        break;
      }
    }
  }
  if (conn == nullptr || conn->dead.load(std::memory_order_relaxed)) return;
  obs::Span span(obs::Name::kServerRespond, obs::kPidServer, 0,
                 frame.admission_index);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!net::write_frame(conn->socket, net::FrameType::kResponse,
                        net::encode_response(frame),
                        config_.io_timeout_ms)) {
    // The client is gone or the link is torn; the connection is done but
    // the batch result stands (deterministic replay is unaffected).
    conn->dead.store(true, std::memory_order_relaxed);
    conn->socket.shutdown_both();
  }
}

void WalkServer::serve_loop() {
  auto& registry = obs::Registry::global();
  auto& depth_gauge = registry.gauge("server.queue_depth");
  auto& admitted_counter = registry.counter("server.admitted");
  auto& deadline_counter = registry.counter("server.rejected.deadline");

  while (queue_.wait_for_work()) {
    std::vector<AdmissionReject> rejects;
    std::vector<PendingRequest> batch = queue_.drain(now_ms(), &rejects);
    depth_gauge.set(static_cast<double>(queue_.depth()));

    for (const AdmissionReject& rej : rejects) {
      deadline_counter.add(1);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_deadline;
      }
      respond(rej.request.flow,
              reject_frame(rej.request.tag, rej.status,
                           rej.request.request.record_positions));
    }
    if (batch.empty()) continue;

    obs::Span drain_span(obs::Name::kServerDrain, obs::kPidServer, 0,
                         batch.size());
    for (const PendingRequest& p : batch) {
      service_.submit(p.request);
      if (log_ != nullptr) {
        std::fprintf(log_, "%llu %llu %u %u\n",
                     static_cast<unsigned long long>(p.user_source),
                     static_cast<unsigned long long>(p.request.length),
                     p.request.count, p.request.record_positions ? 1 : 0);
      }
    }
    if (log_ != nullptr) {
      std::fprintf(log_, "# batch\n");
      std::fflush(log_);
    }
    const BatchReport report = service_.flush();
    admitted_counter.add(batch.size());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.admitted += batch.size();
      ++stats_.batches;
    }

    const double done_ms = now_ms();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const PendingRequest& p = batch[i];
      const RequestResult& r = report.results[i];
      net::ResponseFrame frame;
      frame.tag = p.tag;
      frame.admission_index = p.admission_index;
      frame.status = static_cast<std::uint8_t>(r.status);
      frame.record = p.request.record_positions;
      frame.destinations.reserve(r.destinations.size());
      for (NodeId d : r.destinations) {
        frame.destinations.push_back(graph_.to_user(d));
      }
      frame.paths.reserve(r.paths.size());
      for (const auto& path : r.paths) {
        std::vector<std::uint32_t> user_path;
        user_path.reserve(path.size());
        for (NodeId node : path) user_path.push_back(graph_.to_user(node));
        frame.paths.push_back(std::move(user_path));
      }
      respond(p.flow, frame);
      const double sojourn = std::max(0.0, done_ms - p.arrival_ms);
      registry
          .histogram("server.latency_ms." + queue_.class_name(p.class_id))
          .record(static_cast<std::uint64_t>(sojourn));
    }
  }
}

}  // namespace drw::service
