// Batch execution planning for the walk service.
//
// The scheduler turns a heterogeneous request batch into walk units and
// drives one StitchEngine through them the way MANY-RANDOM-WALKS does
// (Section 2.3): stitching runs per walk, but every naive tail -- including
// the whole body of walks too short to stitch (l < 2*lambda) -- is deferred
// and completed in ONE concurrent NaiveSegmentProtocol run, so k tails cost
// O(k + 2*lambda) rounds instead of k * 2*lambda. Units run longest-first:
// deep walks consume (and, via GET-MORE-WALKS, replenish) the inventory
// early, so short walks behind them never stall on an empty pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/random_walks.hpp"
#include "service/walk_request.hpp"

namespace drw::service {

class BatchScheduler {
 public:
  /// One walk unit: request `request_index`'s `slot`-th walk, tagged with a
  /// service-global `walk_id`.
  struct Unit {
    std::uint32_t request_index = 0;
    std::uint32_t slot = 0;
    std::uint32_t walk_id = 0;
    NodeId source = 0;
    std::uint64_t length = 0;
    bool record = false;
  };

  /// Everything one batch run produced.
  struct Outcome {
    std::vector<RequestResult> results;  ///< submission order
    congest::RunStats stats;             ///< walks + shared tail run
    congest::RunStats tail_stats;        ///< the shared tail run alone
    core::WalkCounters counters;         ///< summed over all units
    std::uint64_t walks = 0;
  };

  explicit BatchScheduler(core::StitchEngine& engine) : engine_(&engine) {}

  /// Expands requests into units, longest-first (stable within a length).
  static std::vector<Unit> plan(std::span<const WalkRequest> requests,
                                std::uint32_t first_walk_id);

  /// Runs the batch: per-unit stitching with deferred tails, one concurrent
  /// tail run, per-request assembly, and -- for units with `record` on an
  /// engine that records trajectories -- path extraction from the drained
  /// position table. The engine must be prepared for (sum of counts,
  /// max length).
  Outcome run(std::span<const WalkRequest> requests,
              std::uint32_t first_walk_id);

 private:
  core::StitchEngine* engine_;
};

}  // namespace drw::service
