// Batch execution planning for the walk service.
//
// The scheduler turns a heterogeneous request batch into walk units and
// drives one StitchEngine through them the way MANY-RANDOM-WALKS does
// (Section 2.3): stitching runs per walk, but every naive tail -- including
// the whole body of walks too short to stitch (l < 2*lambda) -- is deferred
// and completed in ONE concurrent NaiveSegmentProtocol run, so k tails cost
// O(k + 2*lambda) rounds instead of k * 2*lambda. Units run longest-first:
// deep walks consume (and, via GET-MORE-WALKS, replenish) the inventory
// early, so short walks behind them never stall on an empty pool.
//
// Concurrent stitching (MuxOptions): the paper's round analysis permits
// interleaving the BFS/convergecast/broadcast traversals of *different*
// walks when their connectors do not contend. With mode kMux the scheduler
// keeps up to `width` walks open as resumable StitchEngine::WalkTasks and,
// each wave, groups the tasks whose next traversals are pairwise
// non-conflicting -- the only cross-walk coupling is through the short-walk
// token pools, which are keyed by connector, so two traversals conflict
// exactly when their connectors' radius-`conflict_radius` neighborhoods
// intersect (radius 0, the default, is the precise ownership rule; larger
// radii are defensive slack). Conflicting tasks wait a wave (fall back to
// sequential). The group executes as one congest::ProtocolMux inside a
// single Network::run, widening rounds so the parallel executor's
// work-stealing pool finally bites; kSerial runs the *same* schedule one
// lane at a time (the bit-identity baseline tests/test_mux.cpp compares
// against), and kOff is the legacy walk-at-a-time path, byte-for-byte
// unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/random_walks.hpp"
#include "service/walk_request.hpp"

namespace drw::service {

/// How the scheduler executes the stitch traversals of a batch.
enum class MuxMode : std::uint8_t {
  kOff,     ///< legacy sequential stitching (walk-at-a-time)
  kSerial,  ///< conflict-aware schedule, each lane run solo (mux-of-1)
  kMux,     ///< conflict-aware schedule, each group as one multiplexed run
};

struct MuxOptions {
  MuxMode mode = MuxMode::kOff;
  /// Maximum concurrently open walks (ProtocolMux lanes per group).
  unsigned width = 8;
  /// Two traversals conflict when their connectors are within distance
  /// 2 * conflict_radius (their radius-r neighborhoods intersect). 0 --
  /// connector equality -- is exact: token pools are keyed by connector.
  std::uint32_t conflict_radius = 0;
};

class BatchScheduler {
 public:
  /// One walk unit: request `request_index`'s `slot`-th walk, tagged with a
  /// service-global `walk_id`.
  struct Unit {
    std::uint32_t request_index = 0;
    std::uint32_t slot = 0;
    std::uint32_t walk_id = 0;
    NodeId source = 0;
    std::uint64_t length = 0;
    bool record = false;
  };

  /// Everything one batch run produced.
  struct Outcome {
    std::vector<RequestResult> results;  ///< submission order
    /// Batch-level cost: under kMux the stitch part counts each group's
    /// single Network::run once (rounds shared across lanes), so summing
    /// the per-request stats can legitimately exceed this.
    congest::RunStats stats;
    congest::RunStats tail_stats;        ///< the shared tail run alone
    congest::RunStats regen_stats;       ///< batched regeneration (mux modes)
    core::WalkCounters counters;         ///< summed over all units
    std::uint64_t walks = 0;
    std::uint64_t mux_groups = 0;        ///< traversal waves executed
    std::uint64_t mux_lanes = 0;         ///< lanes summed over waves
    std::uint64_t mux_conflicts = 0;     ///< ready tasks made to wait a wave
  };

  explicit BatchScheduler(core::StitchEngine& engine) : engine_(&engine) {}

  /// Expands requests into units, longest-first (stable within a length).
  static std::vector<Unit> plan(std::span<const WalkRequest> requests,
                                std::uint32_t first_walk_id);

  /// Runs the batch: per-unit stitching (sequential or conflict-aware
  /// multiplexed, per `mux`) with deferred tails, one concurrent tail run,
  /// batched regeneration, per-request assembly, and -- for units with
  /// `record` on an engine that records trajectories -- path extraction
  /// from the drained position table. The engine must be prepared for
  /// (sum of counts, max length). A naive-mode engine ignores `mux`: its
  /// walks are whole-length token jobs already batched into the tail run.
  Outcome run(std::span<const WalkRequest> requests,
              std::uint32_t first_walk_id, const MuxOptions& mux = {});

 private:
  void run_sequential(std::span<const Unit> units, Outcome& out);
  void run_multiplexed(std::span<const Unit> units, const MuxOptions& mux,
                       Outcome& out);

  core::StitchEngine* engine_;
};

}  // namespace drw::service
