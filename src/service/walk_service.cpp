#include "service/walk_service.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drw::service {

namespace {

core::Params engine_params(const ServiceConfig& config) {
  core::Params params = config.params;
  params.record_trajectories = config.enable_paths;
  return params;
}

/// Parsed DRW_MUX (0 = unset): the auto default for
/// ServiceConfig::mux_width, mirroring DRW_THREADS for the executor.
unsigned env_mux_width() {
  static const unsigned value = [] {
    if (const char* env = std::getenv("DRW_MUX")) {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      if (parsed >= 1) {
        return static_cast<unsigned>(
            parsed < congest::Network::kMaxLanes ? parsed
                                                 : congest::Network::kMaxLanes);
      }
    }
    return 0u;
  }();
  return value;
}

/// The effective stitching width: explicit config, else DRW_MUX, else 1
/// (sequential).
unsigned resolve_mux_width(const ServiceConfig& config) {
  if (config.mux_width != 0) {
    return std::min(config.mux_width, congest::Network::kMaxLanes);
  }
  const unsigned env = env_mux_width();
  return env != 0 ? env : 1;
}

}  // namespace

WalkService::WalkService(congest::Network& net, std::uint32_t diameter,
                         ServiceConfig config)
    : net_(&net), diameter_(diameter), config_(config),
      engine_(net, engine_params(config), diameter),
      inventory_(net.graph().node_count()) {
  if (config_.lambda_slack < 1.0) {
    throw std::invalid_argument("WalkService: lambda_slack < 1");
  }
  if (config_.threads != 0) net_->set_threads(config_.threads);
  if (config_.partition) net_->set_partition(*config_.partition);
  if (!config_.trace_path.empty()) {
    obs::Tracer::instance().enable(config_.trace_path);
    owns_trace_ = true;
  }
}

WalkService::~WalkService() {
  if (!owns_trace_) return;
  // Cross-check metadata for tools/validate_trace.py: per-shard transmit
  // span sums are only comparable to the driver's transmit_ms when one
  // shard ran at a time.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_meta("transmit_ms", lifetime_.stats.transmit_ms);
  tracer.set_meta("threads", double(lifetime_.stats.threads));
  tracer.set_meta("mux_width", double(resolve_mux_width(config_)));
  tracer.flush();
  tracer.disable();
}

void WalkService::submit(const WalkRequest& request) {
  if (request.source >= net_->graph().node_count()) {
    throw std::invalid_argument("WalkService::submit: source out of range");
  }
  if (request.record_positions && !config_.enable_paths) {
    throw std::invalid_argument(
        "WalkService::submit: record_positions requires enable_paths");
  }
  pending_.push_back(request);
}

BatchReport WalkService::serve(const std::vector<WalkRequest>& requests) {
  for (const WalkRequest& r : requests) submit(r);
  return flush();
}

BatchReport WalkService::flush() {
  BatchReport report;
  if (pending_.empty()) return report;
  obs::Span batch_span(obs::Name::kServiceBatch, obs::kPidService, 0,
                       lifetime_.batches);
  std::vector<WalkRequest> batch = std::move(pending_);
  pending_.clear();

  const Graph& g = net_->graph();
  std::uint64_t units = 0;
  std::uint64_t l_max = 0;
  for (const WalkRequest& r : batch) {
    units += r.count;
    l_max = std::max(l_max, r.length);
    report.naive_rounds_estimate +=
        static_cast<std::uint64_t>(r.count) * r.length;
  }
  report.requests = batch.size();
  if (units == 0) {
    // All counts were zero: assemble empty results, no protocol runs.
    for (const WalkRequest& r : batch) {
      report.results.push_back(RequestResult{r, {}, {}, {}, {}});
    }
    ++lifetime_.batches;
    lifetime_.requests += report.requests;
    return report;
  }

  // Plan the batch-wide lambda (MANY-RANDOM-WALKS parameterization over the
  // whole batch) and decide between inventory reuse and a full Phase 1.
  const core::Params params = engine_params(config_);
  const std::uint32_t lambda_plan =
      units <= 1 ? params.lambda_single(l_max, diameter_, g.node_count())
                 : params.lambda_many(units, l_max, diameter_, g.node_count());
  bool reuse = engine_.prepared() && !engine_.naive_mode();
  if (reuse) {
    const double current = engine_.lambda();
    const double planned = lambda_plan;
    reuse = planned <= current * config_.lambda_slack &&
            current <= planned * config_.lambda_slack;
  }

  if (reuse) {
    engine_.adopt_plan(units, l_max);
    // Targeted replenishment: top up connectors whose last-batch demand
    // outran their remaining stock, one O(lambda) GET-MORE-WALKS run each.
    for (const Replenishment& r :
         inventory_.plan_replenishment(config_.policy)) {
      report.stats += engine_.replenish(r.source, r.count);
      ++report.replenishments;
      report.replenished_walks += r.count;
    }
  } else {
    engine_.prepare(units, l_max);
    // A naive-mode prepare creates no short walks (the fallback of
    // Section 2.3): no Phase 1 actually ran, so it is not counted.
    report.full_prepare = !engine_.naive_mode();
    inventory_.reset(engine_);
  }
  report.lambda = engine_.lambda();
  report.naive_mode = engine_.naive_mode();

  MuxOptions mux;
  mux.width = resolve_mux_width(config_);
  mux.mode = mux.width >= 2 ? MuxMode::kMux : MuxMode::kOff;
  mux.conflict_radius = config_.mux_conflict_radius;
  report.mux_width = mux.width;

  BatchScheduler scheduler(engine_);
  BatchScheduler::Outcome outcome = scheduler.run(batch, next_walk_id_, mux);
  next_walk_id_ += static_cast<std::uint32_t>(units);

  report.results = std::move(outcome.results);
  report.stats += outcome.stats;
  report.walks = outcome.walks;
  report.mux_groups = outcome.mux_groups;
  report.mux_lanes = outcome.mux_lanes;
  report.mux_conflicts = outcome.mux_conflicts;
  report.stitches = outcome.counters.stitches;
  report.engine_gmw_calls = outcome.counters.get_more_walks_calls;
  report.inventory_hits =
      report.stitches > report.engine_gmw_calls
          ? report.stitches - report.engine_gmw_calls
          : 0;
  // Keep the position table bounded even when no request recorded paths.
  if (config_.enable_paths) engine_.drain_positions();
  if (!report.naive_mode) inventory_.refresh(engine_);

  ++lifetime_.batches;
  lifetime_.requests += report.requests;
  lifetime_.walks += report.walks;
  lifetime_.stats += report.stats;
  if (report.full_prepare) ++lifetime_.full_prepares;
  lifetime_.replenishments += report.replenishments;
  lifetime_.replenished_walks += report.replenished_walks;
  lifetime_.stitches += report.stitches;
  lifetime_.inventory_hits += report.inventory_hits;
  lifetime_.engine_gmw_calls += report.engine_gmw_calls;
  lifetime_.naive_rounds_estimate += report.naive_rounds_estimate;
  lifetime_.mux_groups += report.mux_groups;
  lifetime_.mux_lanes += report.mux_lanes;
  lifetime_.mux_conflicts += report.mux_conflicts;

  if (obs::Registry::global().enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("service.batches").add(1);
    reg.counter("service.requests").add(report.requests);
    reg.counter("service.walks").add(report.walks);
    reg.counter("service.stitches").add(report.stitches);
    reg.counter("service.inventory_hits").add(report.inventory_hits);
    reg.counter("service.inventory_misses").add(report.engine_gmw_calls);
    reg.counter("service.replenishments").add(report.replenishments);
    reg.counter("service.replenished_walks").add(report.replenished_walks);
    if (report.full_prepare) reg.counter("service.full_prepares").add(1);
    reg.counter("mux.waves").add(report.mux_groups);
    reg.counter("mux.lanes").add(report.mux_lanes);
    reg.counter("mux.conflicts").add(report.mux_conflicts);
    reg.histogram("service.batch_walks").record(report.walks);
  }
  return report;
}

}  // namespace drw::service
