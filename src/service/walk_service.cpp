#include "service/walk_service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/failpoint.hpp"
#include "resil/snapshot.hpp"

namespace drw::service {

namespace {

core::Params engine_params(const ServiceConfig& config) {
  core::Params params = config.params;
  params.record_trajectories = config.enable_paths;
  return params;
}

/// Parsed DRW_MUX (0 = unset): the auto default for
/// ServiceConfig::mux_width, mirroring DRW_THREADS for the executor.
unsigned env_mux_width() {
  static const unsigned value = [] {
    if (const char* env = std::getenv("DRW_MUX")) {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      if (parsed >= 1) {
        return static_cast<unsigned>(
            parsed < congest::Network::kMaxLanes ? parsed
                                                 : congest::Network::kMaxLanes);
      }
    }
    return 0u;
  }();
  return value;
}

/// The effective stitching width: explicit config, else DRW_MUX, else 1
/// (sequential).
unsigned resolve_mux_width(const ServiceConfig& config) {
  if (config.mux_width != 0) {
    return std::min(config.mux_width, congest::Network::kMaxLanes);
  }
  const unsigned env = env_mux_width();
  return env != 0 ? env : 1;
}

}  // namespace

WalkService::WalkService(congest::Network& net, std::uint32_t diameter,
                         ServiceConfig config)
    : net_(&net), diameter_(diameter), config_(config),
      engine_(net, engine_params(config), diameter),
      inventory_(net.graph().node_count()) {
  if (config_.lambda_slack < 1.0) {
    throw std::invalid_argument("WalkService: lambda_slack < 1");
  }
  if (config_.threads != 0) net_->set_threads(config_.threads);
  if (config_.partition) net_->set_partition(*config_.partition);
  if (!config_.trace_path.empty()) {
    obs::Tracer::instance().enable(config_.trace_path);
    owns_trace_ = true;
  }
}

WalkService::~WalkService() {
  if (!owns_trace_) return;
  // Cross-check metadata for tools/validate_trace.py: per-shard transmit
  // span sums are only comparable to the driver's transmit_ms when one
  // shard ran at a time.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_meta("transmit_ms", lifetime_.stats.transmit_ms);
  tracer.set_meta("threads", double(lifetime_.stats.threads));
  tracer.set_meta("mux_width", double(resolve_mux_width(config_)));
  tracer.flush();
  tracer.disable();
}

void WalkService::submit(const WalkRequest& request) {
  // Validation is deferred to flush(), where violations come back as
  // structured per-request statuses instead of throws: one bad request
  // must never take down a batch (or the process).
  pending_.push_back(request);
}

BatchReport WalkService::serve(const std::vector<WalkRequest>& requests) {
  for (const WalkRequest& r : requests) submit(r);
  return flush();
}

BatchReport WalkService::flush() {
  BatchReport report;
  if (pending_.empty()) return report;
  resil::failpoint("service.batch");
  obs::Span batch_span(obs::Name::kServiceBatch, obs::kPidService, 0,
                       lifetime_.batches);
  std::vector<WalkRequest> batch = std::move(pending_);
  pending_.clear();
  report.requests = batch.size();

  const Graph& g = net_->graph();

  // Boundary validation (graceful degradation): every request gets a
  // structured status; invalid ones never reach the engine and the rest of
  // the batch is served normally. The batch-walk cap admits in submission
  // order.
  std::vector<RequestStatus> status(batch.size(), RequestStatus::kOk);
  std::uint64_t admitted_walks = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const WalkRequest& r = batch[i];
    if (r.source >= g.node_count()) {
      status[i] = RequestStatus::kSourceOutOfRange;
    } else if (r.record_positions && !config_.enable_paths) {
      status[i] = RequestStatus::kPathsDisabled;
    } else if (config_.caps.max_count != 0 &&
               r.count > config_.caps.max_count) {
      status[i] = RequestStatus::kCountExceedsCap;
    } else if (config_.caps.max_length != 0 &&
               r.length > config_.caps.max_length) {
      status[i] = RequestStatus::kLengthExceedsCap;
    } else if (config_.caps.max_batch_walks != 0 &&
               admitted_walks + r.count > config_.caps.max_batch_walks) {
      status[i] = RequestStatus::kBatchCapExceeded;
    } else {
      admitted_walks += r.count;
    }
    if (status[i] != RequestStatus::kOk) ++report.rejected;
  }

  // Results skeleton: rejected slots carry their status, count == 0 is an
  // empty success, and length == 0 is `count` copies of the source served
  // inline -- a walk of zero steps never needs the engine.
  report.results.resize(batch.size());
  std::vector<WalkRequest> engine_batch;
  std::vector<std::size_t> engine_slot;  // engine_batch index -> batch slot
  std::uint64_t units = 0;
  std::uint64_t l_max = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const WalkRequest& r = batch[i];
    RequestResult& out = report.results[i];
    out.request = r;
    out.status = status[i];
    if (status[i] != RequestStatus::kOk || r.count == 0) continue;
    if (r.length == 0) {
      out.destinations.assign(r.count, r.source);
      if (r.record_positions) {
        out.paths.assign(r.count, std::vector<NodeId>{r.source});
      }
      report.walks += r.count;
      continue;
    }
    engine_batch.push_back(r);
    engine_slot.push_back(i);
    units += r.count;
    l_max = std::max(l_max, r.length);
    report.naive_rounds_estimate +=
        static_cast<std::uint64_t>(r.count) * r.length;
  }
  if (units == 0) {
    // Nothing engine-bound: no protocol runs, no snapshot state change.
    ++lifetime_.batches;
    lifetime_.requests += report.requests;
    lifetime_.walks += report.walks;
    lifetime_.rejected += report.rejected;
    return report;
  }

  // Plan the batch-wide lambda (MANY-RANDOM-WALKS parameterization over the
  // whole batch) and decide between inventory reuse and a full Phase 1.
  const core::Params params = engine_params(config_);
  const std::uint32_t lambda_plan =
      units <= 1 ? params.lambda_single(l_max, diameter_, g.node_count())
                 : params.lambda_many(units, l_max, diameter_, g.node_count());
  bool reuse = engine_.prepared() && !engine_.naive_mode();
  if (reuse) {
    const double current = engine_.lambda();
    const double planned = lambda_plan;
    reuse = planned <= current * config_.lambda_slack &&
            current <= planned * config_.lambda_slack;
  }

  if (reuse) {
    engine_.adopt_plan(units, l_max);
    // Targeted replenishment: top up connectors whose last-batch demand
    // outran their remaining stock, one O(lambda) GET-MORE-WALKS run each.
    for (const Replenishment& r :
         inventory_.plan_replenishment(config_.policy)) {
      report.stats += engine_.replenish(r.source, r.count);
      ++report.replenishments;
      report.replenished_walks += r.count;
    }
  } else {
    engine_.prepare(units, l_max);
    // A naive-mode prepare creates no short walks (the fallback of
    // Section 2.3): no Phase 1 actually ran, so it is not counted.
    report.full_prepare = !engine_.naive_mode();
    inventory_.reset(engine_);
  }
  report.lambda = engine_.lambda();
  report.naive_mode = engine_.naive_mode();

  MuxOptions mux;
  mux.width = resolve_mux_width(config_);
  mux.mode = mux.width >= 2 ? MuxMode::kMux : MuxMode::kOff;
  mux.conflict_radius = config_.mux_conflict_radius;
  report.mux_width = mux.width;

  BatchScheduler scheduler(engine_);
  BatchScheduler::Outcome outcome =
      scheduler.run(engine_batch, next_walk_id_, mux);
  next_walk_id_ += static_cast<std::uint32_t>(units);

  // Merge engine results back into their submission slots (rejected and
  // inline-served slots already hold their results).
  for (std::size_t j = 0; j < engine_slot.size(); ++j) {
    RequestResult& out = report.results[engine_slot[j]];
    RequestResult& served = outcome.results[j];
    out.destinations = std::move(served.destinations);
    out.paths = std::move(served.paths);
    out.stats = served.stats;
    out.counters = served.counters;
  }
  report.stats += outcome.stats;
  report.walks += outcome.walks;
  report.mux_groups = outcome.mux_groups;
  report.mux_lanes = outcome.mux_lanes;
  report.mux_conflicts = outcome.mux_conflicts;
  report.stitches = outcome.counters.stitches;
  report.engine_gmw_calls = outcome.counters.get_more_walks_calls;
  report.inventory_hits =
      report.stitches > report.engine_gmw_calls
          ? report.stitches - report.engine_gmw_calls
          : 0;
  // Keep the position table bounded even when no request recorded paths.
  if (config_.enable_paths) engine_.drain_positions();
  if (!report.naive_mode) inventory_.refresh(engine_);

  ++lifetime_.batches;
  lifetime_.requests += report.requests;
  lifetime_.walks += report.walks;
  lifetime_.rejected += report.rejected;
  lifetime_.stats += report.stats;
  if (report.full_prepare) ++lifetime_.full_prepares;
  lifetime_.replenishments += report.replenishments;
  lifetime_.replenished_walks += report.replenished_walks;
  lifetime_.stitches += report.stitches;
  lifetime_.inventory_hits += report.inventory_hits;
  lifetime_.engine_gmw_calls += report.engine_gmw_calls;
  lifetime_.naive_rounds_estimate += report.naive_rounds_estimate;
  lifetime_.mux_groups += report.mux_groups;
  lifetime_.mux_lanes += report.mux_lanes;
  lifetime_.mux_conflicts += report.mux_conflicts;

  if (obs::Registry::global().enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("service.batches").add(1);
    reg.counter("service.requests").add(report.requests);
    reg.counter("service.walks").add(report.walks);
    reg.counter("service.stitches").add(report.stitches);
    reg.counter("service.inventory_hits").add(report.inventory_hits);
    reg.counter("service.inventory_misses").add(report.engine_gmw_calls);
    reg.counter("service.replenishments").add(report.replenishments);
    reg.counter("service.replenished_walks").add(report.replenished_walks);
    if (report.full_prepare) reg.counter("service.full_prepares").add(1);
    reg.counter("mux.waves").add(report.mux_groups);
    reg.counter("mux.lanes").add(report.mux_lanes);
    reg.counter("mux.conflicts").add(report.mux_conflicts);
    reg.histogram("service.batch_walks").record(report.walks);
  }
  maybe_snapshot();
  return report;
}

std::uint64_t WalkService::state_fingerprint() const {
  std::uint64_t fp = resil::graph_fingerprint(net_->graph(), net_->seed());
  if (config_.enable_paths) fp ^= 0xD1B54A32D192ED03ULL;
  return fp;
}

void WalkService::maybe_snapshot() {
  if (config_.snapshot_path.empty()) return;
  if (!engine_.prepared() || engine_.naive_mode()) return;
  try {
    if (config_.snapshot_keep > 1) {
      // Rotate first, then write .1 atomically: if the write fails the
      // shifted generations (.2 and up) still hold complete checkpoints
      // for restore's newest-valid scan.
      resil::rotate_snapshot_files(config_.snapshot_path,
                                   config_.snapshot_keep);
      save_snapshot(
          resil::snapshot_generation_path(config_.snapshot_path, 1));
    } else {
      save_snapshot(config_.snapshot_path);
    }
  } catch (const std::exception& e) {
    // Degradation, not death: serving results are already computed; the
    // worst case is restarting from an older (still atomic) snapshot.
    std::fprintf(stderr, "resil: snapshot failed (serving continues): %s\n",
                 e.what());
  }
}

void WalkService::save_snapshot(const std::string& path) {
  if (!engine_.prepared() || engine_.naive_mode()) {
    throw std::logic_error(
        "WalkService::save_snapshot: requires a prepared, non-naive engine "
        "(serve at least one non-naive batch first)");
  }
  const Graph& g = net_->graph();
  const std::size_t n = g.node_count();
  resil::ServiceSnapshot snap;
  snap.graph_fingerprint = state_fingerprint();
  snap.next_walk_id = next_walk_id_;
  snap.engine.store = engine_.store();
  snap.engine.trajectories = engine_.trajectories();
  snap.engine.lambda = engine_.lambda();
  snap.engine.prepared_l = engine_.prepared_l();
  snap.engine.prepared_k = engine_.prepared_k();
  snap.connector_visits = engine_.connector_visits();
  WalkInventory::Image inv = inventory_.image();
  snap.inventory.unused = std::move(inv.unused);
  snap.inventory.demand = std::move(inv.demand);
  snap.inventory.last_visits = std::move(inv.last_visits);
  snap.inventory.total_unused = inv.total_unused;
  snap.inventory.total_demand = inv.total_demand;
  snap.rng_states.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    snap.rng_states.push_back(net_->node_rng(v).state());
  }
  resil::write_snapshot_file(path, snap);
}

bool WalkService::restore_snapshot(const std::string& path) {
  // Newest generation first; the plain path rides last so a checkpoint
  // written before rotation was enabled (or with keep == 1) still
  // warm-starts a rotated configuration.
  std::vector<std::string> candidates;
  if (config_.snapshot_keep > 1) {
    for (std::uint32_t slot = 1; slot <= config_.snapshot_keep; ++slot) {
      candidates.push_back(resil::snapshot_generation_path(path, slot));
    }
  }
  candidates.push_back(path);
  for (const std::string& file : candidates) {
    std::string why;
    if (restore_from_file(file, &why)) return true;
    std::fprintf(stderr, "resil: snapshot %s unusable: %s\n", file.c_str(),
                 why.c_str());
  }
  std::fprintf(stderr, "resil: cold start (no usable snapshot for %s)\n",
               path.c_str());
  return false;
}

bool WalkService::restore_from_file(const std::string& path,
                                    std::string* why) {
  const auto cold = [why](const std::string& reason) {
    *why = reason;
    return false;
  };
  resil::ReadOutcome outcome = resil::read_snapshot_file(path);
  if (!outcome.snapshot.has_value()) return cold(outcome.error);
  resil::ServiceSnapshot& snap = *outcome.snapshot;

  const std::size_t n = net_->graph().node_count();
  if (snap.graph_fingerprint != state_fingerprint()) {
    return cold("graph/seed/config fingerprint mismatch");
  }
  if (snap.engine.store.held.size() != n ||
      snap.engine.trajectories.forward.size() != n ||
      snap.engine.trajectories.fragments.size() != n ||
      snap.connector_visits.size() != n || snap.rng_states.size() != n ||
      snap.inventory.unused.size() != n ||
      snap.inventory.demand.size() != n ||
      snap.inventory.last_visits.size() != n) {
    return cold("node count mismatch");
  }
  if (snap.engine.lambda == 0) return cold("lambda == 0");

  const std::uint64_t total_unused = snap.inventory.total_unused;
  engine_.adopt_state(std::move(snap.engine));
  engine_.restore_connector_visits(std::move(snap.connector_visits));
  inventory_.restore(WalkInventory::Image{
      std::move(snap.inventory.unused), std::move(snap.inventory.demand),
      std::move(snap.inventory.last_visits), snap.inventory.total_unused,
      snap.inventory.total_demand});
  for (NodeId v = 0; v < n; ++v) {
    net_->node_rng(v).set_state(snap.rng_states[v]);
  }
  next_walk_id_ = snap.next_walk_id;
  std::fprintf(stderr,
               "resil: warm restart from %s (%zu nodes, lambda=%u, "
               "%llu unused short walks, next walk id %u)\n",
               path.c_str(), n, engine_.lambda(),
               static_cast<unsigned long long>(total_unused), next_walk_id_);
  return true;
}

}  // namespace drw::service
