// Persistent short-walk inventory bookkeeping for the walk service.
//
// Phase 1 of SINGLE-RANDOM-WALK prepares a pool of short walks once; the
// paper's amortization argument (and its follow-up, Das Sarma-Molla-
// Pandurangan 2012, on continuous sampling) treats that pool as a reusable
// resource. WalkInventory tracks the pool's per-source supply across serving
// batches, observes per-connector demand (stitch consumption) between
// refreshes, and plans *targeted* GET-MORE-WALKS replenishment for hot
// connectors -- so the service tops the pool up incrementally instead of
// discarding it and re-running Phase 1 per batch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/random_walks.hpp"
#include "graph/graph.hpp"

namespace drw::service {

/// Replenishment sizing policy (all knobs node-count independent).
struct InventoryPolicy {
  /// Target stock per hot connector = headroom * demand observed over the
  /// last batch; nodes whose unused supply is below the observed demand
  /// (the low-water mark) are topped up to the target.
  double headroom = 2.0;
  /// Smallest top-up worth a GET-MORE-WALKS run (each run is O(lambda)
  /// rounds regardless of count, so tiny counts waste rounds).
  std::uint32_t min_batch = 4;
  /// Hard cap per top-up (message-size / memory guard).
  std::uint32_t max_batch = 1u << 16;
};

/// One planned top-up: `count` fresh short walks from `source`.
struct Replenishment {
  NodeId source = kInvalidNode;
  std::uint32_t count = 0;
};

class WalkInventory {
 public:
  WalkInventory() = default;
  explicit WalkInventory(std::size_t node_count)
      : unused_(node_count, 0), demand_(node_count, 0),
        last_visits_(node_count, 0) {}

  std::size_t node_count() const noexcept { return unused_.size(); }

  /// Unused short walks whose source is `v` (as of the last refresh).
  std::uint64_t unused(NodeId v) const { return unused_[v]; }
  std::uint64_t total_unused() const noexcept { return total_unused_; }

  /// Stitches that consumed a short walk from `v` during the last
  /// observed batch (connector-visit delta at the last refresh).
  std::uint64_t demand(NodeId v) const { return demand_[v]; }
  std::uint64_t total_demand() const noexcept { return total_demand_; }

  /// Rescans the engine's store and diffs its connector visits against the
  /// previous refresh. Call once per served batch.
  void refresh(const core::StitchEngine& engine);

  /// Forgets demand history (e.g. after a full re-prepare, which resets the
  /// engine's connector counters and discards the old pool).
  void reset(const core::StitchEngine& engine);

  /// Plans targeted top-ups from the latest supply/demand snapshot: every
  /// node whose observed demand exceeded its remaining supply is brought up
  /// to `headroom * demand`. Returns the plan most-starved first.
  std::vector<Replenishment> plan_replenishment(
      const InventoryPolicy& policy) const;

  /// Raw copy of the bookkeeping arrays for checkpointing (drw::resil).
  /// Demand history is part of the sampling stream -- it decides which
  /// replenishment runs consume coins next batch -- so a warm restart must
  /// restore it exactly, not recompute it.
  struct Image {
    std::vector<std::uint64_t> unused;
    std::vector<std::uint64_t> demand;
    std::vector<std::uint64_t> last_visits;
    std::uint64_t total_unused = 0;
    std::uint64_t total_demand = 0;
  };
  Image image() const {
    return Image{unused_, demand_, last_visits_, total_unused_,
                 total_demand_};
  }
  /// Restores a captured image. Throws std::invalid_argument if the image's
  /// node count does not match this inventory's.
  void restore(Image img);

 private:
  std::vector<std::uint64_t> unused_;
  std::vector<std::uint64_t> demand_;
  std::vector<std::uint64_t> last_visits_;
  std::uint64_t total_unused_ = 0;
  std::uint64_t total_demand_ = 0;
};

}  // namespace drw::service
