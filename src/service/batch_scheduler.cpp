#include "service/batch_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace drw::service {

std::vector<BatchScheduler::Unit> BatchScheduler::plan(
    std::span<const WalkRequest> requests, std::uint32_t first_walk_id) {
  std::vector<Unit> units;
  for (std::uint32_t r = 0; r < requests.size(); ++r) {
    for (std::uint32_t s = 0; s < requests[r].count; ++s) {
      units.push_back(Unit{r, s, 0, requests[r].source, requests[r].length,
                           requests[r].record_positions});
    }
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     return a.length > b.length;
                   });
  // Walk ids are assigned AFTER sorting so id - first_walk_id indexes the
  // execution order (used to map deferred-tail outcomes back to units).
  for (std::uint32_t i = 0; i < units.size(); ++i) {
    units[i].walk_id = first_walk_id + i;
  }
  return units;
}

BatchScheduler::Outcome BatchScheduler::run(
    std::span<const WalkRequest> requests, std::uint32_t first_walk_id) {
  Outcome out;
  out.results.resize(requests.size());
  for (std::uint32_t r = 0; r < requests.size(); ++r) {
    out.results[r].request = requests[r];
    out.results[r].destinations.assign(requests[r].count, kInvalidNode);
  }

  std::vector<Unit> units = plan(requests, first_walk_id);
  out.walks = units.size();

  // Stitch every unit, deferring all naive tails (whole-walk tails for
  // units with length < 2*lambda or a naive-mode engine).
  for (const Unit& u : units) {
    const core::WalkResult walk =
        engine_->walk_deferring_tail(u.source, u.length, u.walk_id, u.record);
    RequestResult& result = out.results[u.request_index];
    result.destinations[u.slot] = walk.destination;
    result.stats += walk.stats;
    result.counters += walk.counters;
    out.stats += walk.stats;
    out.counters += walk.counters;
  }

  // One concurrent run finishes every deferred tail.
  const core::StitchEngine::TailOutcome tails = engine_->run_deferred_tails();
  out.tail_stats = tails.stats;
  out.stats += tails.stats;
  for (std::size_t t = 0; t < tails.walk_ids.size(); ++t) {
    const std::uint32_t index = tails.walk_ids[t] - first_walk_id;
    if (index >= units.size()) {
      throw std::logic_error("BatchScheduler: stray deferred tail");
    }
    const Unit& u = units[index];
    out.results[u.request_index].destinations[u.slot] = tails.destinations[t];
  }

  // Path extraction: drain the engine's position table and invert it into
  // per-unit node sequences for the units that asked.
  const bool any_record =
      std::any_of(units.begin(), units.end(),
                  [](const Unit& u) { return u.record; });
  if (any_record) {
    const core::PositionTable positions = engine_->drain_positions();
    std::vector<std::vector<NodeId>*> paths(units.size(), nullptr);
    for (const Unit& u : units) {
      if (!u.record) continue;
      RequestResult& result = out.results[u.request_index];
      if (result.paths.empty()) {
        result.paths.resize(result.request.count);
      }
      result.paths[u.slot].assign(u.length + 1, kInvalidNode);
      paths[u.walk_id - first_walk_id] = &result.paths[u.slot];
    }
    for (NodeId v = 0; v < positions.size(); ++v) {
      for (const core::WalkPosition& p : positions[v]) {
        const std::uint32_t index = p.walk - first_walk_id;
        if (index >= units.size() || paths[index] == nullptr) continue;
        if (p.step < paths[index]->size()) (*paths[index])[p.step] = v;
      }
    }
  }
  return out;
}

}  // namespace drw::service
