#include "service/batch_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "congest/mux.hpp"
#include "obs/trace.hpp"

namespace drw::service {

namespace {

/// True when dist(a, b) <= 2 * radius, i.e. the radius-`radius` balls
/// around the two connectors intersect. radius 0 degenerates to equality
/// (the exact rule: token pools are keyed by connector). The bounded BFS
/// costs O(ball size) -- cheap for the small radii this knob is meant for.
bool connectors_conflict(const Graph& g, NodeId a, NodeId b,
                         std::uint32_t radius,
                         std::vector<NodeId>& scratch) {
  if (a == b) return true;
  if (radius == 0) return false;
  const std::uint32_t limit = 2 * radius;
  // Bounded BFS from a; scratch holds the frontier/visited list.
  scratch.clear();
  scratch.push_back(a);
  std::size_t begin = 0;
  for (std::uint32_t depth = 0; depth < limit; ++depth) {
    const std::size_t end = scratch.size();
    for (std::size_t i = begin; i < end; ++i) {
      for (const NodeId u : g.neighbors(scratch[i])) {
        if (u == b) return true;
        if (std::find(scratch.begin(), scratch.end(), u) == scratch.end()) {
          scratch.push_back(u);
        }
      }
    }
    begin = end;
    if (begin == scratch.size()) break;
  }
  return false;
}

congest::RunStats lane_run_stats(const congest::ProtocolMux::LaneStats& ls) {
  congest::RunStats stats;
  stats.rounds = ls.rounds;
  stats.messages = ls.messages;
  return stats;
}

}  // namespace

std::vector<BatchScheduler::Unit> BatchScheduler::plan(
    std::span<const WalkRequest> requests, std::uint32_t first_walk_id) {
  std::vector<Unit> units;
  for (std::uint32_t r = 0; r < requests.size(); ++r) {
    for (std::uint32_t s = 0; s < requests[r].count; ++s) {
      units.push_back(Unit{r, s, 0, requests[r].source, requests[r].length,
                           requests[r].record_positions});
    }
  }
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     return a.length > b.length;
                   });
  // Walk ids are assigned AFTER sorting so id - first_walk_id indexes the
  // execution order (used to map deferred-tail outcomes back to units).
  for (std::uint32_t i = 0; i < units.size(); ++i) {
    units[i].walk_id = first_walk_id + i;
  }
  return units;
}

void BatchScheduler::run_sequential(std::span<const Unit> units,
                                    Outcome& out) {
  // Stitch every unit, deferring all naive tails (whole-walk tails for
  // units with length < 2*lambda or a naive-mode engine).
  for (const Unit& u : units) {
    const core::WalkResult walk =
        engine_->walk_deferring_tail(u.source, u.length, u.walk_id, u.record);
    RequestResult& result = out.results[u.request_index];
    result.destinations[u.slot] = walk.destination;
    result.stats += walk.stats;
    result.counters += walk.counters;
    out.stats += walk.stats;
    out.counters += walk.counters;
  }
}

void BatchScheduler::run_multiplexed(std::span<const Unit> units,
                                     const MuxOptions& mux, Outcome& out) {
  congest::Network& net = engine_->network();
  const Graph& g = net.graph();
  const unsigned width =
      std::min<unsigned>(mux.width, congest::Network::kMaxLanes);

  struct OpenTask {
    core::StitchEngine::WalkTask task;
    const Unit* unit;
  };
  std::vector<OpenTask> open;  // lane priority: oldest first
  open.reserve(width);
  std::size_t next_unit = 0;
  std::vector<NodeId> bfs_scratch;

  // Harvest finished tasks into the outcome and top the lanes back up
  // (tasks of walks shorter than 2*lambda finish at creation, so the two
  // steps iterate to a fixed point).
  const auto harvest_and_refill = [&] {
    for (;;) {
      bool progressed = false;
      for (std::size_t i = 0; i < open.size();) {
        if (!open[i].task.finished()) {
          ++i;
          continue;
        }
        const core::WalkResult& walk = open[i].task.result();
        const Unit& u = *open[i].unit;
        RequestResult& result = out.results[u.request_index];
        result.destinations[u.slot] = walk.destination;
        result.stats += walk.stats;
        result.counters += walk.counters;
        out.counters += walk.counters;
        // Phase-1 cost is attributed once (the first task absorbed the
        // engine's pending stats); the stitch traversals themselves are
        // charged per GROUP run below, which is where the round sharing
        // shows up at batch level.
        out.stats += walk.counters.phase1;
        open.erase(open.begin() + i);
        progressed = true;
      }
      while (open.size() < width && next_unit < units.size()) {
        const Unit& u = units[next_unit++];
        open.push_back(OpenTask{
            engine_->start_walk_task(u.source, u.length, u.walk_id, u.record),
            &u});
        progressed = true;
      }
      if (!progressed) return;
    }
  };

  harvest_and_refill();
  while (!open.empty()) {
    // Build this wave's group in lane order: a task joins unless its
    // connector conflicts with one already admitted (then it waits a wave
    // -- the sequential fallback). The first task always enters, so the
    // schedule cannot stall.
    std::vector<std::size_t> group;
    std::vector<NodeId> claimed;
    for (std::size_t i = 0; i < open.size(); ++i) {
      const NodeId c = open[i].task.connector();
      bool conflict = false;
      for (const NodeId other : claimed) {
        if (connectors_conflict(g, other, c, mux.conflict_radius,
                                bfs_scratch)) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        ++out.mux_conflicts;
        continue;
      }
      claimed.push_back(c);
      group.push_back(i);
    }
    ++out.mux_groups;
    out.mux_lanes += group.size();
    obs::Span wave_span(obs::Name::kStitchWave, obs::kPidService, 0,
                        group.size());

    if (mux.mode == MuxMode::kMux) {
      congest::ProtocolMux pmux(g.node_count());
      for (const std::size_t idx : group) {
        pmux.add_lane(open[idx].task.protocol(),
                      &open[idx].task.lane_rngs());
      }
      // Lane occupancy spans: the whole wave shares one Network run, so
      // each admitted walk's span brackets that run on its own lane track
      // (arg = walk id). Attribution WITHIN the run is the per-round
      // lane.round instants emitted by ProtocolMux.
      if (obs::trace_enabled()) {
        for (unsigned lane = 0; lane < group.size(); ++lane) {
          obs::event(obs::Name::kWalkLane, 'B', obs::kPidMux,
                     static_cast<std::uint16_t>(lane),
                     open[group[lane]].unit->walk_id);
        }
      }
      const congest::RunStats stats =
          net.run_multiplexed(pmux, static_cast<unsigned>(group.size()));
      if (obs::trace_enabled()) {
        for (unsigned lane = 0; lane < group.size(); ++lane) {
          obs::event(obs::Name::kWalkLane, 'E', obs::kPidMux,
                     static_cast<std::uint16_t>(lane));
        }
      }
      engine_->absorb_stats(stats);
      out.stats += stats;
      for (unsigned lane = 0; lane < group.size(); ++lane) {
        open[group[lane]].task.advance(
            lane_run_stats(pmux.lane_stats(lane)));
      }
    } else {
      // kSerial: the SAME schedule, each lane in its own (mux-of-1) run --
      // the baseline the lane-isolation tests compare kMux against.
      for (const std::size_t idx : group) {
        congest::ProtocolMux solo(g.node_count());
        solo.add_lane(open[idx].task.protocol(),
                      &open[idx].task.lane_rngs());
        obs::event(obs::Name::kWalkLane, 'B', obs::kPidMux, 0,
                   open[idx].unit->walk_id);
        const congest::RunStats stats = net.run_multiplexed(solo, 1);
        obs::event(obs::Name::kWalkLane, 'E', obs::kPidMux, 0);
        engine_->absorb_stats(stats);
        out.stats += stats;
        open[idx].task.advance(lane_run_stats(solo.lane_stats(0)));
      }
    }
    harvest_and_refill();
  }
}

BatchScheduler::Outcome BatchScheduler::run(
    std::span<const WalkRequest> requests, std::uint32_t first_walk_id,
    const MuxOptions& mux) {
  Outcome out;
  out.results.resize(requests.size());
  for (std::uint32_t r = 0; r < requests.size(); ++r) {
    out.results[r].request = requests[r];
    out.results[r].destinations.assign(requests[r].count, kInvalidNode);
  }

  std::vector<Unit> units = plan(requests, first_walk_id);
  out.walks = units.size();

  // A naive-mode engine already batches whole walks into the shared tail
  // run; there is nothing to multiplex.
  if (mux.mode == MuxMode::kOff || engine_->naive_mode() ||
      mux.width <= 1) {
    run_sequential(units, out);
  } else {
    run_multiplexed(units, mux, out);
  }

  // One concurrent run finishes every deferred tail.
  const core::StitchEngine::TailOutcome tails = engine_->run_deferred_tails();
  out.tail_stats = tails.stats;
  out.stats += tails.stats;
  for (std::size_t t = 0; t < tails.walk_ids.size(); ++t) {
    const std::uint32_t index = tails.walk_ids[t] - first_walk_id;
    if (index >= units.size()) {
      throw std::logic_error("BatchScheduler: stray deferred tail");
    }
    const Unit& u = units[index];
    out.results[u.request_index].destinations[u.slot] = tails.destinations[t];
  }

  // Batched regeneration of stitched segments (mux modes defer it; the
  // legacy path regenerates inside each walk, leaving nothing deferred).
  out.regen_stats = engine_->run_deferred_regen();
  out.stats += out.regen_stats;
  out.counters.regen += out.regen_stats;

  // Path extraction: drain the engine's position table and invert it into
  // per-unit node sequences for the units that asked.
  const bool any_record =
      std::any_of(units.begin(), units.end(),
                  [](const Unit& u) { return u.record; });
  if (any_record) {
    const core::PositionTable positions = engine_->drain_positions();
    std::vector<std::vector<NodeId>*> paths(units.size(), nullptr);
    for (const Unit& u : units) {
      if (!u.record) continue;
      RequestResult& result = out.results[u.request_index];
      if (result.paths.empty()) {
        result.paths.resize(result.request.count);
      }
      result.paths[u.slot].assign(u.length + 1, kInvalidNode);
      paths[u.walk_id - first_walk_id] = &result.paths[u.slot];
    }
    for (NodeId v = 0; v < positions.size(); ++v) {
      for (const core::WalkPosition& p : positions[v]) {
        const std::uint32_t index = p.walk - first_walk_id;
        if (index >= units.size() || paths[index] == nullptr) continue;
        if (p.step < paths[index]->size()) (*paths[index])[p.step] = v;
      }
    }
  }
  return out;
}

}  // namespace drw::service
