// WalkServer: the always-on TCP front end over WalkService.
//
// Wiring (one process):
//
//   accept thread ──► per-connection reader threads ──► AdmissionQueue
//                                                            │ drain
//                                                   serving thread
//                                                            │ submit+flush
//                                                       WalkService
//
// Reader threads do protocol work only: HELLO handshake (names the
// connection's admission class), REQUEST decode, user-id validation and
// enqueue. Structurally invalid requests (unknown source, record without
// enable_paths) are rejected BEFORE admission -- they get admission_index
// kNotAdmitted and never enter the log, so the admission log replays
// cleanly. The single serving thread is the only code that touches
// WalkService: it drains one DRR batch at a time (min_batch_requests
// raised to the mux width so every wave can open full lanes across batch
// boundaries), submits in admitted order, flushes, and writes responses.
// Results are therefore deterministic per (seed, admitted order): replay
// the admission log through the same service and every destination/path
// matches byte for byte (the server-smoke CI step asserts exactly this).
//
// Shutdown (SIGTERM/SIGINT -> request_stop, async-signal-safe): stop
// accepting, wake and join readers, close the queue, let the serving
// thread drain what was already admitted-or-queued, checkpoint the
// service (snapshot-on-SIGTERM), exit. In-flight requests are answered;
// late arrivals bounce with kQueueFull.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/csr_file.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/admission.hpp"
#include "service/walk_service.hpp"

namespace drw::service {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  AdmissionConfig admission;
  /// Per-operation socket timeout (poll granularity for reads/writes).
  int io_timeout_ms = 30000;
  /// Non-empty: append one line per ADMITTED request (user id space, in
  /// admitted order) plus `# batch` boundary markers -- a file that
  /// `drw serve --requests=FILE --print-results` replays bit-identically.
  std::string admission_log;
  /// Class-name -> DRR quantum overrides, applied at start().
  std::vector<std::pair<std::string, std::uint64_t>> class_quanta;
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;   ///< REQUEST frames decoded
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_invalid = 0;  ///< pre-admission (source/paths)
  std::uint64_t batches = 0;    ///< non-empty drained batches served
};

class WalkServer {
 public:
  /// `graph` provides the user<->internal id translation of the service's
  /// network; both must outlive the server.
  WalkServer(WalkService& service, const csr::LoadedGraph& graph,
             ServerConfig config);
  ~WalkServer();
  WalkServer(const WalkServer&) = delete;
  WalkServer& operator=(const WalkServer&) = delete;

  /// Binds, applies class quanta, opens the admission log, spawns the
  /// accept + serving threads. Throws std::runtime_error on bind/log
  /// failure. port() is valid afterwards.
  void start();
  /// Blocks until request_stop() has been honored and every thread has
  /// exited; then checkpoints the service (ServiceConfig.snapshot_path).
  void join();
  void run() {
    start();
    join();
  }

  /// Async-signal-safe: sets the stop flag and wakes the accept loop.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
    wake_.wake();
  }
  bool stopping() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  std::uint16_t port() const noexcept { return port_; }
  const AdmissionQueue& queue() const noexcept { return queue_; }
  ServerStats stats() const;
  /// Connections currently tracked (live + dead-but-not-yet-reaped). The
  /// accept loop sweeps dead connections every poll tick, so this returns
  /// to the live count shortly after clients disconnect.
  std::size_t open_connections() const;

 private:
  struct Conn {
    net::Socket socket;
    std::uint64_t id = 0;
    std::uint32_t class_id = 0;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    std::thread reader;
  };

  double now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void accept_loop();
  void reader_loop(Conn* conn);
  void serve_loop();
  /// Erases dead connections: unblocks + joins their reader, releases the
  /// flow's DRR state, closes the socket. Called from the accept loop each
  /// poll tick so an always-on server's conns_ tracks live connections.
  void reap_connections();
  /// Serializes and writes one response on the request's connection
  /// (drops it silently if the connection died). Thread-safe per conn.
  void respond(std::uint64_t conn_id, const net::ResponseFrame& frame);
  net::ResponseFrame reject_frame(std::uint64_t tag, RequestStatus status,
                                  bool record) const;

  WalkService& service_;
  const csr::LoadedGraph& graph_;
  ServerConfig config_;
  std::uint64_t user_node_count_ = 0;

  net::Socket listener_;
  net::WakePipe wake_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  AdmissionQueue queue_;

  std::thread accept_thread_;
  std::thread serve_thread_;
  mutable std::mutex conns_mu_;
  /// shared_ptr so respond() can pin a connection without holding
  /// conns_mu_ across the network write while the reaper erases it.
  std::vector<std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 0;

  std::FILE* log_ = nullptr;  ///< admission log (serving thread only)

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace drw::service
