// Request/result vocabulary of the walk service layer.
//
// A WalkRequest is what a serving client submits: "give me `count`
// independent l-step random-walk samples from `source`" -- heterogeneous
// lengths, sources and counts mix freely within one batch. A RequestResult
// carries the per-request destinations (exact samples, Theorem 2.5 is Las
// Vegas), the per-request share of the round/message cost, and -- when asked
// -- the fully regenerated walk paths (Section 2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/graph.hpp"

namespace drw::service {

struct WalkRequest {
  NodeId source = 0;
  std::uint64_t length = 0;
  std::uint32_t count = 1;
  /// Regenerate and return the full node sequence of each walk (requires a
  /// service configured with enable_paths; costs regeneration rounds).
  bool record_positions = false;
};

struct RequestResult {
  WalkRequest request;
  /// One exact l-step destination per requested walk (size == count).
  std::vector<NodeId> destinations;
  /// Full walk paths (size count, each length+1 nodes) when
  /// record_positions was set; empty otherwise.
  std::vector<std::vector<NodeId>> paths;
  /// Rounds/messages directly attributable to this request's walks
  /// (stitching + any in-walk GET-MORE-WALKS + regeneration; the batch's
  /// shared concurrent tail run is reported at batch level only).
  congest::RunStats stats;
  /// Summed instrumentation over this request's walks.
  core::WalkCounters counters;
};

}  // namespace drw::service
