// Request/result vocabulary of the walk service layer.
//
// A WalkRequest is what a serving client submits: "give me `count`
// independent l-step random-walk samples from `source`" -- heterogeneous
// lengths, sources and counts mix freely within one batch. A RequestResult
// carries the per-request destinations (exact samples, Theorem 2.5 is Las
// Vegas), the per-request share of the round/message cost, and -- when asked
// -- the fully regenerated walk paths (Section 2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/random_walks.hpp"
#include "graph/graph.hpp"

namespace drw::service {

struct WalkRequest {
  NodeId source = 0;
  std::uint64_t length = 0;
  std::uint32_t count = 1;
  /// Regenerate and return the full node sequence of each walk (requires a
  /// service configured with enable_paths; costs regeneration rounds).
  bool record_positions = false;
};

/// Boundary-validation outcome of one request. Invalid requests never reach
/// the engine: they come back in their submission slot with a non-kOk
/// status and an explanatory message instead of a deep-engine throw, and
/// the rest of the batch is served normally (graceful degradation).
enum class RequestStatus : std::uint8_t {
  kOk = 0,
  kSourceOutOfRange,   ///< source >= node count
  kPathsDisabled,      ///< record_positions without ServiceConfig.enable_paths
  kCountExceedsCap,    ///< count > RequestCaps.max_count
  kLengthExceedsCap,   ///< length > RequestCaps.max_length
  kBatchCapExceeded,   ///< would push the batch past RequestCaps.max_batch_walks
  kQueueFull,          ///< admission queue at capacity (server front end)
  kDeadlineExceeded,   ///< deadline passed while queued for admission
};

constexpr const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kSourceOutOfRange: return "source out of range";
    case RequestStatus::kPathsDisabled:
      return "record_positions requires enable_paths";
    case RequestStatus::kCountExceedsCap: return "count exceeds cap";
    case RequestStatus::kLengthExceedsCap: return "length exceeds cap";
    case RequestStatus::kBatchCapExceeded: return "batch walk cap exceeded";
    case RequestStatus::kQueueFull: return "admission queue full";
    case RequestStatus::kDeadlineExceeded: return "deadline exceeded";
  }
  return "unknown";
}

struct RequestResult {
  WalkRequest request;
  /// One exact l-step destination per requested walk (size == count).
  /// Empty when status != kOk (a rejected request samples nothing).
  std::vector<NodeId> destinations;
  /// Full walk paths (size count, each length+1 nodes) when
  /// record_positions was set; empty otherwise.
  std::vector<std::vector<NodeId>> paths;
  /// Rounds/messages directly attributable to this request's walks
  /// (stitching + any in-walk GET-MORE-WALKS + regeneration; the batch's
  /// shared concurrent tail run is reported at batch level only).
  congest::RunStats stats;
  /// Summed instrumentation over this request's walks.
  core::WalkCounters counters;
  /// Boundary validation outcome; destinations/paths/stats are only
  /// meaningful when ok().
  RequestStatus status = RequestStatus::kOk;

  bool ok() const noexcept { return status == RequestStatus::kOk; }
  const char* error() const noexcept { return to_string(status); }
};

}  // namespace drw::service
