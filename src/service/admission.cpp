#include "service/admission.hpp"

#include <algorithm>
#include <utility>

namespace drw::service {

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config) {
  config_.quantum = std::max<std::uint64_t>(1, config_.quantum);
  config_.max_batch_cost = std::max<std::uint64_t>(1, config_.max_batch_cost);
  config_.min_batch_requests =
      std::max<std::uint32_t>(1, config_.min_batch_requests);
  class_names_.push_back("default");
  class_quanta_.push_back(config_.quantum);
}

std::uint32_t AdmissionQueue::intern_class(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < class_names_.size(); ++i) {
    if (class_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  class_names_.push_back(name.empty() ? "default" : name);
  class_quanta_.push_back(config_.quantum);
  return static_cast<std::uint32_t>(class_names_.size() - 1);
}

void AdmissionQueue::set_class_quantum(std::uint32_t class_id,
                                       std::uint64_t quantum) {
  std::lock_guard<std::mutex> lock(mu_);
  if (class_id < class_quanta_.size()) {
    class_quanta_[class_id] = std::max<std::uint64_t>(1, quantum);
  }
}

std::string AdmissionQueue::class_name(std::uint32_t class_id) const {
  // By value: intern_class (reader threads, any HELLO) can reallocate
  // class_names_ at any time, so a reference would dangle once mu_ drops.
  std::lock_guard<std::mutex> lock(mu_);
  return class_names_[class_id < class_names_.size() ? class_id : 0];
}

RequestStatus AdmissionQueue::enqueue(PendingRequest req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || depth_ >= config_.queue_cap) {
    return RequestStatus::kQueueFull;
  }
  // Clamp to the batch budget: cost >= max_batch_cost already closes a
  // batch on its own, and an unclamped (saturated) cost would make the
  // DRR deficit take ~cost/quantum cycles to catch up.
  req.cost = std::min(request_cost(req.request), config_.max_batch_cost);
  req.seq = next_seq_++;
  Flow& flow = flows_[req.flow];
  flow.class_id = req.class_id;
  flow.orphaned = false;  // flow ids are unique, but stay safe on reuse
  flow.queue.push_back(std::move(req));
  ++depth_;
  cv_.notify_one();
  return RequestStatus::kOk;
}

bool AdmissionQueue::wait_for_work() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  return depth_ > 0 || !closed_;
}

std::vector<PendingRequest> AdmissionQueue::drain(
    double now_ms, std::vector<AdmissionReject>* rejects) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out;
  std::uint64_t cost = 0;

  auto expired = [&](const PendingRequest& r) {
    return r.deadline_ms != 0 &&
           now_ms - r.arrival_ms > static_cast<double>(r.deadline_ms);
  };
  auto expire_head = [&](Flow& flow) {
    while (!flow.queue.empty() && expired(flow.queue.front())) {
      AdmissionReject rej;
      rej.request = std::move(flow.queue.front());
      rej.status = RequestStatus::kDeadlineExceeded;
      flow.queue.pop_front();
      --depth_;
      if (rejects != nullptr) rejects->push_back(std::move(rej));
    }
  };
  auto batch_full = [&] {
    return cost >= config_.max_batch_cost &&
           out.size() >= config_.min_batch_requests;
  };
  auto admit_head = [&](Flow& flow) {
    PendingRequest r = std::move(flow.queue.front());
    flow.queue.pop_front();
    --depth_;
    r.admission_index = next_admission_index_++;
    cost += r.cost;
    out.push_back(std::move(r));
  };
  // Released flows whose backlog has drained leave the table here, so an
  // always-on server's flows_ tracks live connections, not history.
  auto reap_orphans = [&] {
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.orphaned && it->second.queue.empty()) {
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
  };

  if (config_.policy == AdmissionPolicy::kFifo) {
    // The unfair baseline: strict global arrival order, same batch sizing.
    while (depth_ > 0 && !batch_full()) {
      Flow* best = nullptr;
      for (auto& [id, flow] : flows_) {
        expire_head(flow);
        if (flow.queue.empty()) continue;
        if (best == nullptr ||
            flow.queue.front().seq < best->queue.front().seq) {
          best = &flow;
        }
      }
      if (best == nullptr) break;
      admit_head(*best);
    }
    reap_orphans();
    return out;
  }

  // Deficit round-robin: cycle flows in ascending id; each backlogged flow
  // earns its class quantum per cycle and admits while its head fits.
  while (depth_ > 0 && !batch_full()) {
    bool admitted_any = false;
    for (auto& [id, flow] : flows_) {
      expire_head(flow);
      if (flow.queue.empty()) {
        flow.deficit = 0;  // idle flows never hoard credit
        continue;
      }
      flow.deficit += quantum_of(flow);
      while (!flow.queue.empty() && !batch_full()) {
        expire_head(flow);
        if (flow.queue.empty()) break;
        if (flow.queue.front().cost > flow.deficit) break;
        flow.deficit -= flow.queue.front().cost;
        admit_head(flow);
        admitted_any = true;
      }
      if (batch_full()) break;
    }
    // Nothing fit anywhere this cycle: if the batch already has content,
    // close it (the leftovers' deficits persist into the next drain);
    // otherwise cycle again -- deficits grow by one quantum per cycle, so
    // a head costlier than any single quantum still admits eventually.
    if (!admitted_any && !out.empty()) break;
    if (!admitted_any && depth_ == 0) break;
  }
  reap_orphans();
  return out;
}

void AdmissionQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void AdmissionQueue::release_flow(std::uint64_t flow) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  if (it->second.queue.empty()) {
    flows_.erase(it);
  } else {
    it->second.orphaned = true;  // drain() erases once the backlog serves
  }
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

std::uint64_t AdmissionQueue::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_admission_index_;
}

std::size_t AdmissionQueue::flow_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

}  // namespace drw::service
