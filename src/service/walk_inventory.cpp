#include "service/walk_inventory.hpp"

#include <algorithm>
#include <stdexcept>

namespace drw::service {

void WalkInventory::refresh(const core::StitchEngine& engine) {
  const std::vector<std::uint64_t> counts = engine.unused_counts_by_source();
  if (unused_.empty()) {
    unused_.assign(counts.size(), 0);
    demand_.assign(counts.size(), 0);
    last_visits_.assign(counts.size(), 0);
  }
  if (counts.size() != unused_.size()) {
    throw std::invalid_argument("WalkInventory::refresh: node count mismatch");
  }
  unused_ = counts;
  total_unused_ = 0;
  for (std::uint64_t c : unused_) total_unused_ += c;

  const std::vector<std::uint64_t>& visits = engine.connector_visits();
  total_demand_ = 0;
  for (NodeId v = 0; v < demand_.size(); ++v) {
    const std::uint64_t now = v < visits.size() ? visits[v] : 0;
    demand_[v] = now > last_visits_[v] ? now - last_visits_[v] : 0;
    total_demand_ += demand_[v];
    last_visits_[v] = now;
  }
}

void WalkInventory::reset(const core::StitchEngine& engine) {
  const std::size_t n = engine.store().held.size();
  unused_.assign(n, 0);
  demand_.assign(n, 0);
  last_visits_.assign(n, 0);
  total_unused_ = 0;
  total_demand_ = 0;
  refresh(engine);
}

void WalkInventory::restore(Image img) {
  if (img.unused.size() != unused_.size() ||
      img.demand.size() != unused_.size() ||
      img.last_visits.size() != unused_.size()) {
    throw std::invalid_argument("WalkInventory::restore: node count mismatch");
  }
  unused_ = std::move(img.unused);
  demand_ = std::move(img.demand);
  last_visits_ = std::move(img.last_visits);
  total_unused_ = img.total_unused;
  total_demand_ = img.total_demand;
}

std::vector<Replenishment> WalkInventory::plan_replenishment(
    const InventoryPolicy& policy) const {
  std::vector<Replenishment> plan;
  for (NodeId v = 0; v < demand_.size(); ++v) {
    if (demand_[v] == 0 || unused_[v] >= demand_[v]) continue;
    const auto target = static_cast<std::uint64_t>(
        policy.headroom * static_cast<double>(demand_[v]));
    if (target <= unused_[v]) continue;
    const std::uint64_t want = target - unused_[v];
    const auto count = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        want, policy.min_batch, policy.max_batch));
    plan.push_back(Replenishment{v, count});
  }
  std::sort(plan.begin(), plan.end(),
            [](const Replenishment& a, const Replenishment& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.source < b.source;
            });
  return plan;
}

}  // namespace drw::service
