// Streaming admission in front of WalkService: the queue between the
// network front end and the batch engine.
//
// The serving problem (Das Sarma et al. serve many concurrent walk
// requests; arXiv:1201.1363 motivates heterogeneous request mixes): a
// skewed hot-key flood -- one client hammering big requests at one source
// -- must not starve light requests queued behind it. FIFO admission does
// exactly that: a light request arriving after a flood burst waits for
// the whole backlog. AdmissionQueue instead drains by deficit round-robin
// (DRR) over flows (one flow per client connection):
//
//   * each flow carries a deficit in COST units (cost of a request =
//     max(1, count) * max(1, length), the walk-step work it buys);
//   * every drain cycle credits each backlogged flow its class quantum;
//     a flow admits queued requests while its head's cost fits the
//     deficit. Per-class quanta are the "per-class byte/count deficits":
//     a light class with a large quantum admits its whole burst per
//     cycle, a flood class with a small quantum trickles;
//   * an empty flow's deficit resets to 0 (classic DRR: credit never
//     accrues while idle), so a returning flow cannot burst on hoarded
//     credit;
//   * the drain stops once the batch reaches max_batch_cost cost units
//     AND min_batch_requests requests (the lane floor: the serving loop
//     sets it to the mux width so every wave can saturate its lanes).
//     Deficits grow cycle over cycle, so a request costlier than one
//     quantum still admits -- after proportionally many cycles.
//
// Fairness guarantee: while both classes are backlogged, every batch
// grants each flow at least one quantum of cost per drain cycle, and the
// batch cost cap bounds the wall time a light request can wait behind
// flood work -- its sojourn is O(residual batch + its own batch), not
// O(flood backlog). bench_serve_latency gates the resulting p99 ratio.
//
// Over-cap arrivals are rejected immediately with kQueueFull; requests
// whose deadline passes while queued are rejected at drain time with
// kDeadlineExceeded (both from the PR 7 structured RequestStatus path --
// rejection is data, never a throw). The clock is injected (now_ms
// parameters), so deadline behavior is deterministic in tests.
//
// Thread safety: every method is safe to call concurrently (the server's
// per-connection reader threads enqueue; one serving thread drains).
// Determinism: the admitted order is a pure function of the queue
// contents -- flows cycle in ascending flow id, FIFO within a flow, so a
// logged admitted order replays bit-identically (see tools/drw request
// and the server-smoke CI step).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/walk_request.hpp"

namespace drw::service {

enum class AdmissionPolicy : std::uint8_t {
  kDrr,   ///< deficit round-robin over flows (the fair default)
  kFifo,  ///< strict global arrival order (the unfair baseline)
};

struct AdmissionConfig {
  /// Max requests queued across all flows; arrivals beyond it bounce with
  /// kQueueFull.
  std::size_t queue_cap = 4096;
  /// Default per-flow cost quantum credited per drain cycle (classes can
  /// override via set_class_quantum).
  std::uint64_t quantum = 2048;
  /// Cost target of one drained batch (the knob bounding light-request
  /// sojourn under flood; see header comment).
  std::uint64_t max_batch_cost = 8192;
  /// Keep draining until the batch has at least this many requests (when
  /// available): the cross-batch lane floor, set to the mux width so the
  /// next wave opens with full lanes.
  std::uint32_t min_batch_requests = 1;
  AdmissionPolicy policy = AdmissionPolicy::kDrr;
};

/// The service cost a request buys: its total walk steps (floored at one
/// unit so zero-length/zero-count requests still move through the queue).
/// Saturating: count and length come straight off the wire, so the product
/// must not wrap to a tiny cost and bypass DRR accounting. enqueue()
/// additionally clamps the stored cost to max_batch_cost (a request that
/// costs the whole batch budget fills a batch by itself; anything beyond
/// that only adds drain cycles).
inline std::uint64_t request_cost(const WalkRequest& r) {
  const std::uint64_t count = std::max<std::uint64_t>(1, r.count);
  const std::uint64_t length = std::max<std::uint64_t>(1, r.length);
  if (count > std::numeric_limits<std::uint64_t>::max() / length) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return count * length;
}

/// One queued (or admitted) request with its admission identity.
struct PendingRequest {
  WalkRequest request;        ///< internal id space
  std::uint64_t user_source = 0;  ///< as the client sent it (log/response)
  std::uint64_t flow = 0;     ///< connection id
  std::uint64_t tag = 0;      ///< client correlation tag
  std::uint32_t class_id = 0;
  double arrival_ms = 0.0;
  std::uint32_t deadline_ms = 0;  ///< relative to arrival; 0 = none
  std::uint64_t cost = 0;         ///< request_cost(), filled by enqueue
  std::uint64_t seq = 0;          ///< global arrival sequence
  std::uint64_t admission_index = 0;  ///< global admitted position (drain)
};

struct AdmissionReject {
  PendingRequest request;
  RequestStatus status = RequestStatus::kQueueFull;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config = {});

  /// Interns a class name (idempotent); returns its id. Id 0 is the
  /// pre-interned "default" class with config.quantum.
  std::uint32_t intern_class(const std::string& name);
  void set_class_quantum(std::uint32_t class_id, std::uint64_t quantum);
  /// By value: concurrent intern_class calls may reallocate the name table.
  std::string class_name(std::uint32_t class_id) const;

  /// kOk: queued. kQueueFull: rejected, nothing retained -- the caller
  /// responds immediately. Fills req.cost and req.seq.
  RequestStatus enqueue(PendingRequest req);

  /// Blocks until the queue is non-empty or closed. Returns false only
  /// when closed AND fully drained (the serving loop's exit condition).
  bool wait_for_work();

  /// Drains one batch per the configured policy (non-blocking; may return
  /// empty). Requests whose deadline has passed by `now_ms` are expired
  /// into `rejects` (never admitted, never indexed). Admitted requests get
  /// consecutive admission_index values in admitted order.
  std::vector<PendingRequest> drain(double now_ms,
                                    std::vector<AdmissionReject>* rejects);

  /// No further enqueues succeed (kQueueFull); wakes waiters. Queued
  /// requests remain drainable so a clean shutdown can serve them.
  void close();

  /// The connection behind `flow` is gone: drop its DRR state. An empty
  /// flow is erased immediately; a backlogged one is marked orphaned and
  /// erased by drain() once served (its queued requests still flow through
  /// admission in order, keeping the admitted-order log replayable).
  void release_flow(std::uint64_t flow);

  std::size_t depth() const;
  std::uint64_t admitted_total() const;
  /// Flows currently tracked (live connections + orphans awaiting drain).
  std::size_t flow_count() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  struct Flow {
    std::deque<PendingRequest> queue;
    std::uint64_t deficit = 0;
    std::uint32_t class_id = 0;
    bool orphaned = false;  ///< connection gone; erase once drained
  };

  std::uint64_t quantum_of(const Flow& flow) const {
    return class_quanta_[flow.class_id];
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionConfig config_;
  std::map<std::uint64_t, Flow> flows_;  ///< ascending flow id = DRR order
  std::vector<std::string> class_names_;
  std::vector<std::uint64_t> class_quanta_;
  std::size_t depth_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_admission_index_ = 0;
  bool closed_ = false;
};

}  // namespace drw::service
