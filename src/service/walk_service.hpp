// WalkService: a serving layer over the stitched random-walk engine.
//
// The paper's Phase 1 prepares short walks once; everything after that is
// consumption. Callers that drive StitchEngine by hand pay a full prepare()
// per batch and cannot mix lengths or sources. WalkService instead:
//
//   * accepts a stream of heterogeneous WalkRequests ({source, length,
//     count, record_positions}) via submit(), served batch-at-a-time by
//     flush();
//   * plans ONE batch-wide lambda (MANY-RANDOM-WALKS parameterization over
//     the batch's total walk count and maximum length) and keeps it across
//     batches while the plan stays within a slack factor -- so the
//     short-walk inventory persists instead of being discarded;
//   * tops the inventory up INCREMENTALLY: targeted GET-MORE-WALKS runs for
//     hot connectors (planned from observed per-node demand vs supply by
//     WalkInventory) plus the engine's own in-walk GET-MORE-WALKS when
//     SAMPLE-DESTINATION still comes up empty. A full Phase 1 re-prepare
//     happens only when the planned lambda drifts out of the slack window
//     (or on first use);
//   * reports per-request WalkResults and per-batch/lifetime throughput
//     aggregates: rounds/request, messages/request, inventory hit rate,
//     replenishment and prepare counts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "congest/network.hpp"
#include "core/params.hpp"
#include "core/random_walks.hpp"
#include "service/batch_scheduler.hpp"
#include "service/walk_inventory.hpp"
#include "service/walk_request.hpp"

namespace drw::service {

/// Boundary-validation caps applied per request at flush() time. 0 means
/// unlimited. Violations come back as structured RequestResult statuses
/// (never engine throws); see RequestStatus in walk_request.hpp.
struct RequestCaps {
  /// Max walks a single request may ask for (WalkRequest::count).
  std::uint32_t max_count = 0;
  /// Max walk length a single request may ask for (WalkRequest::length).
  std::uint64_t max_length = 0;
  /// Max total walks one flush() serves; requests that would push the batch
  /// past it are rejected with kBatchCapExceeded (admission in submission
  /// order).
  std::uint64_t max_batch_walks = 0;
};

struct ServiceConfig {
  /// Walk parameterization (preset, transition model, eta, scaling...).
  /// record_trajectories is overridden by enable_paths below.
  core::Params params;
  /// Record trajectories so requests may set record_positions. Costs
  /// regeneration rounds per recorded walk and requires the simple walk.
  bool enable_paths = false;
  /// Replenishment sizing (see WalkInventory).
  InventoryPolicy policy;
  /// The inventory is reused while the batch-planned lambda stays within
  /// [lambda/slack, lambda*slack] of the engine's current lambda; outside
  /// that window the service re-prepares. Must be >= 1.
  double lambda_slack = 4.0;
  /// Executor threads applied to the network on construction (0 = leave the
  /// network's setting alone). Results are thread-count independent; this
  /// only changes wall time. Per-batch wall time and the executor width
  /// land in BatchReport::stats / ServiceStats::stats (wall_ms, threads;
  /// per-phase compute/transmit/merge breakdowns ride along).
  unsigned threads = 0;
  /// Shard partition strategy applied on construction (nullopt = leave the
  /// network's setting alone -- DRW_PARTITION env or edge-weighted).
  /// Results are partition-independent; only wall time changes.
  std::optional<congest::Partition> partition;
  /// Concurrent cross-walk stitching: the number of walks the batch
  /// scheduler may keep open as ProtocolMux lanes (see batch_scheduler.hpp).
  /// 0 = auto (DRW_MUX env var, else 1); 1 = legacy sequential stitching;
  /// widths of 2 or more multiplex non-conflicting traversals of that
  /// many walks into shared Network rounds. Unlike threads/partition,
  /// this changes WHICH exact walks are sampled (all widths are exact
  /// l-step samples; width is part of the seed-reproducibility contract,
  /// like the seed itself).
  unsigned mux_width = 0;
  /// Conflict radius for mux grouping (0 = connector equality, the exact
  /// token-pool ownership rule; larger = defensive slack).
  std::uint32_t mux_conflict_radius = 0;
  /// Non-empty: arm the process-wide obs tracer and write a Chrome
  /// trace-event JSON (Perfetto-loadable) here when the service is
  /// destroyed. Equivalent to DRW_TRACE=<path> / `drw --trace=<path>`.
  /// Observation never branches execution; results are bit-identical with
  /// tracing on or off.
  std::string trace_path;
  /// Per-request validation caps (see RequestCaps; all default unlimited).
  RequestCaps caps;
  /// Non-empty: after every batch whose engine is prepared and non-naive,
  /// atomically checkpoint the full serving state here (drw::resil
  /// snapshot). A later service on the same graph + seed can
  /// restore_snapshot() and continue bit-identically. Snapshot IO failures
  /// are logged and never take down serving.
  std::string snapshot_path;
  /// Snapshot generations to keep (>= 1; 0 is treated as 1). 1 (default)
  /// overwrites snapshot_path in place -- the historical layout. N > 1
  /// rotates `path.1` (newest) .. `path.N` (oldest) on every checkpoint
  /// and restore_snapshot picks the newest generation that validates, so
  /// a torn or corrupt latest checkpoint degrades to the previous one
  /// instead of a cold start.
  std::uint32_t snapshot_keep = 1;
  /// Informational: where the served graph came from (e.g. "csr:PATH",
  /// "text:PATH", "generator:torus:12x12"). Surfaced in `drw serve`'s
  /// --stats-json output; never affects execution.
  std::string graph_source;
};

/// Per-batch serving report.
struct BatchReport {
  std::vector<RequestResult> results;   ///< submission order
  congest::RunStats stats;              ///< total cost of this batch
  std::uint64_t requests = 0;
  std::uint64_t walks = 0;
  std::uint32_t lambda = 0;             ///< lambda the batch ran with
  bool naive_mode = false;              ///< lambda > max length: token walks
  bool full_prepare = false;            ///< Phase 1 actually ran (a naive-
                                        ///< mode prepare creates nothing)
  std::uint64_t stitches = 0;
  std::uint64_t inventory_hits = 0;     ///< stitches served from stock
  std::uint64_t engine_gmw_calls = 0;   ///< in-walk emergency top-ups
  std::uint64_t replenishments = 0;     ///< targeted pre-batch top-up runs
  std::uint64_t replenished_walks = 0;  ///< short walks added by those runs
  /// Model cost of serving the same requests one naive token walk at a
  /// time (sum of length over all walks; a naive walk is exactly l rounds).
  std::uint64_t naive_rounds_estimate = 0;
  std::uint32_t mux_width = 0;       ///< lanes the scheduler could open (1 = off)
  std::uint64_t mux_groups = 0;      ///< multiplexed traversal waves executed
  std::uint64_t mux_lanes = 0;       ///< lanes summed over waves (avg width
                                     ///< per wave = mux_lanes / mux_groups)
  std::uint64_t mux_conflicts = 0;   ///< traversals serialized by the conflict rule
  std::uint64_t rejected = 0;        ///< requests returned with status != kOk

  double rounds_per_request() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(stats.rounds) /
                               static_cast<double>(requests);
  }
  double messages_per_request() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(stats.messages) /
                               static_cast<double>(requests);
  }
  /// Fraction of stitches served without an in-walk GET-MORE-WALKS stall.
  double inventory_hit_rate() const {
    return stitches == 0 ? 1.0
                         : static_cast<double>(inventory_hits) /
                               static_cast<double>(stitches);
  }
};

/// Lifetime aggregates across all served batches. Mirrors BatchReport
/// field-for-field so `drw serve --stats-json` can emit both without
/// translation.
struct ServiceStats {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;
  std::uint64_t walks = 0;
  congest::RunStats stats;
  std::uint64_t full_prepares = 0;
  std::uint64_t replenishments = 0;
  std::uint64_t replenished_walks = 0;
  std::uint64_t stitches = 0;
  std::uint64_t inventory_hits = 0;
  std::uint64_t engine_gmw_calls = 0;
  std::uint64_t naive_rounds_estimate = 0;
  std::uint64_t mux_groups = 0;
  std::uint64_t mux_lanes = 0;
  std::uint64_t mux_conflicts = 0;
  std::uint64_t rejected = 0;

  double inventory_hit_rate() const {
    return stitches == 0 ? 1.0
                         : static_cast<double>(inventory_hits) /
                               static_cast<double>(stitches);
  }
};

class WalkService {
 public:
  WalkService(congest::Network& net, std::uint32_t diameter,
              ServiceConfig config = {});
  /// Flushes the obs tracer iff this service armed it (trace_path).
  ~WalkService();

  congest::Network& network() noexcept { return *net_; }
  std::uint32_t diameter() const noexcept { return diameter_; }
  const ServiceConfig& config() const noexcept { return config_; }

  /// Enqueues one request for the next flush(). Never throws: validation
  /// happens at the service boundary in flush(), where invalid requests
  /// come back in their submission slot with a structured RequestStatus
  /// (kSourceOutOfRange, kPathsDisabled, cap violations) instead of a
  /// deep-engine throw -- the rest of the batch is served normally.
  void submit(const WalkRequest& request);
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Serves every pending request as one batch. Empty-queue flushes are
  /// free no-ops. Edge semantics: count == 0 is an empty success;
  /// length == 0 returns `count` copies of `source` (path {source} when
  /// recorded) without touching the engine.
  BatchReport flush();

  /// submit() + flush() in one call.
  BatchReport serve(const std::vector<WalkRequest>& requests);

  const ServiceStats& lifetime() const noexcept { return lifetime_; }
  const WalkInventory& inventory() const noexcept { return inventory_; }
  /// Escape hatch for instrumentation and tests.
  core::StitchEngine& engine() noexcept { return engine_; }

  /// Atomically checkpoints the full serving state (engine inventory +
  /// trajectories + per-node RNG streams + demand bookkeeping + walk-id
  /// cursor, fingerprinted against this network's graph + seed) to `path`.
  /// Requires a prepared, non-naive engine (serve at least one batch
  /// first); throws std::logic_error otherwise and std::runtime_error on
  /// IO failure.
  void save_snapshot(const std::string& path);

  /// Restores a snapshot written by save_snapshot on an identical network
  /// (same graph, same seed). Returns true on a warm restart: every
  /// subsequent batch is bit-identical to the uninterrupted run. Returns
  /// false -- leaving the service untouched, ready for a cold start -- when
  /// no usable file exists: missing, torn, corrupt (checksum/version
  /// mismatch) or fingerprinted for a different network; reasons are
  /// logged to stderr. With config.snapshot_keep > 1 the generations
  /// `path.1` .. `path.N` are tried newest-first (then plain `path`, so a
  /// pre-rotation checkpoint still warm-starts), and the newest valid one
  /// wins.
  bool restore_snapshot(const std::string& path);

  /// Best-effort checkpoint to config.snapshot_path right now (same policy
  /// as the automatic after-batch snapshot: no-op without a path or a
  /// prepared non-naive engine, IO failures logged and swallowed). The
  /// server's SIGTERM path calls this so a clean shutdown persists state
  /// accumulated since the last batch boundary.
  void checkpoint() { maybe_snapshot(); }

 private:
  /// Snapshot-after-batch policy: config_.snapshot_path, IO failures logged
  /// and swallowed (a failing disk must not take down serving). With
  /// snapshot_keep > 1, rotates the generation files before writing.
  void maybe_snapshot();
  /// One restore attempt against a concrete file; on failure returns
  /// false with the reason in `why` and leaves the service untouched.
  bool restore_from_file(const std::string& file, std::string* why);
  /// graph_fingerprint(graph, seed), salted with enable_paths: a snapshot
  /// without trajectories must not warm-start a path-recording service.
  std::uint64_t state_fingerprint() const;

  congest::Network* net_;
  std::uint32_t diameter_;
  ServiceConfig config_;
  core::StitchEngine engine_;
  WalkInventory inventory_;
  std::vector<WalkRequest> pending_;
  std::uint32_t next_walk_id_ = 0;
  ServiceStats lifetime_;
  bool owns_trace_ = false;  ///< this instance armed the tracer
};

}  // namespace drw::service
