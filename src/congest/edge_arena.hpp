// Flat chunked FIFO arena for the per-directed-edge message backlogs.
//
// Replaces the simulator's former `std::vector<std::deque<Message>>`: a
// deque per edge scatters every backlog over its own heap allocations, while
// here all queued messages live in per-shard chunk pools -- contiguous
// vectors of fixed-capacity chunks linked into per-edge FIFOs and recycled
// through a free list. Two consequences:
//
//   * cache locality: one round's backlog traffic touches a handful of
//     chunk-pool pages instead of 2m individual deques;
//   * lock-free parallelism: every directed edge is owned by exactly one
//     shard (the shard of its DESTINATION node), an edge's chunks are drawn
//     only from its owner shard's pool, and the parallel executor lets only
//     the owner worker touch that pool -- so enqueue (merge) and transmit
//     need no locks or atomics at all.
//
// The arena itself is single-threaded per shard; all cross-shard discipline
// lives in congest::Network's round executor.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "congest/message.hpp"

namespace drw::congest {

class EdgeArena {
 public:
  /// Messages per chunk: sized so a chunk (12 * 40B + link) spans a small
  /// fixed number of cache lines while short backlogs (the common case --
  /// one token queued per edge) waste little space.
  static constexpr std::uint32_t kChunkCap = 12;

  /// Re-initializes for `edge_count` directed edges and `shard_count` owner
  /// pools. Drops all queued messages and pooled chunks.
  void reset(std::size_t edge_count, unsigned shard_count) {
    queues_.assign(edge_count, Queue{});
    pools_.assign(shard_count, Pool{});
  }

  /// Appends to edge `eid`'s FIFO. `shard` must be the edge's owner shard.
  /// Returns the queue depth after the push (1 == the edge was idle), so the
  /// merge loop needs no separate size() lookups on its hottest path.
  std::uint32_t push(unsigned shard, std::uint32_t eid, const Message& m) {
    Pool& pool = pools_[shard];
    Queue& q = queues_[eid];
    if (q.tail == kNil) {
      const std::uint32_t c = alloc(pool);
      q.head = q.tail = c;
      q.head_off = q.tail_off = 0;
    } else if (q.tail_off == kChunkCap) {
      const std::uint32_t c = alloc(pool);
      pool.chunks[q.tail].next = c;
      q.tail = c;
      q.tail_off = 0;
    }
    pool.chunks[q.tail].slot[q.tail_off++] = m;
    return ++q.size;
  }

  /// Pops the front of edge `eid`'s FIFO. Precondition: size(eid) > 0.
  Message pop(unsigned shard, std::uint32_t eid) {
    Pool& pool = pools_[shard];
    Queue& q = queues_[eid];
    Chunk& head = pool.chunks[q.head];
    const Message m = head.slot[q.head_off++];
    if (--q.size == 0) {
      release(pool, q.head);  // head == tail when the queue drains
      q = Queue{};
    } else if (q.head_off == kChunkCap) {
      const std::uint32_t next = head.next;
      release(pool, q.head);
      q.head = next;
      q.head_off = 0;
    }
    return m;
  }

  std::uint32_t size(std::uint32_t eid) const noexcept {
    return queues_[eid].size;
  }

  /// Drops all messages of edge `eid`, returning its chunks to the pool.
  void clear_queue(unsigned shard, std::uint32_t eid) {
    Pool& pool = pools_[shard];
    Queue& q = queues_[eid];
    std::uint32_t c = q.head;
    while (c != kNil) {
      const std::uint32_t next = pool.chunks[c].next;
      release(pool, c);
      c = next;
    }
    q = Queue{};
  }

  /// True iff no edge has queued messages (post-run invariant check).
  bool all_empty() const noexcept {
    for (const Queue& q : queues_) {
      if (q.size != 0) return false;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  struct Chunk {
    std::array<Message, kChunkCap> slot;
    std::uint32_t next = kNil;
  };
  struct Pool {
    std::vector<Chunk> chunks;
    std::uint32_t free_head = kNil;
  };
  struct Queue {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t size = 0;
    std::uint16_t head_off = 0;
    std::uint16_t tail_off = 0;
  };

  static std::uint32_t alloc(Pool& pool) {
    if (pool.free_head != kNil) {
      const std::uint32_t c = pool.free_head;
      pool.free_head = pool.chunks[c].next;
      pool.chunks[c].next = kNil;
      return c;
    }
    pool.chunks.emplace_back();
    return static_cast<std::uint32_t>(pool.chunks.size() - 1);
  }

  static void release(Pool& pool, std::uint32_t c) {
    pool.chunks[c].next = pool.free_head;
    pool.free_head = c;
  }

  std::vector<Queue> queues_;  // per directed edge
  std::vector<Pool> pools_;    // per owner shard
};

}  // namespace drw::congest
