// The CONGEST message unit, shared by the network simulator and the
// edge-queue arena (kept in its own header so the arena does not depend on
// the full simulator interface).
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.hpp"

namespace drw::congest {

/// A CONGEST message: type tag + <= 4 payload words (O(log n) bits).
///
/// `lane` identifies which multiplexed protocol instance a message belongs
/// to when several run inside one Network::run (see congest/mux.hpp); the
/// simulator gives every (directed edge, lane) pair its own FIFO so each
/// lane's delivery pacing matches a solo run. Lane ids are bounded by the
/// multiplexing width (O(log n) extra bits); plain single-protocol runs
/// leave it 0.
struct Message {
  std::uint16_t type = 0;
  std::array<std::uint64_t, 4> f{};
  /// Declared last so the ubiquitous `Message{type, {payload...}}`
  /// aggregate initializers stay valid (lane defaults to 0).
  std::uint16_t lane = 0;
};
static_assert(sizeof(Message) <= 48, "Message must stay O(log n) bits");

/// A delivered message together with the neighbor it arrived from (the
/// CONGEST model lets the receiver identify the incoming edge).
struct Delivery {
  Message msg;
  NodeId from = kInvalidNode;
};

}  // namespace drw::congest
