// The CONGEST message unit, shared by the network simulator and the
// edge-queue arena (kept in its own header so the arena does not depend on
// the full simulator interface).
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.hpp"

namespace drw::congest {

/// A CONGEST message: type tag + <= 4 payload words (O(log n) bits).
///
/// `lane` identifies which multiplexed protocol instance a message belongs
/// to when several run inside one Network::run (see congest/mux.hpp); the
/// simulator gives every (directed edge, lane) pair its own FIFO so each
/// lane's delivery pacing matches a solo run. Lane ids are bounded by the
/// multiplexing width (O(log n) extra bits); plain single-protocol runs
/// leave it 0.
struct Message {
  std::uint16_t type = 0;
  std::array<std::uint64_t, 4> f{};
  /// Declared last so the ubiquitous `Message{type, {payload...}}`
  /// aggregate initializers stay valid (lane defaults to 0).
  std::uint16_t lane = 0;
};
static_assert(sizeof(Message) <= 48, "Message must stay O(log n) bits");

/// A delivered message together with the neighbor it arrived from (the
/// CONGEST model lets the receiver identify the incoming edge).
struct Delivery {
  Message msg;
  NodeId from = kInvalidNode;
};

/// Columnar (structure-of-arrays) encoding of the dominant message shape:
/// fixed-payload walk tokens whose four payload words all fit in 32 bits
/// (kToken's {source, seq, total, remaining} and kStep's {job, remaining,
/// position, 0} both do -- node ids and walk counters are 32-bit values).
/// The transmit path stages these as three u64 columns (24 bytes carrying
/// message + routing) instead of a 56-byte PendingSend, and keeps the
/// generic path only for the long tail. Packing is lossless for packable
/// messages, so routing tokens through the columns is invisible to
/// protocols -- the bit-identity tests hold with the fast path on.
struct PackedToken {
  std::uint64_t hdr = 0;  ///< (virtual eid << 32) | (type << 16) | lane
  std::uint64_t lo = 0;   ///< f[0] | f[1] << 32
  std::uint64_t hi = 0;   ///< f[2] | f[3] << 32
};

/// True iff `m` round-trips through PackedToken (every payload word fits
/// in 32 bits). One OR + shift + compare on the send hot path.
inline bool token_packable(const Message& m) noexcept {
  return ((m.f[0] | m.f[1] | m.f[2] | m.f[3]) >> 32) == 0;
}

/// Packs a packable message bound for virtual edge `eid` (the stage-time
/// lane is passed explicitly: senders leave Message::lane 0 and the
/// network stamps it, mirroring the generic path).
inline PackedToken pack_token(std::uint32_t eid, const Message& m,
                              std::uint16_t lane) noexcept {
  return PackedToken{
      (static_cast<std::uint64_t>(eid) << 32) |
          (static_cast<std::uint32_t>(m.type) << 16) | lane,
      m.f[0] | (m.f[1] << 32),
      m.f[2] | (m.f[3] << 32)};
}

inline std::uint32_t token_eid(const PackedToken& t) noexcept {
  return static_cast<std::uint32_t>(t.hdr >> 32);
}

/// Reconstructs the staged message (including its lane stamp).
inline Message unpack_token(const PackedToken& t) noexcept {
  Message m;
  m.type = static_cast<std::uint16_t>(t.hdr >> 16);
  m.lane = static_cast<std::uint16_t>(t.hdr);
  m.f = {t.lo & 0xffffffffull, t.lo >> 32, t.hi & 0xffffffffull,
         t.hi >> 32};
  return m;
}

}  // namespace drw::congest
