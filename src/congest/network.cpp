#include "congest/network.hpp"

#include <stdexcept>

namespace drw::congest {

std::uint32_t Context::degree() const noexcept {
  return net_->graph().degree(self_);
}

std::span<const NodeId> Context::neighbors() const noexcept {
  return net_->graph().neighbors(self_);
}

NodeId Context::neighbor(std::uint32_t slot) const noexcept {
  return net_->graph().neighbor(self_, slot);
}

std::uint32_t Context::slot_of(NodeId neighbor_id) const noexcept {
  return net_->graph().slot_of(self_, neighbor_id);
}

void Context::send(std::uint32_t slot, const Message& m) {
  net_->enqueue(self_, slot, m);
}

void Context::send_to(NodeId neighbor_id, const Message& m) {
  const std::uint32_t slot = net_->graph().slot_of(self_, neighbor_id);
  if (slot >= degree()) {
    throw std::logic_error("Context::send_to: target is not a neighbor");
  }
  net_->enqueue(self_, slot, m);
}

void Context::wake_me() {
  if (!net_->wake_flag_[self_]) {
    net_->wake_flag_[self_] = 1;
    net_->wake_list_.push_back(self_);
    ++net_->wakes_next_round_;
  }
}

Rng& Context::rng() { return net_->node_rngs_[self_]; }

Network::Network(const Graph& g, std::uint64_t seed) : graph_(&g) {
  const std::size_t n = g.node_count();
  Rng master(seed);
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_rngs_.push_back(master.split_key(v));

  queues_.resize(g.directed_edge_count());
  edge_source_.resize(g.directed_edge_count());
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t slot = 0; slot < g.degree(v); ++slot) {
      edge_source_[g.directed_edge_index(v, slot)] = v;
    }
  }
  inbox_.resize(n);
  wake_flag_.assign(n, 0);
}

void Network::enqueue(NodeId from, std::uint32_t slot, const Message& m) {
  const std::size_t eid = graph_->directed_edge_index(from, slot);
  auto& queue = queues_[eid];
  if (queue.empty()) busy_edges_.push_back(static_cast<std::uint32_t>(eid));
  queue.push_back(m);
  if (queue.size() > max_backlog_) max_backlog_ = queue.size();
  ++sends_this_round_;
}

RunStats Network::run(Protocol& protocol, std::uint64_t max_rounds) {
  const std::size_t n = graph_->node_count();
  RunStats stats;
  max_backlog_ = 0;

  // Round 0 activates every node once so protocols can initialize; this
  // forced wake does not by itself count as a round.
  std::vector<NodeId> current_wakes;
  bool forced_global_wake = true;

  for (std::uint64_t round = 0;; ++round) {
    if (round > max_rounds) {
      throw std::runtime_error("Network::run: max_rounds exceeded");
    }

    // Collect this round's activations (set up by the previous iteration).
    if (!forced_global_wake) {
      current_wakes.swap(wake_list_);
      wake_list_.clear();
      for (NodeId v : current_wakes) wake_flag_[v] = 0;
    }
    const std::uint64_t deliveries = [&] {
      std::uint64_t count = 0;
      for (NodeId v : inbox_nonempty_) count += inbox_[v].size();
      return count;
    }();
    sends_this_round_ = 0;
    wakes_next_round_ = 0;

    // Process active nodes: first those with deliveries, then woken nodes
    // that had no deliveries. (Inbox membership is tracked via inbox size.)
    auto process = [&](NodeId v) {
      Context ctx;
      ctx.net_ = this;
      ctx.self_ = v;
      ctx.round_ = round;
      ctx.inbox_ = std::span<const Delivery>(inbox_[v]);
      protocol.on_round(ctx);
    };
    if (forced_global_wake) {
      for (NodeId v = 0; v < n; ++v) process(v);
    } else {
      for (NodeId v : inbox_nonempty_) process(v);
      for (NodeId v : current_wakes) {
        if (inbox_[v].empty()) process(v);
      }
    }

    // Clear consumed inboxes.
    for (NodeId v : inbox_nonempty_) inbox_[v].clear();
    inbox_nonempty_.clear();

    stats.messages += deliveries;
    forced_global_wake = false;
    // Wakes scheduled during this iteration mark local-only work happening
    // in this round (e.g. a lazy walk's self-loop step): they cost a round
    // even with no transmission.
    const std::uint64_t scheduled = wakes_next_round_;

    if (protocol.done()) {
      if (scheduled > 0 || sends_this_round_ > 0) ++stats.rounds;
      break;
    }

    // Transmit: at most one queued message per directed edge moves into the
    // next iteration's inboxes. Each iteration with at least one
    // transmission (or an explicit waiting wake) is one CONGEST round --
    // compute + send + delivery happen within a single round of the model.
    std::uint64_t transmitted = 0;
    std::vector<std::uint32_t> still_busy;
    for (std::uint32_t eid : busy_edges_) {
      auto& queue = queues_[eid];
      const NodeId from = edge_source_[eid];
      const NodeId to = graph_->neighbor(
          from, static_cast<std::uint32_t>(
                    eid - graph_->directed_edge_index(from, 0)));
      if (inbox_[to].empty()) inbox_nonempty_.push_back(to);
      inbox_[to].push_back(Delivery{queue.front(), from});
      queue.pop_front();
      ++transmitted;
      if (!queue.empty()) still_busy.push_back(eid);
    }
    busy_edges_.swap(still_busy);
    if (transmitted > 0 || scheduled > 0) ++stats.rounds;

    // Quiescence: nothing queued, nothing scheduled, nothing to deliver.
    if (busy_edges_.empty() && inbox_nonempty_.empty() &&
        wake_list_.empty()) {
      break;
    }
  }

  stats.max_backlog = max_backlog_;
  // Reset transient state so the network can host the next protocol run.
  for (NodeId v : inbox_nonempty_) inbox_[v].clear();
  inbox_nonempty_.clear();
  for (NodeId v : wake_list_) wake_flag_[v] = 0;
  wake_list_.clear();
  for (std::uint32_t eid : busy_edges_) queues_[eid].clear();
  busy_edges_.clear();
  return stats;
}

}  // namespace drw::congest
