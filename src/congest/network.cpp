#include "congest/network.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/failpoint.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace drw::congest {

namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Parsed DRW_PARALLEL_GRAIN: an explicit inline-dispatch grain that
/// disables the startup micro-calibration (the CI TSan leg sets 1 so that
/// even small-graph tests execute on_round on concurrent workers under the
/// race checker). Negative = unset, calibrate instead.
long long env_parallel_grain() {
  static const long long value = [] {
    if (const char* env = std::getenv("DRW_PARALLEL_GRAIN")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env) return static_cast<long long>(parsed);
    }
    return -1ll;
  }();
  return value;
}

/// Parsed DRW_STEAL_CHUNK (0 = unset): target work units per compute
/// steal-chunk, overriding the grain-derived default.
std::uint32_t env_steal_chunk() {
  static const std::uint32_t value = [] {
    if (const char* env = std::getenv("DRW_STEAL_CHUNK")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && parsed >= 1) {
        return static_cast<std::uint32_t>(
            parsed < (1u << 30) ? parsed : (1u << 30));
      }
    }
    return 0u;
  }();
  return value;
}

/// Parsed DRW_PARTITION ("nodes"/"edges"; default edge-weighted).
Partition env_partition() {
  static const Partition value = [] {
    if (const char* env = std::getenv("DRW_PARTITION")) {
      if (std::strcmp(env, "nodes") == 0 || std::strcmp(env, "node") == 0) {
        return Partition::kNodeCount;
      }
    }
    return Partition::kEdgeWeighted;
  }();
  return value;
}

/// Cuts `count` items into chunks of ~`steal_chunk` accumulated weight
/// units: the single source of truth for the steal-chunk boundary
/// invariant, shared by the round-0 (degree-weighted) and steady-state
/// (inbox-weighted) builders. Appends cumulative chunk ends to `chunk_end`
/// and returns the total weight.
template <typename WeightFn>
std::uint64_t cut_chunks(std::uint32_t steal_chunk, std::uint32_t count,
                         WeightFn&& weight,
                         std::vector<std::uint32_t>& chunk_end) {
  std::uint64_t acc = 0;
  std::uint64_t work = 0;
  for (std::uint32_t idx = 0; idx < count; ++idx) {
    const std::uint64_t w = weight(idx);
    acc += w;
    work += w;
    if (acc >= steal_chunk) {
      chunk_end.push_back(idx + 1);
      acc = 0;
    }
  }
  if (acc > 0) chunk_end.push_back(count);
  return work;
}

/// Parsed DRW_LANE_INBOX_MB (default 64): memory budget in MiB for the
/// zero-copy per-(node, lane) inbox table. Multi-lane runs above the
/// budget fall back to the mixed-inbox copying path (identical results).
std::uint32_t env_lane_inbox_mb() {
  static const std::uint32_t value = [] {
    if (const char* env = std::getenv("DRW_LANE_INBOX_MB")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env) {
        return static_cast<std::uint32_t>(
            parsed < (1u << 20) ? parsed : (1u << 20));
      }
    }
    return 64u;
  }();
  return value;
}

/// Parsed DRW_THREADS (0 = unset/invalid): an explicit width request, as
/// opposed to the hardware-derived fallback.
unsigned env_threads() {
  static const unsigned value = [] {
    if (const char* env = std::getenv("DRW_THREADS")) {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      if (parsed >= 1) {
        return static_cast<unsigned>(parsed < 256 ? parsed : 256);
      }
    }
    return 0u;
  }();
  return value;
}

}  // namespace

// ------------------------------------------------------------------ Context

std::uint32_t Context::degree() const noexcept {
  return net_->graph().degree(self_);
}

std::span<const NodeId> Context::neighbors() const noexcept {
  return net_->graph().neighbors(self_);
}

NodeId Context::neighbor(std::uint32_t slot) const noexcept {
  return net_->graph().neighbor(self_, slot);
}

std::uint32_t Context::slot_of(NodeId neighbor_id) const noexcept {
  return net_->graph().slot_of(self_, neighbor_id);
}

void Context::send(std::uint32_t slot, const Message& m) {
  net_->stage_send(worker_, self_, slot, m, lane_);
}

void Context::send_to(NodeId neighbor_id, const Message& m) {
  const std::uint32_t slot = net_->graph().slot_of(self_, neighbor_id);
  if (slot >= degree()) {
    throw std::logic_error("Context::send_to: target is not a neighbor");
  }
  net_->stage_send(worker_, self_, slot, m, lane_);
}

void Context::wake_me() {
  lane_woke_ = true;
  net_->stage_wake(worker_, self_);
}

Rng& Context::rng() {
  return lane_rng_ != nullptr ? *lane_rng_ : net_->node_rngs_[self_];
}

bool Context::has_lane_inboxes() const noexcept {
  return net_->lane_inboxes_on_;
}

std::span<const Delivery> Context::lane_inbox(
    std::uint16_t lane) const noexcept {
  return std::span<const Delivery>(
      net_->lane_inbox_[static_cast<std::size_t>(self_) *
                            net_->lane_inbox_stride_ + lane]);
}

// --------------------------------------------------------------- WorkerPool

/// A persistent pool of workers_ - 1 threads; the driver thread acts as
/// worker 0. run() dispatches one task generation to every worker and
/// blocks until all finish; the mutex hand-offs give each phase the
/// acquire/release edges the barrier-separated data flow relies on.
struct Network::WorkerPool {
  explicit WorkerPool(unsigned workers) {
    threads_.reserve(workers - 1);
    for (unsigned id = 1; id < workers; ++id) {
      threads_.emplace_back([this, id] { loop(id); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(const std::function<void(unsigned)>& task) {
    {
      std::lock_guard<std::mutex> lock(m_);
      task_ = &task;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    cv_start_.notify_all();
    try {
      task(0);
    } catch (...) {
      record_error();
    }
    std::exception_ptr error;
    {
      // The driver finished its own share; whatever remains until
      // pending_ hits zero is pure imbalance -- the span the trace calls
      // barrier.wait. (The cv hand-off below is also the happens-before
      // edge that lets a post-run Tracer::flush read the workers' rings.)
      obs::Span barrier(obs::Name::kBarrierWait, obs::kPidExecutor, 0);
      std::unique_lock<std::mutex> lock(m_);
      cv_done_.wait(lock, [this] { return pending_ == 0; });
      task_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void loop(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_start_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      try {
        (*task)(id);
      } catch (...) {
        record_error();
      }
      {
        std::lock_guard<std::mutex> lock(m_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  void record_error() {
    std::lock_guard<std::mutex> lock(m_);
    if (!error_) error_ = std::current_exception();
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

// ------------------------------------------------------------------ Network

Network::Network(const Graph& g, std::uint64_t seed)
    : graph_(&g), seed_(seed), partition_setting_(env_partition()) {
  const std::size_t n = g.node_count();
  Rng master(seed);
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_rngs_.push_back(master.split_key(v));

  edge_endpoints_.resize(g.directed_edge_count());
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t slot = 0; slot < g.degree(v); ++slot) {
      const std::size_t eid = g.directed_edge_index(v, slot);
      edge_endpoints_[eid] = static_cast<std::uint64_t>(
                                 g.directed_edge_target(eid)) |
                             (static_cast<std::uint64_t>(v) << 32);
    }
  }
  inbox_.resize(n);
  inbox_total_.assign(n, 0);
  wake_flag_.assign(n, 0);
}

Network::~Network() = default;

unsigned Network::default_threads() {
  const unsigned env = env_threads();
  if (env != 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void Network::set_threads(unsigned threads) {
  threads_setting_ = threads < 256 ? threads : 256;
}

unsigned Network::resolve_threads() const noexcept {
  unsigned want = threads_setting_ == 0 ? default_threads()
                                        : threads_setting_;
  const std::size_t n = graph_->node_count();
  // When the width is purely hardware-derived (no set_threads, no
  // DRW_THREADS), also bound it by available per-round work: a many-core
  // host sharding a small graph 64 ways would pay 64 task hand-offs per
  // phase for a node or two of work each. Explicit requests are honored
  // up to one node per shard.
  if (threads_setting_ == 0 && env_threads() == 0) {
    const std::size_t by_work = n / 32 > 0 ? n / 32 : 1;
    if (want > by_work) want = static_cast<unsigned>(by_work);
  }
  if (n > 0 && want > n) want = static_cast<unsigned>(n);
  return want < 1 ? 1 : want;
}

unsigned Network::threads() const noexcept { return resolve_threads(); }

std::uint32_t Network::resolve_steal_chunk() const noexcept {
  if (steal_chunk_setting_ != 0) return steal_chunk_setting_;
  const std::uint32_t env = env_steal_chunk();
  if (env != 0) return env;
  // Auto: a fraction of the dispatch grain, so a round that barely
  // justifies the pool still splits into several stealable pieces, while
  // wide rounds do not drown in cursor traffic.
  const std::size_t derived = grain_ / 8;
  if (derived < 16) return 16;
  if (derived > 1024) return 1024;
  return static_cast<std::uint32_t>(derived);
}

std::size_t Network::calibrate_grain() {
  // Dispatch overhead: the fixed cost of waking every pool worker and
  // re-joining at the barrier, measured as the best of a few empty
  // generations (the best approximates the uncontended hand-off; worse
  // reps are scheduler noise we should not bake into the grain).
  const std::function<void(unsigned)> noop = [](unsigned) {};
  double overhead_ns = 1e18;
  for (int rep = 0; rep < 8; ++rep) {
    const auto t0 = Clock::now();
    pool_->run(noop);
    const double ns = ns_since(t0);
    if (ns < overhead_ns) overhead_ns = ns;
  }

  // Per-work-unit cost: probe a light per-node visit (degree + inbox-size
  // reads over the real arrays). This underestimates a protocol's actual
  // on_round, which makes the derived grain err toward inline execution --
  // the safe side for latency; genuinely wide rounds sit far above any
  // plausible grain.
  const std::size_t n = graph_->node_count();
  const std::size_t probe = n < 4096 ? n : 4096;
  std::uint64_t sink = 0;
  std::uint64_t visits = 0;
  const auto t0 = Clock::now();
  double elapsed_ns = 0.0;
  do {
    for (NodeId v = 0; v < probe; ++v) {
      sink += graph_->degree(v) + inbox_[v].size();
    }
    visits += probe;
    elapsed_ns = ns_since(t0);
  } while (elapsed_ns < 16384.0 && visits < (1u << 22));
  // Keep the probe's result observable so the loop cannot be elided.
  if (sink == 0x9e3779b97f4a7c15ull) ++visits;
  const double per_unit_ns =
      visits == 0 ? 1.0 : std::max(elapsed_ns / static_cast<double>(visits),
                                   0.25);

  // Dispatch pays off once the round's work dwarfs the hand-off cost; the
  // clamp keeps degenerate measurements (hot VM, coarse clock) sane.
  const double raw = overhead_ns / per_unit_ns;
  const auto grain = static_cast<std::size_t>(raw);
  if (grain < 96) return 96;
  if (grain > 16384) return 16384;
  return grain;
}

void Network::build_partition() {
  const std::size_t n = graph_->node_count();
  shard_begin_.assign(workers_ + 1, 0);
  shard_begin_[workers_] = static_cast<NodeId>(n);
  if (built_partition_ == Partition::kNodeCount) {
    // Legacy contiguous near-equal split: the first `extra` shards hold
    // base+1 nodes.
    const std::size_t base = n / workers_;
    const std::size_t extra = n % workers_;
    for (unsigned s = 0; s < workers_; ++s) {
      shard_begin_[s + 1] = static_cast<NodeId>(
          shard_begin_[s] + base + (s < extra ? 1 : 0));
    }
  } else {
    // Edge-weighted: contiguous ranges balanced by (1 + degree) prefix
    // sums, so per-shard edge traffic -- the round executor's actual work
    // -- is near-equal even when degrees are wildly skewed. A node heavier
    // than a whole share (a star center) yields empty neighbor shards;
    // work-stealing absorbs what the partition cannot split.
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) + graph_->directed_edge_count();
    std::uint64_t acc = 0;
    unsigned s = 1;
    for (NodeId v = 0; v < n && s < workers_; ++v) {
      acc += 1 + graph_->degree(v);
      while (s < workers_ &&
             acc * workers_ >= static_cast<std::uint64_t>(s) * total) {
        shard_begin_[s++] = v + 1;
      }
    }
    for (; s < workers_; ++s) shard_begin_[s] = static_cast<NodeId>(n);
  }

  node_shard_.resize(n);
  for (unsigned s = 0; s < workers_; ++s) {
    for (NodeId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
      node_shard_[v] = s;
    }
  }

  const std::size_t edges = graph_->directed_edge_count();
  edge_owner_.resize(edges);
  for (std::size_t eid = 0; eid < edges; ++eid) {
    edge_owner_[eid] = node_shard_[graph_->directed_edge_target(eid)];
  }
}

void Network::ensure_executor() {
  const unsigned want = resolve_threads();
  if (want == workers_ && partition_setting_ == built_partition_ &&
      steal_chunk_setting_ == built_steal_setting_ &&
      run_lanes_ <= arena_lanes_) {
    return;
  }

  if (want != workers_) {
    workers_ = want;
    pool_.reset();
    if (workers_ > 1) pool_ = std::make_unique<WorkerPool>(workers_);
    const long long env_grain = env_parallel_grain();
    if (env_grain >= 0) {
      grain_ = static_cast<std::size_t>(env_grain);
    } else if (workers_ == 1) {
      grain_ = 192;  // inert: the single-worker path never dispatches
    } else {
      grain_ = calibrate_grain();
    }
  }
  built_partition_ = partition_setting_;
  built_steal_setting_ = steal_chunk_setting_;
  if (run_lanes_ > arena_lanes_) arena_lanes_ = run_lanes_;
  steal_chunk_ = resolve_steal_chunk();

  build_partition();
  // One virtual FIFO per (directed edge, lane): a multiplexed run gives
  // every lane the solo per-edge delivery pacing (see run_multiplexed).
  // Sized for the widest multiplexing seen so far; lane l's queues occupy
  // the contiguous block [l * E, (l + 1) * E), so narrower runs just leave
  // the upper blocks idle.
  arena_.reset(graph_->directed_edge_count() * arena_lanes_, workers_);
  // One fused-transmit mark per virtual edge. assign(0) on rebuild is
  // safe: the never-reset transmit stamp keeps all live tags above 0.
  edge_mark_.assign(graph_->directed_edge_count() * arena_lanes_, 0);
  shards_.assign(workers_, Shard{});
  lanes_.assign(workers_, WorkerLane{});
  cursors_ = std::make_unique<ChunkCursor[]>(workers_);
  staged_.assign(workers_,
                 std::vector<std::vector<PendingSend>>(workers_));
  token_staged_.assign(workers_, std::vector<TokenColumns>(workers_));
  seg_marks_.assign(workers_, std::vector<std::vector<SegMark>>(workers_));
  wake_staged_.assign(workers_, std::vector<std::vector<NodeId>>(workers_));

  // Round-0 chunking: every node is active with an empty inbox, so weight
  // by 1 + degree (initialization work -- e.g. Phase 1 seeding eta*deg
  // short walks -- is typically degree-proportional).
  round0_chunk_end_.assign(workers_, {});
  round0_work_.assign(workers_, 0);
  for (unsigned s = 0; s < workers_; ++s) {
    const NodeId begin = shard_begin_[s];
    round0_work_[s] = cut_chunks(
        steal_chunk_, shard_begin_[s + 1] - begin,
        [&](std::uint32_t idx) {
          return std::uint64_t{1} + graph_->degree(begin + idx);
        },
        round0_chunk_end_[s]);
  }
}

void Network::stage_send(unsigned worker, NodeId from, std::uint32_t slot,
                         const Message& m, std::uint16_t msg_lane) {
  if (msg_lane >= run_lanes_) {
    // A multi-lane mux driven through run() instead of run_multiplexed()
    // (or a protocol stamping Message::lane by hand) would otherwise index
    // another lane's -- or nonexistent -- arena queues. Fail loudly in
    // every build mode; the branch is one predictable compare on the send
    // path.
    throw std::logic_error(
        "Network::stage_send: message lane exceeds the run's lane count "
        "(multi-lane protocols must go through run_multiplexed)");
  }
  const auto eid = static_cast<std::uint32_t>(
      graph_->directed_edge_index(from, slot));
  const std::uint32_t owner = edge_owner_[eid];
  WorkerLane& lane = lanes_[worker];
  std::vector<PendingSend>& bucket = staged_[worker][owner];
  TokenColumns& tokens = token_staged_[worker][owner];
  std::vector<SegMark>& marks = seg_marks_[worker][owner];
  if (marks.empty() || marks.back().chunk != lane.chunk) {
    marks.push_back(
        SegMark{lane.chunk, static_cast<std::uint32_t>(bucket.size()),
                static_cast<std::uint32_t>(tokens.hdr.size())});
  }
  const std::uint32_t veid =
      eid + msg_lane * static_cast<std::uint32_t>(
                           graph_->directed_edge_count());
  if (token_packable(m)) {
    // Fast path: the dominant fixed-payload walk tokens stage as 24
    // packed bytes across three columns instead of a 56-byte PendingSend.
    const PackedToken t = pack_token(veid, m, msg_lane);
    tokens.hdr.push_back(t.hdr);
    tokens.lo.push_back(t.lo);
    tokens.hi.push_back(t.hi);
    ++lane.token_sends;
  } else {
    bucket.push_back(PendingSend{
        veid, static_cast<std::uint32_t>(tokens.hdr.size()), m});
    bucket.back().msg.lane = msg_lane;
  }
  ++lane.sends;
}

void Network::stage_wake(unsigned worker, NodeId self) {
  if (!wake_flag_[self]) {
    wake_flag_[self] = 1;
    wake_staged_[worker][node_shard_[self]].push_back(self);
    ++lanes_[worker].wakes;
  }
}

void Network::dispatch(std::size_t work,
                       void (Network::*phase)(unsigned),
                       bool collaborative) {
  if (workers_ == 1 || work < grain_) {
    parallel_round_ = false;
    if (collaborative) {
      // A collaborative phase drains every shard's chunk cursor itself; a
      // single inline call covers all shards in canonical order.
      (this->*phase)(0);
    } else {
      for (unsigned s = 0; s < workers_; ++s) (this->*phase)(s);
    }
    return;
  }
  parallel_round_ = true;
  pool_->run([this, phase](unsigned s) { (this->*phase)(s); });
}

void Network::compute_phase(unsigned worker) {
  obs::Span span(obs::Name::kComputeWorker, obs::kPidExecutor,
                 static_cast<std::uint16_t>(worker));
  WorkerLane& lane = lanes_[worker];
  Context ctx;
  ctx.net_ = this;
  ctx.round_ = round_;
  ctx.worker_ = worker;
  // Drain the own shard's chunks first (cache locality: its active nodes,
  // inboxes and arena pages are this worker's), then sweep the other
  // shards claiming whatever their owners have not reached yet. Chunks are
  // claimed exactly once; which worker runs a chunk never influences
  // results, only wall time.
  for (unsigned i = 0; i < workers_; ++i) {
    const unsigned s = worker + i < workers_ ? worker + i
                                             : worker + i - workers_;
    Shard& sh = shards_[s];
    const auto chunks = static_cast<std::uint32_t>(sh.chunk_end.size());
    if (chunks == 0) continue;
    for (;;) {
      const std::uint32_t c =
          cursors_[s].next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      if (i != 0 && parallel_round_) ++lane.steals;
      lane.chunk = (static_cast<std::uint64_t>(s) << 32) | c;
      const std::uint32_t begin = c == 0 ? 0 : sh.chunk_end[c - 1];
      const std::uint32_t end = sh.chunk_end[c];
      for (std::uint32_t idx = begin; idx < end; ++idx) {
        const NodeId v = sh.active[idx];
        if (lane_inboxes_on_) {
          // Per-lane inboxes: the protocol demultiplexes itself through
          // Context::lane_inbox; the mixed inbox() stays empty.
          lane.deliveries += inbox_total_[v];
          ctx.self_ = v;
          ctx.inbox_ = std::span<const Delivery>();
          running_->on_round(ctx);
          if (inbox_total_[v] != 0) {
            const std::size_t base =
                static_cast<std::size_t>(v) * lane_inbox_stride_;
            for (unsigned l = 0; l < lane_inbox_stride_; ++l) {
              lane_inbox_[base + l].clear();
            }
            inbox_total_[v] = 0;
          }
        } else {
          std::vector<Delivery>& in = inbox_[v];
          lane.deliveries += in.size();
          ctx.self_ = v;
          ctx.inbox_ = std::span<const Delivery>(in);
          running_->on_round(ctx);
          in.clear();
        }
      }
    }
  }
}

void Network::transmit_phase(unsigned shard) {
  // One FUSED stage-merge-deliver pass per shard, observationally
  // identical to the historical merge-sweep-then-delivery-sweep engine:
  //   A. drain -- edges that entered the round backlogged deliver their
  //      FIFO head (they precede this round's fresh edges in busy order,
  //      and FIFO heads are untouched by this round's appends, so popping
  //      before the replay commutes with the unfused push-then-pop).
  //   B. replay -- staged sends land in ascending global chunk order;
  //      each idle edge's FIRST message of the round is delivered
  //      directly, bypassing the arena entirely for the dominant depth-1
  //      traffic. Only the congested long tail is enqueued.
  //   C. compact -- surviving old-busy edges keep their positions, fresh
  //      edges that stayed backlogged append in canonical first-send
  //      order: exactly the busy list the unfused engine built.
  obs::Span span(obs::Name::kTransmitFusedShard, obs::kPidExecutor,
                 static_cast<std::uint16_t>(shard));
  Shard& sh = shards_[shard];
  sh.transmitted = 0;

  const auto edges =
      static_cast<std::uint32_t>(graph_->directed_edge_count());
  const std::uint64_t busy_tag = transmit_stamp_ * 2;
  const std::uint64_t fresh_tag = busy_tag + 1;

  // At most one queued message per owned virtual edge (directed edge x
  // lane) moves into its destination inbox per round (all owned
  // destinations are this shard's nodes).
  const auto deliver = [&](std::uint32_t base_eid, const Message& m) {
    const std::uint64_t ep = edge_endpoints_[base_eid];
    const auto to = static_cast<NodeId>(ep & 0xffffffffu);
    const auto from = static_cast<NodeId>(ep >> 32);
    if (lane_inboxes_on_) {
      if (inbox_total_[to] == 0) sh.delivered.push_back(to);
      ++inbox_total_[to];
      lane_inbox_[static_cast<std::size_t>(to) * lane_inbox_stride_ +
                  m.lane]
          .push_back(Delivery{m, from});
    } else {
      std::vector<Delivery>& in = inbox_[to];
      if (in.empty()) sh.delivered.push_back(to);
      in.push_back(Delivery{m, from});
    }
    ++sh.transmitted;
  };

  // Token deliveries build the Delivery straight from the packed columns
  // -- no intermediate Message on the stack. Field values are exactly
  // unpack_token's, so the shortcut is invisible to protocols.
  const auto deliver_token = [&](std::uint32_t base_eid, std::uint64_t hdr,
                                 std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t ep = edge_endpoints_[base_eid];
    const auto to = static_cast<NodeId>(ep & 0xffffffffu);
    std::vector<Delivery>* in;
    if (lane_inboxes_on_) {
      if (inbox_total_[to] == 0) sh.delivered.push_back(to);
      ++inbox_total_[to];
      in = &lane_inbox_[static_cast<std::size_t>(to) * lane_inbox_stride_ +
                        static_cast<std::uint16_t>(hdr)];
    } else {
      in = &inbox_[to];
      if (in->empty()) sh.delivered.push_back(to);
    }
    in->push_back(
        Delivery{Message{static_cast<std::uint16_t>(hdr >> 16),
                         {lo & 0xffffffffull, lo >> 32,
                          hi & 0xffffffffull, hi >> 32},
                         static_cast<std::uint16_t>(hdr)},
                 static_cast<NodeId>(ep >> 32)});
    ++sh.transmitted;
  };

  // Pass A -- drain the backlog front.
  sh.delivered.clear();
  for (const std::uint32_t eid : sh.busy) {
    edge_mark_[eid] = busy_tag;
    const Message m = arena_.pop(shard, eid);
    deliver(eid - m.lane * edges, m);
  }

  // Pass B -- replay staged sends for owned edges in ascending global
  // chunk order. Chunks tile the canonical ascending-node order and each
  // was executed contiguously by exactly one worker, so replaying their
  // bucket segments sorted by chunk id reconstructs the global
  // ascending-node send order -- independent of thread count, partition
  // and who stole what. Within a segment, the generic entries' stage-time
  // token counters splice the token columns back at their exact staging
  // positions.
  std::vector<Segment>& segments = sh.merge_scratch;
  segments.clear();
  for (unsigned w = 0; w < workers_; ++w) {
    const std::vector<SegMark>& marks = seg_marks_[w][shard];
    const auto bucket_size =
        static_cast<std::uint32_t>(staged_[w][shard].size());
    const auto token_size =
        static_cast<std::uint32_t>(token_staged_[w][shard].hdr.size());
    for (std::size_t k = 0; k < marks.size(); ++k) {
      const std::uint32_t end =
          k + 1 < marks.size() ? marks[k + 1].begin : bucket_size;
      const std::uint32_t token_end =
          k + 1 < marks.size() ? marks[k + 1].token_begin : token_size;
      segments.push_back(Segment{marks[k].chunk, w, marks[k].begin, end,
                                 marks[k].token_begin, token_end});
    }
  }
  if (!segments.empty()) {
    // Thin rounds (nothing staged for this shard) skip the merge timer:
    // two clock reads per shard per round would dominate the near-zero
    // work they bracket.
    obs::Span merge_span(obs::Name::kMergeShard, obs::kPidExecutor,
                         static_cast<std::uint16_t>(shard));
    const auto merge_start = Clock::now();
    std::sort(segments.begin(), segments.end(),
              [](const Segment& a, const Segment& b) {
                return a.chunk < b.chunk;
              });
    // Observable per-edge depth this round, as the unfused engine counted
    // it: >= 1 for every replayed message (fresh first messages and
    // drained busy heads entered its queues too), so start at 1 -- a
    // non-empty segment list implies at least one replayed send.
    std::uint32_t round_max = 1;
    const auto emit = [&](std::uint32_t eid, const Message& m) {
      const std::uint64_t mark = edge_mark_[eid];
      if (mark != busy_tag && mark != fresh_tag) {
        // First message for an idle edge: deliver in place.
        edge_mark_[eid] = fresh_tag;
        sh.fresh_scratch.push_back(eid);
        deliver(eid - m.lane * edges, m);
      } else {
        // Congested long tail. +1 corrects the fused ordering: a busy
        // edge's head was already popped in pass A and a fresh edge's
        // first message never enqueued, so the depth the unfused
        // push-then-pop engine observed is one above the arena's.
        const std::uint32_t depth = arena_.push(shard, eid, m) + 1;
        if (depth > round_max) round_max = depth;
      }
    };
    // Token flavor of emit: only the congested-tail arena push pays for a
    // Message reconstruction.
    const auto emit_token = [&](std::uint64_t hdr, std::uint64_t lo,
                                std::uint64_t hi) {
      const auto eid = static_cast<std::uint32_t>(hdr >> 32);
      const std::uint64_t mark = edge_mark_[eid];
      if (mark != busy_tag && mark != fresh_tag) {
        edge_mark_[eid] = fresh_tag;
        sh.fresh_scratch.push_back(eid);
        deliver_token(
            eid - static_cast<std::uint32_t>(hdr & 0xffffu) * edges, hdr,
            lo, hi);
      } else {
        const std::uint32_t depth =
            arena_.push(shard, eid, unpack_token(PackedToken{hdr, lo, hi})) +
            1;
        if (depth > round_max) round_max = depth;
      }
    };
    for (const Segment& seg : segments) {
      const std::vector<PendingSend>& bucket = staged_[seg.worker][shard];
      const TokenColumns& tok = token_staged_[seg.worker][shard];
      std::uint32_t t = seg.token_begin;
      for (std::uint32_t k = seg.begin; k < seg.end; ++k) {
        const PendingSend& ps = bucket[k];
        for (; t < ps.tokens_before; ++t) {
          emit_token(tok.hdr[t], tok.lo[t], tok.hi[t]);
        }
        emit(ps.eid, ps.msg);
      }
      for (; t < seg.token_end; ++t) {
        emit_token(tok.hdr[t], tok.lo[t], tok.hi[t]);
      }
    }
    if (round_max > sh.max_backlog) sh.max_backlog = round_max;
    for (unsigned w = 0; w < workers_; ++w) {
      staged_[w][shard].clear();
      TokenColumns& tok = token_staged_[w][shard];
      tok.hdr.clear();
      tok.lo.clear();
      tok.hi.clear();
      seg_marks_[w][shard].clear();
    }
    lanes_[shard].merge_ns += ns_since(merge_start);
    // Per-shard-round peak arena depth: the distribution of these is the
    // congestion signal the paper's round bounds are about.
    if (obs::Registry::global().enabled()) {
      obs::Registry::global().histogram("arena.backlog").record(round_max);
    }
    obs::event(obs::Name::kArenaBacklog, 'C', obs::kPidExecutor,
               static_cast<std::uint16_t>(shard), round_max);
  }

  // Pass C -- rebuild the busy list.
  std::size_t keep = 0;
  for (const std::uint32_t eid : sh.busy) {
    if (arena_.size(eid) != 0) sh.busy[keep++] = eid;
  }
  sh.busy.resize(keep);
  for (const std::uint32_t eid : sh.fresh_scratch) {
    if (arena_.size(eid) != 0) sh.busy.push_back(eid);
  }
  sh.fresh_scratch.clear();

  // Assemble the next round's active list (delivered nodes + staged wakes,
  // deduplicated in ascending order) and chunk it for stealing, so the
  // next compute phase starts without an extra barrier. Wake flags stay
  // set through the assembly: on dense rounds one ascending sweep of the
  // shard's contiguous node range reads them alongside inbox occupancy
  // (nonempty iff delivered this round -- compute cleared every inbox it
  // visited) and yields the sorted deduplicated list with no sort at all;
  // sparse rounds keep the sort + unique, which wins when the shard range
  // dwarfs the touched set.
  sh.wake_scratch.clear();
  for (unsigned w = 0; w < workers_; ++w) {
    for (const NodeId v : wake_staged_[w][shard]) {
      sh.wake_scratch.push_back(v);
    }
    wake_staged_[w][shard].clear();
  }
  sh.active.clear();
  const NodeId node_begin = shard_begin_[shard];
  const NodeId node_end = shard_begin_[shard + 1];
  const std::size_t touched = sh.delivered.size() + sh.wake_scratch.size();
  if (touched * 8 >= static_cast<std::size_t>(node_end - node_begin)) {
    if (lane_inboxes_on_) {
      for (NodeId v = node_begin; v < node_end; ++v) {
        if (inbox_total_[v] != 0 || wake_flag_[v] != 0) {
          sh.active.push_back(v);
        }
      }
    } else {
      for (NodeId v = node_begin; v < node_end; ++v) {
        if (!inbox_[v].empty() || wake_flag_[v] != 0) {
          sh.active.push_back(v);
        }
      }
    }
  } else {
    sh.active.insert(sh.active.end(), sh.delivered.begin(),
                     sh.delivered.end());
    sh.active.insert(sh.active.end(), sh.wake_scratch.begin(),
                     sh.wake_scratch.end());
    std::sort(sh.active.begin(), sh.active.end());
    sh.active.erase(std::unique(sh.active.begin(), sh.active.end()),
                    sh.active.end());
  }
  for (const NodeId v : sh.wake_scratch) wake_flag_[v] = 0;
  chunk_active_list(sh);
}

void Network::chunk_active_list(Shard& sh) {
  // Weight by pending deliveries: the dominant on_round cost is walking
  // the inbox, and it is known exactly here. A hub with a flooded inbox
  // lands alone in its own chunk, so thieves can take everything else.
  sh.chunk_end.clear();
  if (lane_inboxes_on_) {
    sh.work = cut_chunks(
        steal_chunk_, static_cast<std::uint32_t>(sh.active.size()),
        [&](std::uint32_t idx) {
          return std::uint64_t{1} + inbox_total_[sh.active[idx]];
        },
        sh.chunk_end);
  } else {
    sh.work = cut_chunks(
        steal_chunk_, static_cast<std::uint32_t>(sh.active.size()),
        [&](std::uint32_t idx) {
          return std::uint64_t{1} + inbox_[sh.active[idx]].size();
        },
        sh.chunk_end);
  }
}

void Network::reset_transients(bool aborted) {
  for (unsigned s = 0; s < workers_; ++s) {
    Shard& sh = shards_[s];
    for (NodeId v : sh.delivered) {
      if (lane_inboxes_on_) {
        const std::size_t base =
            static_cast<std::size_t>(v) * lane_inbox_stride_;
        for (unsigned l = 0; l < lane_inbox_stride_; ++l) {
          lane_inbox_[base + l].clear();
        }
        inbox_total_[v] = 0;
      } else {
        inbox_[v].clear();
      }
    }
    sh.delivered.clear();
    sh.active.clear();
    sh.chunk_end.clear();
    sh.work = 0;
    sh.fresh_scratch.clear();
    for (std::uint32_t eid : sh.busy) arena_.clear_queue(s, eid);
    sh.busy.clear();
  }
  for (unsigned w = 0; w < workers_; ++w) {
    for (unsigned o = 0; o < workers_; ++o) {
      // Sends staged in a final done()-stopped compute were never merged;
      // staged wakes still hold their flags.
      staged_[w][o].clear();
      TokenColumns& tok = token_staged_[w][o];
      tok.hdr.clear();
      tok.lo.clear();
      tok.hi.clear();
      seg_marks_[w][o].clear();
      for (const NodeId v : wake_staged_[w][o]) wake_flag_[v] = 0;
      wake_staged_[w][o].clear();
    }
  }
  if (aborted) {
    // A protocol that threw mid-compute leaves inboxes of active nodes it
    // never reached (compute_phase clears each inbox only after a
    // successful on_round, and the delivered lists were consumed at phase
    // start). Sweep everything so the aborted run cannot leak messages or
    // stuck wake flags into the next protocol.
    for (std::vector<Delivery>& in : inbox_) in.clear();
    for (std::vector<Delivery>& in : lane_inbox_) in.clear();
    if (lane_inboxes_on_) inbox_total_.assign(inbox_total_.size(), 0);
    wake_flag_.assign(wake_flag_.size(), 0);
  }
  // Only busy edges were cleared above; every other queue must already be
  // empty, or arena reuse would corrupt the next protocol run.
  assert(arena_.all_empty() &&
         "Network::run: non-busy edge queue left non-empty");
}

RunStats Network::run(Protocol& protocol, std::uint64_t max_rounds) {
  return run_with_lanes(protocol, 1, max_rounds);
}

RunStats Network::run_multiplexed(Protocol& protocol, unsigned lanes,
                                  std::uint64_t max_rounds) {
  if (lanes == 0 || lanes > kMaxLanes) {
    throw std::invalid_argument(
        "Network::run_multiplexed: lanes must be in [1, kMaxLanes]");
  }
  // Virtual edge ids (lane * E + eid) live in 32 bits; a graph wide enough
  // to overflow them must fail loudly, not wrap into another lane's FIFOs.
  const std::uint64_t virtual_edges =
      static_cast<std::uint64_t>(lanes) * graph_->directed_edge_count();
  if (virtual_edges > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "Network::run_multiplexed: lanes * directed edges exceeds the "
        "32-bit virtual edge id space");
  }
  return run_with_lanes(protocol, lanes, max_rounds);
}

RunStats Network::run_with_lanes(Protocol& protocol, unsigned lanes,
                                 std::uint64_t max_rounds) {
  const auto start = Clock::now();
  obs::Span run_span(obs::Name::kNetRun, obs::kPidExecutor, 0, lanes);
  run_lanes_ = lanes;
  // Zero-copy lane inboxes: only for multi-lane runs whose protocol
  // demultiplexes by lane itself (wants_lane_inboxes), and only when the
  // O(n x lanes) table of span headers fits the memory budget -- above it
  // the run falls back to the mixed-inbox copying path, with identical
  // results (the per-lane slices equal a by-lane partition of the mixed
  // inbox in arrival order).
  lane_inboxes_on_ = false;
  if (lanes > 1 && protocol.wants_lane_inboxes()) {
    const std::size_t slots =
        static_cast<std::size_t>(graph_->node_count()) * lanes;
    const std::uint64_t budget_mb = lane_inbox_budget_mb_ != 0
                                        ? lane_inbox_budget_mb_
                                        : env_lane_inbox_mb();
    if (slots * sizeof(std::vector<Delivery>) <= budget_mb * (1ull << 20)) {
      lane_inboxes_on_ = true;
      lane_inbox_stride_ = lanes;
      // Grow-only, and every slot is empty between runs, so a stride
      // change cannot misplace pending messages.
      if (lane_inbox_.size() < slots) lane_inbox_.resize(slots);
    }
  }
  ensure_executor();
  RunStats stats;
  stats.threads = workers_;
  for (Shard& sh : shards_) {
    sh.max_backlog = 0;
    sh.transmitted = 0;
  }
  for (WorkerLane& lane : lanes_) {
    lane.steals = 0;
    lane.token_sends = 0;
    lane.merge_ns = 0.0;
  }
  running_ = &protocol;
  protocol.on_run_start(workers_);
  try {
    run_loop(protocol, max_rounds, stats);
  } catch (...) {
    // Leave the network reusable even when a protocol throws (or the
    // max_rounds guard fires): the aborted run's backlogs, inboxes and
    // wake flags must not leak into the next protocol.
    running_ = nullptr;
    reset_transients(/*aborted=*/true);
    throw;
  }
  running_ = nullptr;

  double merge_ns = 0.0;
  for (const WorkerLane& lane : lanes_) {
    stats.steals += lane.steals;
    stats.token_sends += lane.token_sends;
    merge_ns += lane.merge_ns;
  }
  stats.merge_ms = merge_ns / 1e6;
  for (const Shard& sh : shards_) {
    stats.max_backlog = stats.max_backlog > sh.max_backlog
                            ? stats.max_backlog
                            : sh.max_backlog;
  }
  // Reset transient state so the network can host the next protocol run.
  reset_transients(/*aborted=*/false);

  stats.wall_ms = ms_since(start);

  // Fold the run into the metrics registry (once per run, off the hot
  // path). Steal counts are per-worker so shard-level imbalance is
  // visible; they are scheduling-dependent by design and therefore
  // explicitly outside the determinism contract.
  if (obs::Registry::global().enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("executor.runs").add(1);
    reg.counter("executor.rounds").add(stats.rounds);
    reg.counter("executor.messages").add(stats.messages);
    reg.counter("executor.token_sends").add(stats.token_sends);
    reg.gauge("executor.threads").set(double(workers_));
    reg.histogram("arena.backlog_run_max").record(stats.max_backlog);
    for (unsigned w = 0; w < workers_; ++w) {
      reg.counter("executor.steals.w" + std::to_string(w))
          .add(lanes_[w].steals);
    }
  }
  return stats;
}

void Network::run_loop(Protocol& protocol, std::uint64_t max_rounds,
                       RunStats& stats) {
  // Round 0 activates every node once so protocols can initialize; this
  // forced wake does not by itself count as a round.
  global_wake_ = true;

  // Observability is resolved once per run: a mid-run toggle takes effect
  // at the next run, which keeps the loop's disabled path at a single
  // relaxed load per event site.
  obs::Histogram* round_hist =
      obs::Registry::global().enabled()
          ? &obs::Registry::global().histogram("executor.round_wall_us")
          : nullptr;

  for (round_ = 0;; ++round_) {
    if (round_ > max_rounds) {
      throw std::runtime_error("Network::run: max_rounds exceeded");
    }
    obs::event(obs::Name::kRound, 'C', obs::kPidExecutor, 0, round_);
    const auto round_start =
        round_hist != nullptr ? Clock::now() : Clock::time_point{};

    if (global_wake_) {
      // Install the cached canonical round-0 chunking: every node active.
      for (unsigned s = 0; s < workers_; ++s) {
        Shard& sh = shards_[s];
        sh.active.clear();
        for (NodeId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
          sh.active.push_back(v);
        }
        sh.chunk_end = round0_chunk_end_[s];
        sh.work = round0_work_[s];
      }
    }

    // Compute: active nodes' on_round, chunk-claimed across workers.
    std::size_t active_work = 0;
    for (const Shard& sh : shards_) active_work += sh.work;
    for (unsigned s = 0; s < workers_; ++s) {
      cursors_[s].next.store(0, std::memory_order_relaxed);
    }
    for (WorkerLane& lane : lanes_) {
      lane.deliveries = 0;
      lane.sends = 0;
      lane.wakes = 0;
    }
    // Phase-boundary failpoint: a throw here unwinds through
    // run_with_lanes' abort cleanup (pool joined, arena drained), the
    // exception-safety path tests/test_resil.cpp exercises.
    resil::failpoint("net.round.compute");
    const auto compute_start = Clock::now();
    {
      obs::Span span(obs::Name::kComputeDispatch, obs::kPidExecutor, 0,
                     active_work);
      dispatch(active_work, &Network::compute_phase,
               /*collaborative=*/true);
    }
    stats.compute_ms += ms_since(compute_start);
    global_wake_ = false;

    std::uint64_t deliveries = 0;
    std::uint64_t sends = 0;
    std::uint64_t scheduled = 0;
    for (const WorkerLane& lane : lanes_) {
      deliveries += lane.deliveries;
      sends += lane.sends;
      // Wakes scheduled during this iteration mark local-only work
      // happening in this round (e.g. a lazy walk's self-loop step): they
      // cost a round even with no transmission.
      scheduled += lane.wakes;
    }
    stats.messages += deliveries;

    if (protocol.done()) {
      if (scheduled > 0 || sends > 0) ++stats.rounds;
      if (round_hist != nullptr) {
        round_hist->record(
            static_cast<std::uint64_t>(ns_since(round_start) / 1000.0));
      }
      break;
    }

    // Transmit: merge staged sends, move at most one queued message per
    // directed edge into the next iteration's inboxes, and prepare the
    // next active lists. Each iteration with at least one transmission (or
    // an explicit waiting wake) is one CONGEST round -- compute + send +
    // delivery happen within a single round of the model.
    std::size_t busy_bound = sends;
    for (const Shard& sh : shards_) busy_bound += sh.busy.size();
    resil::failpoint("net.round.transmit");
    // Fresh busy/fresh tags for this round's fused pass; bumped on the
    // driver between phases so shards read a stable stamp. Never reset --
    // stale edge marks from any earlier round or run can't collide.
    ++transmit_stamp_;
    const auto transmit_start = Clock::now();
    {
      obs::Span span(obs::Name::kTransmitDispatch, obs::kPidExecutor, 0,
                     busy_bound);
      dispatch(busy_bound, &Network::transmit_phase,
               /*collaborative=*/false);
    }
    stats.transmit_ms += ms_since(transmit_start);
    if (round_hist != nullptr) {
      round_hist->record(
          static_cast<std::uint64_t>(ns_since(round_start) / 1000.0));
    }

    std::uint64_t transmitted = 0;
    for (const Shard& sh : shards_) transmitted += sh.transmitted;
    if (transmitted > 0 || scheduled > 0) ++stats.rounds;

    // Quiescence: nothing queued, nothing active next round.
    bool quiescent = true;
    for (const Shard& sh : shards_) {
      if (!sh.busy.empty() || !sh.active.empty()) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) break;
  }
}

}  // namespace drw::congest
