#include "congest/network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace drw::congest {

namespace {

/// Below this much per-phase work (active nodes / staged sends + busy
/// edges), a pool dispatch costs more than it saves: run the shards inline
/// on the driver thread instead. The data flow is identical either way, so
/// this is purely a latency knob -- results do not depend on it.
/// DRW_PARALLEL_GRAIN overrides it; the CI TSan leg sets 1 so that even
/// small-graph tests execute on_round concurrently under the race checker.
std::size_t parallel_grain() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("DRW_PARALLEL_GRAIN")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env) return static_cast<std::size_t>(parsed);
    }
    return static_cast<std::size_t>(192);
  }();
  return value;
}

}  // namespace

// ------------------------------------------------------------------ Context

std::uint32_t Context::degree() const noexcept {
  return net_->graph().degree(self_);
}

std::span<const NodeId> Context::neighbors() const noexcept {
  return net_->graph().neighbors(self_);
}

NodeId Context::neighbor(std::uint32_t slot) const noexcept {
  return net_->graph().neighbor(self_, slot);
}

std::uint32_t Context::slot_of(NodeId neighbor_id) const noexcept {
  return net_->graph().slot_of(self_, neighbor_id);
}

void Context::send(std::uint32_t slot, const Message& m) {
  net_->stage_send(worker_, self_, slot, m);
}

void Context::send_to(NodeId neighbor_id, const Message& m) {
  const std::uint32_t slot = net_->graph().slot_of(self_, neighbor_id);
  if (slot >= degree()) {
    throw std::logic_error("Context::send_to: target is not a neighbor");
  }
  net_->stage_send(worker_, self_, slot, m);
}

void Context::wake_me() { net_->stage_wake(worker_, self_); }

Rng& Context::rng() { return net_->node_rngs_[self_]; }

// --------------------------------------------------------------- WorkerPool

/// A persistent pool of workers_ - 1 threads; the driver thread acts as
/// worker 0. run() dispatches one task generation to every worker and
/// blocks until all finish; the mutex hand-offs give each phase the
/// acquire/release edges the barrier-separated data flow relies on.
struct Network::WorkerPool {
  explicit WorkerPool(unsigned workers) {
    threads_.reserve(workers - 1);
    for (unsigned id = 1; id < workers; ++id) {
      threads_.emplace_back([this, id] { loop(id); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(const std::function<void(unsigned)>& task) {
    {
      std::lock_guard<std::mutex> lock(m_);
      task_ = &task;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    cv_start_.notify_all();
    try {
      task(0);
    } catch (...) {
      record_error();
    }
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_done_.wait(lock, [this] { return pending_ == 0; });
      task_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void loop(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_start_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      try {
        (*task)(id);
      } catch (...) {
        record_error();
      }
      {
        std::lock_guard<std::mutex> lock(m_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  void record_error() {
    std::lock_guard<std::mutex> lock(m_);
    if (!error_) error_ = std::current_exception();
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

// ------------------------------------------------------------------ Network

Network::Network(const Graph& g, std::uint64_t seed) : graph_(&g) {
  const std::size_t n = g.node_count();
  Rng master(seed);
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_rngs_.push_back(master.split_key(v));

  edge_source_.resize(g.directed_edge_count());
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t slot = 0; slot < g.degree(v); ++slot) {
      edge_source_[g.directed_edge_index(v, slot)] = v;
    }
  }
  inbox_.resize(n);
  wake_flag_.assign(n, 0);
}

Network::~Network() = default;

namespace {

/// Parsed DRW_THREADS (0 = unset/invalid): an explicit width request, as
/// opposed to the hardware-derived fallback.
unsigned env_threads() {
  static const unsigned value = [] {
    if (const char* env = std::getenv("DRW_THREADS")) {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      if (parsed >= 1) {
        return static_cast<unsigned>(parsed < 256 ? parsed : 256);
      }
    }
    return 0u;
  }();
  return value;
}

}  // namespace

unsigned Network::default_threads() {
  const unsigned env = env_threads();
  if (env != 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void Network::set_threads(unsigned threads) {
  threads_setting_ = threads < 256 ? threads : 256;
}

unsigned Network::resolve_threads() const noexcept {
  unsigned want = threads_setting_ == 0 ? default_threads()
                                        : threads_setting_;
  const std::size_t n = graph_->node_count();
  // When the width is purely hardware-derived (no set_threads, no
  // DRW_THREADS), also bound it by available per-round work: a many-core
  // host sharding a small graph 64 ways would pay 64 task hand-offs per
  // phase for a node or two of work each. Explicit requests are honored
  // up to one node per shard.
  if (threads_setting_ == 0 && env_threads() == 0) {
    const std::size_t by_work = n / 32 > 0 ? n / 32 : 1;
    if (want > by_work) want = static_cast<unsigned>(by_work);
  }
  if (n > 0 && want > n) want = static_cast<unsigned>(n);
  return want < 1 ? 1 : want;
}

unsigned Network::threads() const noexcept { return resolve_threads(); }

unsigned Network::shard_of(NodeId v) const noexcept {
  // Contiguous near-equal partition: the first `extra` shards hold base+1
  // nodes. Inverse of the boundaries built in ensure_executor().
  const std::size_t n = graph_->node_count();
  const std::size_t base = n / workers_;
  const std::size_t extra = n % workers_;
  const std::size_t pivot = extra * (base + 1);
  if (v < pivot) return static_cast<unsigned>(v / (base + 1));
  return static_cast<unsigned>(extra + (v - pivot) / base);
}

void Network::ensure_executor() {
  const unsigned want = resolve_threads();
  if (want == workers_) return;
  workers_ = want;
  pool_.reset();
  if (workers_ > 1) pool_ = std::make_unique<WorkerPool>(workers_);

  const std::size_t n = graph_->node_count();
  shard_begin_.assign(workers_ + 1, 0);
  const std::size_t base = n / workers_;
  const std::size_t extra = n % workers_;
  for (unsigned s = 0; s < workers_; ++s) {
    shard_begin_[s + 1] = static_cast<NodeId>(
        shard_begin_[s] + base + (s < extra ? 1 : 0));
  }

  const std::size_t edges = graph_->directed_edge_count();
  edge_owner_.resize(edges);
  for (std::size_t eid = 0; eid < edges; ++eid) {
    edge_owner_[eid] = shard_of(graph_->directed_edge_target(eid));
  }
  arena_.reset(edges, workers_);
  shards_.assign(workers_, Shard{});
  staged_.assign(workers_,
                 std::vector<std::vector<PendingSend>>(workers_));
}

void Network::stage_send(unsigned worker, NodeId from, std::uint32_t slot,
                         const Message& m) {
  const auto eid = static_cast<std::uint32_t>(
      graph_->directed_edge_index(from, slot));
  staged_[worker][edge_owner_[eid]].push_back(PendingSend{eid, m});
  ++shards_[worker].sends;
}

void Network::stage_wake(unsigned worker, NodeId self) {
  if (!wake_flag_[self]) {
    wake_flag_[self] = 1;
    shards_[worker].wake_pending.push_back(self);
    ++shards_[worker].wakes;
  }
}

void Network::dispatch(std::size_t work,
                       void (Network::*phase)(unsigned)) {
  if (workers_ == 1 || work < parallel_grain()) {
    for (unsigned s = 0; s < workers_; ++s) (this->*phase)(s);
    return;
  }
  pool_->run([this, phase](unsigned s) { (this->*phase)(s); });
}

void Network::compute_phase(unsigned shard) {
  Shard& sh = shards_[shard];
  sh.deliveries = 0;
  sh.sends = 0;
  sh.wakes = 0;

  // Build this round's active set in ascending node order -- the canonical
  // processing order every thread count shares (it fixes the staged-send
  // order, hence busy-edge order, hence next round's delivery order).
  sh.active.clear();
  if (global_wake_) {
    for (NodeId v = shard_begin_[shard]; v < shard_begin_[shard + 1]; ++v) {
      sh.active.push_back(v);
    }
  } else {
    sh.wake_scratch.clear();
    sh.wake_scratch.swap(sh.wake_pending);
    for (NodeId v : sh.wake_scratch) wake_flag_[v] = 0;
    sh.active.insert(sh.active.end(), sh.delivered.begin(),
                     sh.delivered.end());
    sh.active.insert(sh.active.end(), sh.wake_scratch.begin(),
                     sh.wake_scratch.end());
    sh.delivered.clear();
    std::sort(sh.active.begin(), sh.active.end());
    sh.active.erase(std::unique(sh.active.begin(), sh.active.end()),
                    sh.active.end());
  }

  Context ctx;
  ctx.net_ = this;
  ctx.round_ = round_;
  ctx.worker_ = shard;
  for (NodeId v : sh.active) {
    std::vector<Delivery>& in = inbox_[v];
    sh.deliveries += in.size();
    ctx.self_ = v;
    ctx.inbox_ = std::span<const Delivery>(in);
    running_->on_round(ctx);
    in.clear();
  }
}

void Network::transmit_phase(unsigned shard) {
  Shard& sh = shards_[shard];
  sh.transmitted = 0;

  // Merge staged sends for owned edges, scanning workers in ascending
  // order: combined with ascending-order processing this makes the merged
  // sequence the global ascending-node send order, independent of how
  // nodes were sharded.
  for (unsigned w = 0; w < workers_; ++w) {
    std::vector<PendingSend>& bucket = staged_[w][shard];
    for (const PendingSend& ps : bucket) {
      if (arena_.size(ps.eid) == 0) sh.busy.push_back(ps.eid);
      arena_.push(shard, ps.eid, ps.msg);
      const std::uint64_t depth = arena_.size(ps.eid);
      if (depth > sh.max_backlog) sh.max_backlog = depth;
    }
    bucket.clear();
  }

  // Transmit: at most one queued message per owned directed edge moves into
  // its destination inbox (all owned destinations are this shard's nodes).
  std::size_t keep = 0;
  for (const std::uint32_t eid : sh.busy) {
    const Message m = arena_.pop(shard, eid);
    const NodeId to = graph_->directed_edge_target(eid);
    std::vector<Delivery>& in = inbox_[to];
    if (in.empty()) sh.delivered.push_back(to);
    in.push_back(Delivery{m, edge_source_[eid]});
    ++sh.transmitted;
    if (arena_.size(eid) != 0) sh.busy[keep++] = eid;
  }
  sh.busy.resize(keep);
}

void Network::reset_transients(bool aborted) {
  for (unsigned s = 0; s < workers_; ++s) {
    Shard& sh = shards_[s];
    for (NodeId v : sh.delivered) inbox_[v].clear();
    sh.delivered.clear();
    for (NodeId v : sh.wake_pending) wake_flag_[v] = 0;
    sh.wake_pending.clear();
    for (std::uint32_t eid : sh.busy) arena_.clear_queue(s, eid);
    sh.busy.clear();
    // Sends staged in a final done()-stopped compute were never merged.
    for (std::vector<PendingSend>& bucket : staged_[s]) bucket.clear();
  }
  if (aborted) {
    // A protocol that threw mid-compute leaves inboxes of active nodes it
    // never reached (compute_phase clears each inbox only after a
    // successful on_round, and the delivered lists were consumed at phase
    // start). Sweep everything so the aborted run cannot leak messages or
    // stuck wake flags into the next protocol.
    for (std::vector<Delivery>& in : inbox_) in.clear();
    wake_flag_.assign(wake_flag_.size(), 0);
  }
  // Only busy edges were cleared above; every other queue must already be
  // empty, or arena reuse would corrupt the next protocol run.
  assert(arena_.all_empty() &&
         "Network::run: non-busy edge queue left non-empty");
}

RunStats Network::run(Protocol& protocol, std::uint64_t max_rounds) {
  const auto start = std::chrono::steady_clock::now();
  ensure_executor();
  RunStats stats;
  stats.threads = workers_;
  for (Shard& sh : shards_) sh.max_backlog = 0;
  running_ = &protocol;
  try {
    run_loop(protocol, max_rounds, stats);
  } catch (...) {
    // Leave the network reusable even when a protocol throws (or the
    // max_rounds guard fires): the aborted run's backlogs, inboxes and
    // wake flags must not leak into the next protocol.
    running_ = nullptr;
    reset_transients(/*aborted=*/true);
    throw;
  }
  running_ = nullptr;

  for (const Shard& sh : shards_) {
    stats.max_backlog = stats.max_backlog > sh.max_backlog
                            ? stats.max_backlog
                            : sh.max_backlog;
  }
  // Reset transient state so the network can host the next protocol run.
  reset_transients(/*aborted=*/false);

  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

void Network::run_loop(Protocol& protocol, std::uint64_t max_rounds,
                       RunStats& stats) {
  // Round 0 activates every node once so protocols can initialize; this
  // forced wake does not by itself count as a round.
  global_wake_ = true;

  for (round_ = 0;; ++round_) {
    if (round_ > max_rounds) {
      throw std::runtime_error("Network::run: max_rounds exceeded");
    }

    // Compute: active nodes' on_round, sharded by node.
    std::size_t active_bound = graph_->node_count();
    if (!global_wake_) {
      active_bound = 0;
      for (const Shard& sh : shards_) {
        active_bound += sh.delivered.size() + sh.wake_pending.size();
      }
    }
    dispatch(active_bound, &Network::compute_phase);
    global_wake_ = false;

    std::uint64_t deliveries = 0;
    std::uint64_t sends = 0;
    std::uint64_t scheduled = 0;
    for (const Shard& sh : shards_) {
      deliveries += sh.deliveries;
      sends += sh.sends;
      // Wakes scheduled during this iteration mark local-only work
      // happening in this round (e.g. a lazy walk's self-loop step): they
      // cost a round even with no transmission.
      scheduled += sh.wakes;
    }
    stats.messages += deliveries;

    if (protocol.done()) {
      if (scheduled > 0 || sends > 0) ++stats.rounds;
      break;
    }

    // Transmit: merge staged sends and move at most one queued message per
    // directed edge into the next iteration's inboxes. Each iteration with
    // at least one transmission (or an explicit waiting wake) is one
    // CONGEST round -- compute + send + delivery happen within a single
    // round of the model.
    std::size_t busy_bound = sends;
    for (const Shard& sh : shards_) busy_bound += sh.busy.size();
    dispatch(busy_bound, &Network::transmit_phase);

    std::uint64_t transmitted = 0;
    for (const Shard& sh : shards_) transmitted += sh.transmitted;
    if (transmitted > 0 || scheduled > 0) ++stats.rounds;

    // Quiescence: nothing queued, nothing scheduled, nothing to deliver.
    bool quiescent = true;
    for (const Shard& sh : shards_) {
      if (!sh.busy.empty() || !sh.delivered.empty() ||
          !sh.wake_pending.empty()) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) break;
  }
}

}  // namespace drw::congest
